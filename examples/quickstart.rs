//! Quickstart: infer a DTD and an XSD for a small XML corpus.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dtdinfer::xml::extract::Corpus;
use dtdinfer::xml::infer::{infer_dtd, InferenceEngine};
use dtdinfer::xml::xsd::{generate_xsd, XsdOptions};

const DOCUMENTS: &[&str] = &[
    r#"<catalog>
         <book id="1">
           <title>Data on the Web</title>
           <author>Abiteboul</author><author>Buneman</author><author>Suciu</author>
           <year>1999</year>
         </book>
         <book id="2">
           <title>XML Schema</title>
           <author>van der Vlist</author>
           <year>2002</year>
           <price>39.95</price>
         </book>
       </catalog>"#,
    r#"<catalog>
         <book id="3">
           <title>Automata Theory</title>
           <author>Hopcroft</author><author>Ullman</author>
           <year>1979</year>
           <price>95.00</price>
         </book>
       </catalog>"#,
];

fn main() {
    let mut corpus = Corpus::new();
    for doc in DOCUMENTS {
        corpus.add_document(doc).expect("well-formed XML");
    }

    println!("=== corpus ===");
    println!(
        "{} documents, {} element names, {} extracted child sequences\n",
        corpus.num_documents,
        corpus.alphabet.len(),
        corpus.total_sequences()
    );

    // CRX favors generalization — the right choice for a corpus this small
    // (§1.2 of the paper: the sparse-data scenario).
    let dtd = infer_dtd(&corpus, InferenceEngine::Crx);
    println!("=== inferred DTD (crx) ===");
    print!("{}", dtd.serialize());

    // The same corpus inferred with iDTD, which favors specialization.
    let dtd_idtd = infer_dtd(&corpus, InferenceEngine::Idtd);
    println!("\n=== inferred DTD (idtd) ===");
    print!("{}", dtd_idtd.serialize());

    // The inferred DTD validates its own training corpus.
    for doc in DOCUMENTS {
        let violations = dtd.validate(doc).expect("parses");
        assert!(violations.is_empty(), "unexpected: {violations:?}");
    }
    println!("\nboth DTDs validate the training corpus ✓");

    // XSD output with datatype heuristics and numeric bounds (§9).
    println!("\n=== inferred XSD (crx, numeric bounds) ===");
    print!(
        "{}",
        generate_xsd(
            &dtd,
            Some(&corpus),
            XsdOptions {
                numeric_threshold: Some(8),
            }
        )
    );
}
