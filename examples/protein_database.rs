//! The paper's §1.1 motivating example: schema cleaning on the Protein
//! Sequence Database.
//!
//! The published DTD declares
//!
//! ```text
//! refinfo: authors, citation, volume?, month?, year, pages?,
//!          (title | description)?, xrefs?
//! ```
//!
//! but an analysis of the corpus shows that `volume` and `month` never
//! occur together — one either cites a journal volume or a conference
//! month. Inference from the data recovers the stricter
//! `(volume | month)` content model. This example regenerates that
//! discovery on a synthetic corpus with the same characteristics.
//!
//! ```sh
//! cargo run --example protein_database
//! ```

use dtdinfer::core::{crx, idtd_from_words};
use dtdinfer::regex::alphabet::{Alphabet, Word};
use dtdinfer::regex::display::render;
use dtdinfer::xml::dtd::Dtd;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds one refinfo child sequence the way the real corpus behaves:
/// exactly one of volume/month, optional trailing fields.
fn refinfo_sequence(al: &mut Alphabet, rng: &mut StdRng) -> Word {
    let mut w = vec![al.intern("authors"), al.intern("citation")];
    if rng.gen_bool(0.6) {
        w.push(al.intern("volume"));
    } else {
        w.push(al.intern("month"));
    }
    w.push(al.intern("year"));
    if rng.gen_bool(0.7) {
        w.push(al.intern("pages"));
    }
    match rng.gen_range(0..3) {
        0 => w.push(al.intern("title")),
        1 => w.push(al.intern("description")),
        _ => {}
    }
    if rng.gen_bool(0.5) {
        w.push(al.intern("xrefs"));
    }
    w
}

fn main() {
    let mut al = Alphabet::new();
    let mut rng = StdRng::seed_from_u64(2006);
    let sample: Vec<Word> = (0..500)
        .map(|_| refinfo_sequence(&mut al, &mut rng))
        .collect();

    // The DTD as published (the paper's §1.1 "too general" definition).
    let published = {
        let mut parse_al = al.clone();
        let r = dtdinfer::regex::parser::parse(
            "authors citation volume? month? year pages? (title | description)? xrefs?",
            &mut parse_al,
        )
        .unwrap();
        al = parse_al;
        r
    };

    println!("published DTD : {}", render(&published, &al));

    let inferred_crx = crx(&sample).into_regex().unwrap();
    let inferred_idtd = idtd_from_words(&sample).into_regex().unwrap();
    println!("crx inference : {}", render(&inferred_crx, &al));
    println!("idtd inference: {}", render(&inferred_idtd, &al));

    // The inferred model is *stricter*: it proves volume and month are
    // mutually exclusive.
    let both = {
        let mut w = vec![al.get("authors").unwrap(), al.get("citation").unwrap()];
        w.push(al.get("volume").unwrap());
        w.push(al.get("month").unwrap());
        w.push(al.get("year").unwrap());
        w
    };
    let published_accepts = dtdinfer::automata::nfa::regex_matches(&published, &both);
    let inferred_accepts = dtdinfer::automata::nfa::regex_matches(&inferred_idtd, &both);
    println!(
        "\n\"volume month\" together: published DTD accepts = {published_accepts}, \
         inferred DTD accepts = {inferred_accepts}"
    );
    assert!(published_accepts && !inferred_accepts);

    // Emit a complete cleaned DTD document.
    let mut dtd = Dtd::new();
    dtd.alphabet = al.clone();
    let refinfo = dtd.alphabet.intern("refinfo");
    dtd.root = Some(refinfo);
    dtd.elements.insert(
        refinfo,
        dtdinfer::xml::dtd::ContentSpec::Children(inferred_idtd),
    );
    for leaf in [
        "authors",
        "citation",
        "volume",
        "month",
        "year",
        "pages",
        "title",
        "description",
    ] {
        let sym = dtd.alphabet.intern(leaf);
        dtd.elements
            .insert(sym, dtdinfer::xml::dtd::ContentSpec::PcData);
    }
    let xrefs = dtd.alphabet.intern("xrefs");
    dtd.elements
        .insert(xrefs, dtdinfer::xml::dtd::ContentSpec::Empty);
    println!("\ncleaned DTD:\n{}", dtd.serialize());
}
