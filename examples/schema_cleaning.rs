//! Schema cleaning end to end (§1.1): generate a corpus that is stricter
//! than its published schema, infer from the data, and diff the two DTDs
//! to surface the discovered constraints.
//!
//! The twist over `protein_database`: everything here goes through the
//! public document-level APIs — `generate` to build the corpus from a
//! ground-truth DTD, `infer` to learn a schema back, and `diff` to compare
//! it against the loose published one.
//!
//! ```sh
//! cargo run --example schema_cleaning
//! ```

use dtdinfer::xml::diff::{diff, Relation};
use dtdinfer::xml::dtd::Dtd;
use dtdinfer::xml::extract::Corpus;
use dtdinfer::xml::generate::{sample_documents, GenerateConfig};
use dtdinfer::xml::infer::{infer_dtd, InferenceEngine};

/// The schema the data *actually* follows (hidden ground truth): a
/// conference entry cites either a volume or a month, never both, and
/// always has at least one author.
const GROUND_TRUTH: &str = r#"
<!ELEMENT bibliography (entry+)>
<!ELEMENT entry (author+, title, (volume | month), year, note?)>
<!ATTLIST entry key ID #REQUIRED kind (article | inproceedings) #REQUIRED>
<!ELEMENT author (#PCDATA)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT volume (#PCDATA)>
<!ELEMENT month (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT note (#PCDATA)>
"#;

/// The schema that was *published* (loose, industry-standard style: "many
/// business structures formally specified as being optional" — Hinkelman,
/// quoted in §1.1).
const PUBLISHED: &str = r#"
<!ELEMENT bibliography (entry*)>
<!ELEMENT entry (author*, title, volume?, month?, year, note?)>
<!ATTLIST entry key CDATA #IMPLIED kind CDATA #IMPLIED>
<!ELEMENT author (#PCDATA)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT volume (#PCDATA)>
<!ELEMENT month (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT note (#PCDATA)>
"#;

fn main() {
    let ground_truth = Dtd::parse(GROUND_TRUTH).expect("ground truth parses");
    let published = Dtd::parse(PUBLISHED).expect("published schema parses");

    // 1. The corpus: 150 documents drawn from the ground truth.
    let docs = sample_documents(&ground_truth, &GenerateConfig::default(), 2006, 150)
        .expect("ground truth is acyclic");
    println!(
        "generated {} documents from the (hidden) ground truth",
        docs.len()
    );

    // 2. They are all valid against the published schema too — the
    //    looseness is invisible to validation alone.
    let all_valid = docs
        .iter()
        .all(|d| published.validate(d).expect("parses").is_empty());
    println!("all valid against the published schema: {all_valid}");
    assert!(all_valid);

    // 3. Infer a schema from the data.
    let mut corpus = Corpus::new();
    for d in &docs {
        corpus
            .add_document(d)
            .expect("generated documents are well-formed");
    }
    let inferred = infer_dtd(&corpus, InferenceEngine::Idtd);
    println!("\ninferred schema:\n{}", inferred.serialize());

    // 4. Diff against the published schema: the inference surfaces every
    //    constraint the published schema failed to state.
    println!("per-element comparison (inferred vs published):");
    let mut stricter = 0;
    for d in diff(&published, &inferred) {
        println!("  {:<14} {}", d.name, d.relation);
        if d.relation == Relation::Stricter {
            stricter += 1;
        }
    }
    assert!(stricter >= 2, "entry and bibliography tightened");

    // 5. And the inferred schema is equal to the hidden ground truth.
    let against_truth = diff(&ground_truth, &inferred);
    let all_equal = against_truth.iter().all(|d| d.relation == Relation::Equal);
    println!("\ninferred schema equals the hidden ground truth: {all_equal}");
    assert!(all_equal);
}
