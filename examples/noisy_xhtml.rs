//! Noise handling on XHTML-like data (§1.1, §9).
//!
//! The paper found 89% of 2092 web XHTML documents invalid against the
//! official specification, and that `<P>` elements — a 41-symbol repeated
//! disjunction — contained about a dozen disallowed intruder elements in
//! roughly 10 strings each out of >30000. This example regenerates that
//! situation synthetically and shows how support thresholds recover the
//! clean content model.
//!
//! ```sh
//! cargo run --release --example noisy_xhtml
//! ```

use dtdinfer::core::noise::SupportSoa;
use dtdinfer::gen::noise_gen::{noisy_paragraphs, NoiseParams};
use dtdinfer::regex::display::render;

fn main() {
    let corpus = noisy_paragraphs(
        NoiseParams {
            clean_symbols: 41,
            num_intruders: 12,
            num_words: 30000,
            intruder_words_each: 10,
            mean_len: 6,
        },
        2006,
    );
    println!(
        "{} paragraph occurrences over {} legal child elements, {} intruders\n",
        corpus.words.len(),
        corpus.clean.len(),
        corpus.intruders.len()
    );

    let support = SupportSoa::learn(&corpus.words);
    for &z in corpus.intruders.iter().take(3) {
        println!(
            "intruder {:>3}: support {} of {} words",
            corpus.alphabet.name(z),
            support.symbol_support(z),
            support.num_words()
        );
    }

    // Without a threshold the intruders pollute the schema.
    let naive = support.infer_noise_aware(0).into_regex().unwrap();
    let naive_syms = naive.symbols().len();
    println!(
        "\nwithout noise handling: inferred over {naive_syms} symbols \
         (intruders included)"
    );

    // With the §9 support threshold, the clean model is recovered exactly.
    let denoised = support.infer_denoised(50).into_regex().unwrap();
    println!(
        "with support threshold 50: {}",
        abbreviated(&render(&denoised, &corpus.alphabet))
    );
    assert!(dtdinfer::automata::dfa::regex_equiv(
        &denoised,
        &corpus.target
    ));
    println!("\nrecovered expression is language-equal to the clean (a1|…|a41)* ✓");
}

/// Shortens a long disjunction rendering for display.
fn abbreviated(s: &str) -> String {
    if s.len() <= 80 {
        return s.to_owned();
    }
    format!("{} … {}", &s[..48], &s[s.len() - 16..])
}
