//! Incremental schema maintenance for trickling data (§1.2, §9).
//!
//! When XML arrives as answers to queries or web-service calls, only a few
//! strings are available at first and the schema must be updated as more
//! arrive — without re-reading old data. This example simulates a stream
//! of `result` elements, maintains CRX and iDTD incrementally, and prints
//! the schema evolution.
//!
//! ```sh
//! cargo run --example web_service_stream
//! ```

use dtdinfer::core::incremental::{IncrementalChare, IncrementalSore};
use dtdinfer::regex::alphabet::{Alphabet, Word};
use dtdinfer::regex::sample::{sample_word, SampleConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut al = Alphabet::new();
    // Ground truth the service follows (hidden from the learner):
    // status (warning | info)* payload+ (next | done)
    let truth =
        dtdinfer::regex::parser::parse("status (warning | info)* payload+ (next | done)", &mut al)
            .unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let cfg = SampleConfig::default();

    let mut chare = IncrementalChare::new();
    let mut sore = IncrementalSore::new();

    println!("streaming responses; schema after each batch:\n");
    let mut last_crx = String::new();
    for batch in 1..=12 {
        // Each web-service call yields a handful of responses.
        let words: Vec<Word> = (0..4)
            .map(|_| sample_word(&truth, &cfg, &mut rng))
            .collect();
        for w in &words {
            chare.absorb(w);
            sore.absorb(w);
        }
        let crx_now = chare.infer().render(&al);
        let sore_now = sore.infer().render(&al);
        if crx_now != last_crx {
            println!("after {:>2} responses:", batch * 4);
            println!("  crx : {crx_now}");
            println!("  idtd: {sore_now}");
            last_crx = crx_now;
        }
    }

    // Every absorbed response is covered by both final schemas.
    let crx_final = chare.infer();
    let sore_final = sore.infer();
    let mut rng2 = StdRng::seed_from_u64(7);
    for _ in 0..48 {
        let w = sample_word(&truth, &cfg, &mut rng2);
        assert!(crx_final.matches(&w));
        assert!(sore_final.matches(&w));
    }
    println!("\nall 48 streamed responses satisfy both final schemas ✓");

    // The internal state is small: the SOA is quadratic in the number of
    // element names, regardless of how many strings streamed by (§9).
    println!(
        "internal SOA: {} states, {} edges (independent of stream length)",
        sore.soa().num_states(),
        sore.soa().num_edges()
    );
}
