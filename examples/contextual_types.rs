//! Context-aware inference (§10's future work): learning XSD-strength
//! types, where the same element name has different content models under
//! different parents — the classic dealer/car scenario that no DTD can
//! express.
//!
//! ```sh
//! cargo run --example contextual_types
//! ```

use dtdinfer::xml::contextual::{contextual_xsd, infer_contextual, ContextualCorpus};
use dtdinfer::xml::extract::Corpus;
use dtdinfer::xml::infer::{infer_dtd, InferenceEngine};

const DOCUMENTS: &[&str] = &[
    "<dealer>\
       <new><car><model>m1</model><price>1</price></car>\
            <car><model>m2</model><price>2</price></car></new>\
       <used><car><model>m3</model><mileage>90000</mileage><price>3</price></car></used>\
     </dealer>",
    "<dealer>\
       <new><car><model>m4</model><price>4</price></car></new>\
       <used><car><model>m5</model><mileage>120000</mileage><price>5</price></car>\
             <car><model>m6</model><mileage>30000</mileage><price>6</price></car></used>\
     </dealer>",
];

fn main() {
    // DTD inference must conflate the two kinds of car: one element name,
    // one content model.
    let mut flat = Corpus::new();
    for d in DOCUMENTS {
        flat.add_document(d).unwrap();
    }
    let dtd = infer_dtd(&flat, InferenceEngine::Idtd);
    println!("=== DTD inference (context-blind) ===");
    print!("{}", dtd.serialize());
    let car = dtd.alphabet.get("car").unwrap();
    if let dtdinfer::xml::dtd::ContentSpec::Children(model) = &dtd.elements[&car] {
        println!(
            "\nthe single car model must cover both kinds: {}",
            dtdinfer::regex::display::render(model, &dtd.alphabet)
        );
    }

    // Contextual inference keeps them apart.
    let mut corpus = ContextualCorpus::new();
    for d in DOCUMENTS {
        corpus.add_document(d).unwrap();
    }
    let schema = infer_contextual(&corpus, InferenceEngine::Idtd);
    println!("\n=== contextual inference (XSD-strength) ===");
    print!("{}", schema.render());
    assert!(schema.requires_xsd());
    println!("\ncorpus requires XSD typing: {}", schema.requires_xsd());

    println!("\n=== emitted XSD (one complexType per context) ===");
    print!("{}", contextual_xsd(&schema));
}
