//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments without a crates.io mirror, so the
//! subset of the rand 0.8 API the workspace actually uses is reimplemented
//! here: [`rngs::StdRng`] (a splitmix64/xoshiro256++ generator),
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen_range` / `gen_bool`. Distribution quality is more than sufficient
//! for test-data generation and sampling; it is NOT a cryptographic RNG.

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Derives a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly (`gen_range` argument).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128) - (self.start as i128);
                let v = (rng.next_u64() as i128) % span;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128) - (lo as i128) + 1;
                let v = (rng.next_u64() as i128) % span;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing convenience methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// splitmix64 (the reference seeding procedure).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=5u64);
            assert!(w <= 5);
        }
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "badly biased: {heads}");
    }

    #[test]
    fn works_through_mut_ref() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u32 {
            rng.gen_range(0..10)
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!(draw(&mut rng) < 10);
    }
}
