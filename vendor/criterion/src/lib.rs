//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the criterion 0.5 API the workspace's benches
//! use. Measurement is deliberately simple — a warmup pass followed by a
//! fixed wall-clock budget of timed iterations, reporting mean time per
//! iteration — but the bench sources compile and run unchanged, so they
//! keep working when the real criterion is available again.

use std::time::{Duration, Instant};

const WARMUP_ITERS: u64 = 3;
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            name: name.to_owned(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports (accepted and
    /// ignored by this stand-in).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Sets the sample count (accepted and ignored by this stand-in).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.0), &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier (`function/parameter`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", function.into()))
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Units for throughput reporting.
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the benchmark closure; runs the measured routine.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` over a fixed wall-clock budget.
    pub fn iter<T, R: FnMut() -> T>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < MEASURE_BUDGET {
            std::hint::black_box(routine());
            iters += 1;
        }
        self.iters_done = iters;
        self.elapsed = start.elapsed();
    }
}

fn run_one(id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = if b.iters_done > 0 {
        b.elapsed / u32::try_from(b.iters_done).unwrap_or(u32::MAX)
    } else {
        Duration::ZERO
    };
    println!(
        "bench {id}: {:.3} µs/iter ({} iters)",
        mean.as_secs_f64() * 1e6,
        b.iters_done
    );
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut hits = 0u64;
        c.bench_function("probe", |b| b.iter(|| hits += 1));
        assert!(hits > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10)).sample_size(5);
        group.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &n| b.iter(|| n * 2));
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
