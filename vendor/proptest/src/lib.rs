//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use — [`Strategy`] with `prop_map`/`prop_recursive`, [`Just`],
//! ranges and tuples as strategies, `prop::collection::vec`, simple
//! regex-pattern string strategies, and the [`proptest!`] /
//! [`prop_oneof!`] / [`prop_assert!`] macros — backed by a seeded
//! deterministic RNG. No shrinking: a failing case panics with the
//! generated inputs in the assertion message, and runs are reproducible
//! because seeds derive from the case index alone.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::rc::Rc;

/// Deterministic RNG handed to strategies by the [`proptest!`] runner.
pub struct TestRng(StdRng);

impl TestRng {
    /// Generator for the `case`-th test case (stable across runs).
    pub fn for_case(case: u64) -> Self {
        TestRng(StdRng::seed_from_u64(
            0x70726f70_u64 ^ case.wrapping_mul(0x9e3779b97f4a7c15),
        ))
    }

    fn gen_index(&mut self, n: usize) -> usize {
        self.0.gen_range(0..n)
    }

    fn gen_usize(&mut self, lo: usize, hi_incl: usize) -> usize {
        self.0.gen_range(lo..=hi_incl)
    }

    fn gen_bool(&mut self) -> bool {
        self.0.gen_bool(0.5)
    }
}

/// A generator of values of one type.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U + Clone,
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Recursive strategies: `recurse` builds one level on top of the
    /// previous one; `depth` bounds the nesting. The size/branch hints of
    /// the real API are accepted and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut strat = self.clone().boxed();
        for _ in 0..depth {
            let base = self.clone().boxed();
            let level = recurse(strat).boxed();
            strat = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                if rng.gen_bool() {
                    base.new_value(rng)
                } else {
                    level.new_value(rng)
                }
            }));
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let s = self;
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| s.new_value(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Uniform choice between boxed alternatives ([`prop_oneof!`] backend).
pub struct OneOf<T>(pub Rc<Vec<BoxedStrategy<T>>>);

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf(Rc::clone(&self.0))
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_index(self.0.len());
        self.0[i].new_value(rng)
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategies {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// String strategies from a small regex-pattern subset: `.{lo,hi}` (any
/// printable char, no newline) and `\PC{lo,hi}` (printable non-control),
/// the two shapes the workspace's robustness tests use. Unrecognized
/// patterns generate themselves literally.
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = match self.find('{').and_then(|open| {
            let close = self.rfind('}')?;
            let body = &self[open + 1..close];
            let (a, b) = body.split_once(',')?;
            Some((a.parse().ok()?, b.parse().ok()?))
        }) {
            Some(bounds) => bounds,
            None => return (*self).to_owned(),
        };
        // Char pool: ASCII printable (includes markup metacharacters the
        // XML/regex fuzz tests care about) plus a few multibyte scalars.
        const EXTRA: &[char] = &['é', 'Ω', '中', '🦀', '«', '»', 'ß'];
        let len = rng.gen_usize(lo, hi);
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            if rng.gen_index(8) == 0 {
                out.push(EXTRA[rng.gen_index(EXTRA.len())]);
            } else {
                out.push(char::from(rng.gen_index(95) as u8 + 0x20));
            }
        }
        out
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Sub-strategy namespace mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Inclusive size bounds for generated collections.
        #[derive(Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<core::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: core::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        /// Generates `Vec`s of values drawn from `element`.
        #[derive(Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let len = rng.gen_usize(self.size.lo, self.size.hi);
                (0..len).map(|_| self.element.new_value(rng)).collect()
            }
        }

        /// `prop::collection::vec`: a vector strategy.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// Defines `#[test]` functions over generated inputs.
///
/// Supports the `#![proptest_config(expr)]` header and any number of
/// `fn name(pat in strategy, ...) { body }` items (attributes and doc
/// comments on the items are preserved).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@items ($cfg) $($rest)*);
    };
    (@items ($cfg:expr)) => {};
    (@items ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut prop_rng = $crate::TestRng::for_case(case as u64);
                $(let $pat = $crate::Strategy::new_value(&($strat), &mut prop_rng);)+
                $body
            }
        }
        $crate::proptest!(@items ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@items ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf(std::rc::Rc::new(vec![
            $($crate::Strategy::boxed($strat)),+
        ]))
    };
}

/// Asserts a condition inside a property (panics with the message).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Tree {
        Leaf(u32),
        Node(Vec<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 0usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn tuples_and_maps((a, b) in (0u32..5, 5u32..10).prop_map(|(x, y)| (x, y))) {
            prop_assert!(a < 5 && (5..10).contains(&b));
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(0u32..3, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 3));
        }

        #[test]
        fn oneof_covers(x in prop_oneof![Just(1u32), Just(2u32)]) {
            prop_assert!(x == 1 || x == 2);
        }

        #[test]
        fn recursion_bounded(t in Just(Tree::Leaf(0)).boxed().prop_recursive(
            3, 16, 2,
            |inner| prop::collection::vec(inner, 1..3).prop_map(Tree::Node),
        )) {
            prop_assert!(depth(&t) <= 3);
        }

        #[test]
        fn string_patterns(s in ".{0,40}", t in "\\PC{2,8}") {
            prop_assert!(s.chars().count() <= 40);
            let n = t.chars().count();
            prop_assert!((2..=8).contains(&n), "{t:?}");
            prop_assert!(!t.chars().any(char::is_control));
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let s = prop::collection::vec(0u32..1000, 5..10);
        let a: Vec<_> = (0..20)
            .map(|c| s.new_value(&mut crate::TestRng::for_case(c)))
            .collect();
        let b: Vec<_> = (0..20)
            .map(|c| s.new_value(&mut crate::TestRng::for_case(c)))
            .collect();
        assert_eq!(a, b);
    }
}
