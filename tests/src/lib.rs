//! Test utilities for the cross-crate integration suite.
//!
//! Random generators for the expression classes under study: arbitrary
//! REs (with symbol repetition), SOREs (every symbol at most once), and
//! CHAREs (chains of disjunction factors). Driven by seeds so failures
//! reproduce exactly.

use dtdinfer_regex::alphabet::{Alphabet, Sym};
use dtdinfer_regex::ast::Regex;
use dtdinfer_regex::classify::{ChareFactor, ChareModifier};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fresh alphabet with `n` symbols `a1..an`.
pub fn alphabet(n: usize) -> (Alphabet, Vec<Sym>) {
    dtdinfer_regex::alphabet::numbered_alphabet(n)
}

/// Random SORE over exactly the given (distinct) symbols.
pub fn random_sore(rng: &mut StdRng, syms: &[Sym]) -> Regex {
    let base = build_sore(rng, syms);
    maybe_wrap(rng, base)
}

fn build_sore(rng: &mut StdRng, syms: &[Sym]) -> Regex {
    assert!(!syms.is_empty());
    if syms.len() == 1 {
        return Regex::sym(syms[0]);
    }
    // Split the symbols into 2..=4 non-empty contiguous groups.
    let num_groups = rng.gen_range(2..=syms.len().min(4));
    let groups = split(rng, syms, num_groups);
    let mut parts: Vec<Regex> = Vec::with_capacity(groups.len());
    for g in groups {
        let sub = build_sore(rng, g);
        parts.push(maybe_wrap(rng, sub));
    }
    if rng.gen_bool(0.5) {
        Regex::concat(parts)
    } else {
        Regex::union(parts)
    }
}

/// Random CHARE factors over the given symbols (used in order).
pub fn random_chare(rng: &mut StdRng, syms: &[Sym]) -> Vec<ChareFactor> {
    let mut factors = Vec::new();
    let mut rest = syms;
    while !rest.is_empty() {
        let take = rng.gen_range(1..=rest.len().min(4));
        let (head, tail) = rest.split_at(take);
        rest = tail;
        let modifier = match rng.gen_range(0..4) {
            0 => ChareModifier::One,
            1 => ChareModifier::Opt,
            2 => ChareModifier::Plus,
            _ => ChareModifier::Star,
        };
        factors.push(ChareFactor {
            syms: head.to_vec(),
            modifier,
        });
    }
    factors
}

/// Random regular expression that may repeat symbols (for exercising the
/// general-RE machinery: NFAs, DFAs, xtract, state elimination).
pub fn random_regex(rng: &mut StdRng, syms: &[Sym], depth: usize) -> Regex {
    if depth == 0 || rng.gen_bool(0.3) {
        return Regex::sym(syms[rng.gen_range(0..syms.len())]);
    }
    let arity = rng.gen_range(2..=3usize);
    let parts: Vec<Regex> = (0..arity)
        .map(|_| random_regex(rng, syms, depth - 1))
        .collect();
    let base = if rng.gen_bool(0.5) {
        Regex::concat(parts)
    } else {
        Regex::union(parts)
    };
    maybe_wrap(rng, base)
}

fn maybe_wrap(rng: &mut StdRng, r: Regex) -> Regex {
    match rng.gen_range(0..6) {
        0 => Regex::optional(r),
        1 => Regex::plus(r),
        2 => Regex::star(r),
        _ => r,
    }
}

fn split<'a>(rng: &mut StdRng, syms: &'a [Sym], groups: usize) -> Vec<&'a [Sym]> {
    assert!(groups >= 1 && groups <= syms.len());
    // Choose groups-1 distinct cut points.
    let mut cuts: Vec<usize> = Vec::new();
    while cuts.len() < groups - 1 {
        let c = rng.gen_range(1..syms.len());
        if !cuts.contains(&c) {
            cuts.push(c);
        }
    }
    cuts.sort_unstable();
    cuts.push(syms.len());
    let mut out = Vec::with_capacity(groups);
    let mut start = 0;
    for c in cuts {
        out.push(&syms[start..c]);
        start = c;
    }
    out
}

/// Deterministic RNG for a test case.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtdinfer_regex::classify::{chare_to_regex, is_chare, is_sore};

    #[test]
    fn random_sore_is_sore() {
        for seed in 0..200 {
            let (_, syms) = alphabet(1 + (seed as usize % 9));
            let r = random_sore(&mut rng(seed), &syms);
            assert!(is_sore(&r), "seed {seed}: {r:?}");
            assert_eq!(r.symbols().len(), syms.len(), "uses every symbol");
        }
    }

    #[test]
    fn random_chare_is_chare() {
        for seed in 0..200 {
            let (_, syms) = alphabet(1 + (seed as usize % 9));
            let factors = random_chare(&mut rng(seed), &syms);
            let r = chare_to_regex(&factors);
            assert!(is_chare(&r), "seed {seed}: {r:?}");
        }
    }

    #[test]
    fn random_regex_wellformed() {
        for seed in 0..100 {
            let (_, syms) = alphabet(3);
            let r = random_regex(&mut rng(seed), &syms, 3);
            assert!(r.symbol_count() >= 1);
        }
    }
}
