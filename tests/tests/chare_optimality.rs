//! Exhaustive Theorem 4/5 verification: enumerate *every* CHARE over small
//! alphabets, feed each its characteristic (covering) sample, and check
//! that CRX (a) recovers the target syntactically up to commutativity and
//! (b) is *optimal* — no other enumerable CHARE fits strictly between the
//! sample and CRX's output.
//!
//! The optimality claim is the strong half of Theorem 5 ("for every CHARE
//! r such that W ⊆ L(r) and L(r) ⊆ L(rW), we have rW = r"), checked here
//! against the complete candidate space rather than by construction.

use dtdinfer_automata::dfa::{dfa_subset, Dfa};
use dtdinfer_automata::nfa::Nfa;
use dtdinfer_core::crx::crx;
use dtdinfer_regex::alphabet::{numbered_alphabet, Sym, Word};
use dtdinfer_regex::ast::Regex;
use dtdinfer_regex::classify::{chare_to_regex, ChareFactor, ChareModifier};
use dtdinfer_regex::normalize::equiv_commutative;
use dtdinfer_regex::sample::covering_words;

const MODIFIERS: [ChareModifier; 4] = [
    ChareModifier::One,
    ChareModifier::Opt,
    ChareModifier::Plus,
    ChareModifier::Star,
];

/// All CHAREs using exactly the symbols of `syms` (every ordered set
/// partition into factors × every modifier assignment).
fn enumerate_chares(syms: &[Sym]) -> Vec<Regex> {
    let mut out = Vec::new();
    for partition in ordered_set_partitions(syms) {
        let k = partition.len();
        let mut mods = vec![0usize; k];
        loop {
            let factors: Vec<ChareFactor> = partition
                .iter()
                .zip(&mods)
                .map(|(group, &m)| ChareFactor {
                    syms: group.clone(),
                    modifier: MODIFIERS[m],
                })
                .collect();
            out.push(chare_to_regex(&factors));
            // Increment the modifier odometer.
            let mut i = 0;
            loop {
                if i == k {
                    break;
                }
                mods[i] += 1;
                if mods[i] < MODIFIERS.len() {
                    break;
                }
                mods[i] = 0;
                i += 1;
            }
            if i == k {
                break;
            }
        }
    }
    out
}

/// All ways to split `syms` into a sequence of disjoint non-empty groups
/// covering all of them (factor *order* matters, order within a group does
/// not — we keep groups sorted).
fn ordered_set_partitions(syms: &[Sym]) -> Vec<Vec<Vec<Sym>>> {
    fn go(rest: &[Sym], acc: &mut Vec<Vec<Sym>>, out: &mut Vec<Vec<Vec<Sym>>>) {
        if rest.is_empty() {
            out.push(acc.clone());
            return;
        }
        // Choose the subset of `rest` forming the next factor: iterate
        // non-empty bitmasks.
        let n = rest.len();
        for mask in 1u32..(1 << n) {
            let mut group = Vec::new();
            let mut remainder = Vec::new();
            for (i, &s) in rest.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    group.push(s);
                } else {
                    remainder.push(s);
                }
            }
            acc.push(group);
            go(&remainder, acc, out);
            acc.pop();
        }
    }
    let mut out = Vec::new();
    go(syms, &mut Vec::new(), &mut out);
    out
}

fn check_alphabet(n: usize) {
    let (_, syms) = numbered_alphabet(n);
    let candidates = enumerate_chares(&syms);
    // Precompute NFAs (membership) and DFAs (inclusion) once.
    let nfas: Vec<Nfa> = candidates.iter().map(Nfa::from_regex).collect();
    let dfas: Vec<Dfa> = candidates
        .iter()
        .map(|r| Dfa::from_regex(r, &syms))
        .collect();

    for (ti, target) in candidates.iter().enumerate() {
        let sample: Vec<Word> = covering_words(target);
        let got = crx(&sample).into_regex().expect("non-degenerate");

        // Theorem 4: syntactic recovery from the characteristic sample.
        assert!(
            equiv_commutative(&got, target),
            "n={n}: target {target:?} / got {got:?} from {sample:?}"
        );

        // Theorem 5 (optimality): no candidate r' with
        // sample ⊆ L(r') ⊊ L(got) (= L(target)).
        for (ci, cand) in candidates.iter().enumerate() {
            if ci == ti {
                continue;
            }
            let covers = sample.iter().all(|w| nfas[ci].accepts(w));
            if !covers {
                continue;
            }
            let inside = dfa_subset(&dfas[ci], &dfas[ti]);
            if inside {
                // Then it must be the same language (no strict betweenness).
                assert!(
                    dfa_subset(&dfas[ti], &dfas[ci]),
                    "n={n}: {cand:?} fits strictly between sample and {target:?}"
                );
            }
        }
    }
}

#[test]
fn theorem5_exhaustive_one_symbol() {
    check_alphabet(1); // 4 CHAREs: a, a?, a+, a*
}

#[test]
fn theorem5_exhaustive_two_symbols() {
    check_alphabet(2); // 36 CHAREs
}

#[test]
fn theorem5_exhaustive_three_symbols() {
    check_alphabet(3); // 484 CHAREs
}

#[test]
fn enumeration_counts() {
    let (_, s1) = numbered_alphabet(1);
    let (_, s2) = numbered_alphabet(2);
    let (_, s3) = numbered_alphabet(3);
    assert_eq!(enumerate_chares(&s1).len(), 4);
    // Partitions of {a,b}: [ab], [a][b], [b][a] → 4 + 16 + 16.
    assert_eq!(enumerate_chares(&s2).len(), 36);
    // 1 partition with 1 block, 6 with 2, 6 with 3 → 4 + 6·16 + 6·64.
    assert_eq!(enumerate_chares(&s3).len(), 484);
}
