//! Robustness fuzzing of the XML substrate: the parser must never panic on
//! arbitrary input (§9's premise is that real-world XML is broken), and
//! well-formed generation/parsing must round trip.

use dtdinfer_xml::dtd::Dtd;
use dtdinfer_xml::extract::Corpus;
use dtdinfer_xml::parser::{decode_entities, encode_entities, XmlPullParser};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The parser returns Ok or Err on arbitrary junk — never panics.
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = XmlPullParser::new(&input).collect_events();
    }

    /// XML-shaped junk (lots of angle brackets) — never panics.
    #[test]
    fn parser_never_panics_markupish(parts in prop::collection::vec(
        prop_oneof![
            Just("<".to_owned()),
            Just(">".to_owned()),
            Just("</".to_owned()),
            Just("/>".to_owned()),
            Just("<!--".to_owned()),
            Just("-->".to_owned()),
            Just("<![CDATA[".to_owned()),
            Just("]]>".to_owned()),
            Just("<?".to_owned()),
            Just("?>".to_owned()),
            Just("<!DOCTYPE".to_owned()),
            Just("a".to_owned()),
            Just("=\"v\"".to_owned()),
            Just("&amp;".to_owned()),
            Just("&#x41;".to_owned()),
            Just(" ".to_owned()),
        ],
        0..30,
    )) {
        let input: String = parts.concat();
        let _ = XmlPullParser::new(&input).collect_events();
    }

    /// The DTD parser never panics on junk either.
    #[test]
    fn dtd_parser_never_panics(input in ".{0,200}") {
        let _ = Dtd::parse(&input);
    }

    /// Entity escape/unescape round trip on arbitrary text.
    #[test]
    fn entity_round_trip(text in "\\PC{0,64}") {
        prop_assert_eq!(decode_entities(&encode_entities(&text)), text);
    }

    /// Escaped text embedded in a document parses back to the original.
    #[test]
    fn text_embedding_round_trip(text in "\\PC{0,48}") {
        let doc = format!("<r>{}</r>", encode_entities(&text));
        let events = XmlPullParser::new(&doc).collect_events().expect("well-formed");
        let mut recovered = String::new();
        for e in events {
            if let dtdinfer_xml::parser::XmlEvent::Text(t) = e {
                recovered.push_str(&t);
            }
        }
        prop_assert_eq!(recovered, text);
    }

    /// Attribute values round trip through a document.
    #[test]
    fn attribute_embedding_round_trip(value in "\\PC{0,32}") {
        let doc = format!("<r a=\"{}\"/>", encode_entities(&value));
        let events = XmlPullParser::new(&doc).collect_events().expect("well-formed");
        match &events[0] {
            dtdinfer_xml::parser::XmlEvent::StartElement { attributes, .. } => {
                prop_assert_eq!(&attributes[0].1, &value);
            }
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    /// Corpus extraction never panics; on parse success the statistics are
    /// internally consistent.
    #[test]
    fn corpus_extraction_consistent(input in ".{0,300}") {
        let mut corpus = Corpus::new();
        if corpus.add_document(&input).is_ok() {
            let total: u64 = corpus.elements.values().map(|f| f.occurrences).sum();
            let sequences: usize = corpus.total_sequences();
            prop_assert_eq!(total as usize, sequences);
        }
    }
}
