//! Exhaustive Theorem 1 verification: enumerate every normalized SORE over
//! 1–3 symbols, build its Glushkov SOA, rewrite it back, and check language
//! equality through the DFA layer. Complements the random battery in
//! `theorems.rs` with complete coverage of the small structure space.

use dtdinfer_automata::dfa::soa_equiv_regex;
use dtdinfer_automata::glushkov::soa_of_sore;
use dtdinfer_core::rewrite::rewrite_soa;
use dtdinfer_regex::alphabet::{numbered_alphabet, Sym};
use dtdinfer_regex::ast::Regex;
use dtdinfer_regex::classify::is_sore;
use dtdinfer_regex::normalize::normalize;
use std::collections::HashSet;

/// All SOREs over exactly `syms` (up to the smart-constructor collapses):
/// either a single decorated symbol, or a decorated concat/union of SOREs
/// over an ordered partition of the symbols.
fn enumerate_sores(syms: &[Sym]) -> Vec<Regex> {
    fn decorations(r: Regex) -> Vec<Regex> {
        vec![
            r.clone(),
            Regex::optional(r.clone()),
            Regex::plus(r.clone()),
            Regex::star(r),
        ]
    }
    fn go(syms: &[Sym]) -> Vec<Regex> {
        if syms.len() == 1 {
            return decorations(Regex::sym(syms[0]));
        }
        let mut out = Vec::new();
        // Split into an ordered sequence of ≥2 non-empty groups; build all
        // combinations of sub-SOREs per group, combined by concat or union.
        for partition in ordered_partitions(syms) {
            if partition.len() < 2 {
                continue;
            }
            let group_choices: Vec<Vec<Regex>> = partition.iter().map(|g| go(g)).collect();
            let mut idx = vec![0usize; group_choices.len()];
            loop {
                let parts: Vec<Regex> = group_choices
                    .iter()
                    .zip(&idx)
                    .map(|(choices, &i)| choices[i].clone())
                    .collect();
                for combined in [Regex::concat(parts.clone()), Regex::union(parts)] {
                    out.extend(decorations(combined));
                }
                let mut i = 0;
                loop {
                    if i == idx.len() {
                        break;
                    }
                    idx[i] += 1;
                    if idx[i] < group_choices[i].len() {
                        break;
                    }
                    idx[i] = 0;
                    i += 1;
                }
                if i == idx.len() {
                    break;
                }
            }
        }
        out
    }
    go(syms)
}

fn ordered_partitions(syms: &[Sym]) -> Vec<Vec<Vec<Sym>>> {
    fn rec(rest: &[Sym], acc: &mut Vec<Vec<Sym>>, out: &mut Vec<Vec<Vec<Sym>>>) {
        if rest.is_empty() {
            out.push(acc.clone());
            return;
        }
        let n = rest.len();
        for mask in 1u32..(1 << n) {
            let mut group = Vec::new();
            let mut remainder = Vec::new();
            for (i, &s) in rest.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    group.push(s);
                } else {
                    remainder.push(s);
                }
            }
            acc.push(group);
            rec(&remainder, acc, out);
            acc.pop();
        }
    }
    let mut out = Vec::new();
    rec(syms, &mut Vec::new(), &mut out);
    out
}

fn check(n: usize) -> usize {
    let (_, syms) = numbered_alphabet(n);
    // Deduplicate modulo normalization (the enumeration produces e.g. both
    // (a?)+ and a* which normalize identically).
    let mut seen = HashSet::new();
    let mut checked = 0usize;
    for r in enumerate_sores(&syms) {
        let norm = normalize(&r);
        if !seen.insert(norm) {
            continue;
        }
        assert!(is_sore(&r), "{r:?}");
        let soa = soa_of_sore(&r).expect("SORE");
        let back = rewrite_soa(&soa);
        // Degenerate case: a SORE whose SOA accepts nothing but ε has no
        // regex... cannot happen (paper REs always accept a non-empty
        // word), so rewrite must succeed.
        let back = back.unwrap_or_else(|| panic!("rewrite failed on {r:?}"));
        assert!(is_sore(&back), "{r:?} → non-SORE {back:?}");
        assert!(
            soa_equiv_regex(&soa, &back),
            "language mismatch: {r:?} → {back:?}"
        );
        checked += 1;
    }
    checked
}

#[test]
fn theorem1_exhaustive_one_symbol() {
    assert_eq!(check(1), 4); // a, a?, a+, a* (normalized (a+)?)
}

#[test]
fn theorem1_exhaustive_two_symbols() {
    let n = check(2);
    assert!(n > 50, "only {n} distinct normalized SOREs over 2 symbols");
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; run with --release"
)]
fn theorem1_exhaustive_three_symbols() {
    let n = check(3);
    assert!(
        n > 1000,
        "only {n} distinct normalized SOREs over 3 symbols"
    );
}
