//! Property-based tests on the automata substrate: the verification layer
//! itself gets verified by cross-checking independent implementations
//! against each other (NFA simulation vs subset-construction DFA vs
//! minimized DFA vs state-elimination round trips).

use dtdinfer_automata::dfa::{dfa_equiv, joint_alphabet, regex_equiv, soa_equiv_regex, Dfa};
use dtdinfer_automata::ktestable::KTestable;
use dtdinfer_automata::minimize::isomorphic;
use dtdinfer_automata::nfa::Nfa;
use dtdinfer_automata::soa::Soa;
use dtdinfer_automata::state_elim::eliminate;
use dtdinfer_regex::alphabet::{Sym, Word};
use dtdinfer_regex::ast::Regex;
use dtdinfer_regex::sample::{sample_words, SampleConfig};
use proptest::prelude::*;

fn arb_regex(n_syms: u32) -> impl Strategy<Value = Regex> {
    let leaf = (0..n_syms).prop_map(|i| Regex::sym(Sym(i)));
    leaf.prop_recursive(4, 20, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Regex::concat),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Regex::union),
            inner.clone().prop_map(Regex::optional),
            inner.clone().prop_map(Regex::plus),
            inner.prop_map(Regex::star),
        ]
    })
}

fn arb_word(n_syms: u32) -> impl Strategy<Value = Word> {
    prop::collection::vec((0..n_syms).prop_map(Sym), 0..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// NFA simulation and subset-construction DFA agree on membership.
    #[test]
    fn nfa_dfa_membership_agreement(r in arb_regex(3), w in arb_word(3)) {
        let nfa = Nfa::from_regex(&r);
        let alpha: Vec<Sym> = (0..3).map(Sym).collect();
        let dfa = Dfa::from_regex(&r, &alpha);
        prop_assert_eq!(nfa.accepts(&w), dfa.accepts(&w));
    }

    /// Minimization preserves the language, never grows, and is canonical:
    /// minimal DFAs of equal languages are isomorphic.
    #[test]
    fn minimization_canonical(r in arb_regex(3)) {
        let alpha: Vec<Sym> = (0..3).map(Sym).collect();
        let d = Dfa::from_regex(&r, &alpha);
        let m = d.minimize();
        prop_assert!(dfa_equiv(&d, &m));
        prop_assert!(m.len() <= d.len());
        // Canonicity across representations: a DFA built from the
        // normalized expression minimizes to an isomorphic machine.
        let d2 = Dfa::from_regex(&dtdinfer_regex::normalize::normalize(&r), &alpha);
        prop_assert!(isomorphic(&m, &d2.minimize()));
    }

    /// State elimination preserves the language of a learned SOA.
    #[test]
    fn state_elimination_sound(words in prop::collection::vec(arb_word(3), 1..8)) {
        let soa = Soa::learn(&words);
        match eliminate(&soa).into_regex() {
            Some(r) => prop_assert!(soa_equiv_regex(&soa, &r)),
            None => {
                // ∅ or {ε}: every training word must then be empty.
                prop_assert!(words.iter().all(Vec::is_empty));
            }
        }
    }

    /// 2T-INF over-approximates its sample, and equals KTestable at k = 2.
    #[test]
    fn twoinf_covers_and_matches_k2(
        words in prop::collection::vec(arb_word(3), 1..10),
        probe in arb_word(3),
    ) {
        let soa = Soa::learn(&words);
        for w in &words {
            prop_assert!(soa.accepts(w));
        }
        let k2 = KTestable::learn(2, &words);
        prop_assert_eq!(soa.accepts(&probe), k2.accepts(&probe));
    }

    /// KTestable's compiled DFA agrees with direct membership.
    #[test]
    fn ktestable_dfa_agrees(
        words in prop::collection::vec(arb_word(3), 1..8),
        probe in arb_word(3),
        k in 1usize..5,
    ) {
        let kt = KTestable::learn(k, &words);
        let alpha: Vec<Sym> = (0..3).map(Sym).collect();
        let dfa = kt.to_dfa(&alpha);
        prop_assert_eq!(dfa.accepts(&probe), kt.accepts(&probe));
    }

    /// The k-hierarchy: for equal samples, larger k accepts a subset.
    #[test]
    fn ktestable_hierarchy(
        words in prop::collection::vec(arb_word(3), 1..8),
        probe in arb_word(3),
        k in 1usize..4,
    ) {
        let coarse = KTestable::learn(k, &words);
        let fine = KTestable::learn(k + 1, &words);
        if fine.accepts(&probe) {
            prop_assert!(coarse.accepts(&probe), "k-hierarchy violated");
        }
    }

    /// GFA closure invariants on random learned SOAs: direct edges are in
    /// the closure, and pred/succ are duals.
    #[test]
    fn gfa_closure_invariants(words in prop::collection::vec(arb_word(4), 1..8)) {
        use dtdinfer_automata::gfa::Gfa;
        let soa = Soa::learn(&words);
        let (g, _) = Gfa::from_soa(&soa);
        let closure = g.closure();
        for (from, to) in g.edges() {
            prop_assert!(closure.succ(from).contains(&to), "direct ⊆ closure");
            prop_assert!(closure.pred(to).contains(&from));
        }
        // Duality over all node pairs.
        let nodes: Vec<_> = g
            .inner_nodes()
            .chain([dtdinfer_automata::gfa::SOURCE, dtdinfer_automata::gfa::SINK])
            .collect();
        for &u in &nodes {
            for &v in &nodes {
                prop_assert_eq!(
                    closure.succ(u).contains(&v),
                    closure.pred(v).contains(&u),
                    "pred/succ duality"
                );
            }
        }
    }

    /// The equivalence test is reflexive and symmetric on random pairs.
    #[test]
    fn regex_equiv_laws(a in arb_regex(3), b in arb_regex(3)) {
        prop_assert!(regex_equiv(&a, &a));
        prop_assert_eq!(regex_equiv(&a, &b), regex_equiv(&b, &a));
    }

    /// `Soa::merge` round trip: splitting a sample arbitrarily, learning
    /// each part separately, and merging the automata is the identity on
    /// the inferred language (merge ∘ split == learn of the whole sample).
    #[test]
    fn soa_merge_split_round_trip(
        words in prop::collection::vec(arb_word(4), 0..12),
        cut in 0usize..12,
        probe in prop::collection::vec(arb_word(4), 0..8),
    ) {
        let cut = cut.min(words.len());
        let whole = Soa::learn(&words);
        let mut merged = Soa::learn(&words[..cut]);
        merged.merge(&Soa::learn(&words[cut..]));
        // Structural identity (an SOA uniquely determines its 2-testable
        // language, so this is language identity too)…
        prop_assert_eq!(&merged, &whole);
        // …and observable identity on sample + random probe words.
        for w in words.iter().chain(&probe) {
            prop_assert_eq!(merged.accepts(w), whole.accepts(w));
        }
    }

    /// Merging shard automata is order-insensitive: any permutation of the
    /// shards yields the same automaton.
    #[test]
    fn soa_merge_commutes(
        a in prop::collection::vec(arb_word(3), 0..8),
        b in prop::collection::vec(arb_word(3), 0..8),
        c in prop::collection::vec(arb_word(3), 0..8),
    ) {
        let (sa, sb, sc) = (Soa::learn(&a), Soa::learn(&b), Soa::learn(&c));
        let mut abc = sa.clone();
        abc.merge(&sb);
        abc.merge(&sc);
        let mut cba = sc;
        cba.merge(&sb);
        cba.merge(&sa);
        prop_assert_eq!(abc, cba);
    }

    /// Sampled words of an expression are accepted by its DFA.
    #[test]
    fn dfa_accepts_samples(r in arb_regex(3), seed in 0u64..500) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let alpha = joint_alphabet(&[&r.symbols()]);
        let dfa = Dfa::from_regex(&r, &alpha);
        for w in sample_words(&r, &SampleConfig::default(), &mut rng, 5) {
            prop_assert!(dfa.accepts(&w));
        }
    }
}
