//! Property-based tests for the k-ORE engine: shard algebra, snapshot
//! versioning, and the k-testable specificity ladder it generalizes.
//!
//! The load-bearing fact behind all three groups is that a [`KoreState`]
//! is a pure function of the element's word *multiset* (marking commutes
//! with 2T-INF), so merge order, shard boundaries, and snapshot round
//! trips must all be invisible in the learned state and in the derived
//! model.

use dtdinfer_automata::ktestable::KTestable;
use dtdinfer_core::kore::KoreState;
use dtdinfer_engine::pool::ingest;
use dtdinfer_engine::snapshot;
use dtdinfer_regex::alphabet::{Sym, Word};
use dtdinfer_regex::multiset::WordBag;
use dtdinfer_xml::infer::InferenceEngine;
use proptest::prelude::*;

/// Strategy: a multiset of words over `n_syms` symbols, with repetition
/// within words (the territory where k-ORE differs from SORE).
fn arb_words(n_syms: u32) -> impl Strategy<Value = Vec<Word>> {
    prop::collection::vec(
        prop::collection::vec((0..n_syms).prop_map(Sym), 0..6),
        1..10,
    )
}

/// Renders child words as documents: `[a, b, a]` → `<r><a/><b/><a/></r>`.
fn docs_of(words: &[Word]) -> Vec<String> {
    words
        .iter()
        .map(|w| {
            let mut doc = String::from("<r>");
            for s in w {
                doc.push_str(&format!("<c{}/>", s.0));
            }
            doc.push_str("</r>");
            doc
        })
        .collect()
}

/// Downgrades a v4 snapshot to the v3 wire format: drop the persisted
/// kore rows and swap the header (mirrors what a v3 writer produced).
fn downgrade_to_v3(text: &str) -> String {
    let mut out = String::new();
    for line in text.lines() {
        if line == snapshot::HEADER {
            out.push_str(snapshot::V3_HEADER);
        } else if line.starts_with("k ") {
            continue;
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Splitting the word multiset into shards, learning each shard
    /// separately, and merging is identical to learning the whole — for
    /// every split point, and in either merge order.
    #[test]
    fn kore_merge_of_split_equals_whole(words in arb_words(3), cut in 0usize..10) {
        let cut = cut.min(words.len());
        let whole_bag: WordBag = words.iter().cloned().collect();
        let whole = KoreState::learn_counted(&whole_bag);

        let left_bag: WordBag = words[..cut].iter().cloned().collect();
        let right_bag: WordBag = words[cut..].iter().cloned().collect();
        let left = KoreState::learn_counted(&left_bag);
        let right = KoreState::learn_counted(&right_bag);

        let mut lr = left.clone();
        lr.merge(&right);
        prop_assert_eq!(&lr, &whole, "left ∪ right must equal the whole");

        let mut rl = right.clone();
        rl.merge(&left);
        prop_assert_eq!(&rl, &whole, "merge must be commutative");
    }

    /// Incremental absorption equals batch learning: the state is a pure
    /// function of the multiset, not of arrival order.
    #[test]
    fn kore_absorb_order_is_invisible(words in arb_words(3)) {
        let bag: WordBag = words.iter().cloned().collect();
        let batch = KoreState::learn_counted(&bag);
        let mut forward = KoreState::new();
        for w in &words {
            forward.absorb(w);
        }
        prop_assert_eq!(&forward, &batch);
        let mut backward = KoreState::new();
        for w in words.iter().rev() {
            backward.absorb(w);
        }
        prop_assert_eq!(&backward, &batch);
    }

    /// Snapshot v4 round trip: save → load → save is the identity, and
    /// the loaded state derives the same kore/auto DTDs — for any shard
    /// count used during ingestion.
    #[test]
    fn snapshot_v4_round_trips(words in arb_words(2), jobs in 1usize..4) {
        let docs = docs_of(&words);
        let state = ingest(&docs, jobs).expect("ingest").state;
        let text = snapshot::save(&state);
        let loaded = snapshot::load(&text).expect("fresh save loads");
        prop_assert_eq!(snapshot::save(&loaded), text.clone(), "save∘load is the identity");
        for engine in [InferenceEngine::Kore, InferenceEngine::Auto] {
            prop_assert_eq!(
                loaded.derive(engine).0.serialize(),
                state.derive(engine).0.serialize(),
                "derive after round trip, {:?}", engine
            );
        }
    }

    /// v3 read-compat: a snapshot with its kore rows stripped loads, the
    /// kore state is rebuilt *exactly* from the word rows, and re-saving
    /// produces the byte-identical v4 text the rows were stripped from.
    #[test]
    fn snapshot_v3_rebuilds_kore_exactly(words in arb_words(2)) {
        let docs = docs_of(&words);
        let state = ingest(&docs, 2).expect("ingest").state;
        let v4 = snapshot::save(&state);
        let v3 = downgrade_to_v3(&v4);
        let loaded = snapshot::load(&v3).expect("v3 snapshot loads");
        prop_assert_eq!(snapshot::save(&loaded), v4, "rebuild from word rows is exact");
        prop_assert_eq!(
            loaded.derive(InferenceEngine::Kore).0.serialize(),
            state.derive(InferenceEngine::Kore).0.serialize()
        );
    }

    /// KTestable::learn is antitone in k on acceptance: for every probe,
    /// acceptance at window k+1 implies acceptance at window k (larger
    /// windows only specialize). Sample words stay accepted at every k.
    #[test]
    fn ktestable_learn_is_monotone_in_k(sample in arb_words(2), probes in arb_words(2)) {
        let learned: Vec<KTestable> =
            (1..=4).map(|k| KTestable::learn(k, &sample)).collect();
        for kt in &learned {
            for w in &sample {
                prop_assert!(kt.accepts(w), "k={}: sample word {:?} rejected", kt.k, w);
            }
        }
        for p in sample.iter().chain(&probes) {
            for pair in learned.windows(2) {
                prop_assert!(
                    !pair[1].accepts(p) || pair[0].accepts(p),
                    "probe {:?}: accepted at k={} but rejected at k={}",
                    p, pair[1].k, pair[0].k
                );
            }
        }
    }
}
