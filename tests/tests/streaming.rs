//! Properties of the streaming ingestion pipeline: generated documents
//! round trip through parse → extract, the borrowed event stream is
//! indistinguishable from its owned shim, sharded ingestion of generated
//! corpora is deterministic, reservoirs stay bounded on corpora far past
//! their cap, and strict entity errors carry exact positions.

use dtdinfer_engine::pool::ingest;
use dtdinfer_engine::snapshot;
use dtdinfer_xml::extract::Corpus;
use dtdinfer_xml::infer::{infer_dtd, InferenceEngine};
use dtdinfer_xml::parser::{encode_entities, OwnedXmlEvent, XmlEvent, XmlPullParser};
use dtdinfer_xml::samples::DEFAULT_SAMPLE_CAP;
use proptest::prelude::*;

/// A small random element tree, the generator side of the round trip.
#[derive(Debug, Clone)]
struct Tree {
    name: String,
    attrs: Vec<(String, String)>,
    text: Option<String>,
    children: Vec<Tree>,
}

impl Tree {
    fn serialize(&self, out: &mut String) {
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attrs {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&encode_entities(v));
            out.push('"');
        }
        if self.text.is_none() && self.children.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');
        if let Some(t) = &self.text {
            out.push_str(&encode_entities(t));
        }
        for c in &self.children {
            c.serialize(out);
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }

    /// Expected (element name → child-name sequences) facts, in document
    /// walk order.
    fn expected_words(&self, into: &mut Vec<(String, Vec<String>)>) {
        into.push((
            self.name.clone(),
            self.children.iter().map(|c| c.name.clone()).collect(),
        ));
        for c in &self.children {
            c.expected_words(into);
        }
    }
}

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let name = prop_oneof![
        Just("a".to_owned()),
        Just("b".to_owned()),
        Just("c".to_owned()),
        Just("item".to_owned()),
        Just("x-y".to_owned()),
    ];
    let attr = (
        prop_oneof![Just("id".to_owned()), Just("kind".to_owned())],
        "[ -~]{0,8}",
    );
    let leaf = (
        name.clone(),
        prop::collection::vec(attr.clone(), 0..2),
        prop_oneof![Just(None), "[ -~]{1,12}".prop_map(Some),],
    )
        .prop_map(|(name, mut attrs, text)| {
            attrs.dedup_by(|a, b| a.0 == b.0);
            Tree {
                name,
                attrs,
                // Whitespace-only text is not observable (the extractor
                // trims it), so pin it to something visible.
                text: text.filter(|t| !t.trim().is_empty()),
                children: Vec::new(),
            }
        });
    leaf.prop_recursive(3, 24, 4, move |inner| {
        (
            prop_oneof![Just("r".to_owned()), Just("node".to_owned())],
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, children)| Tree {
                name,
                attrs: Vec::new(),
                text: None,
                children,
            })
    })
}

/// Renders a corpus's child words back to strings for comparison.
fn corpus_words(c: &Corpus) -> Vec<(String, Vec<Vec<String>>)> {
    c.elements
        .iter()
        .map(|(&sym, facts)| {
            (
                c.alphabet.name(sym).to_owned(),
                facts
                    .child_sequences
                    .iter()
                    .flat_map(|(w, n)| {
                        // Expand the counted multiset back to occurrences
                        // for comparison against the generated tree.
                        let word: Vec<String> =
                            w.iter().map(|&s| c.alphabet.name(s).to_owned()).collect();
                        std::iter::repeat_n(word, n as usize)
                    })
                    .collect(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Generate → serialize → parse → extract recovers exactly the child
    /// words, occurrence counts, and text/attribute totals of the tree.
    #[test]
    fn generated_trees_round_trip_through_extraction(tree in tree_strategy()) {
        let mut doc = String::new();
        tree.serialize(&mut doc);
        let mut corpus = Corpus::new();
        corpus.add_document(&doc).expect("generated document parses");

        let mut expected: Vec<(String, Vec<String>)> = Vec::new();
        tree.expected_words(&mut expected);
        for (name, mut words) in corpus_words(&corpus) {
            // The extractor records words in end-tag order, the tree
            // enumerates in start-tag order — compare as multisets.
            let mut want: Vec<Vec<String>> = expected
                .iter()
                .filter(|(n, _)| *n == name)
                .map(|(_, w)| w.clone())
                .collect();
            words.sort();
            want.sort();
            prop_assert_eq!(words, want, "children of {}", &name);
        }
        let texts: u64 = tree_texts(&tree);
        let observed: u64 = corpus.elements.values().map(|f| f.text_samples.total()).sum();
        prop_assert_eq!(observed, texts);
        let attrs: u64 = tree_attrs(&tree);
        let observed: u64 = corpus
            .elements
            .values()
            .flat_map(|f| f.attributes.values())
            .map(|b| b.total())
            .sum();
        prop_assert_eq!(observed, attrs);
    }

    /// Every borrowed event deep-copies to an owned event describing the
    /// same thing — the zero-copy stream loses nothing.
    #[test]
    fn borrowed_events_match_owned_shim(tree in tree_strategy()) {
        let mut doc = String::new();
        tree.serialize(&mut doc);
        let mut parser = XmlPullParser::new(&doc);
        while let Some(ev) = parser.next().expect("generated document parses") {
            match (&ev, ev.to_owned_event()) {
                (
                    XmlEvent::StartElement { name, attributes, self_closing },
                    OwnedXmlEvent::StartElement { name: on, attributes: oa, self_closing: os },
                ) => {
                    prop_assert_eq!(*name, on.as_str());
                    prop_assert_eq!(*self_closing, os);
                    prop_assert_eq!(attributes.len(), oa.len());
                    for ((k, v), (ok, ov)) in attributes.iter().zip(&oa) {
                        prop_assert_eq!(*k, ok.as_str());
                        prop_assert_eq!(v.as_ref(), ov.as_str());
                    }
                }
                (XmlEvent::EndElement { name }, OwnedXmlEvent::EndElement { name: on }) => {
                    prop_assert_eq!(*name, on.as_str());
                }
                (XmlEvent::Text(t), OwnedXmlEvent::Text(ot)) => {
                    prop_assert_eq!(t.as_ref(), ot.as_str());
                }
                (b, o) => prop_assert!(false, "event shape changed: {b:?} vs {o:?}"),
            }
        }
    }

    /// Sharded ingestion of a generated corpus is byte-identical to
    /// sequential — DTD and snapshot both.
    #[test]
    fn sharded_ingestion_of_generated_corpora_is_deterministic(
        trees in prop::collection::vec(tree_strategy(), 1..8),
        jobs in 2usize..5,
    ) {
        let docs: Vec<String> = trees
            .iter()
            .map(|t| {
                let mut d = String::new();
                t.serialize(&mut d);
                d
            })
            .collect();
        let sequential = ingest(&docs, 1).expect("generated corpus parses");
        let sharded = ingest(&docs, jobs).expect("generated corpus parses");
        prop_assert_eq!(
            sequential.state.derive(InferenceEngine::Idtd).0.serialize(),
            sharded.state.derive(InferenceEngine::Idtd).0.serialize()
        );
        prop_assert_eq!(
            snapshot::save(&sequential.state),
            snapshot::save(&sharded.state)
        );
    }
}

fn tree_texts(t: &Tree) -> u64 {
    u64::from(t.text.is_some()) + t.children.iter().map(tree_texts).sum::<u64>()
}

fn tree_attrs(t: &Tree) -> u64 {
    t.attrs.len() as u64 + t.children.iter().map(tree_attrs).sum::<u64>()
}

/// Strict entity errors carry the exact line and column of the `&`.
#[test]
fn strict_entity_errors_pinpoint_line_and_column() {
    let cases = [
        (
            "<a>\n  bad &#xZZ; ref</a>",
            2,
            7,
            "invalid character reference",
        ),
        (
            "<a>broken &amp reference</a>",
            1,
            11,
            "unterminated entity reference",
        ),
        ("<a v=\"&#xD800;\"/>", 1, 7, "invalid character reference"),
        ("<a>\n\n<b t=\"&bogus;\"/></a>", 3, 7, "unknown entity"),
    ];
    for (doc, line, column, needle) in cases {
        let mut parser = XmlPullParser::new_strict(doc);
        let err = loop {
            match parser.next() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("strict parse of {doc:?} unexpectedly succeeded"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.line, line, "{doc:?}: {err}");
        assert_eq!(err.column, column, "{doc:?}: {err}");
        assert!(err.message.contains(needle), "{doc:?}: {err}");
        // The lenient default accepts the same document as literal text.
        Corpus::new()
            .add_document(doc)
            .expect("lenient mode passes malformed references through");
    }
}

/// A corpus with 10× more distinct text and attribute values than the
/// reservoir cap keeps memory at the cap while totals, datatypes, and the
/// inferred DTD stay exact.
#[test]
fn reservoirs_stay_bounded_ten_times_past_cap() {
    let n = DEFAULT_SAMPLE_CAP * 10;
    let docs: Vec<String> = (0..n)
        .map(|i| format!("<log id=\"e{i}\"><msg>event number {i}</msg></log>"))
        .collect();
    let mut corpus = Corpus::new();
    for d in &docs {
        corpus.add_document(d).unwrap();
    }
    let log = corpus.alphabet.get("log").unwrap();
    let msg = corpus.alphabet.get("msg").unwrap();
    let ids = &corpus.elements[&log].attributes["id"];
    let msgs = &corpus.elements[&msg].text_samples;
    for bag in [ids, msgs] {
        assert_eq!(bag.distinct_retained(), DEFAULT_SAMPLE_CAP);
        assert!(bag.overflowed());
        assert_eq!(bag.total(), n as u64);
    }
    // Inference over the bounded corpus matches inference over a corpus
    // small enough to never overflow: capping changes memory, not the DTD.
    let small: Vec<String> = docs[..4].to_vec();
    let mut small_corpus = Corpus::new();
    for d in &small {
        small_corpus.add_document(d).unwrap();
    }
    assert_eq!(
        infer_dtd(&corpus, InferenceEngine::Idtd).serialize(),
        infer_dtd(&small_corpus, InferenceEngine::Idtd).serialize()
    );
}
