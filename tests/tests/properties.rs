//! Property-based tests (proptest) on the core data structures and
//! invariants: parser/printer round-trips, normalization laws, the
//! simplify pass, coverage generation, and the numeric-predicate matcher.

use dtdinfer_automata::dfa::regex_equiv;
use dtdinfer_automata::nfa::regex_matches;
use dtdinfer_regex::alphabet::{Alphabet, Sym, Word};
use dtdinfer_regex::ast::Regex;
use dtdinfer_regex::classify::as_chare;
use dtdinfer_regex::display::{render, render_dtd};
use dtdinfer_regex::normalize::{canonicalize, equiv_commutative, normalize, simplify, star_form};
use dtdinfer_regex::numeric::tighten;
use dtdinfer_regex::parser::parse;
use dtdinfer_regex::props::two_gram_profile;
use dtdinfer_regex::sample::{covering_words, sample_words, SampleConfig};
use proptest::prelude::*;

/// Strategy: an arbitrary regex AST over `n` symbols (repetition allowed).
fn arb_regex(n_syms: u32) -> impl Strategy<Value = Regex> {
    let leaf = (0..n_syms).prop_map(|i| Regex::sym(Sym(i)));
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Regex::concat),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Regex::union),
            inner.clone().prop_map(Regex::optional),
            inner.clone().prop_map(Regex::plus),
            inner.prop_map(Regex::star),
        ]
    })
}

/// The alphabet backing `arb_regex` symbols.
fn test_alphabet(n: u32) -> Alphabet {
    Alphabet::from_names((0..n).map(|i| format!("a{i}")))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// render → parse is the identity on the AST (after smart-constructor
    /// collapse, which rendering preserves).
    #[test]
    fn parser_printer_roundtrip(r in arb_regex(5)) {
        let al = test_alphabet(5);
        let printed = render(&r, &al);
        let mut al2 = al.clone();
        let reparsed = parse(&printed, &mut al2).expect("rendered REs parse");
        prop_assert_eq!(render(&reparsed, &al2), printed);
    }

    /// The DTD rendering also reparses, to an equivalent expression.
    #[test]
    fn dtd_rendering_reparses(r in arb_regex(4)) {
        let al = test_alphabet(4);
        let printed = render_dtd(&r, &al);
        let mut al2 = al.clone();
        let reparsed = parse(&printed, &mut al2).expect("DTD content models parse");
        prop_assert!(regex_equiv(&r, &reparsed));
    }

    /// Normalization is idempotent and language-preserving, and eliminates
    /// the Kleene star.
    #[test]
    fn normalize_laws(r in arb_regex(4)) {
        let n1 = normalize(&r);
        let n2 = normalize(&n1);
        prop_assert_eq!(&n1, &n2, "idempotence");
        prop_assert!(regex_equiv(&r, &n1), "language preserved");
        fn has_star(r: &Regex) -> bool {
            match r {
                Regex::Star(_) => true,
                Regex::Symbol(_) => false,
                Regex::Concat(v) | Regex::Union(v) => v.iter().any(has_star),
                Regex::Optional(p) | Regex::Plus(p) => has_star(p),
            }
        }
        prop_assert!(!has_star(&n1), "normal form is star-free");
    }

    /// star_form undoes normalization up to language equality.
    #[test]
    fn star_form_language_preserving(r in arb_regex(4)) {
        let back = star_form(&normalize(&r));
        prop_assert!(regex_equiv(&r, &back));
    }

    /// simplify is language-preserving.
    #[test]
    fn simplify_language_preserving(r in arb_regex(4)) {
        let s = simplify(&r);
        prop_assert!(regex_equiv(&r, &s));
        prop_assert!(s.token_count() <= r.token_count() + 1, "no blow-up");
    }

    /// canonicalize is stable and respects language-level union symmetry.
    #[test]
    fn canonicalize_stable(r in arb_regex(4)) {
        let c1 = canonicalize(&r);
        let c2 = canonicalize(&c1);
        prop_assert_eq!(&c1, &c2);
        prop_assert!(equiv_commutative(&r, &c1));
    }

    /// Sampled words are members of the language.
    #[test]
    fn sampler_soundness(r in arb_regex(4), seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for w in sample_words(&r, &SampleConfig::default(), &mut rng, 8) {
            prop_assert!(regex_matches(&r, &w), "{w:?} ∉ L({r:?})");
        }
    }

    /// Covering words are members and exhibit the full 2-gram profile.
    #[test]
    fn covering_words_representative(r in arb_regex(4)) {
        let prof = two_gram_profile(&r);
        let words = covering_words(&r);
        let mut nullable = false;
        let mut first = std::collections::BTreeSet::new();
        let mut last = std::collections::BTreeSet::new();
        let mut pairs = std::collections::BTreeSet::new();
        for w in &words {
            prop_assert!(regex_matches(&r, w), "covering word {w:?} ∉ L");
            match w.split_first() {
                None => nullable = true,
                Some((&f, _)) => {
                    first.insert(f);
                    last.insert(*w.last().unwrap());
                    for p in w.windows(2) {
                        pairs.insert((p[0], p[1]));
                    }
                }
            }
        }
        prop_assert_eq!(nullable, prof.nullable);
        prop_assert_eq!(first, prof.first.iter().copied().collect());
        prop_assert_eq!(last, prof.last.iter().copied().collect());
        prop_assert_eq!(pairs, prof.pairs.iter().copied().collect());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The regex parser never panics on arbitrary input.
    #[test]
    fn regex_parser_never_panics(input in ".{0,80}") {
        let mut al = Alphabet::new();
        let _ = parse(&input, &mut al);
    }

    /// Regex-shaped junk never panics either.
    #[test]
    fn regex_parser_never_panics_shaped(parts in prop::collection::vec(
        prop_oneof![
            Just("("), Just(")"), Just("|"), Just("?"), Just("+"),
            Just("*"), Just(","), Just(" "), Just("a"), Just("b1"),
        ],
        0..24,
    )) {
        let input: String = parts.concat();
        let mut al = Alphabet::new();
        let _ = parse(&input, &mut al);
    }
}

/// Strategy: a CHARE over ≤6 symbols together with a sample drawn from it.
fn arb_chare_with_sample() -> impl Strategy<Value = (Regex, Vec<Word>, u64)> {
    (1u32..6, 0u64..500).prop_map(|(n, seed)| {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let syms: Vec<Sym> = (0..n).map(Sym).collect();
        let factors = dtdinfer_integration::random_chare(&mut rng, &syms);
        let r = dtdinfer_regex::classify::chare_to_regex(&factors);
        let words = sample_words(&r, &SampleConfig::default(), &mut rng, 12);
        (r, words, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Numeric tightening: the tightened chain matches exactly the sample
    /// words it was tightened on, and never a word violating the bounds.
    #[test]
    fn numeric_tighten_sound((r, words, _seed) in arb_chare_with_sample()) {
        let factors = as_chare(&r).expect("built as a CHARE");
        let numeric = tighten(&factors, &words, u32::MAX - 1);
        for w in &words {
            prop_assert!(numeric.matches(w), "tightened chain lost {w:?}");
        }
    }

    /// CRX output covers arbitrary samples of arbitrary CHAREs (Theorem 3
    /// again, through the proptest shrinker for minimal counterexamples).
    #[test]
    fn crx_covers((_r, words, _seed) in arb_chare_with_sample()) {
        let model = dtdinfer_core::crx::crx(&words);
        for w in &words {
            prop_assert!(model.matches(w));
        }
    }

    /// iDTD output covers arbitrary samples (Theorem 2 via 2T-INF).
    #[test]
    fn idtd_covers((_r, words, _seed) in arb_chare_with_sample()) {
        let model = dtdinfer_core::idtd::idtd_from_words(&words);
        for w in &words {
            prop_assert!(model.matches(w));
        }
    }
}
