//! Cross-checks between the paper's algorithms and the baseline systems
//! (§8.1): xtract soundness and its conciseness deficit, trang's
//! coincidence with crx on CHARE-shaped data.

use dtdinfer_automata::dfa::regex_equiv;
use dtdinfer_automata::nfa::regex_matches;
use dtdinfer_baselines::trang::trang;
use dtdinfer_baselines::xtract::{xtract, XtractConfig};
use dtdinfer_core::crx::crx;
use dtdinfer_integration::{alphabet, random_chare, random_regex, rng};
use dtdinfer_regex::alphabet::Word;
use dtdinfer_regex::classify::chare_to_regex;
use dtdinfer_regex::sample::{covering_words, sample_words, SampleConfig};

/// xtract output always covers its (non-empty-word) training sample.
#[test]
fn xtract_covers_sample() {
    for seed in 0..60 {
        let n = 2 + (seed as usize % 4);
        let (_, syms) = alphabet(n);
        let mut r = rng(seed * 19 + 2);
        let shape = random_regex(&mut r, &syms, 2);
        let words: Vec<Word> = sample_words(&shape, &SampleConfig::default(), &mut r, 10)
            .into_iter()
            .filter(|w| !w.is_empty())
            .collect();
        if words.is_empty() {
            continue;
        }
        let out =
            xtract(&words, &XtractConfig::default()).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        for w in &words {
            assert!(regex_matches(&out, w), "seed {seed}: xtract lost {w:?}");
        }
    }
}

/// trang output covers its training sample.
#[test]
fn trang_covers_sample() {
    for seed in 0..60 {
        let n = 2 + (seed as usize % 4);
        let (_, syms) = alphabet(n);
        let mut r = rng(seed * 23 + 9);
        let shape = random_regex(&mut r, &syms, 2);
        let words = sample_words(&shape, &SampleConfig::default(), &mut r, 10);
        let model = trang(&words);
        for w in &words {
            assert!(model.matches(w), "seed {seed}: trang lost {w:?}");
        }
    }
}

/// §8.1: "In all but one case, Trang produced exactly the same output as
/// crx." On covering samples of random CHAREs the two coincide as
/// languages.
#[test]
fn trang_coincides_with_crx_on_chares() {
    let mut agree = 0usize;
    let mut total = 0usize;
    for seed in 0..120 {
        let n = 1 + (seed as usize % 6);
        let (_, syms) = alphabet(n);
        let factors = random_chare(&mut rng(seed * 3 + 1), &syms);
        let target = chare_to_regex(&factors);
        let words = covering_words(&target);
        let t = trang(&words).into_regex();
        let c = crx(&words).into_regex();
        total += 1;
        if let (Some(t), Some(c)) = (t, c) {
            if regex_equiv(&t, &c) {
                agree += 1;
            }
        }
    }
    // The paper saw exact agreement on all but one of its cases; allow a
    // small structural disagreement margin on random CHAREs.
    assert!(
        agree * 10 >= total * 9,
        "trang agreed with crx on only {agree}/{total} CHARE samples"
    );
}

/// The conciseness argument of §8: on the same data, xtract's output has
/// (usually many) more tokens than crx's, and the gap grows with the
/// sample.
#[test]
fn xtract_less_concise_than_crx() {
    let (_, syms) = alphabet(5);
    let mut r = rng(77);
    let shape = {
        use dtdinfer_regex::ast::Regex;
        // (a1|…|a5)+-ish diverse data.
        Regex::plus(Regex::union(syms.iter().copied().map(Regex::sym).collect()))
    };
    let mut last_tokens = 0usize;
    let mut grew = 0usize;
    for n in [20usize, 60, 180] {
        let words: Vec<Word> = sample_words(&shape, &SampleConfig::default(), &mut r, n);
        let x = xtract(&words, &XtractConfig::default()).expect("within limits");
        let c = crx(&words).into_regex().expect("non-degenerate");
        assert!(
            x.token_count() >= c.token_count(),
            "n={n}: xtract {} < crx {}",
            x.token_count(),
            c.token_count()
        );
        if x.token_count() > last_tokens {
            grew += 1;
        }
        last_tokens = x.token_count();
        // crx's output stays linear in the alphabet regardless of n.
        assert!(c.token_count() <= 2 * syms.len() + 2);
    }
    assert!(grew >= 2, "xtract output should grow with the sample");
}

/// xtract's resource wall (§8.1): more than 1000 distinct strings fail.
#[test]
fn xtract_resource_wall() {
    let (_, syms) = alphabet(6);
    let mut r = rng(3);
    let shape = {
        use dtdinfer_regex::ast::Regex;
        Regex::plus(Regex::union(syms.iter().copied().map(Regex::sym).collect()))
    };
    let mut words: Vec<Word> = Vec::new();
    while {
        let mut d = words.clone();
        d.sort();
        d.dedup();
        d.len() <= 1000
    } {
        words.extend(sample_words(&shape, &SampleConfig::default(), &mut r, 500));
    }
    assert!(matches!(
        xtract(&words, &XtractConfig::default()),
        Err(dtdinfer_baselines::xtract::XtractError::TooManyStrings { .. })
    ));
}
