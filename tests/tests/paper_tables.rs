//! Cross-crate reproduction tests for Table 1 and Table 2 of the paper.
//!
//! For every scenario: generate a representative sample of the published
//! size from the data expression, run crx and iDTD, and compare against the
//! outputs the paper reports (syntactically up to commutativity of union,
//! falling back to language equivalence where the paper's own rendering is
//! order-dependent).

use dtdinfer_automata::dfa::{regex_equiv, regex_subset};
use dtdinfer_baselines::trang::trang;
use dtdinfer_core::crx::crx;
use dtdinfer_core::idtd::idtd_from_words;
use dtdinfer_gen::generator::generate_sample;
use dtdinfer_gen::scenarios::{table1, table2};
use dtdinfer_regex::classify::{is_chare, is_sore};
use dtdinfer_regex::display::render;
use dtdinfer_regex::normalize::equiv_commutative;

#[test]
fn table1_crx_matches_paper() {
    for s in table1() {
        let b = s.build();
        let sample = generate_sample(&b.data, s.sample_size, 0xd7d1 ^ s.sample_size as u64);
        let got = crx(&sample).into_regex().expect("crx result");
        assert!(is_chare(&got), "{}: crx must return a CHARE", s.name);
        assert!(
            equiv_commutative(&got, &b.expected_crx) || regex_equiv(&got, &b.expected_crx),
            "{}: crx got {} expected {}",
            s.name,
            render(&got, &b.alphabet),
            render(&b.expected_crx, &b.alphabet)
        );
    }
}

#[test]
fn table1_idtd_matches_paper() {
    for s in table1() {
        let b = s.build();
        let sample = generate_sample(&b.data, s.sample_size, 0x1d7d ^ s.sample_size as u64);
        let got = idtd_from_words(&sample).into_regex().expect("idtd result");
        assert!(is_sore(&got), "{}: idtd must return a SORE", s.name);
        assert!(
            regex_equiv(&got, &b.expected_idtd),
            "{}: idtd got {} expected {}",
            s.name,
            render(&got, &b.alphabet),
            render(&b.expected_idtd, &b.alphabet)
        );
        // Every sample word is covered (Theorem 2 through 2T-INF).
        for w in &sample {
            assert!(dtdinfer_automata::nfa::regex_matches(&got, w));
        }
    }
}

/// §8.1: "In all but one case, Trang produced exactly the same output as
/// crx" — on the Table 1 corpora our Trang-like baseline coincides with
/// crx on every row.
#[test]
fn table1_trang_matches_crx() {
    for s in table1() {
        let b = s.build();
        let sample = generate_sample(&b.data, s.sample_size, 0xd7d1 ^ s.sample_size as u64);
        let t = trang(&sample).into_regex().expect("trang result");
        let c = crx(&sample).into_regex().expect("crx result");
        assert!(
            regex_equiv(&t, &c),
            "{}: trang {} vs crx {}",
            s.name,
            render(&t, &b.alphabet),
            render(&c, &b.alphabet)
        );
    }
}

#[test]
fn table2_crx_matches_paper() {
    for s in table2() {
        let b = s.build();
        let sample = generate_sample(&b.data, s.sample_size, 0x7ab2 ^ s.sample_size as u64);
        let got = crx(&sample).into_regex().expect("crx result");
        assert!(
            regex_equiv(&got, &b.expected_crx),
            "{}: crx got {} expected {}",
            s.name,
            render(&got, &b.alphabet),
            render(&b.expected_crx, &b.alphabet)
        );
    }
}

#[test]
fn table2_idtd_matches_paper() {
    for s in table2() {
        let b = s.build();
        let sample = generate_sample(&b.data, s.sample_size, 0x7ab2 ^ s.sample_size as u64);
        let got = idtd_from_words(&sample).into_regex().expect("idtd result");
        assert!(is_sore(&got), "{}: SORE required", s.name);
        // The paper's exact super-approximations for the non-SORE rows
        // depend on their repair order; we require (a) coverage of the data
        // language and (b) conciseness in the same ballpark. For the SORE
        // rows we require language equality with the published result.
        if is_sore(&b.data) {
            assert!(
                regex_equiv(&got, &b.expected_idtd),
                "{}: idtd got {} expected {}",
                s.name,
                render(&got, &b.alphabet),
                render(&b.expected_idtd, &b.alphabet)
            );
        } else {
            assert!(
                regex_subset(&b.data, &got),
                "{}: idtd output not a superset of the data language",
                s.name
            );
            assert!(
                got.symbol_count() <= b.data.symbols().len(),
                "{}: idtd output is not single-occurrence-concise",
                s.name
            );
        }
    }
}
