//! End-to-end pipeline tests: XML text → corpus → inference → DTD/XSD →
//! validation, on randomized document collections.

use dtdinfer_integration::{alphabet, random_chare, rng};
use dtdinfer_regex::classify::chare_to_regex;
use dtdinfer_regex::sample::{sample_word, SampleConfig};
use dtdinfer_xml::dtd::Dtd;
use dtdinfer_xml::extract::Corpus;
use dtdinfer_xml::infer::{infer_dtd, InferenceEngine};
use dtdinfer_xml::xsd::{generate_xsd, XsdOptions};
use rand::Rng;

/// Builds a random two-level document: a root whose children follow a
/// hidden CHARE, where each child holds text.
fn random_documents(seed: u64, docs: usize) -> Vec<String> {
    let mut r = rng(seed);
    let n = 2 + (seed as usize % 4);
    let (al, syms) = alphabet(n);
    let chare = chare_to_regex(&random_chare(&mut r, &syms));
    (0..docs)
        .map(|_| {
            let w = sample_word(&chare, &SampleConfig::default(), &mut r);
            let mut doc = String::from("<root>");
            for s in w {
                let name = al.name(s);
                if r.gen_bool(0.5) {
                    doc.push_str(&format!("<{name}>text {}</{name}>", r.gen_range(0..100)));
                } else {
                    doc.push_str(&format!("<{name}/>"));
                }
            }
            doc.push_str("</root>");
            doc
        })
        .collect()
}

#[test]
fn inferred_dtd_validates_training_corpus() {
    for seed in 0..40 {
        let docs = random_documents(seed, 12);
        let mut corpus = Corpus::new();
        for d in &docs {
            corpus.add_document(d).expect("well-formed by construction");
        }
        for engine in [InferenceEngine::Crx, InferenceEngine::Idtd] {
            let dtd = infer_dtd(&corpus, engine);
            for d in &docs {
                let violations = dtd.validate(d).expect("parses");
                assert!(
                    violations.is_empty(),
                    "seed {seed} {engine:?}: {violations:?}\nDTD:\n{}",
                    dtd.serialize()
                );
            }
        }
    }
}

#[test]
fn serialized_dtd_reparses_to_equivalent_validator() {
    for seed in 40..60 {
        let docs = random_documents(seed, 10);
        let mut corpus = Corpus::new();
        for d in &docs {
            corpus.add_document(d).unwrap();
        }
        let dtd = infer_dtd(&corpus, InferenceEngine::Crx);
        let text = dtd.serialize();
        let reparsed = Dtd::parse(&text).expect("own output parses");
        assert_eq!(reparsed.serialize(), text, "seed {seed}: fixpoint");
        for d in &docs {
            assert!(
                reparsed.validate(d).unwrap().is_empty(),
                "seed {seed}: reparsed DTD must validate the corpus"
            );
        }
    }
}

#[test]
fn xsd_generation_emits_wellformed_xml() {
    for seed in 60..75 {
        let docs = random_documents(seed, 8);
        let mut corpus = Corpus::new();
        for d in &docs {
            corpus.add_document(d).unwrap();
        }
        let dtd = infer_dtd(&corpus, InferenceEngine::Crx);
        for numeric in [None, Some(6)] {
            let xsd = generate_xsd(
                &dtd,
                Some(&corpus),
                XsdOptions {
                    numeric_threshold: numeric,
                },
            );
            // The schema itself must be well-formed XML (our own parser).
            let events = dtdinfer_xml::parser::XmlPullParser::new(&xsd)
                .collect_events()
                .unwrap_or_else(|e| panic!("seed {seed}: XSD not well-formed: {e}\n{xsd}"));
            assert!(events.iter().any(
                |e| matches!(e, dtdinfer_xml::parser::XmlEvent::StartElement { name, .. }
                                  if *name == "xs:schema")
            ));
        }
    }
}

#[test]
fn incremental_document_stream_matches_batch() {
    for seed in 75..95 {
        let docs = random_documents(seed, 10);
        let mut batch = Corpus::new();
        for d in &docs {
            batch.add_document(d).unwrap();
        }
        let batch_dtd = infer_dtd(&batch, InferenceEngine::Idtd);
        // Stream documents one at a time into a fresh corpus; the final
        // inference must coincide with the batch result.
        let mut stream = Corpus::new();
        for d in &docs {
            stream.add_document(d).unwrap();
            let _ = infer_dtd(&stream, InferenceEngine::Idtd);
        }
        let stream_dtd = infer_dtd(&stream, InferenceEngine::Idtd);
        assert_eq!(stream_dtd.serialize(), batch_dtd.serialize(), "seed {seed}");
    }
}

#[test]
fn noise_engine_end_to_end() {
    // 200 clean two-child documents plus 2 polluted ones.
    let mut docs: Vec<String> = Vec::new();
    for i in 0..200 {
        docs.push(match i % 4 {
            0 => "<r><x/><y/></r>".to_owned(),
            1 => "<r><y/><x/></r>".to_owned(),
            2 => "<r><x/><x/></r>".to_owned(),
            _ => "<r><y/></r>".to_owned(),
        });
    }
    docs.push("<r><zz/><x/></r>".to_owned());
    docs.push("<r><y/><zz/></r>".to_owned());
    let mut corpus = Corpus::new();
    for d in &docs {
        corpus.add_document(d).unwrap();
    }
    let noisy = infer_dtd(&corpus, InferenceEngine::Idtd);
    let clean = infer_dtd(&corpus, InferenceEngine::IdtdNoise { threshold: 10 });
    let has_zz = |dtd: &Dtd| {
        let zz = dtd.alphabet.get("zz").unwrap();
        match &dtd.elements[&dtd.alphabet.get("r").unwrap()] {
            dtdinfer_xml::dtd::ContentSpec::Children(r) => r.symbols().contains(&zz),
            other => panic!("{other:?}"),
        }
    };
    assert!(has_zz(&noisy), "plain engine keeps the intruder");
    assert!(!has_zz(&clean), "noise engine drops the intruder");
    // The denoised DTD still validates the clean majority.
    let valid = docs
        .iter()
        .filter(|d| clean.validate(d).unwrap().is_empty())
        .count();
    assert!(valid >= 200, "only {valid} of 202 validate");
}

#[test]
fn document_order_cannot_affect_inferred_dtd() {
    // Regression guard for the sharded engine: any permutation of the
    // input documents must yield a byte-identical DTD (and XSD), for every
    // engine. Rotations exercise both "new name first seen late" and "root
    // seen in different orders".
    for seed in 0..10 {
        let docs = random_documents(seed, 8);
        for engine in [
            InferenceEngine::Crx,
            InferenceEngine::Idtd,
            InferenceEngine::IdtdNoise { threshold: 2 },
        ] {
            let mut baseline: Option<(String, String)> = None;
            for rotation in 0..docs.len() {
                let mut corpus = Corpus::new();
                for i in 0..docs.len() {
                    corpus
                        .add_document(&docs[(i + rotation) % docs.len()])
                        .unwrap();
                }
                let dtd = infer_dtd(&corpus, engine);
                let rendered = (
                    dtd.serialize(),
                    generate_xsd(&dtd, Some(&corpus), XsdOptions::default()),
                );
                match &baseline {
                    None => baseline = Some(rendered),
                    Some(b) => {
                        assert_eq!(b, &rendered, "seed {seed} {engine:?} rotation {rotation}")
                    }
                }
            }
        }
    }
}

#[test]
fn mixed_and_empty_content_round_trip() {
    let docs = [
        "<r><p>hello <em>world</em> again</p><sep/><p>plain</p></r>",
        "<r><sep/><p><em>x</em></p></r>",
    ];
    let mut corpus = Corpus::new();
    for d in &docs {
        corpus.add_document(d).unwrap();
    }
    let dtd = infer_dtd(&corpus, InferenceEngine::Crx);
    let text = dtd.serialize();
    assert!(text.contains("<!ELEMENT p (#PCDATA | em)*>"), "{text}");
    assert!(text.contains("<!ELEMENT sep EMPTY>"));
    for d in &docs {
        assert!(dtd.validate(d).unwrap().is_empty());
    }
}

/// The corpus shipped in `testdata/books/` round trips: inference recovers
/// the published DTD exactly (content models, attribute enumeration, ID
/// detection).
#[test]
fn shipped_testdata_round_trips() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../testdata/books");
    let mut corpus = Corpus::new();
    let mut docs = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("testdata/books exists")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "xml"))
        .collect();
    entries.sort();
    assert!(entries.len() >= 10, "shipped corpus missing");
    for p in entries {
        let text = std::fs::read_to_string(p).unwrap();
        corpus.add_document(&text).unwrap();
        docs.push(text);
    }
    let inferred = infer_dtd(&corpus, InferenceEngine::Idtd);
    let text = inferred.serialize();
    assert!(
        text.contains(
            "<!ELEMENT book (title, author+, year, (publisher | self-published), price?)>"
        ),
        "{text}"
    );
    assert!(text.contains("<!ATTLIST book id ID #REQUIRED>"), "{text}");
    let published =
        Dtd::parse(&std::fs::read_to_string(dir.join("published.dtd")).unwrap()).unwrap();
    for d in &docs {
        assert!(published.validate(d).unwrap().is_empty());
        assert!(inferred.validate(d).unwrap().is_empty());
    }
}
