//! Exhaustive verification on small automata: every possible SOA over one
//! and two symbols (all combinations of source/sink/inner edges and the
//! ε-edge) is run through `rewrite` and `iDTD`, with every claim checked
//! against the independent DFA layer.
//!
//! This systematically covers the rule interactions that random testing
//! can miss: self-loops plus bypasses, unreachable states, ε-languages,
//! mutually-looping pairs, and so on.

use dtdinfer_automata::dfa::{soa_equiv_regex, soa_minus_regex_witness};
use dtdinfer_automata::soa::Soa;
use dtdinfer_core::idtd::{idtd, IdtdConfig};
use dtdinfer_core::model::InferredModel;
use dtdinfer_core::rewrite::rewrite_soa;
use dtdinfer_regex::alphabet::{numbered_alphabet, Sym};
use dtdinfer_regex::classify::is_sore;

/// Builds the SOA selected by the bit mask over the given edge menu.
fn build(syms: &[Sym], mask: u32, menu: &[(Option<Sym>, Option<Sym>)]) -> Soa {
    let mut soa = Soa::new();
    for &s in syms {
        // States only exist when referenced by an edge; track separately.
        let _ = s;
    }
    for (i, &(from, to)) in menu.iter().enumerate() {
        if mask & (1 << i) == 0 {
            continue;
        }
        match (from, to) {
            (None, None) => soa.accepts_empty = true,
            (None, Some(b)) => {
                soa.initial.insert(b);
                soa.states.insert(b);
            }
            (Some(a), None) => {
                soa.finals.insert(a);
                soa.states.insert(a);
            }
            (Some(a), Some(b)) => {
                soa.edges.insert((a, b));
                soa.states.insert(a);
                soa.states.insert(b);
            }
        }
    }
    soa
}

/// The menu of possible edges over `syms` (source edges, sink edges, all
/// inner pairs incl. self-loops, and the ε edge).
fn edge_menu(syms: &[Sym]) -> Vec<(Option<Sym>, Option<Sym>)> {
    let mut menu = Vec::new();
    for &s in syms {
        menu.push((None, Some(s))); // source → s
        menu.push((Some(s), None)); // s → sink
    }
    for &a in syms {
        for &b in syms {
            menu.push((Some(a), Some(b)));
        }
    }
    menu.push((None, None)); // ε
    menu
}

fn check_soa(soa: &Soa) {
    // rewrite: when it succeeds the result must be an equivalent SORE.
    if let Some(r) = rewrite_soa(soa) {
        assert!(is_sore(&r), "non-SORE output for {soa:?}");
        assert!(
            soa_equiv_regex(soa, &r),
            "rewrite changed the language of {soa:?}: {r:?}"
        );
    }
    // iDTD: always a SORE superset (or a faithful degenerate model).
    match idtd(soa) {
        InferredModel::Regex(r) => {
            assert!(is_sore(&r), "{soa:?}");
            if let Some(w) = soa_minus_regex_witness(soa, &r) {
                panic!("{soa:?}: witness {w:?} outside idtd output {r:?}");
            }
        }
        InferredModel::EpsilonOnly => {
            assert!(soa.states.is_empty() && soa.accepts_empty, "{soa:?}");
        }
        InferredModel::Empty => {
            assert!(soa.states.is_empty() && !soa.accepts_empty, "{soa:?}");
        }
    }
    // The restricted (paper) configuration obeys Theorem 2 as well.
    if let InferredModel::Regex(r) =
        dtdinfer_core::idtd::idtd_with(soa, IdtdConfig::paper_faithful())
    {
        assert!(is_sore(&r));
        assert!(
            soa_minus_regex_witness(soa, &r).is_none(),
            "paper config violated Theorem 2 on {soa:?}"
        );
    }
}

#[test]
fn all_one_symbol_automata() {
    let (_, syms) = numbered_alphabet(1);
    let menu = edge_menu(&syms);
    assert_eq!(menu.len(), 4); // src→a, a→snk, a→a, ε
    for mask in 0..(1u32 << menu.len()) {
        check_soa(&build(&syms, mask, &menu));
    }
}

#[test]
fn all_two_symbol_automata() {
    let (_, syms) = numbered_alphabet(2);
    let menu = edge_menu(&syms);
    assert_eq!(menu.len(), 9); // 2 src + 2 snk + 4 pairs + ε
    for mask in 0..(1u32 << menu.len()) {
        check_soa(&build(&syms, mask, &menu));
    }
}

/// A sampled slice of the 3-symbol space (2^16 automata would be slow with
/// full DFA checks; every 7th mask still covers ~9400 structurally diverse
/// cases).
#[test]
fn sampled_three_symbol_automata() {
    let (_, syms) = numbered_alphabet(3);
    let menu = edge_menu(&syms);
    assert_eq!(menu.len(), 16);
    let mut mask = 0u32;
    while mask < (1 << menu.len()) {
        check_soa(&build(&syms, mask, &menu));
        mask += 7;
    }
}
