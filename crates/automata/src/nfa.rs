//! Position NFAs (Glushkov automata of arbitrary expressions).
//!
//! An [`Nfa`] has one state per symbol occurrence of the source expression
//! plus a start state; there are no ε-transitions. Used for membership
//! testing of arbitrary REs (including the long-winded outputs of state
//! elimination and xtract) and as the input to subset construction in
//! [`crate::dfa`].

use dtdinfer_regex::alphabet::Sym;
use dtdinfer_regex::ast::Regex;
use dtdinfer_regex::props::{linearize, Linearized};

/// A Glushkov (position) NFA.
#[derive(Debug, Clone)]
pub struct Nfa {
    /// Symbol carried by each position state.
    pub sym_at: Vec<Sym>,
    /// Positions reachable from the start state.
    pub first: Vec<usize>,
    /// `follow[p]`: positions reachable from position `p`.
    pub follow: Vec<Vec<usize>>,
    /// Accepting positions.
    pub last: Vec<bool>,
    /// Whether the start state accepts (ε ∈ L).
    pub accepts_empty: bool,
}

impl Nfa {
    /// Builds the Glushkov NFA of `r`.
    pub fn from_regex(r: &Regex) -> Self {
        Self::from_linearized(linearize(r))
    }

    fn from_linearized(lin: Linearized) -> Self {
        let mut last = vec![false; lin.len()];
        for &p in &lin.last {
            last[p] = true;
        }
        Nfa {
            sym_at: lin.sym_at,
            first: lin.first,
            follow: lin.follow,
            last,
            accepts_empty: lin.nullable,
        }
    }

    /// Number of position states.
    pub fn len(&self) -> usize {
        self.sym_at.len()
    }

    /// Whether the NFA has no position states.
    pub fn is_empty(&self) -> bool {
        self.sym_at.is_empty()
    }

    /// NFA simulation: whether `w ∈ L`.
    pub fn accepts(&self, w: &[Sym]) -> bool {
        if w.is_empty() {
            return self.accepts_empty;
        }
        let mut current: Vec<bool> = vec![false; self.len()];
        for &p in &self.first {
            if self.sym_at[p] == w[0] {
                current[p] = true;
            }
        }
        for &sym in &w[1..] {
            let mut next = vec![false; self.len()];
            for (p, &active) in current.iter().enumerate() {
                if active {
                    for &q in &self.follow[p] {
                        if self.sym_at[q] == sym {
                            next[q] = true;
                        }
                    }
                }
            }
            current = next;
        }
        current
            .iter()
            .enumerate()
            .any(|(p, &active)| active && self.last[p])
    }
}

/// Convenience: whether `w ∈ L(r)`.
pub fn regex_matches(r: &Regex, w: &[Sym]) -> bool {
    Nfa::from_regex(r).accepts(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtdinfer_regex::alphabet::Alphabet;
    use dtdinfer_regex::parser::parse;

    fn check(src: &str, yes: &[&str], no: &[&str]) {
        let mut al = Alphabet::new();
        let r = parse(src, &mut al).unwrap();
        let nfa = Nfa::from_regex(&r);
        for w in yes {
            assert!(
                nfa.accepts(&al.word_from_chars(w)),
                "{src} should accept {w:?}"
            );
        }
        for w in no {
            assert!(
                !nfa.accepts(&al.word_from_chars(w)),
                "{src} should reject {w:?}"
            );
        }
    }

    #[test]
    fn basic_membership() {
        check("a b c", &["abc"], &["ab", "abcc", "acb", ""]);
    }

    #[test]
    fn union_and_repeat() {
        check("(a | b)+ c", &["ac", "bc", "ababc"], &["c", "ab", "ca"]);
    }

    #[test]
    fn nullable() {
        check("a*", &["", "a", "aaaa"], &["b"]);
        check("a? b?", &["", "a", "b", "ab"], &["ba", "aa"]);
    }

    #[test]
    fn non_sore_expressions() {
        // Positions matter: a(a|b)* has two a-positions.
        check("a (a | b)*", &["a", "aa", "ab", "aabba"], &["", "b", "ba"]);
    }

    #[test]
    fn running_example() {
        check(
            "((b? (a|c))+ d)+ e",
            &["bacacdacde", "cbacdbacde", "abccaadcde", "ade"],
            &["e", "bde", "bacacdacd"],
        );
    }

    #[test]
    fn symbol_not_in_alphabet_rejected() {
        let mut al = Alphabet::new();
        let r = parse("a b", &mut al).unwrap();
        let stranger = al.intern("z");
        assert!(!regex_matches(&r, &[al.get("a").unwrap(), stranger]));
    }
}
