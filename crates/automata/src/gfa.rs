//! Generalized finite automata (§5).
//!
//! A GFA is an `RE(Σ)`-labeled graph with distinguished source and sink; the
//! semantics reads every edge as carrying the regular expression of the node
//! it points to. A GFA is *single occurrence* when every label is a SORE and
//! the labels use pairwise disjoint symbols. The `rewrite` system of
//! `dtdinfer-core` operates on this structure; this module provides the
//! graph itself plus the ε-closure and `Pred`/`Succ` sets the rule
//! preconditions are stated over.

use crate::soa::Soa;
use dtdinfer_regex::alphabet::Sym;
use dtdinfer_regex::ast::Regex;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Identifier of a GFA node. `SOURCE` and `SINK` are reserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// The unique initial node (unlabeled).
pub const SOURCE: NodeId = NodeId(0);
/// The unique final node (unlabeled).
pub const SINK: NodeId = NodeId(1);

impl NodeId {
    /// Whether this is the source or sink.
    pub fn is_endpoint(self) -> bool {
        self == SOURCE || self == SINK
    }
}

/// A generalized finite automaton with RE-labeled states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gfa {
    labels: BTreeMap<NodeId, Regex>,
    succ: BTreeMap<NodeId, BTreeSet<NodeId>>,
    pred: BTreeMap<NodeId, BTreeSet<NodeId>>,
    next_id: u32,
}

impl Default for Gfa {
    fn default() -> Self {
        Self::new()
    }
}

impl Gfa {
    /// An empty GFA with only source and sink.
    pub fn new() -> Self {
        let mut succ = BTreeMap::new();
        let mut pred = BTreeMap::new();
        succ.insert(SOURCE, BTreeSet::new());
        succ.insert(SINK, BTreeSet::new());
        pred.insert(SOURCE, BTreeSet::new());
        pred.insert(SINK, BTreeSet::new());
        Gfa {
            labels: BTreeMap::new(),
            succ,
            pred,
            next_id: 2,
        }
    }

    /// Converts an SOA into the equivalent single occurrence GFA (every SOA
    /// is a single occurrence GFA whose labels are alphabet symbols).
    /// Returns the GFA and the node assigned to each symbol.
    pub fn from_soa(soa: &Soa) -> (Self, HashMap<Sym, NodeId>) {
        let mut g = Gfa::new();
        let mut node_of = HashMap::new();
        for &s in &soa.states {
            node_of.insert(s, g.add_node(Regex::sym(s)));
        }
        for &s in &soa.initial {
            g.add_edge(SOURCE, node_of[&s]);
        }
        for &(a, b) in &soa.edges {
            g.add_edge(node_of[&a], node_of[&b]);
        }
        for &s in &soa.finals {
            g.add_edge(node_of[&s], SINK);
        }
        if soa.accepts_empty {
            g.add_edge(SOURCE, SINK);
        }
        (g, node_of)
    }

    /// Adds a labeled inner node.
    pub fn add_node(&mut self, label: Regex) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        self.labels.insert(id, label);
        self.succ.insert(id, BTreeSet::new());
        self.pred.insert(id, BTreeSet::new());
        id
    }

    /// Adds an edge (idempotent).
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) {
        self.succ.get_mut(&from).expect("from exists").insert(to);
        self.pred.get_mut(&to).expect("to exists").insert(from);
    }

    /// Removes an edge if present.
    pub fn remove_edge(&mut self, from: NodeId, to: NodeId) {
        if let Some(s) = self.succ.get_mut(&from) {
            s.remove(&to);
        }
        if let Some(p) = self.pred.get_mut(&to) {
            p.remove(&from);
        }
    }

    /// Removes an inner node and all incident edges.
    pub fn remove_node(&mut self, id: NodeId) {
        assert!(!id.is_endpoint(), "cannot remove source/sink");
        let outgoing: Vec<NodeId> = self
            .succ
            .remove(&id)
            .unwrap_or_default()
            .into_iter()
            .collect();
        for to in outgoing {
            if let Some(p) = self.pred.get_mut(&to) {
                p.remove(&id);
            }
        }
        let incoming: Vec<NodeId> = self
            .pred
            .remove(&id)
            .unwrap_or_default()
            .into_iter()
            .collect();
        for from in incoming {
            if let Some(s) = self.succ.get_mut(&from) {
                s.remove(&id);
            }
        }
        self.labels.remove(&id);
    }

    /// Whether the edge exists.
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.succ.get(&from).is_some_and(|s| s.contains(&to))
    }

    /// Label of an inner node.
    pub fn label(&self, id: NodeId) -> &Regex {
        &self.labels[&id]
    }

    /// Replaces the label of an inner node.
    pub fn set_label(&mut self, id: NodeId, label: Regex) {
        *self.labels.get_mut(&id).expect("inner node") = label;
    }

    /// Inner (labeled) nodes in ascending id order (deterministic).
    pub fn inner_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.labels.keys().copied()
    }

    /// Number of inner nodes.
    pub fn num_inner(&self) -> usize {
        self.labels.len()
    }

    /// Total number of edges.
    pub fn num_edges(&self) -> usize {
        self.succ.values().map(BTreeSet::len).sum()
    }

    /// Direct successors.
    pub fn direct_succ(&self, id: NodeId) -> &BTreeSet<NodeId> {
        &self.succ[&id]
    }

    /// Direct predecessors.
    pub fn direct_pred(&self, id: NodeId) -> &BTreeSet<NodeId> {
        &self.pred[&id]
    }

    /// All edges in deterministic order.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        self.succ
            .iter()
            .flat_map(|(&from, tos)| tos.iter().map(move |&to| (from, to)))
            .collect()
    }

    /// Whether the GFA is *final*: exactly one inner node `r`, with edges
    /// exactly `source→r` and `r→sink`.
    pub fn is_final(&self) -> bool {
        if self.labels.len() != 1 {
            return false;
        }
        let r = *self.labels.keys().next().expect("one node");
        self.num_edges() == 2 && self.has_edge(SOURCE, r) && self.has_edge(r, SINK)
    }

    /// The expression of a final GFA.
    pub fn final_regex(&self) -> Option<&Regex> {
        if self.is_final() {
            self.labels.values().next()
        } else {
            None
        }
    }

    /// Whether a node's label can iterate (is `s+`, `s*` or `(s+)?`),
    /// contributing the closure self-edge of §5 rule (i).
    fn label_iterates(r: &Regex) -> bool {
        match r {
            Regex::Plus(_) | Regex::Star(_) => true,
            Regex::Optional(inner) => matches!(&**inner, Regex::Plus(_) | Regex::Star(_)),
            _ => false,
        }
    }

    /// Computes the ε-closure `G*` of §5: `E*` contains (i) self-edges
    /// `(r,r)` for iterating labels, and (ii) `(r,r')` whenever a path from
    /// `r` to `r'` passes only intermediate nodes with ε in their language.
    pub fn closure(&self) -> Closure {
        let nullable: BTreeSet<NodeId> = self
            .labels
            .iter()
            .filter(|(_, r)| r.nullable())
            .map(|(&id, _)| id)
            .collect();
        let mut succ: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
        let mut pred: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
        let all_nodes: Vec<NodeId> = self.succ.keys().copied().collect();
        for &id in &all_nodes {
            succ.entry(id).or_default();
            pred.entry(id).or_default();
        }
        for &u in &all_nodes {
            // BFS from u, continuing through nullable intermediates.
            let mut stack: Vec<NodeId> = self.succ[&u].iter().copied().collect();
            let mut reached: BTreeSet<NodeId> = BTreeSet::new();
            while let Some(v) = stack.pop() {
                if !reached.insert(v) {
                    continue;
                }
                if nullable.contains(&v) {
                    stack.extend(self.succ[&v].iter().copied());
                }
            }
            for v in reached {
                succ.get_mut(&u).expect("init").insert(v);
                pred.get_mut(&v).expect("init").insert(u);
            }
        }
        for (&id, label) in &self.labels {
            if Self::label_iterates(label) {
                succ.get_mut(&id).expect("init").insert(id);
                pred.get_mut(&id).expect("init").insert(id);
            }
        }
        Closure { succ, pred }
    }

    /// Graphviz rendering.
    pub fn to_dot(&self, alphabet: &dtdinfer_regex::alphabet::Alphabet) -> String {
        use dtdinfer_regex::display::render;
        let mut out = String::from("digraph gfa {\n  rankdir=LR;\n  n0 [shape=point];\n  n1 [shape=doublecircle, label=\"\"];\n");
        for (&id, label) in &self.labels {
            out.push_str(&format!(
                "  n{} [label=\"{}\"];\n",
                id.0,
                render(label, alphabet).replace('"', "\\\"")
            ));
        }
        for (from, to) in self.edges() {
            out.push_str(&format!("  n{} -> n{};\n", from.0, to.0));
        }
        out.push_str("}\n");
        out
    }
}

/// The ε-closure `G*`: predecessor and successor sets per node (§5).
#[derive(Debug, Clone)]
pub struct Closure {
    succ: BTreeMap<NodeId, BTreeSet<NodeId>>,
    pred: BTreeMap<NodeId, BTreeSet<NodeId>>,
}

impl Closure {
    /// `Pred(r)`: predecessors of `r` in `G*`.
    pub fn pred(&self, id: NodeId) -> &BTreeSet<NodeId> {
        &self.pred[&id]
    }

    /// `Succ(r)`: successors of `r` in `G*`.
    pub fn succ(&self, id: NodeId) -> &BTreeSet<NodeId> {
        &self.succ[&id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtdinfer_regex::alphabet::Alphabet;

    fn letters(n: usize) -> (Alphabet, Vec<Sym>) {
        let mut al = Alphabet::new();
        let syms = (0..n)
            .map(|i| al.intern(&((b'a' + i as u8) as char).to_string()))
            .collect();
        (al, syms)
    }

    #[test]
    fn from_soa_structure() {
        let (mut al, _) = letters(0);
        let words = vec![al.word_from_chars("ab"), al.word_from_chars("b")];
        let soa = Soa::learn(&words);
        let (g, node_of) = Gfa::from_soa(&soa);
        let (a, b) = (al.get("a").unwrap(), al.get("b").unwrap());
        assert_eq!(g.num_inner(), 2);
        assert!(g.has_edge(SOURCE, node_of[&a]));
        assert!(g.has_edge(SOURCE, node_of[&b]));
        assert!(g.has_edge(node_of[&a], node_of[&b]));
        assert!(g.has_edge(node_of[&b], SINK));
        assert!(!g.has_edge(node_of[&a], SINK));
    }

    #[test]
    fn final_detection() {
        let (_, syms) = letters(1);
        let mut g = Gfa::new();
        let n = g.add_node(Regex::sym(syms[0]));
        g.add_edge(SOURCE, n);
        g.add_edge(n, SINK);
        assert!(g.is_final());
        assert_eq!(g.final_regex(), Some(&Regex::sym(syms[0])));
        // An extra edge breaks finality.
        g.add_edge(SOURCE, SINK);
        assert!(!g.is_final());
    }

    #[test]
    fn closure_through_nullable() {
        // source -> a -> b? -> c -> sink : closure must contain (a, c).
        let (_, syms) = letters(3);
        let mut g = Gfa::new();
        let a = g.add_node(Regex::sym(syms[0]));
        let b = g.add_node(Regex::optional(Regex::sym(syms[1])));
        let c = g.add_node(Regex::sym(syms[2]));
        g.add_edge(SOURCE, a);
        g.add_edge(a, b);
        g.add_edge(b, c);
        g.add_edge(c, SINK);
        let cl = g.closure();
        assert!(cl.succ(a).contains(&c));
        assert!(cl.pred(c).contains(&a));
        assert!(cl.succ(a).contains(&b));
        // But not (source, c): the path passes the non-nullable node a.
        assert!(!cl.succ(SOURCE).contains(&c));
        assert!(!cl.succ(SOURCE).contains(&SINK));
    }

    #[test]
    fn closure_self_edges_for_iterating_labels() {
        let (_, syms) = letters(2);
        let mut g = Gfa::new();
        let p = g.add_node(Regex::plus(Regex::sym(syms[0])));
        let q = g.add_node(Regex::sym(syms[1]));
        g.add_edge(SOURCE, p);
        g.add_edge(p, q);
        g.add_edge(q, SINK);
        let cl = g.closure();
        assert!(cl.succ(p).contains(&p), "s+ node gets closure self-edge");
        assert!(!cl.succ(q).contains(&q));
        // (s+)? also iterates:
        g.set_label(
            p,
            Regex::Optional(Box::new(Regex::plus(Regex::sym(syms[0])))),
        );
        let cl = g.closure();
        assert!(cl.succ(p).contains(&p));
    }

    #[test]
    fn remove_node_cleans_edges() {
        let (_, syms) = letters(2);
        let mut g = Gfa::new();
        let a = g.add_node(Regex::sym(syms[0]));
        let b = g.add_node(Regex::sym(syms[1]));
        g.add_edge(SOURCE, a);
        g.add_edge(a, b);
        g.add_edge(b, SINK);
        g.remove_node(a);
        assert_eq!(g.num_inner(), 1);
        assert!(!g.has_edge(SOURCE, a));
        assert!(g.direct_pred(b).is_empty());
    }

    #[test]
    fn closure_includes_direct_edges() {
        let (_, syms) = letters(2);
        let mut g = Gfa::new();
        let a = g.add_node(Regex::sym(syms[0]));
        let b = g.add_node(Regex::sym(syms[1]));
        g.add_edge(SOURCE, a);
        g.add_edge(a, b);
        g.add_edge(b, SINK);
        let cl = g.closure();
        assert!(cl.succ(a).contains(&b));
        assert!(cl.pred(b).contains(&a));
        assert!(cl.pred(a).contains(&SOURCE));
        assert!(cl.succ(b).contains(&SINK));
    }
}
