//! DFA language operations: complement, intersection, and census.
//!
//! The census (number of accepted words per length) turns "the inferred
//! schema is stricter" into a number: e.g. the §1.1 refinfo discovery
//! removes exactly the words where `volume` and `month` co-occur, which
//! [`count_words_up_to`] makes visible as a reduced language volume.

use crate::dfa::Dfa;

impl Dfa {
    /// The complement DFA (same alphabet; accepting states flipped).
    /// Words containing symbols outside the alphabet are rejected by both
    /// (the convention of [`Dfa::accepts`]), so this is complement
    /// *relative to the alphabet's words*.
    pub fn complement(&self) -> Dfa {
        Dfa {
            syms: self.syms.clone(),
            start: self.start,
            accept: self.accept.iter().map(|&a| !a).collect(),
            trans: self.trans.clone(),
        }
    }

    /// The product-intersection of two DFAs over the same alphabet.
    pub fn intersect(&self, other: &Dfa) -> Dfa {
        assert_eq!(self.syms, other.syms, "alphabets must match");
        let nb = other.len();
        let encode = |a: usize, b: usize| a * nb + b;
        let n = self.len() * nb;
        let mut accept = vec![false; n];
        let mut trans = vec![vec![0usize; self.syms.len()]; n];
        for a in 0..self.len() {
            for b in 0..nb {
                let s = encode(a, b);
                accept[s] = self.accept[a] && other.accept[b];
                for (i, slot) in trans[s].iter_mut().enumerate() {
                    *slot = encode(self.trans[a][i], other.trans[b][i]);
                }
            }
        }
        Dfa {
            syms: self.syms.clone(),
            start: encode(self.start, other.start),
            accept,
            trans,
        }
    }

    /// Number of accepted words of each length `0..=max_len` (saturating at
    /// `u128::MAX`).
    pub fn census(&self, max_len: usize) -> Vec<u128> {
        // counts[s] = number of words of the current length ending in s.
        let mut counts: Vec<u128> = vec![0; self.len()];
        counts[self.start] = 1;
        let mut out = Vec::with_capacity(max_len + 1);
        let accepted = |counts: &[u128]| -> u128 {
            counts
                .iter()
                .zip(&self.accept)
                .filter(|&(_, &a)| a)
                .fold(0u128, |acc, (&c, _)| acc.saturating_add(c))
        };
        out.push(accepted(&counts));
        for _ in 0..max_len {
            let mut next = vec![0u128; self.len()];
            for (s, &c) in counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                for &t in &self.trans[s] {
                    next[t] = next[t].saturating_add(c);
                }
            }
            counts = next;
            out.push(accepted(&counts));
        }
        out
    }

    /// Total number of accepted words of length ≤ `max_len` (saturating).
    pub fn count_words_up_to(&self, max_len: usize) -> u128 {
        self.census(max_len)
            .into_iter()
            .fold(0u128, |a, b| a.saturating_add(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::{dfa_equiv, joint_alphabet};
    use dtdinfer_regex::alphabet::Alphabet;
    use dtdinfer_regex::parser::parse;

    /// Builds a DFA for `src` over the full alphabet named by `alpha_src`,
    /// sharing one `Alphabet` so symbol ids line up across machines.
    fn dfa(src: &str, al: &mut Alphabet, alpha_src: &str) -> Dfa {
        let alpha_re = parse(alpha_src, al).unwrap();
        let r = parse(src, al).unwrap();
        let alpha = joint_alphabet(&[&r.symbols(), &alpha_re.symbols()]);
        Dfa::from_regex(&r, &alpha)
    }

    #[test]
    fn census_counts_small_languages() {
        let mut al = Alphabet::new();
        // (a|b) c: exactly 2 words, both of length 2.
        let d = dfa("(a | b) c", &mut al, "a b c");
        assert_eq!(d.census(3), vec![0, 0, 2, 0]);
        assert_eq!(d.count_words_up_to(5), 2);
    }

    #[test]
    fn census_star() {
        let mut al = Alphabet::new();
        // (a|b)*: 2^n words of length n.
        let d = dfa("(a | b)*", &mut al, "a b");
        assert_eq!(d.census(4), vec![1, 2, 4, 8, 16]);
    }

    #[test]
    fn refinfo_strictness_quantified() {
        // The §1.1 example: volume? month? vs (volume | month).
        let mut al = Alphabet::new();
        let loose = dfa("a v? m? y", &mut al, "a v m y");
        let strict = dfa("a (v | m) y", &mut al, "a v m y");
        // loose: {ay, avy, amy, avmy}; strict: {avy, amy}.
        assert_eq!(loose.count_words_up_to(4), 4);
        assert_eq!(strict.count_words_up_to(4), 2);
    }

    #[test]
    fn complement_laws() {
        let mut al = Alphabet::new();
        let d = dfa("(a | b)+ c", &mut al, "a b c");
        let c = d.complement();
        for probe in ["abc", "c", "ab", "", "bca"] {
            let w = al.word_from_chars(probe);
            // Words over the alphabet: complement flips membership.
            assert_ne!(d.accepts(&w), c.accepts(&w), "{probe}");
        }
        // Double complement restores the language.
        assert!(dfa_equiv(&d, &c.complement()));
    }

    #[test]
    fn intersection_is_conjunction() {
        let mut al = Alphabet::new();
        let d1 = dfa("a* b", &mut al, "a b");
        let d2 = dfa("(a | b) (a | b)", &mut al, "a b");
        let both = d1.intersect(&d2);
        // L1 ∩ L2 = {ab}.
        assert!(both.accepts(&al.word_from_chars("ab")));
        assert!(!both.accepts(&al.word_from_chars("b")));
        assert!(!both.accepts(&al.word_from_chars("aa")));
        assert_eq!(both.count_words_up_to(6), 1);
    }

    #[test]
    fn intersection_with_complement_is_difference() {
        let mut al = Alphabet::new();
        let d1 = dfa("a? b? c?", &mut al, "a b c");
        let d2 = dfa("b? c?", &mut al, "a b c");
        let only_first = d1.intersect(&d2.complement());
        // Words in L1 but not L2: exactly those containing a.
        assert!(only_first.accepts(&al.word_from_chars("a")));
        assert!(only_first.accepts(&al.word_from_chars("abc")));
        assert!(!only_first.accepts(&al.word_from_chars("bc")));
        assert!(!only_first.accepts(&[]));
        assert_eq!(only_first.count_words_up_to(4), 4); // a, ab, ac, abc
    }
}
