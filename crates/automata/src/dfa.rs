//! Complete DFAs, subset construction and language comparison.
//!
//! This module is the verification backbone of the reproduction: Theorem 1
//! (`L(rewrite(A)) = L(A)`), Theorem 2 (`L(A) ⊆ L(iDTD(A))`) and Theorem 3
//! (`W ⊆ L(crx(W))`) are all checked in the test suites through the
//! equivalence / inclusion / witness functions defined here.

use crate::nfa::Nfa;
use crate::soa::Soa;
use dtdinfer_regex::alphabet::{Sym, Word};
use dtdinfer_regex::ast::Regex;
use std::collections::{HashMap, VecDeque};

/// A complete deterministic finite automaton over an explicit alphabet.
///
/// Transitions are total: every state has a successor for every symbol of
/// `syms` (a dead state absorbs everything else). Symbols outside `syms` are
/// by convention rejected.
#[derive(Debug, Clone)]
pub struct Dfa {
    /// The (sorted, deduplicated) alphabet.
    pub syms: Vec<Sym>,
    /// Index of the start state.
    pub start: usize,
    /// Acceptance flags per state.
    pub accept: Vec<bool>,
    /// `trans[state][sym_index]` — total transition table.
    pub trans: Vec<Vec<usize>>,
}

impl Dfa {
    /// Subset construction from a Glushkov NFA, over the given alphabet
    /// (which must contain every symbol of the NFA).
    pub fn from_nfa(nfa: &Nfa, alphabet: &[Sym]) -> Self {
        let syms = sorted_dedup(alphabet);
        let sym_index: HashMap<Sym, usize> =
            syms.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        debug_assert!(
            nfa.sym_at.iter().all(|s| sym_index.contains_key(s)),
            "alphabet must cover the NFA"
        );

        // State = sorted set of NFA positions; the start pseudo-state is the
        // sentinel key `None`. Dead state = empty set.
        let mut key_of: HashMap<Option<Vec<usize>>, usize> = HashMap::new();
        let mut accept = Vec::new();
        let mut trans: Vec<Vec<usize>> = Vec::new();
        let mut order: Vec<Option<Vec<usize>>> = Vec::new();

        let mut intern = |key: Option<Vec<usize>>,
                          accept_flag: bool,
                          accept: &mut Vec<bool>,
                          trans: &mut Vec<Vec<usize>>,
                          order: &mut Vec<Option<Vec<usize>>>|
         -> (usize, bool) {
            if let Some(&id) = key_of.get(&key) {
                return (id, false);
            }
            let id = accept.len();
            key_of.insert(key.clone(), id);
            order.push(key);
            accept.push(accept_flag);
            trans.push(Vec::new());
            (id, true)
        };

        let (start, _) = intern(None, nfa.accepts_empty, &mut accept, &mut trans, &mut order);
        let mut queue = VecDeque::from([start]);
        while let Some(id) = queue.pop_front() {
            let key = order[id].clone();
            let mut row = Vec::with_capacity(syms.len());
            for &sym in &syms {
                let targets: Vec<usize> = match &key {
                    None => nfa
                        .first
                        .iter()
                        .copied()
                        .filter(|&p| nfa.sym_at[p] == sym)
                        .collect(),
                    Some(positions) => {
                        let mut t: Vec<usize> = positions
                            .iter()
                            .flat_map(|&p| nfa.follow[p].iter().copied())
                            .filter(|&q| nfa.sym_at[q] == sym)
                            .collect();
                        t.sort_unstable();
                        t.dedup();
                        t
                    }
                };
                let accepting = targets.iter().any(|&p| nfa.last[p]);
                let (tid, fresh) = intern(
                    Some(targets),
                    accepting,
                    &mut accept,
                    &mut trans,
                    &mut order,
                );
                if fresh {
                    queue.push_back(tid);
                }
                row.push(tid);
            }
            trans[id] = row;
        }
        Dfa {
            syms,
            start,
            accept,
            trans,
        }
    }

    /// A DFA from a regular expression over `alphabet` (must cover `r`).
    pub fn from_regex(r: &Regex, alphabet: &[Sym]) -> Self {
        Dfa::from_nfa(&Nfa::from_regex(r), alphabet)
    }

    /// A DFA from an SOA (which is already deterministic) over `alphabet`.
    pub fn from_soa(soa: &Soa, alphabet: &[Sym]) -> Self {
        let syms = sorted_dedup(alphabet);
        let sym_index: HashMap<Sym, usize> =
            syms.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        // State layout: 0 = source, 1 = dead, 2.. = one per SOA state.
        let soa_states: Vec<Sym> = soa.states.iter().copied().collect();
        let state_of: HashMap<Sym, usize> = soa_states
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i + 2))
            .collect();
        let n = soa_states.len() + 2;
        let mut accept = vec![false; n];
        accept[0] = soa.accepts_empty;
        for (&sym, &st) in &state_of {
            accept[st] = soa.finals.contains(&sym);
        }
        let mut trans = vec![vec![1usize; syms.len()]; n];
        for &sym in &soa.initial {
            if let Some(&t) = state_of.get(&sym) {
                trans[0][sym_index[&sym]] = t;
            }
        }
        for &(a, b) in &soa.edges {
            let (sa, sb) = (state_of[&a], state_of[&b]);
            trans[sa][sym_index[&b]] = sb;
        }
        Dfa {
            syms,
            start: 0,
            accept,
            trans,
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.accept.len()
    }

    /// Whether the DFA has no states (never true — there is always a start).
    pub fn is_empty(&self) -> bool {
        self.accept.is_empty()
    }

    /// Runs the DFA on `w`. Symbols outside the alphabet reject.
    pub fn accepts(&self, w: &[Sym]) -> bool {
        let mut state = self.start;
        for sym in w {
            match self.syms.binary_search(sym) {
                Ok(i) => state = self.trans[state][i],
                Err(_) => return false,
            }
        }
        self.accept[state]
    }
}

fn sorted_dedup(syms: &[Sym]) -> Vec<Sym> {
    let mut v = syms.to_vec();
    v.sort_unstable();
    v.dedup();
    v
}

/// Union of the alphabets of several expressions/automata, as a sorted list.
pub fn joint_alphabet(parts: &[&[Sym]]) -> Vec<Sym> {
    let mut v: Vec<Sym> = parts.iter().flat_map(|p| p.iter().copied()).collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// Finds a word accepted by `a` but not by `b`, if any. Both DFAs must be
/// over the same alphabet (`a.syms == b.syms`).
pub fn difference_witness(a: &Dfa, b: &Dfa) -> Option<Word> {
    assert_eq!(a.syms, b.syms, "DFAs must share an alphabet");
    let nb = b.len();
    let encode = |sa: usize, sb: usize| sa * nb + sb;
    let mut seen = vec![false; a.len() * nb];
    // (state pair, predecessor index in `tree`, symbol leading here)
    let mut tree: Vec<(usize, Option<(usize, Sym)>)> = Vec::new();
    let mut queue = VecDeque::new();
    let start = encode(a.start, b.start);
    seen[start] = true;
    tree.push((start, None));
    queue.push_back(0usize);
    while let Some(ti) = queue.pop_front() {
        let (code, _) = tree[ti];
        let (sa, sb) = (code / nb, code % nb);
        if a.accept[sa] && !b.accept[sb] {
            // Reconstruct the witness.
            let mut word = Vec::new();
            let mut cur = ti;
            while let (_, Some((parent, sym))) = tree[cur] {
                word.push(sym);
                cur = parent;
            }
            word.reverse();
            return Some(word);
        }
        for (i, &sym) in a.syms.iter().enumerate() {
            let code2 = encode(a.trans[sa][i], b.trans[sb][i]);
            if !seen[code2] {
                seen[code2] = true;
                tree.push((code2, Some((ti, sym))));
                queue.push_back(tree.len() - 1);
            }
        }
    }
    None
}

/// Whether `L(a) ⊆ L(b)` (over the shared alphabet).
pub fn dfa_subset(a: &Dfa, b: &Dfa) -> bool {
    difference_witness(a, b).is_none()
}

/// Whether `L(a) = L(b)`.
pub fn dfa_equiv(a: &Dfa, b: &Dfa) -> bool {
    dfa_subset(a, b) && dfa_subset(b, a)
}

/// Whether two regular expressions denote the same language.
pub fn regex_equiv(r1: &Regex, r2: &Regex) -> bool {
    let alpha = joint_alphabet(&[&r1.symbols(), &r2.symbols()]);
    let d1 = Dfa::from_regex(r1, &alpha);
    let d2 = Dfa::from_regex(r2, &alpha);
    dfa_equiv(&d1, &d2)
}

/// Whether `L(r1) ⊆ L(r2)`.
pub fn regex_subset(r1: &Regex, r2: &Regex) -> bool {
    let alpha = joint_alphabet(&[&r1.symbols(), &r2.symbols()]);
    dfa_subset(&Dfa::from_regex(r1, &alpha), &Dfa::from_regex(r2, &alpha))
}

/// Whether an SOA and an RE denote the same language.
pub fn soa_equiv_regex(soa: &Soa, r: &Regex) -> bool {
    let soa_syms: Vec<Sym> = soa.states.iter().copied().collect();
    let alpha = joint_alphabet(&[&soa_syms, &r.symbols()]);
    dfa_equiv(&Dfa::from_soa(soa, &alpha), &Dfa::from_regex(r, &alpha))
}

/// Whether `L(soa) ⊆ L(r)` — the guarantee of Theorem 2.
pub fn soa_subset_of_regex(soa: &Soa, r: &Regex) -> bool {
    let soa_syms: Vec<Sym> = soa.states.iter().copied().collect();
    let alpha = joint_alphabet(&[&soa_syms, &r.symbols()]);
    dfa_subset(&Dfa::from_soa(soa, &alpha), &Dfa::from_regex(r, &alpha))
}

/// A word accepted by the SOA but not the RE (debugging aid for Theorem 2
/// violations).
pub fn soa_minus_regex_witness(soa: &Soa, r: &Regex) -> Option<Word> {
    let soa_syms: Vec<Sym> = soa.states.iter().copied().collect();
    let alpha = joint_alphabet(&[&soa_syms, &r.symbols()]);
    difference_witness(&Dfa::from_soa(soa, &alpha), &Dfa::from_regex(r, &alpha))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtdinfer_regex::alphabet::Alphabet;
    use dtdinfer_regex::parser::parse;

    fn re(src: &str, al: &mut Alphabet) -> Regex {
        parse(src, al).unwrap()
    }

    #[test]
    fn dfa_accepts_like_nfa() {
        let mut al = Alphabet::new();
        let r = re("((b? (a|c))+ d)+ e", &mut al);
        let d = Dfa::from_regex(&r, &r.symbols());
        for (w, expect) in [
            ("bacacdacde", true),
            ("ade", true),
            ("e", false),
            ("bde", false),
        ] {
            assert_eq!(d.accepts(&al.word_from_chars(w)), expect, "{w}");
        }
    }

    #[test]
    fn equivalence_of_star_representations() {
        let mut al = Alphabet::new();
        let r1 = re("a*", &mut al);
        let r2 = re("(a+)?", &mut al);
        assert!(regex_equiv(&r1, &r2));
    }

    #[test]
    fn paper_dagger_equivalence() {
        // (‡) ((b?(a|c))+d)+e equals the alternative form ((b?(a|c)+)+d)+e
        // noted in Figure 3's caption.
        let mut al = Alphabet::new();
        let r1 = re("((b? (a|c))+ d)+ e", &mut al);
        let r2 = re("((b? (a|c)+)+ d)+ e", &mut al);
        assert!(regex_equiv(&r1, &r2));
    }

    #[test]
    fn inequivalence_detected_with_witness() {
        let mut al = Alphabet::new();
        let r1 = re("(a | b)+ c", &mut al);
        let r2 = re("a+ c", &mut al);
        assert!(!regex_equiv(&r1, &r2));
        assert!(regex_subset(&r2, &r1));
        assert!(!regex_subset(&r1, &r2));
        let alpha = joint_alphabet(&[&r1.symbols(), &r2.symbols()]);
        let w = difference_witness(&Dfa::from_regex(&r1, &alpha), &Dfa::from_regex(&r2, &alpha))
            .unwrap();
        // Witness must contain a `b`.
        assert!(w.contains(&al.get("b").unwrap()));
    }

    #[test]
    fn soa_language_equals_sore_language() {
        let mut al = Alphabet::new();
        let r = re("((b? (a|c))+ d)+ e", &mut al);
        let soa = crate::glushkov::soa_of_sore(&r).unwrap();
        assert!(soa_equiv_regex(&soa, &r));
    }

    #[test]
    fn subautomaton_is_strict_subset() {
        let mut al = Alphabet::new();
        let r = re("((b? (a|c))+ d)+ e", &mut al);
        let words: Vec<_> = ["bacacdacde", "cbacdbacde"]
            .iter()
            .map(|w| al.word_from_chars(w))
            .collect();
        let sub = Soa::learn(&words);
        assert!(soa_subset_of_regex(&sub, &r));
        assert!(!soa_equiv_regex(&sub, &r));
    }

    #[test]
    fn empty_word_positions() {
        let mut al = Alphabet::new();
        let r = re("a?", &mut al);
        let d = Dfa::from_regex(&r, &r.symbols());
        assert!(d.accepts(&[]));
        assert!(d.accepts(&al.word_from_chars("a")));
        assert!(!d.accepts(&al.word_from_chars("aa")));
    }

    #[test]
    fn out_of_alphabet_symbols_reject() {
        let mut al = Alphabet::new();
        let r = re("a", &mut al);
        let d = Dfa::from_regex(&r, &r.symbols());
        let z = al.intern("z");
        assert!(!d.accepts(&[z]));
    }

    #[test]
    fn joint_alphabet_sorted_unique() {
        let mut al = Alphabet::new();
        let (a, b, c) = (al.intern("a"), al.intern("b"), al.intern("c"));
        assert_eq!(joint_alphabet(&[&[b, a], &[c, a]]), vec![a, b, c]);
    }

    #[test]
    fn witness_reconstruction_is_a_real_witness() {
        let mut al = Alphabet::new();
        let r1 = re("(a | b) (a | b) (a | b)", &mut al);
        let r2 = re("(a | b) (a | b)", &mut al);
        let alpha = joint_alphabet(&[&r1.symbols(), &r2.symbols()]);
        let d1 = Dfa::from_regex(&r1, &alpha);
        let d2 = Dfa::from_regex(&r2, &alpha);
        let w = difference_witness(&d1, &d2).unwrap();
        assert!(d1.accepts(&w));
        assert!(!d2.accepts(&w));
        assert_eq!(w.len(), 3);
    }
}
