//! DFA minimization (Hopcroft's partition-refinement algorithm).
//!
//! Used to canonicalize DFAs before size comparisons (e.g. measuring how
//! much language two inferred expressions share) and as an extra
//! verification path: two regular expressions are equivalent iff their
//! minimal DFAs are isomorphic, which cross-checks the product-based test
//! in [`crate::dfa`].

use crate::dfa::Dfa;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

impl Dfa {
    /// Returns the minimal DFA for the same language (unreachable states
    /// dropped, Myhill–Nerode classes merged).
    pub fn minimize(&self) -> Dfa {
        // 1. Restrict to reachable states.
        let reachable = self.reachable_states();
        let states: Vec<usize> = reachable.iter().copied().collect();
        let dense: BTreeMap<usize, usize> =
            states.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let k = self.syms.len();

        // 2. Hopcroft refinement over the reachable sub-automaton.
        let mut partition: Vec<usize> = states
            .iter()
            .map(|&s| usize::from(self.accept[s]))
            .collect();
        let mut num_classes = if partition.contains(&1) && partition.contains(&0) {
            2
        } else {
            1
        };
        if !partition.contains(&1) {
            // All non-accepting: normalize class ids to 0.
            partition.iter_mut().for_each(|c| *c = 0);
        } else if !partition.contains(&0) {
            partition.iter_mut().for_each(|c| *c = 0);
            num_classes = 1;
        }

        let mut worklist: VecDeque<(usize, usize)> = (0..num_classes)
            .flat_map(|c| (0..k).map(move |a| (c, a)))
            .collect();
        while let Some((class, a)) = worklist.pop_front() {
            // X = states with an a-transition into `class`.
            let mut x: BTreeSet<usize> = BTreeSet::new();
            for (di, &s) in states.iter().enumerate() {
                let t = self.trans[s][a];
                if let Some(&dt) = dense.get(&t) {
                    if partition[dt] == class {
                        x.insert(di);
                    }
                }
            }
            if x.is_empty() {
                continue;
            }
            // Split every class Y by X.
            let mut by_class: BTreeMap<usize, (Vec<usize>, Vec<usize>)> = BTreeMap::new();
            for (di, &c) in partition.iter().enumerate() {
                let entry = by_class.entry(c).or_default();
                if x.contains(&di) {
                    entry.0.push(di);
                } else {
                    entry.1.push(di);
                }
            }
            for (c, (inside, outside)) in by_class {
                if inside.is_empty() || outside.is_empty() {
                    continue;
                }
                let new_class = num_classes;
                num_classes += 1;
                let (smaller, _larger) = if inside.len() <= outside.len() {
                    (&inside, &outside)
                } else {
                    (&outside, &inside)
                };
                for &di in smaller {
                    partition[di] = new_class;
                }
                for b in 0..k {
                    worklist.push_back((new_class, b));
                    worklist.push_back((c, b));
                }
            }
        }

        // 3. Build the quotient automaton.
        let mut class_rep: BTreeMap<usize, usize> = BTreeMap::new();
        for (di, &c) in partition.iter().enumerate() {
            class_rep.entry(c).or_insert(di);
        }
        // Renumber classes densely in order of first representative.
        let mut renumber: BTreeMap<usize, usize> = BTreeMap::new();
        for &c in partition.iter() {
            let next = renumber.len();
            renumber.entry(c).or_insert(next);
        }
        let m = renumber.len();
        let mut accept = vec![false; m];
        let mut trans = vec![vec![0usize; k]; m];
        for (&c, &rep_di) in &class_rep {
            let q = renumber[&c];
            let s = states[rep_di];
            accept[q] = self.accept[s];
            for (a, slot) in trans[q].iter_mut().enumerate() {
                let t = self.trans[s][a];
                let dt = dense[&t]; // reachable: successors of reachable states
                *slot = renumber[&partition[dt]];
            }
        }
        Dfa {
            syms: self.syms.clone(),
            start: renumber[&partition[dense[&self.start]]],
            accept,
            trans,
        }
    }

    /// States reachable from the start state.
    pub fn reachable_states(&self) -> BTreeSet<usize> {
        let mut seen = BTreeSet::from([self.start]);
        let mut stack = vec![self.start];
        while let Some(s) = stack.pop() {
            for &t in &self.trans[s] {
                if seen.insert(t) {
                    stack.push(t);
                }
            }
        }
        seen
    }

    /// Number of states in the minimal DFA (a canonical complexity measure
    /// of the language).
    pub fn minimal_size(&self) -> usize {
        self.minimize().len()
    }
}

/// Whether two minimal DFAs are isomorphic (same language) — checked by a
/// synchronized walk from the start states.
pub fn isomorphic(a: &Dfa, b: &Dfa) -> bool {
    if a.syms != b.syms || a.len() != b.len() {
        return false;
    }
    let mut map: BTreeMap<usize, usize> = BTreeMap::new();
    let mut stack = vec![(a.start, b.start)];
    while let Some((x, y)) = stack.pop() {
        match map.get(&x) {
            Some(&mapped) => {
                if mapped != y {
                    return false;
                }
                continue;
            }
            None => {
                if a.accept[x] != b.accept[y] {
                    return false;
                }
                map.insert(x, y);
            }
        }
        for i in 0..a.syms.len() {
            stack.push((a.trans[x][i], b.trans[y][i]));
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::{dfa_equiv, joint_alphabet};
    use dtdinfer_regex::alphabet::Alphabet;
    use dtdinfer_regex::parser::parse;

    fn dfa(src: &str, al: &mut Alphabet) -> Dfa {
        let r = parse(src, al).unwrap();
        Dfa::from_regex(&r, &r.symbols())
    }

    #[test]
    fn minimization_preserves_language() {
        let mut al = Alphabet::new();
        for src in [
            "a",
            "(a | b)+ c",
            "((b? (a|c))+ d)+ e",
            "a? b? c? d?",
            "(a b)* (a c)*",
        ] {
            let mut local = Alphabet::new();
            let d = dfa(src, &mut local);
            let m = d.minimize();
            assert!(dfa_equiv(&d, &m), "{src}");
            assert!(m.len() <= d.len(), "{src}: grew");
        }
        let _ = al.intern("x");
    }

    #[test]
    fn minimization_is_idempotent() {
        let mut al = Alphabet::new();
        let d = dfa("(a | b)* a (a | b)", &mut al);
        let m1 = d.minimize();
        let m2 = m1.minimize();
        assert_eq!(m1.len(), m2.len());
        assert!(isomorphic(&m1, &m2));
    }

    #[test]
    fn equivalent_expressions_get_isomorphic_minimal_dfas() {
        let mut al = Alphabet::new();
        let r1 = parse("a*", &mut al).unwrap();
        let r2 = parse("(a+)?", &mut al).unwrap();
        let alpha = joint_alphabet(&[&r1.symbols(), &r2.symbols()]);
        let m1 = Dfa::from_regex(&r1, &alpha).minimize();
        let m2 = Dfa::from_regex(&r2, &alpha).minimize();
        assert!(isomorphic(&m1, &m2));
    }

    #[test]
    fn inequivalent_expressions_differ() {
        let mut al = Alphabet::new();
        let r1 = parse("a+", &mut al).unwrap();
        let r2 = parse("a*", &mut al).unwrap();
        let alpha = joint_alphabet(&[&r1.symbols(), &r2.symbols()]);
        let m1 = Dfa::from_regex(&r1, &alpha).minimize();
        let m2 = Dfa::from_regex(&r2, &alpha).minimize();
        assert!(!isomorphic(&m1, &m2));
    }

    #[test]
    fn known_minimal_sizes() {
        let mut al = Alphabet::new();
        // a+ over {a}: start + accepting loop, no dead state reachable.
        let d = dfa("a+", &mut al);
        assert_eq!(d.minimize().len(), 2);
        // a* over {a}: accepting loop only → 1 state.
        let mut al2 = Alphabet::new();
        let d = dfa("a*", &mut al2);
        assert_eq!(d.minimize().len(), 1);
    }

    #[test]
    fn redundant_states_are_merged() {
        // (a|b)(a|b) has equivalent intermediate states per branch.
        let mut al = Alphabet::new();
        let d = dfa("(a | b) (a | b)", &mut al);
        let m = d.minimize();
        assert!(m.len() < d.len());
        assert!(dfa_equiv(&d, &m));
    }
}
