//! Classical state elimination (Hopcroft–Ullman) from SOAs to REs.
//!
//! This is the textbook automaton→RE translation the paper contrasts
//! `rewrite` against: applied to the Figure 1 automaton it produces the
//! enormous expression (†) of §1.3 where the equivalent SORE (‡) is
//! `((b?(a|c))+d)+e` — by Ehrenfeucht & Zeiger the blow-up is exponential
//! in general and unavoidable for arbitrary automata.
//!
//! The implementation works on a GNFA whose transitions carry either ε or a
//! regular expression; states are eliminated one by one, composing
//! `R(i,j) := R(i,j) + R(i,q)·R(q,q)*·R(q,j)`.

use crate::soa::Soa;
use dtdinfer_regex::alphabet::Sym;
use dtdinfer_regex::ast::Regex;
use std::collections::HashMap;

/// A GNFA transition label: ε or a regular expression.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Label {
    Eps,
    Re(Regex),
}

impl Label {
    fn concat(a: &Label, b: &Label) -> Label {
        match (a, b) {
            (Label::Eps, x) | (x, Label::Eps) => x.clone(),
            (Label::Re(r), Label::Re(s)) => Label::Re(Regex::concat(vec![r.clone(), s.clone()])),
        }
    }

    fn union(a: Label, b: Label) -> Label {
        match (a, b) {
            (Label::Eps, Label::Eps) => Label::Eps,
            (Label::Eps, Label::Re(r)) | (Label::Re(r), Label::Eps) => {
                Label::Re(Regex::optional(r))
            }
            (Label::Re(r), Label::Re(s)) => {
                if r == s {
                    Label::Re(r)
                } else {
                    Label::Re(Regex::union(vec![r, s]))
                }
            }
        }
    }

    fn star(&self) -> Label {
        match self {
            Label::Eps => Label::Eps,
            Label::Re(r) => Label::Re(Regex::star(r.clone())),
        }
    }
}

/// Result of state elimination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElimResult {
    /// The automaton accepts nothing.
    Empty,
    /// The automaton accepts exactly {ε} (not expressible as a paper RE).
    EpsilonOnly,
    /// The language of the automaton.
    Regex(Regex),
    /// The language is `L(r) ∪ {ε}` for the contained `r` — reported
    /// separately because ε is not a paper RE; rendered as `(r)?` when the
    /// union is expressible.
    OptionalRegex(Regex),
}

impl ElimResult {
    /// The expression, folding `OptionalRegex(r)` into `r?`.
    pub fn into_regex(self) -> Option<Regex> {
        match self {
            ElimResult::Regex(r) => Some(r),
            ElimResult::OptionalRegex(r) => Some(Regex::optional(r)),
            _ => None,
        }
    }
}

/// Eliminates states in ascending symbol order (the deterministic default).
pub fn eliminate(soa: &Soa) -> ElimResult {
    let order: Vec<Sym> = soa.states.iter().copied().collect();
    eliminate_with_order(soa, &order)
}

/// Eliminates states in a caller-chosen order. Different orders give
/// differently-sized (but equivalent) expressions; the heuristics literature
/// the paper cites ([16, 27]) is entirely about picking this order.
pub fn eliminate_with_order(soa: &Soa, order: &[Sym]) -> ElimResult {
    // GNFA state numbering: 0 = start, 1 = accept, 2.. = symbol states.
    let state_of: HashMap<Sym, usize> = soa
        .states
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, i + 2))
        .collect();
    let mut trans: HashMap<(usize, usize), Label> = HashMap::new();
    for &s in &soa.initial {
        trans.insert((0, state_of[&s]), Label::Re(Regex::sym(s)));
    }
    for &(a, b) in &soa.edges {
        trans.insert((state_of[&a], state_of[&b]), Label::Re(Regex::sym(b)));
    }
    for &s in &soa.finals {
        trans.insert((state_of[&s], 1), Label::Eps);
    }
    if soa.accepts_empty {
        trans.insert((0, 1), Label::Eps);
    }

    let mut alive: Vec<usize> = vec![0, 1];
    alive.extend(state_of.values().copied());

    for &sym in order {
        let q = state_of[&sym];
        let self_loop = trans.remove(&(q, q));
        let loop_star = self_loop.as_ref().map(Label::star);
        let ins: Vec<(usize, Label)> = alive
            .iter()
            .filter(|&&i| i != q)
            .filter_map(|&i| trans.remove(&(i, q)).map(|l| (i, l)))
            .collect();
        let outs: Vec<(usize, Label)> = alive
            .iter()
            .filter(|&&j| j != q)
            .filter_map(|&j| trans.remove(&(q, j)).map(|l| (j, l)))
            .collect();
        for (i, lin) in &ins {
            for (j, lout) in &outs {
                let mut path = lin.clone();
                if let Some(ls) = &loop_star {
                    path = Label::concat(&path, ls);
                }
                path = Label::concat(&path, lout);
                let merged = match trans.remove(&(*i, *j)) {
                    Some(existing) => Label::union(existing, path),
                    None => path,
                };
                trans.insert((*i, *j), merged);
            }
        }
        alive.retain(|&s| s != q);
    }

    match trans.remove(&(0, 1)) {
        None => ElimResult::Empty,
        Some(Label::Eps) => ElimResult::EpsilonOnly,
        Some(Label::Re(r)) => {
            if soa.accepts_empty {
                // ε was folded into the union by Label::union → Optional.
                ElimResult::Regex(r)
            } else {
                ElimResult::Regex(r)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::soa_equiv_regex;
    use crate::glushkov::soa_of_sore;
    use dtdinfer_regex::alphabet::Alphabet;
    use dtdinfer_regex::parser::parse;

    fn learned(words: &[&str]) -> (Soa, Alphabet) {
        let mut al = Alphabet::new();
        let ws: Vec<_> = words.iter().map(|w| al.word_from_chars(w)).collect();
        (Soa::learn(&ws), al)
    }

    #[test]
    fn simple_chain() {
        let (soa, al) = learned(&["abc"]);
        let r = match eliminate(&soa) {
            ElimResult::Regex(r) => r,
            other => panic!("unexpected {other:?}"),
        };
        assert!(soa_equiv_regex(&soa, &r));
        assert_eq!(dtdinfer_regex::display::render(&r, &al), "a b c");
    }

    #[test]
    fn elimination_preserves_language() {
        for src in [
            "a+",
            "(a | b)+ c",
            "a? b? c",
            "((b? (a|c))+ d)+ e",
            "a (b | c)* d",
        ] {
            let mut al = Alphabet::new();
            let target = parse(src, &mut al).unwrap();
            let soa = soa_of_sore(&target).unwrap();
            let r = eliminate(&soa).into_regex().expect("non-trivial language");
            assert!(soa_equiv_regex(&soa, &r), "state elim broke {src}");
        }
    }

    #[test]
    fn figure1_blowup_vs_sore() {
        // State elimination on the Figure 1 automaton is dramatically larger
        // than the 5-symbol SORE (the paper's expression (†) has 180 symbol
        // occurrences vs 5 for (‡)).
        let (soa, mut al) = learned(&["bacacdacde", "cbacdbacde", "abccaadcde"]);
        let r = eliminate(&soa).into_regex().unwrap();
        assert!(soa_equiv_regex(&soa, &r));
        let sore = parse("((b? (a|c))+ d)+ e", &mut al).unwrap();
        assert!(
            r.symbol_count() > 10 * sore.symbol_count(),
            "expected blow-up, got {} vs {}",
            r.symbol_count(),
            sore.symbol_count()
        );
    }

    #[test]
    fn empty_automaton() {
        let soa = Soa::new();
        assert_eq!(eliminate(&soa), ElimResult::Empty);
    }

    #[test]
    fn epsilon_only() {
        let mut soa = Soa::new();
        soa.accepts_empty = true;
        assert_eq!(eliminate(&soa), ElimResult::EpsilonOnly);
    }

    #[test]
    fn nullable_language() {
        let mut al = Alphabet::new();
        let target = parse("a*", &mut al).unwrap();
        let soa = soa_of_sore(&target).unwrap();
        let r = eliminate(&soa).into_regex().unwrap();
        assert!(soa_equiv_regex(&soa, &r));
        assert!(r.nullable());
    }

    #[test]
    fn elimination_order_changes_size_not_language() {
        let (soa, _) = learned(&["bacacdacde", "cbacdbacde", "abccaadcde"]);
        let fwd: Vec<_> = soa.states.iter().copied().collect();
        let rev: Vec<_> = soa.states.iter().rev().copied().collect();
        let r1 = eliminate_with_order(&soa, &fwd).into_regex().unwrap();
        let r2 = eliminate_with_order(&soa, &rev).into_regex().unwrap();
        assert!(soa_equiv_regex(&soa, &r1));
        assert!(soa_equiv_regex(&soa, &r2));
    }
}
