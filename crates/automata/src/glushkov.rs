//! Glushkov construction (Proposition 1).
//!
//! For a SORE the positions of the Glushkov automaton are in bijection with
//! the alphabet symbols, so the construction yields exactly the single
//! occurrence automaton `Ar` with `L(r) = L(Ar)`, unique up to isomorphism.
//! For general expressions the construction yields a position [`crate::nfa::Nfa`]
//! (see [`crate::nfa`]).

use crate::soa::Soa;
use dtdinfer_regex::ast::Regex;
use dtdinfer_regex::classify::is_sore;
use dtdinfer_regex::props::two_gram_profile;

/// Builds the SOA of a SORE via the Glushkov construction.
///
/// Returns `None` if `r` is not single occurrence (the positions would not
/// be in bijection with symbols, so the result would not be an SOA).
pub fn soa_of_sore(r: &Regex) -> Option<Soa> {
    if !is_sore(r) {
        return None;
    }
    // For a single occurrence expression positions ≅ symbols, so the
    // 2-gram profile *is* the Glushkov automaton.
    let prof = two_gram_profile(r);
    Some(Soa::from_parts(
        prof.first,
        prof.last,
        prof.pairs,
        prof.nullable,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtdinfer_regex::alphabet::Alphabet;
    use dtdinfer_regex::parser::parse;

    fn build(src: &str) -> (Soa, Alphabet) {
        let mut al = Alphabet::new();
        let r = parse(src, &mut al).unwrap();
        (soa_of_sore(&r).expect("SORE"), al)
    }

    #[test]
    fn running_example_matches_learned_automaton() {
        // Prop. 1 + §4: 2T-INF on a representative sample of
        // ((b?(a|c))+d)+e recovers the Glushkov SOA exactly.
        let (glushkov, mut al) = build("((b? (a|c))+ d)+ e");
        let words: Vec<_> = ["bacacdacde", "cbacdbacde", "abccaadcde"]
            .iter()
            .map(|w| al.word_from_chars(w))
            .collect();
        let learned = Soa::learn(&words);
        assert_eq!(glushkov, learned);
    }

    #[test]
    fn accepts_what_the_sore_accepts() {
        let (soa, mut al) = build("(a | b)+ c");
        assert!(soa.accepts(&al.word_from_chars("abc")));
        assert!(soa.accepts(&al.word_from_chars("aababc")));
        assert!(soa.accepts(&al.word_from_chars("bc")));
        assert!(!soa.accepts(&al.word_from_chars("c")));
        assert!(!soa.accepts(&al.word_from_chars("ab")));
    }

    #[test]
    fn nullable_sore_gets_empty_edge() {
        let (soa, _) = build("a?");
        assert!(soa.accepts_empty);
        let (soa, _) = build("a+");
        assert!(!soa.accepts_empty);
    }

    #[test]
    fn non_sore_rejected() {
        let mut al = Alphabet::new();
        let r = parse("a (a | b)*", &mut al).unwrap();
        assert!(soa_of_sore(&r).is_none());
    }

    #[test]
    fn optional_chain() {
        let (soa, mut al) = build("a? b? c");
        assert!(soa.accepts(&al.word_from_chars("c")));
        assert!(soa.accepts(&al.word_from_chars("ac")));
        assert!(soa.accepts(&al.word_from_chars("bc")));
        assert!(soa.accepts(&al.word_from_chars("abc")));
        assert!(!soa.accepts(&al.word_from_chars("ab")));
        assert!(!soa.accepts(&al.word_from_chars("ba")));
    }
}
