//! Automata substrate for DTD inference.
//!
//! Implements every automaton representation the paper relies on:
//!
//! * [`soa`] — *single occurrence automata* (state-labeled graphs with one
//!   state per element name, §3) and the **2T-INF** inference algorithm of
//!   García & Vidal (§4) that learns the unique SOA of a 2-testable language
//!   from positive words.
//! * [`glushkov`] — Glushkov construction; for a SORE it yields exactly the
//!   SOA of Proposition 1.
//! * [`gfa`] — *generalized finite automata* whose states carry regular
//!   expressions, with the ε-closure and predecessor/successor machinery of
//!   §5 that the `rewrite` system (in `dtdinfer-core`) operates on.
//! * [`state_elim`] — the classical state-elimination translation to REs
//!   (Hopcroft–Ullman), included to demonstrate the exponential blow-up the
//!   paper contrasts against (expression (†) of §1.3).
//! * [`nfa`] / [`dfa`] — position NFAs, subset construction, DFA product,
//!   language equivalence and inclusion. These are the verification
//!   backbone: every claim of the form `L(A) = L(r)` or `L(A) ⊆ L(r)` in
//!   the test suite is checked through this module.

#![warn(missing_docs)]

pub mod dfa;
pub mod gfa;
pub mod glushkov;
pub mod ktestable;
pub mod minimize;
pub mod nfa;
pub mod ops;
pub mod soa;
pub mod state_elim;

pub use dfa::Dfa;
pub use gfa::{Gfa, NodeId};
pub use glushkov::soa_of_sore;
pub use nfa::Nfa;
pub use soa::Soa;
