//! k-testable languages in the strict sense (García & Vidal, cited as [23]).
//!
//! The paper builds exclusively on the k = 2 case — a 2-testable language
//! is determined by its allowed first symbols, last symbols and 2-grams,
//! and corresponds exactly to a single occurrence automaton (§4). The
//! general k-testable machinery implemented here is the natural
//! "specificity knob" the same inference framework offers: larger k yields
//! strictly more specific languages at the cost of needing more data,
//! which the `ktest_specificity` test below demonstrates. (For k > 2 the
//! learned automaton is no longer single occurrence, so the SORE/CHARE
//! translation of the paper does not apply — the reason the paper fixes
//! k = 2.)
//!
//! A k-testable language is given by: `I` — allowed prefixes of length
//! k−1; `F` — allowed suffixes of length k−1; `T` — allowed k-grams; and
//! the finite set `S` of allowed words *shorter than k−1* (such words are
//! too short to have a (k−1)-window, so the window conditions cannot see
//! them — note a word of length exactly k−1 is its own prefix and suffix
//! and is covered by `I`/`F`, not `S`). A word of length ≥ k−1 belongs
//! iff its (k−1)-prefix ∈ I, its (k−1)-suffix ∈ F and all its k-grams
//! ∈ T; a shorter word belongs iff it is in S. The empty word is in S for
//! every k ≥ 2, but for k = 1 it is the (empty) prefix/suffix window
//! itself — the boundary the `empty_word_only_sample` test pins down.

use crate::dfa::Dfa;
use dtdinfer_regex::alphabet::{Sym, Word};
use std::collections::{BTreeMap, BTreeSet};

/// A learned k-testable language (strict sense).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KTestable {
    /// The window size k ≥ 1.
    pub k: usize,
    /// Allowed (k−1)-prefixes.
    pub prefixes: BTreeSet<Word>,
    /// Allowed (k−1)-suffixes.
    pub suffixes: BTreeSet<Word>,
    /// Allowed k-grams.
    pub grams: BTreeSet<Word>,
    /// Words shorter than k−1 seen verbatim (they are not covered by the
    /// window conditions).
    pub shorts: BTreeSet<Word>,
}

impl KTestable {
    /// Learns the smallest k-testable language containing every sample
    /// word (the k-generalization of 2T-INF).
    pub fn learn<'a, I>(k: usize, sample: I) -> Self
    where
        I: IntoIterator<Item = &'a Word>,
    {
        assert!(k >= 1, "k must be at least 1");
        let mut out = KTestable {
            k,
            prefixes: BTreeSet::new(),
            suffixes: BTreeSet::new(),
            grams: BTreeSet::new(),
            shorts: BTreeSet::new(),
        };
        for w in sample {
            out.absorb(w);
        }
        out
    }

    /// Incrementally absorbs one word.
    pub fn absorb(&mut self, w: &Word) {
        let k = self.k;
        if w.len() < k.saturating_sub(1) {
            self.shorts.insert(w.clone());
            return;
        }
        self.prefixes.insert(w[..k - 1].to_vec());
        self.suffixes.insert(w[w.len() - (k - 1)..].to_vec());
        for gram in w.windows(k) {
            self.grams.insert(gram.to_vec());
        }
    }

    /// Membership in the learned language.
    pub fn accepts(&self, w: &[Sym]) -> bool {
        let k = self.k;
        if w.len() < k.saturating_sub(1) {
            return self.shorts.contains(w);
        }

        self.prefixes.contains(&w[..k - 1])
            && self.suffixes.contains(&w[w.len() - (k - 1)..])
            && w.windows(k).all(|g| self.grams.contains(g))
    }

    /// Whether this language contains `other` (componentwise inclusion —
    /// sound and complete for equal k).
    pub fn contains(&self, other: &KTestable) -> bool {
        assert_eq!(self.k, other.k, "containment requires equal k");
        other.prefixes.is_subset(&self.prefixes)
            && other.suffixes.is_subset(&self.suffixes)
            && other.grams.is_subset(&self.grams)
            && other.shorts.is_subset(&self.shorts)
    }

    /// All symbols mentioned anywhere in the descriptor.
    pub fn symbols(&self) -> Vec<Sym> {
        let mut set = BTreeSet::new();
        for w in self
            .prefixes
            .iter()
            .chain(&self.suffixes)
            .chain(&self.grams)
            .chain(&self.shorts)
        {
            set.extend(w.iter().copied());
        }
        set.into_iter().collect()
    }

    /// Compiles the descriptor to a complete DFA over `alphabet` (states =
    /// windows of the last k−1 symbols read).
    pub fn to_dfa(&self, alphabet: &[Sym]) -> Dfa {
        let mut syms = alphabet.to_vec();
        syms.sort_unstable();
        syms.dedup();
        let k = self.k;
        // State: Err = dead; Ok(window) where window.len() < k-1 means "read
        // so far" (short phase), == k-1 means sliding window.
        let mut index: BTreeMap<Option<Word>, usize> = BTreeMap::new();
        let mut order: Vec<Option<Word>> = Vec::new();
        let mut intern = |key: Option<Word>, order: &mut Vec<Option<Word>>| -> (usize, bool) {
            if let Some(&i) = index.get(&key) {
                return (i, false);
            }
            let i = order.len();
            index.insert(key.clone(), i);
            order.push(key);
            (i, true)
        };
        let (start, _) = intern(Some(Vec::new()), &mut order);
        let mut trans: Vec<Vec<usize>> = Vec::new();
        let mut accept: Vec<bool> = Vec::new();
        let mut queue = vec![start];
        while let Some(state) = queue.pop() {
            if trans.len() <= state {
                trans.resize(state + 1, Vec::new());
                accept.resize(state + 1, false);
            }
            let key = order[state].clone();
            accept[state] = match &key {
                None => false,
                Some(window) => {
                    if window.len() < k.saturating_sub(1) {
                        self.shorts.contains(window)
                    } else {
                        // Words ending here have this window as suffix; the
                        // prefix/gram conditions were enforced on the way.
                        self.suffixes.contains(window)
                    }
                }
            };
            let mut row = Vec::with_capacity(syms.len());
            for &s in &syms {
                let next_key: Option<Word> = match &key {
                    None => None,
                    Some(window) => {
                        let mut next = window.clone();
                        next.push(s);
                        if next.len() < k.saturating_sub(1) {
                            Some(next) // still assembling the first window
                        } else if next.len() == k.saturating_sub(1) {
                            // The first full (k-1)-window: must be a legal
                            // prefix.
                            if self.prefixes.contains(&next) {
                                Some(next)
                            } else {
                                None
                            }
                        } else {
                            // Sliding: the new k-gram must be allowed.
                            if self.grams.contains(&next) {
                                next.remove(0);
                                Some(next)
                            } else {
                                None
                            }
                        }
                    }
                };
                let (target, fresh) = intern(next_key, &mut order);
                if fresh {
                    queue.push(target);
                }
                row.push(target);
            }
            trans[state] = row;
        }
        debug_assert_eq!(trans.len(), order.len(), "every state visited once");
        Dfa {
            syms,
            start,
            accept,
            trans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soa::Soa;
    use dtdinfer_regex::alphabet::Alphabet;

    fn words(al: &mut Alphabet, ws: &[&str]) -> Vec<Word> {
        ws.iter().map(|w| al.word_from_chars(w)).collect()
    }

    #[test]
    fn k2_coincides_with_soa() {
        let mut al = Alphabet::new();
        let sample = words(&mut al, &["bacacdacde", "cbacdbacde", "abccaadcde"]);
        let k2 = KTestable::learn(2, &sample);
        let soa = Soa::learn(&sample);
        // Same acceptance on a batch of probes.
        let probes = words(
            &mut al,
            &["bacacdacde", "ade", "bde", "e", "acde", "abcde", "aaaade"],
        );
        for p in &probes {
            assert_eq!(k2.accepts(p), soa.accepts(p), "{p:?}");
        }
    }

    #[test]
    fn larger_k_is_more_specific() {
        let mut al = Alphabet::new();
        let sample = words(&mut al, &["aabb", "aaabbb"]);
        let k2 = KTestable::learn(2, &sample);
        let k3 = KTestable::learn(3, &sample);
        // k=2 overgeneralizes to a+b+; k=3 requires aa ... bb shape.
        let w = al.word_from_chars("ab");
        assert!(k2.accepts(&w));
        assert!(!k3.accepts(&w), "k=3 must reject ab (no 2-prefix 'ab'… )");
        // Every sample word accepted by both.
        for s in &sample {
            assert!(k2.accepts(s));
            assert!(k3.accepts(s), "{s:?}");
        }
    }

    #[test]
    fn ktest_specificity_chain() {
        // L(k+1) ⊆ L(k) on the sample probes.
        let mut al = Alphabet::new();
        let sample = words(&mut al, &["abcabc", "abc", "abcabcabc"]);
        let k2 = KTestable::learn(2, &sample);
        let k3 = KTestable::learn(3, &sample);
        let k4 = KTestable::learn(4, &sample);
        let mut probe_al = al.clone();
        for probe in ["abc", "abcabc", "abcbc", "ababc", "abcab", "bcabc", "aabc"] {
            let w = probe_al.word_from_chars(probe);
            let (a2, a3, a4) = (k2.accepts(&w), k3.accepts(&w), k4.accepts(&w));
            assert!(!a3 || a2, "{probe}: k3 ⊆ k2 violated");
            assert!(!a4 || a3, "{probe}: k4 ⊆ k3 violated");
        }
    }

    #[test]
    fn short_words_handled() {
        let mut al = Alphabet::new();
        let sample = words(&mut al, &["", "a", "abc"]);
        let k3 = KTestable::learn(3, &sample);
        assert!(k3.accepts(&[]));
        assert!(k3.accepts(&al.word_from_chars("a")));
        assert!(!k3.accepts(&al.word_from_chars("b")));
        assert!(k3.accepts(&al.word_from_chars("abc")));
    }

    #[test]
    fn dfa_compilation_agrees_with_direct_membership() {
        let mut al = Alphabet::new();
        let sample = words(&mut al, &["aabb", "aaabbb", "ab", "abab"]);
        for k in 1..=4usize {
            let kt = KTestable::learn(k, &sample);
            let dfa = kt.to_dfa(&kt.symbols());
            let mut probe_al = al.clone();
            for probe in [
                "", "a", "b", "ab", "ba", "aabb", "abab", "aaabbb", "aabbb", "abb", "ababab",
            ] {
                let w = probe_al.word_from_chars(probe);
                assert_eq!(dfa.accepts(&w), kt.accepts(&w), "k={k} probe={probe:?}");
            }
        }
    }

    #[test]
    fn containment() {
        let mut al = Alphabet::new();
        let big = KTestable::learn(2, &words(&mut al, &["ab", "ba", "aa"]));
        let small = KTestable::learn(2, &words(&mut al, &["ab"]));
        assert!(big.contains(&small));
        assert!(!small.contains(&big));
    }

    #[test]
    fn empty_word_only_sample() {
        // The ε-only sample is the boundary between the S bucket (k ≥ 2:
        // ε is shorter than k−1) and the window conditions (k = 1: ε is
        // the empty prefix/suffix window). Either way the learned language
        // must be exactly {ε}, and the compiled DFA must agree.
        let mut al = Alphabet::new();
        let sample = vec![Word::new()];
        let a = al.intern("a");
        let b = al.intern("b");
        for k in 1..=4usize {
            let kt = KTestable::learn(k, &sample);
            assert!(kt.accepts(&[]), "k={k}: ε must be accepted");
            for probe in [vec![a], vec![b], vec![a, a], vec![a, b, a]] {
                assert!(!kt.accepts(&probe), "k={k}: {probe:?} must be rejected");
            }
            // contains is reflexive and agrees with the learned components
            // even when every window set is empty (k ≥ 2).
            assert!(kt.contains(&kt), "k={k}: containment must be reflexive");
            assert!(
                kt.contains(&KTestable::learn(k, &sample)),
                "k={k}: relearning ε changes nothing"
            );
            // to_dfa over an explicit alphabet (symbols() is empty here, so
            // pass one) accepts exactly ε too.
            let dfa = kt.to_dfa(&[a, b]);
            assert!(dfa.accepts(&[]), "k={k}: DFA must accept ε");
            for probe in [vec![a], vec![b], vec![b, a]] {
                assert!(!dfa.accepts(&probe), "k={k}: DFA must reject {probe:?}");
            }
        }
    }

    #[test]
    fn accepts_and_dfa_agree_on_boundary_length_words() {
        // Exhaustive differential check on every word of length ≤ 4 over a
        // two-symbol alphabet, for samples that straddle the short/window
        // boundary (ε, length k−2, k−1 and k words together).
        let mut al = Alphabet::new();
        let a = al.intern("a");
        let b = al.intern("b");
        let samples: Vec<Vec<Word>> = vec![
            vec![Word::new(), vec![a]],
            vec![vec![a], vec![a, b]],
            vec![Word::new(), vec![a, b], vec![a, b, a]],
            vec![vec![b, b], vec![a, b, a, b]],
        ];
        let mut probes: Vec<Word> = vec![Word::new()];
        let mut frontier: Vec<Word> = vec![Word::new()];
        for _ in 0..4 {
            let mut next = Vec::new();
            for w in &frontier {
                for &s in &[a, b] {
                    let mut e = w.clone();
                    e.push(s);
                    next.push(e);
                }
            }
            probes.extend(next.iter().cloned());
            frontier = next;
        }
        for sample in &samples {
            for k in 1..=4usize {
                let kt = KTestable::learn(k, sample);
                for w in sample {
                    assert!(kt.accepts(w), "k={k}: sample word {w:?} must be accepted");
                }
                let dfa = kt.to_dfa(&[a, b]);
                for p in &probes {
                    assert_eq!(
                        kt.accepts(p),
                        dfa.accepts(p),
                        "k={k} sample={sample:?} probe={p:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn k1_is_symbol_set_language() {
        // k=1: prefixes/suffixes are ε; membership = all symbols' 1-grams
        // allowed.
        let mut al = Alphabet::new();
        let kt = KTestable::learn(1, &words(&mut al, &["ab"]));
        assert!(kt.accepts(&al.word_from_chars("abba")));
        assert!(!kt.accepts(&al.word_from_chars("abc")));
    }
}
