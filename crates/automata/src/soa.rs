//! Single occurrence automata and 2T-INF (§3–§4).
//!
//! An SOA is a Σ-labeled graph with a unique source and sink in which every
//! alphabet symbol labels at most one state; edges are unlabeled because
//! every edge implicitly carries the label of the state it points to. A
//! 2-testable language is uniquely identified by its SOA and vice versa, and
//! [`Soa::learn`] (the 2T-INF algorithm) recovers it from positive words:
//! initial symbols, final symbols and the set of 2-grams.

use dtdinfer_regex::alphabet::{Alphabet, Sym, Word};
use std::collections::BTreeSet;

/// A single occurrence automaton.
///
/// States are identified by their labels (element names); the implicit
/// source and sink are kept as the `initial` / `finals` / `accepts_empty`
/// components rather than explicit nodes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Soa {
    /// Symbols labeling a state.
    pub states: BTreeSet<Sym>,
    /// Edges between labeled states: `(a, b)` means "b may directly follow
    /// a".
    pub edges: BTreeSet<(Sym, Sym)>,
    /// Symbols with an edge from the source (words may start with them).
    pub initial: BTreeSet<Sym>,
    /// Symbols with an edge to the sink (words may end with them).
    pub finals: BTreeSet<Sym>,
    /// Whether there is a direct source→sink edge (ε is accepted).
    pub accepts_empty: bool,
}

impl Soa {
    /// Creates an empty SOA accepting nothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// **2T-INF** (García & Vidal, §4): learns the SOA of the smallest
    /// 2-testable language containing every word of `sample`.
    pub fn learn<'a, I>(sample: I) -> Self
    where
        I: IntoIterator<Item = &'a Word>,
    {
        let _span = dtdinfer_obs::span("automata.2tinf");
        let mut soa = Self::new();
        for w in sample {
            soa.absorb(w);
        }
        dtdinfer_obs::observe("automata.soa.states", soa.num_states() as u64);
        dtdinfer_obs::observe("automata.soa.edges", soa.num_edges() as u64);
        soa
    }

    /// Incrementally extends the automaton with one more example word (the
    /// incremental-computation extension of §9: the SOA is the complete
    /// internal state; the original words can be forgotten).
    pub fn absorb(&mut self, w: &Word) {
        // 2T-INF telemetry: one relaxed atomic load when recording is off.
        let recording = dtdinfer_obs::metrics_enabled();
        let before = if recording {
            (self.num_states(), self.num_edges())
        } else {
            (0, 0)
        };
        match w.split_first() {
            None => self.accepts_empty = true,
            Some((&first, _)) => {
                self.initial.insert(first);
                self.finals.insert(*w.last().expect("non-empty"));
                for &s in w {
                    self.states.insert(s);
                }
                for pair in w.windows(2) {
                    self.edges.insert((pair[0], pair[1]));
                }
            }
        }
        if recording {
            dtdinfer_obs::count("automata.2tinf.words", 1);
            dtdinfer_obs::count(
                "automata.2tinf.states_added",
                (self.num_states() - before.0) as u64,
            );
            // Every new edge/initial/final the word contributes is one
            // 2T-INF merge step.
            dtdinfer_obs::count(
                "automata.2tinf.merge_steps",
                (self.num_edges() - before.1) as u64,
            );
        }
    }

    /// Merges `other` into this automaton: the result is the SOA of the
    /// smallest 2-testable language containing both languages (componentwise
    /// union of the `(I, F, S, ε)` characterization).
    ///
    /// Because 2T-INF is itself a union of per-word contributions,
    /// `merge(learn(A), learn(B)) == learn(A ∪ B)` — the property that makes
    /// sharded corpus ingestion exact: shard-local automata merged in any
    /// order equal the sequential automaton.
    pub fn merge(&mut self, other: &Soa) {
        self.states.extend(other.states.iter().copied());
        self.edges.extend(other.edges.iter().copied());
        self.initial.extend(other.initial.iter().copied());
        self.finals.extend(other.finals.iter().copied());
        self.accepts_empty |= other.accepts_empty;
        dtdinfer_obs::count("automata.soa.merges", 1);
    }

    /// Rebuilds the automaton under a symbol translation (used when merging
    /// automata built over different [`Alphabet`]s: translate into the
    /// target alphabet first, then [`Soa::merge`]).
    ///
    /// `f` must be injective on this automaton's states; otherwise distinct
    /// states would collapse and the language would grow.
    pub fn remap(&self, mut f: impl FnMut(Sym) -> Sym) -> Soa {
        Soa {
            states: self.states.iter().map(|&s| f(s)).collect(),
            edges: self.edges.iter().map(|&(a, b)| (f(a), f(b))).collect(),
            initial: self.initial.iter().map(|&s| f(s)).collect(),
            finals: self.finals.iter().map(|&s| f(s)).collect(),
            accepts_empty: self.accepts_empty,
        }
    }

    /// Builds an SOA from an explicit `(I, F, S)` triple.
    pub fn from_parts(
        initial: impl IntoIterator<Item = Sym>,
        finals: impl IntoIterator<Item = Sym>,
        pairs: impl IntoIterator<Item = (Sym, Sym)>,
        accepts_empty: bool,
    ) -> Self {
        let mut soa = Self {
            initial: initial.into_iter().collect(),
            finals: finals.into_iter().collect(),
            edges: pairs.into_iter().collect(),
            accepts_empty,
            ..Self::default()
        };
        soa.states.extend(soa.initial.iter().copied());
        soa.states.extend(soa.finals.iter().copied());
        let edge_syms: Vec<Sym> = soa.edges.iter().flat_map(|&(a, b)| [a, b]).collect();
        soa.states.extend(edge_syms);
        soa
    }

    /// Whether the automaton accepts `w`: `w` starts in `I`, ends in `F`,
    /// and every adjacent pair is an allowed 2-gram.
    pub fn accepts(&self, w: &[Sym]) -> bool {
        match w.split_first() {
            None => self.accepts_empty,
            Some((&first, _)) => {
                self.initial.contains(&first)
                    && self.finals.contains(w.last().expect("non-empty"))
                    && w.windows(2).all(|p| self.edges.contains(&(p[0], p[1])))
            }
        }
    }

    /// Number of labeled states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Number of edges, counting source and sink edges like the paper does
    /// when it reports "the SOA corresponding to example3 already contains
    /// 1897 edges".
    pub fn num_edges(&self) -> usize {
        self.edges.len() + self.initial.len() + self.finals.len() + usize::from(self.accepts_empty)
    }

    /// Whether `other` accepts a subset of this automaton's language
    /// (componentwise containment of the `(I, F, S, ε)` characterization —
    /// sound and complete for 2-testable languages).
    pub fn contains(&self, other: &Soa) -> bool {
        other.initial.is_subset(&self.initial)
            && other.finals.is_subset(&self.finals)
            && other.edges.is_subset(&self.edges)
            && (!other.accepts_empty || self.accepts_empty)
    }

    /// Direct successors of `s` among labeled states.
    pub fn succ(&self, s: Sym) -> impl Iterator<Item = Sym> + '_ {
        self.edges
            .range((s, Sym(0))..=(s, Sym(u32::MAX)))
            .map(|&(_, b)| b)
    }

    /// Direct predecessors of `s` among labeled states.
    pub fn pred(&self, s: Sym) -> impl Iterator<Item = Sym> + '_ {
        self.edges
            .iter()
            .filter(move |&&(_, b)| b == s)
            .map(|&(a, _)| a)
    }

    /// Serializes the automaton to a line-oriented text format (for the
    /// incremental-inference workflows of §9: persist the SOA between
    /// sessions instead of the XML corpus).
    ///
    /// Format (one record per line): `state NAME`, `initial NAME`,
    /// `final NAME`, `edge NAME NAME`, `empty`.
    pub fn to_text(&self, alphabet: &Alphabet) -> String {
        let mut out = String::from("#dtdinfer-soa v1\n");
        for &s in &self.states {
            out.push_str(&format!("state {}\n", alphabet.name(s)));
        }
        for &s in &self.initial {
            out.push_str(&format!("initial {}\n", alphabet.name(s)));
        }
        for &s in &self.finals {
            out.push_str(&format!("final {}\n", alphabet.name(s)));
        }
        for &(a, b) in &self.edges {
            out.push_str(&format!("edge {} {}\n", alphabet.name(a), alphabet.name(b)));
        }
        if self.accepts_empty {
            out.push_str("empty\n");
        }
        out
    }

    /// Parses the [`Soa::to_text`] format, interning names into `alphabet`.
    pub fn from_text(text: &str, alphabet: &mut Alphabet) -> Result<Self, String> {
        let mut soa = Soa::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let kind = parts.next().expect("non-empty line");
            let mut arg = || {
                parts
                    .next()
                    .ok_or_else(|| format!("line {}: missing name", lineno + 1))
            };
            match kind {
                "state" => {
                    let s = alphabet.intern(arg()?);
                    soa.states.insert(s);
                }
                "initial" => {
                    let s = alphabet.intern(arg()?);
                    soa.states.insert(s);
                    soa.initial.insert(s);
                }
                "final" => {
                    let s = alphabet.intern(arg()?);
                    soa.states.insert(s);
                    soa.finals.insert(s);
                }
                "edge" => {
                    let a = alphabet.intern(arg()?);
                    let b = alphabet.intern(arg()?);
                    soa.states.insert(a);
                    soa.states.insert(b);
                    soa.edges.insert((a, b));
                }
                "empty" => soa.accepts_empty = true,
                other => return Err(format!("line {}: unknown record {other:?}", lineno + 1)),
            }
        }
        Ok(soa)
    }

    /// Graphviz rendering (used by examples and docs).
    pub fn to_dot(&self, alphabet: &Alphabet) -> String {
        let mut out = String::from("digraph soa {\n  rankdir=LR;\n  src [shape=point];\n  snk [shape=doublecircle, label=\"\"];\n");
        for &s in &self.states {
            out.push_str(&format!("  n{} [label=\"{}\"];\n", s.0, alphabet.name(s)));
        }
        for &s in &self.initial {
            out.push_str(&format!("  src -> n{};\n", s.0));
        }
        for &(a, b) in &self.edges {
            out.push_str(&format!("  n{} -> n{};\n", a.0, b.0));
        }
        for &s in &self.finals {
            out.push_str(&format!("  n{} -> snk;\n", s.0));
        }
        if self.accepts_empty {
            out.push_str("  src -> snk;\n");
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(alphabet: &mut Alphabet, words: &[&str]) -> Vec<Word> {
        words.iter().map(|w| alphabet.word_from_chars(w)).collect()
    }

    /// The paper's Figure 1 automaton, learned from
    /// W = {bacacdacde, cbacdbacde, abccaadcde}.
    #[test]
    fn figure1_automaton() {
        let mut al = Alphabet::new();
        let words = sample(&mut al, &["bacacdacde", "cbacdbacde", "abccaadcde"]);
        let soa = Soa::learn(&words);
        let s = |n: &str| al.get(n).unwrap();
        assert_eq!(
            soa.initial,
            [s("a"), s("b"), s("c")]
                .into_iter()
                .collect::<BTreeSet<_>>()
        );
        assert_eq!(soa.finals, [s("e")].into_iter().collect::<BTreeSet<_>>());
        let expect: BTreeSet<(Sym, Sym)> = [
            ("a", "a"),
            ("a", "d"),
            ("a", "c"),
            ("a", "b"),
            ("b", "a"),
            ("b", "c"),
            ("c", "b"),
            ("c", "c"),
            ("c", "a"),
            ("c", "d"),
            ("d", "a"),
            ("d", "b"),
            ("d", "c"),
            ("d", "e"),
        ]
        .iter()
        .map(|&(x, y)| (s(x), s(y)))
        .collect();
        assert_eq!(soa.edges, expect);
        assert!(!soa.accepts_empty);
    }

    /// Figure 2: the sub-automaton learned from only the first two words.
    #[test]
    fn figure2_is_subautomaton_of_figure1() {
        let mut al = Alphabet::new();
        let all = sample(&mut al, &["bacacdacde", "cbacdbacde", "abccaadcde"]);
        let partial = sample(&mut al, &["bacacdacde", "cbacdbacde"]);
        let full = Soa::learn(&all);
        let sub = Soa::learn(&partial);
        assert!(full.contains(&sub));
        assert!(!sub.contains(&full));
        assert!(sub.edges.len() < full.edges.len());
    }

    #[test]
    fn accepts_training_words() {
        let mut al = Alphabet::new();
        let words = sample(&mut al, &["bacacdacde", "cbacdbacde", "abccaadcde"]);
        let soa = Soa::learn(&words);
        for w in &words {
            assert!(soa.accepts(w));
        }
    }

    #[test]
    fn accepts_generalizes_to_2testable_closure() {
        let mut al = Alphabet::new();
        let words = sample(&mut al, &["abc"]);
        let soa = Soa::learn(&words);
        assert!(soa.accepts(&al.word_from_chars("abc")));
        assert!(!soa.accepts(&al.word_from_chars("ab"))); // b not final
        assert!(!soa.accepts(&al.word_from_chars("bc"))); // b not initial
    }

    #[test]
    fn loops_generalize() {
        let mut al = Alphabet::new();
        let words = sample(&mut al, &["aab"]);
        let soa = Soa::learn(&words);
        // "aa" 2-gram allows arbitrarily many a's.
        assert!(soa.accepts(&al.word_from_chars("aaaab")));
        assert!(soa.accepts(&al.word_from_chars("ab")));
    }

    #[test]
    fn empty_word_handling() {
        let mut al = Alphabet::new();
        let a = al.intern("a");
        let words: Vec<Word> = vec![vec![], vec![a]];
        let soa = Soa::learn(&words);
        assert!(soa.accepts_empty);
        assert!(soa.accepts(&[]));
        assert!(soa.accepts(&[a]));
        assert!(!soa.accepts(&[a, a]));
    }

    #[test]
    fn incremental_absorb_equals_batch() {
        let mut al = Alphabet::new();
        let words = sample(&mut al, &["abc", "acb", "bca"]);
        let batch = Soa::learn(&words);
        let mut inc = Soa::new();
        for w in &words {
            inc.absorb(w);
        }
        assert_eq!(batch, inc);
    }

    #[test]
    fn edge_count_includes_source_and_sink() {
        let mut al = Alphabet::new();
        let words = sample(&mut al, &["ab"]);
        let soa = Soa::learn(&words);
        // source->a, a->b, b->sink
        assert_eq!(soa.num_edges(), 3);
        assert_eq!(soa.num_states(), 2);
    }

    #[test]
    fn succ_pred() {
        let mut al = Alphabet::new();
        let words = sample(&mut al, &["abc", "abd"]);
        let soa = Soa::learn(&words);
        let s = |n: &str| al.get(n).unwrap();
        let succ_b: Vec<Sym> = soa.succ(s("b")).collect();
        assert_eq!(succ_b, vec![s("c"), s("d")]);
        let pred_b: Vec<Sym> = soa.pred(s("b")).collect();
        assert_eq!(pred_b, vec![s("a")]);
    }

    #[test]
    fn merge_equals_learning_the_union() {
        let mut al = Alphabet::new();
        let all = sample(&mut al, &["bacacdacde", "cbacdbacde", "abccaadcde", ""]);
        let whole = Soa::learn(&all);
        // Every 2-way split merges back to the automaton of the union.
        for cut in 0..=all.len() {
            let mut left = Soa::learn(&all[..cut]);
            let right = Soa::learn(&all[cut..]);
            left.merge(&right);
            assert_eq!(left, whole, "cut at {cut}");
        }
    }

    #[test]
    fn merge_is_commutative_and_idempotent() {
        let mut al = Alphabet::new();
        let a = Soa::learn(&sample(&mut al, &["abc", "ca"]));
        let b = Soa::learn(&sample(&mut al, &["bb", "c"]));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        let mut again = ab.clone();
        again.merge(&ab.clone());
        assert_eq!(again, ab);
    }

    #[test]
    fn remap_translates_every_component() {
        let mut al = Alphabet::new();
        let soa = Soa::learn(&sample(&mut al, &["ab", ""]));
        // Shift all ids by 10.
        let shifted = soa.remap(|s| Sym(s.0 + 10));
        assert!(shifted.accepts_empty);
        assert_eq!(shifted.num_states(), soa.num_states());
        assert_eq!(shifted.num_edges(), soa.num_edges());
        assert!(shifted.accepts(&[Sym(10), Sym(11)]));
        assert!(!shifted.accepts(&al.word_from_chars("ab")));
        // Remapping back round-trips.
        assert_eq!(shifted.remap(|s| Sym(s.0 - 10)), soa);
    }

    #[test]
    fn from_parts_round_trip() {
        let mut al = Alphabet::new();
        let (a, b) = (al.intern("a"), al.intern("b"));
        let soa = Soa::from_parts([a], [b], [(a, b)], false);
        assert!(soa.accepts(&[a, b]));
        assert!(!soa.accepts(&[a]));
        assert_eq!(soa.num_states(), 2);
    }

    #[test]
    fn text_round_trip() {
        let mut al = Alphabet::new();
        let words = sample(&mut al, &["bacacdacde", "cbacdbacde", ""]);
        let soa = Soa::learn(&words);
        let text = soa.to_text(&al);
        let mut al2 = Alphabet::new();
        let back = Soa::from_text(&text, &mut al2).unwrap();
        // Compare via re-serialization over the new alphabet ordering.
        assert_eq!(back.to_text(&al2), text);
        assert!(back.accepts_empty);
        assert_eq!(back.num_edges(), soa.num_edges());
    }

    #[test]
    fn text_rejects_garbage() {
        let mut al = Alphabet::new();
        assert!(Soa::from_text("bogus a", &mut al).is_err());
        assert!(Soa::from_text("edge a", &mut al).is_err());
        // Comments and blank lines are fine.
        assert!(Soa::from_text("#hi\n\nstate a\n", &mut al).is_ok());
    }

    #[test]
    fn dot_output_contains_labels() {
        let mut al = Alphabet::new();
        let words = sample(&mut al, &["ab"]);
        let soa = Soa::learn(&words);
        let dot = soa.to_dot(&al);
        assert!(dot.contains("label=\"a\""));
        assert!(dot.contains("label=\"b\""));
        assert!(dot.contains("-> snk"));
    }
}
