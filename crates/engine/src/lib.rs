//! The sharded inference engine: a layer between XML extraction and the
//! per-element learners that drives §9's incremental machinery at scale.
//!
//! The paper observes that both iDTD and CRX keep compact internal state —
//! the SOA and the CHARE partial-order summary — so the generating XML can
//! be discarded and schemas maintained as data "trickles in". This crate
//! exploits a second consequence of that design: the state is a union of
//! per-word contributions, so it can be built **in parallel**:
//!
//! 1. **Shard** — a std-only worker pool ([`pool::ingest`]) pulls documents
//!    off a shared queue; each worker folds child-word multisets into a
//!    shard-local [`EngineState`].
//! 2. **Merge** — shard states are combined with [`EngineState::merge`]
//!    (alphabets reconciled by name, automata unioned via `Soa::merge`,
//!    CRX summaries and support counters added pointwise). Every merge is
//!    commutative, so the result is independent of how documents were
//!    distributed over shards.
//! 3. **Derive** — [`EngineState::derive`] canonicalizes the alphabet
//!    (name-sorted, making the output independent of document arrival
//!    order) and runs the same per-element derivation as
//!    `dtdinfer_xml::infer::infer_dtd_with_stats`, byte-for-byte.
//!
//! [`snapshot`] persists an [`EngineState`] as a versioned text file so a
//! later run can warm-start and absorb only new documents.

pub mod journal;
pub mod pool;
pub mod snapshot;
pub mod source;

use dtdinfer_core::crx::CrxState;
use dtdinfer_core::idtd::{idtd_traced, Event, IdtdConfig};
use dtdinfer_core::kore::{pick_auto, KoreState};
use dtdinfer_core::model::InferredModel;
use dtdinfer_core::noise::SupportSoa;
use dtdinfer_regex::alphabet::{Alphabet, Sym, Word};
use dtdinfer_regex::multiset::WordBag;
use dtdinfer_xml::attlist::{infer_attdef_from_bag, AttInferenceOptions};
use dtdinfer_xml::dtd::{ContentSpec, Dtd};
use dtdinfer_xml::extract::{Corpus, ElementFacts};
use dtdinfer_xml::infer::{spec_size, ElementReport, InferenceEngine};
use dtdinfer_xml::parser::{XmlError, XmlEvent, XmlPullParser};
use dtdinfer_xml::samples::SampleBag;
use std::collections::BTreeMap;
use std::time::Instant;

/// Compact learner state for one element name: everything any of the three
/// engines needs at derive time, none of the raw corpus.
#[derive(Debug, Clone, Default)]
pub struct ElementState {
    /// Support-annotated SOA: serves iDTD (the plain automaton), the §9
    /// noise treatment (edge supports), and mixed-content thresholds
    /// (symbol supports). Its word count is the element's sample size.
    pub support: SupportSoa,
    /// CRX partial-order summary (§7), for the CHARE engine.
    pub crx: CrxState,
    /// k-occurrence automaton over the marked alphabet, for the k-ORE
    /// engine and the MDL chooser. Snapshot v4 persists it; v3 snapshots
    /// rebuild it exactly from the retained word multiset, v2 snapshots
    /// load with an empty state (the k-ORE engine then sees no words).
    pub kore: KoreState,
    /// Counted multiset of the element's child-name sequences — O(distinct
    /// shapes), not O(occurrences). Snapshot v3 persists it; v2 snapshots
    /// load with an empty bag (the learners above stay authoritative for
    /// derivation, so the degradation only disables the numeric facts
    /// view, never changes DTD output).
    pub words: WordBag,
    /// Non-whitespace text chunks (bounded reservoir; exact total and
    /// datatype mask), for PCDATA detection and XSD datatypes.
    pub text_samples: SampleBag,
    /// Attribute name → sampled values (bounded reservoir per attribute).
    pub attributes: BTreeMap<String, SampleBag>,
    /// Total occurrences across the corpus.
    pub occurrences: u64,
}

impl ElementState {
    /// Folds `n` occurrences of one child-name sequence into both learner
    /// summaries. Count-aware absorption is exactly equivalent to `n`
    /// single absorptions (the SOA/CRX structure union is idempotent per
    /// word; only supports scale), so repeated shapes cost one pass.
    fn absorb_counted(&mut self, w: &Word, n: u32) {
        self.support.absorb_counted(w, n);
        self.crx.absorb_counted(w, n);
        self.kore.absorb_counted(w, n);
    }

    /// Merges another shard's state for the same element name.
    fn merge(&mut self, other: &ElementState, mut f: impl FnMut(Sym) -> Sym) {
        self.support.merge(&other.support.remap(&mut f));
        self.crx.merge(&other.crx.remap(&mut f));
        self.kore.merge(&other.kore.remap(&mut f));
        self.words.merge(&other.words.map_symbols(&mut f));
        self.text_samples.merge(&other.text_samples);
        for (attr, values) in &other.attributes {
            self.attributes
                .entry(attr.clone())
                .or_default()
                .merge(values);
        }
        self.occurrences += other.occurrences;
    }
}

/// Reusable per-worker parse scratch: the element stack, the per-document
/// staging multisets, and a pool of recycled child [`Word`]s. One arena
/// per shard keeps the steady-state ingestion loop allocation-free for
/// repeated document shapes — new allocations happen only on first sight
/// of a distinct child sequence.
#[derive(Debug, Default)]
pub struct ParseArena {
    /// Open-element stack: (element symbol, children seen so far).
    stack: Vec<(Sym, Word)>,
    /// Per-document staging: child-sequence multisets by element symbol
    /// (linear scan — documents touch few distinct names). Flushed into
    /// the engine state once per document.
    staged: Vec<(Sym, WordBag)>,
    /// Recycled `Word` buffers, refilled as staged words are flushed.
    spare: Vec<Word>,
}

impl ParseArena {
    /// A fresh arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns every in-progress buffer to the spare pool (used after a
    /// parse error aborts a document mid-way, so the arena is clean for
    /// the next one).
    fn recycle(&mut self) {
        while let Some((_, mut w)) = self.stack.pop() {
            w.clear();
            self.spare.push(w);
        }
        for (_, bag) in self.staged.drain(..) {
            for (mut w, _) in bag.into_entries() {
                w.clear();
                self.spare.push(w);
            }
        }
    }
}

/// The engine's whole-corpus state: one [`ElementState`] per element name
/// plus root statistics. Unlike `Corpus`, memory is bounded by the schema
/// (quadratic in the number of element names), not by the corpus.
#[derive(Debug, Clone, Default)]
pub struct EngineState {
    /// Interned element names (shard-local interning order; derivation
    /// canonicalizes).
    pub alphabet: Alphabet,
    /// Learner state per element name.
    pub elements: BTreeMap<Sym, ElementState>,
    /// Root elements observed, with counts.
    pub roots: BTreeMap<Sym, u64>,
    /// Documents absorbed.
    pub num_documents: u64,
}

impl EngineState {
    /// An empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// [`EngineState::absorb_document`], attributing any parse error to
    /// `source` (usually the file path).
    pub fn absorb_document_from(&mut self, doc: &str, source: &str) -> Result<(), XmlError> {
        self.absorb_document(doc).map_err(|e| e.with_source(source))
    }

    /// [`EngineState::absorb_document_with`], attributing any parse error
    /// to `source` (usually the file path).
    pub fn absorb_document_from_with(
        &mut self,
        doc: &str,
        source: &str,
        arena: &mut ParseArena,
    ) -> Result<(), XmlError> {
        self.absorb_document_with(doc, arena)
            .map_err(|e| e.with_source(source))
    }

    /// Parses one document and folds its statistics in — the engine-side
    /// twin of `Corpus::add_document`, absorbing each child-name sequence
    /// into the compact learner state instead of retaining the corpus.
    pub fn absorb_document(&mut self, doc: &str) -> Result<(), XmlError> {
        self.absorb_document_with(doc, &mut ParseArena::new())
    }

    /// [`EngineState::absorb_document`] with caller-owned scratch: a
    /// worker that ingests many documents reuses one [`ParseArena`], so
    /// the per-document element stack and child words come from recycled
    /// buffers. Child sequences are staged per document into counted
    /// multisets and flushed once per distinct shape via count-aware
    /// absorption — byte-identical to absorbing each occurrence alone.
    pub fn absorb_document_with(
        &mut self,
        doc: &str,
        arena: &mut ParseArena,
    ) -> Result<(), XmlError> {
        let mut parser = XmlPullParser::new(doc);
        let mut seen_root = false;
        loop {
            let event = match parser.next() {
                Ok(Some(event)) => event,
                Ok(None) => break,
                Err(e) => {
                    dtdinfer_obs::count("engine.parse_errors", 1);
                    arena.recycle();
                    return Err(e);
                }
            };
            match event {
                XmlEvent::StartElement {
                    name, attributes, ..
                } => {
                    let sym = self.alphabet.intern(name);
                    let state = self.elements.entry(sym).or_default();
                    state.occurrences += 1;
                    for (attr, value) in &attributes {
                        // Allocate the attribute name only on first sight.
                        if let Some(bag) = state.attributes.get_mut(*attr) {
                            bag.insert(value);
                        } else {
                            state
                                .attributes
                                .entry((*attr).to_owned())
                                .or_default()
                                .insert(value);
                        }
                    }
                    if let Some((_, children)) = arena.stack.last_mut() {
                        children.push(sym);
                    } else if !seen_root {
                        seen_root = true;
                        *self.roots.entry(sym).or_insert(0) += 1;
                    }
                    let children = arena.spare.pop().unwrap_or_default();
                    arena.stack.push((sym, children));
                }
                XmlEvent::EndElement { .. } => {
                    let (sym, mut children) = arena.stack.pop().expect("parser checks balance");
                    match arena.staged.iter_mut().find(|(s, _)| *s == sym) {
                        Some((_, bag)) => bag.insert_ref(&children),
                        None => {
                            let mut bag = WordBag::new();
                            bag.insert_ref(&children);
                            arena.staged.push((sym, bag));
                        }
                    }
                    children.clear();
                    arena.spare.push(children);
                }
                XmlEvent::Text(text) => {
                    let trimmed = text.trim();
                    if !trimmed.is_empty() {
                        if let Some(&mut (sym, _)) = arena.stack.last_mut() {
                            self.elements
                                .entry(sym)
                                .or_default()
                                .text_samples
                                .insert(trimmed);
                        }
                    }
                }
                XmlEvent::Comment(_)
                | XmlEvent::ProcessingInstruction(_)
                | XmlEvent::Doctype(_) => {}
            }
        }
        // Flush: each distinct shape is absorbed once with its in-document
        // count, and the staged words are recycled for the next document.
        for (sym, bag) in arena.staged.drain(..) {
            let state = self.elements.entry(sym).or_default();
            for (w, n) in bag.iter() {
                state.absorb_counted(w, n);
            }
            state.words.merge(&bag);
            for (mut w, _) in bag.into_entries() {
                w.clear();
                arena.spare.push(w);
            }
        }
        self.num_documents += 1;
        dtdinfer_obs::count("engine.documents", 1);
        Ok(())
    }

    /// Merges another state in, reconciling the two alphabets by element
    /// name. Commutative up to alphabet interning order, which
    /// [`EngineState::derive`] canonicalizes away — so the merged result's
    /// derived DTD does not depend on shard assignment or merge order.
    pub fn merge(&mut self, other: &EngineState) {
        let map: Vec<Sym> = other
            .alphabet
            .entries()
            .map(|(_, name)| self.alphabet.intern(name))
            .collect();
        let f = |s: Sym| map[s.index()];
        for (&sym, state) in &other.elements {
            self.elements.entry(f(sym)).or_default().merge(state, f);
        }
        for (&root, &count) in &other.roots {
            *self.roots.entry(f(root)).or_insert(0) += count;
        }
        self.num_documents += other.num_documents;
        dtdinfer_obs::count("engine.merges", 1);
    }

    /// Total absorbed child-name sequences across all elements.
    pub fn total_words(&self) -> u64 {
        self.elements.values().map(|s| s.support.num_words()).sum()
    }

    /// The dominant root element; ties go to the smallest name (same rule
    /// as `Corpus::root`).
    pub fn root(&self) -> Option<Sym> {
        self.roots
            .iter()
            .max_by(|a, b| {
                a.1.cmp(b.1)
                    .then_with(|| self.alphabet.name(*b.0).cmp(self.alphabet.name(*a.0)))
            })
            .map(|(&sym, _)| sym)
    }

    /// A copy re-interned over a name-sorted alphabet (the engine twin of
    /// `Corpus::canonicalized`).
    pub fn canonicalized(&self) -> EngineState {
        let mut names: Vec<&str> = self.alphabet.entries().map(|(_, n)| n).collect();
        if names.windows(2).all(|w| w[0] < w[1]) {
            return self.clone();
        }
        names.sort_unstable();
        let alphabet = Alphabet::from_names(names);
        let map = |s: Sym| alphabet.get(self.alphabet.name(s)).expect("same name set");
        let elements = self
            .elements
            .iter()
            .map(|(&sym, state)| {
                let mut remapped = ElementState {
                    support: state.support.remap(map),
                    crx: state.crx.remap(map),
                    kore: state.kore.remap(map),
                    words: state.words.map_symbols(map),
                    ..ElementState::default()
                };
                remapped.text_samples = state.text_samples.clone();
                remapped.attributes = state.attributes.clone();
                remapped.occurrences = state.occurrences;
                (map(sym), remapped)
            })
            .collect();
        let roots = self.roots.iter().map(|(&s, &c)| (map(s), c)).collect();
        EngineState {
            alphabet,
            elements,
            roots,
            num_documents: self.num_documents,
        }
    }

    /// Derives the DTD and per-element reports from the accumulated state.
    /// Guaranteed (and test-enforced) to serialize byte-identically to
    /// `infer_dtd_with_stats` over a corpus of the same documents, for
    /// every engine.
    pub fn derive(&self, engine: InferenceEngine) -> (Dtd, Vec<ElementReport>) {
        let _span = dtdinfer_obs::span("engine.derive");
        let state = self.canonicalized();
        let mut dtd = Dtd {
            alphabet: state.alphabet.clone(),
            root: state.root(),
            elements: Default::default(),
            attlists: Default::default(),
        };
        let mut reports = Vec::with_capacity(state.elements.len());
        for (&sym, element) in &state.elements {
            let (spec, report) = derive_element(&state.alphabet, sym, element, engine);
            if dtdinfer_obs::is_enabled() {
                dtdinfer_obs::count_labeled("xml.engine", report.engine, 1);
                dtdinfer_obs::observe("xml.element.expr_size", report.expr_size as u64);
            }
            dtd.elements.insert(sym, spec);
            reports.push(report);
            let defs: Vec<_> = element
                .attributes
                .iter()
                .map(|(attr, values)| {
                    infer_attdef_from_bag(
                        attr,
                        values,
                        element.occurrences,
                        AttInferenceOptions::default(),
                    )
                })
                .collect();
            if !defs.is_empty() {
                dtd.attlists.insert(sym, defs);
            }
        }
        (dtd, reports)
    }

    /// A corpus view of the retained per-element facts (child-sequence
    /// multisets, text samples, attributes, occurrences) for XSD datatype
    /// inference. Since the engine retains counted child sequences, the
    /// view can drive numeric tightening too — except over states warmed
    /// from a v2 snapshot, whose bags are empty.
    pub fn facts_corpus(&self) -> Corpus {
        let mut corpus = Corpus::new();
        corpus.alphabet = self.alphabet.clone();
        corpus.roots = self.roots.clone();
        corpus.num_documents = self.num_documents;
        for (&sym, state) in &self.elements {
            corpus.elements.insert(
                sym,
                ElementFacts {
                    child_sequences: state.words.clone(),
                    text_samples: state.text_samples.clone(),
                    attributes: state.attributes.clone(),
                    occurrences: state.occurrences,
                },
            );
        }
        corpus
    }
}

/// The per-element derivation, mirroring `infer_element` in
/// `dtdinfer_xml::infer` over the compact state.
fn derive_element(
    alphabet: &Alphabet,
    sym: Sym,
    element: &ElementState,
    engine: InferenceEngine,
) -> (ContentSpec, ElementReport) {
    let started = Instant::now();
    let mut engine_used = match engine {
        InferenceEngine::Crx => "crx",
        InferenceEngine::Idtd => "idtd",
        InferenceEngine::IdtdNoise { .. } => "idtd-noise",
        InferenceEngine::Kore => "kore",
        InferenceEngine::Auto => "auto",
    };
    let (mut rewrite_steps, mut repairs, mut fallbacks) = (0usize, 0usize, 0usize);
    let has_text = !element.text_samples.is_empty();
    // A non-empty child word puts its symbols into the SOA's state set.
    let has_children = !element.support.soa().states.is_empty();
    let spec = match (has_text, has_children) {
        (false, false) => {
            engine_used = "empty";
            ContentSpec::Empty
        }
        (true, false) => {
            engine_used = "pcdata";
            ContentSpec::PcData
        }
        (true, true) => {
            // Mixed content with the §9 support threshold; the engine's
            // symbol supports are exactly the per-child occurrence counts
            // the corpus path computes.
            let threshold = match engine {
                InferenceEngine::IdtdNoise { threshold } => threshold,
                _ => 0,
            };
            let syms: Vec<Sym> = element
                .support
                .symbol_supports()
                .into_iter()
                .filter(|&(_, count)| count >= threshold.max(1))
                .map(|(s, _)| s)
                .collect();
            engine_used = "mixed";
            ContentSpec::Mixed(syms)
        }
        (false, true) => {
            let model = match engine {
                InferenceEngine::Crx => element.crx.infer(),
                InferenceEngine::Idtd => {
                    let (model, trace) = idtd_traced(element.support.soa(), IdtdConfig::default());
                    for e in &trace {
                        match e {
                            Event::Rewrite(_) => rewrite_steps += 1,
                            Event::Repair { .. } => repairs += 1,
                            Event::Fallback => fallbacks += 1,
                        }
                    }
                    model
                }
                InferenceEngine::IdtdNoise { threshold } => {
                    element.support.infer_denoised(threshold)
                }
                InferenceEngine::Kore => {
                    let outcome = element.kore.derive();
                    for e in &outcome.events {
                        match e {
                            Event::Rewrite(_) => rewrite_steps += 1,
                            Event::Repair { .. } => repairs += 1,
                            Event::Fallback => fallbacks += 1,
                        }
                    }
                    outcome.model
                }
                InferenceEngine::Auto => {
                    let sore = idtd_traced(element.support.soa(), IdtdConfig::default());
                    let kore = element.kore.derive();
                    let chare = element.crx.infer();
                    let pick = pick_auto(sore, kore, chare, alphabet.len(), &element.words);
                    engine_used = pick.engine;
                    for e in &pick.events {
                        match e {
                            Event::Rewrite(_) => rewrite_steps += 1,
                            Event::Repair { .. } => repairs += 1,
                            Event::Fallback => fallbacks += 1,
                        }
                    }
                    pick.model
                }
            };
            match model {
                InferredModel::Regex(r) => ContentSpec::Children(r),
                InferredModel::EpsilonOnly | InferredModel::Empty => ContentSpec::Empty,
            }
        }
    };
    let report = ElementReport {
        name: alphabet.name(sym).to_owned(),
        engine: engine_used,
        occurrences: element.occurrences,
        words: usize::try_from(element.support.num_words()).unwrap_or(usize::MAX),
        rewrite_steps,
        repairs,
        fallbacks,
        expr_size: spec_size(&spec),
        duration_ns: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
    };
    (spec, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtdinfer_xml::infer::infer_dtd_with_stats;

    fn docs() -> Vec<String> {
        let mut docs = vec![
            "<lib><book id=\"b1\"><title>T</title><author>A</author></book></lib>".to_owned(),
            "<lib><book id=\"b2\"><title>U</title><author>B</author><author>C</author></book>\
             <journal/></lib>"
                .to_owned(),
            "<lib><journal/><journal/></lib>".to_owned(),
            "<lib><note>mixed <b>x</b> tail</note></lib>".to_owned(),
        ];
        for i in 0..20 {
            docs.push(format!(
                "<lib><book id=\"g{i}\"><title>V{i}</title><author>D</author></book></lib>"
            ));
        }
        docs
    }

    fn engine_state(docs: &[String]) -> EngineState {
        let mut state = EngineState::new();
        for d in docs {
            state.absorb_document(d).unwrap();
        }
        state
    }

    fn corpus(docs: &[String]) -> Corpus {
        let mut c = Corpus::new();
        for d in docs {
            c.add_document(d).unwrap();
        }
        c
    }

    #[test]
    fn derive_matches_corpus_inference_for_all_engines() {
        let docs = docs();
        let state = engine_state(&docs);
        let corpus = corpus(&docs);
        for engine in [
            InferenceEngine::Crx,
            InferenceEngine::Idtd,
            InferenceEngine::IdtdNoise { threshold: 3 },
            InferenceEngine::Kore,
            InferenceEngine::Auto,
        ] {
            let (engine_dtd, engine_reports) = state.derive(engine);
            let (corpus_dtd, corpus_reports) = infer_dtd_with_stats(&corpus, engine);
            assert_eq!(engine_dtd.serialize(), corpus_dtd.serialize(), "{engine:?}");
            assert_eq!(engine_reports.len(), corpus_reports.len());
            for (e, c) in engine_reports.iter().zip(&corpus_reports) {
                assert_eq!(e.name, c.name, "{engine:?}");
                assert_eq!(e.engine, c.engine, "{engine:?} {}", e.name);
                assert_eq!(e.words, c.words, "{engine:?} {}", e.name);
                assert_eq!(e.occurrences, c.occurrences, "{engine:?} {}", e.name);
                assert_eq!(e.repairs, c.repairs, "{engine:?} {}", e.name);
                assert_eq!(e.expr_size, c.expr_size, "{engine:?} {}", e.name);
            }
        }
    }

    #[test]
    fn merge_of_split_equals_whole() {
        let docs = docs();
        let whole = engine_state(&docs);
        for cut in [1, docs.len() / 2, docs.len() - 1] {
            let mut merged = engine_state(&docs[..cut]);
            merged.merge(&engine_state(&docs[cut..]));
            assert_eq!(merged.num_documents, whole.num_documents);
            assert_eq!(merged.total_words(), whole.total_words());
            for engine in [
                InferenceEngine::Crx,
                InferenceEngine::Idtd,
                InferenceEngine::Kore,
                InferenceEngine::Auto,
            ] {
                assert_eq!(
                    merged.derive(engine).0.serialize(),
                    whole.derive(engine).0.serialize(),
                    "cut {cut} {engine:?}"
                );
            }
        }
    }

    #[test]
    fn merge_reconciles_disjoint_interning_orders() {
        // Shard A sees <b> before <a>; shard B the reverse: the merged
        // derivation must not care.
        let mut a = EngineState::new();
        a.absorb_document("<r><b/><a/></r>").unwrap();
        let mut b = EngineState::new();
        b.absorb_document("<r><a/><c/></r>").unwrap();
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(
            ab.derive(InferenceEngine::Idtd).0.serialize(),
            ba.derive(InferenceEngine::Idtd).0.serialize()
        );
    }

    #[test]
    fn xsd_from_facts_corpus_matches_corpus_path() {
        use dtdinfer_xml::xsd::{generate_xsd, XsdOptions};
        let docs = docs();
        let state = engine_state(&docs);
        let corpus = corpus(&docs);
        let engine_dtd = state.derive(InferenceEngine::Idtd).0;
        let corpus_dtd = infer_dtd_with_stats(&corpus, InferenceEngine::Idtd).0;
        assert_eq!(
            generate_xsd(
                &engine_dtd,
                Some(&state.facts_corpus()),
                XsdOptions::default()
            ),
            generate_xsd(&corpus_dtd, Some(&corpus), XsdOptions::default())
        );
        // The retained multisets make numeric tightening available on the
        // engine path too — byte-identical to the corpus path.
        let numeric = XsdOptions {
            numeric_threshold: Some(2),
        };
        assert_eq!(
            generate_xsd(&engine_dtd, Some(&state.facts_corpus()), numeric),
            generate_xsd(&corpus_dtd, Some(&corpus), numeric)
        );
    }
}
