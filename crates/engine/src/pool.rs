//! Std-only worker pool for sharded corpus ingestion.
//!
//! Workers (`std::thread::scope` + an atomic work queue, no external
//! dependencies) claim document indices off a shared counter in adaptive
//! chunks, load each document themselves from a [`DocSource`] (a reused
//! per-worker buffer — at most one document resident per worker), fold it
//! into a shard-local [`EngineState`], and drop it. The shards are then
//! merged in index order. Which document lands on which shard is
//! scheduling-dependent, but every per-element summary is a commutative
//! union of per-word contributions and derivation canonicalizes the
//! alphabet, so the derived DTD is byte-identical for any worker count.
//!
//! Chunked claiming: one `fetch_add` hands a worker a run of consecutive
//! indices, sized to the work remaining (`remaining / (jobs * 8)`, clamped
//! to 1..=32), so queue traffic is O(jobs · log n) instead of O(n) while
//! the tail still balances one document at a time.

use crate::source::{DocSource, MemSource};
use crate::{EngineState, ParseArena};
use dtdinfer_xml::parser::XmlError;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// What one shard did during ingestion, for the stats report and the
/// `--metrics` JSON.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index (0-based).
    pub shard: usize,
    /// Documents this shard absorbed.
    pub documents: u64,
    /// Child-name sequences this shard absorbed.
    pub words: u64,
    /// Document bytes this shard loaded and parsed.
    pub bytes: u64,
    /// Wall-clock time the shard spent ingesting (claiming + parsing).
    pub duration_ns: u64,
    /// Time actually spent inside document loading + absorption — the
    /// worker's utilization is `busy_ns / duration_ns`; the rest is queue
    /// traffic and scheduling.
    pub busy_ns: u64,
    /// Queue claims that handed this shard at least one document. With
    /// chunked claiming this is far below `documents` on large corpora —
    /// the contention win `stats --jobs` reports.
    pub claims: u64,
    /// Queue polls that found no work left (1 per worker with the current
    /// counter queue — its exit poll; 0 on the sequential path, which has
    /// no queue).
    pub idle_polls: u64,
}

impl ShardReport {
    /// Fraction of the shard's wall-clock spent absorbing documents, in
    /// percent (0 when the shard did not run long enough to measure).
    pub fn utilization_pct(&self) -> f64 {
        if self.duration_ns == 0 {
            0.0
        } else {
            self.busy_ns as f64 / self.duration_ns as f64 * 100.0
        }
    }
}

/// Result of a (possibly parallel) ingestion run.
#[derive(Debug, Clone)]
pub struct Ingest {
    /// The merged engine state.
    pub state: EngineState,
    /// Per-shard accounting, in shard order.
    pub shards: Vec<ShardReport>,
    /// Wall-clock time spent merging shard states (0 for one shard).
    pub merge_ns: u64,
    /// Peak bytes of document text resident across all workers at any
    /// moment — the ingestion memory high-water mark (O(jobs · max
    /// document), not O(corpus)).
    pub peak_bytes_in_flight: u64,
    /// Peak number of documents resident at once (≤ worker count).
    pub peak_docs_in_flight: u64,
}

/// Why a document failed to ingest.
#[derive(Debug, Clone)]
pub enum IngestFailure {
    /// The document could not be read from its source.
    Read(String),
    /// The document did not parse.
    Parse(XmlError),
}

impl fmt::Display for IngestFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestFailure::Read(m) => write!(f, "{m}"),
            IngestFailure::Parse(e) => write!(f, "{e}"),
        }
    }
}

/// A failure during ingestion, attributed to the input document.
///
/// With multiple workers, documents after the failing one may already have
/// been absorbed elsewhere, but the *reported* failure is always the
/// lowest-indexed bad document — the same one sequential ingestion stops
/// at — so error output is deterministic too.
#[derive(Debug, Clone)]
pub struct IngestError {
    /// Index into the ingested document sequence.
    pub doc_index: usize,
    /// The source's name for the document (file path), when it has one.
    pub source: Option<String>,
    /// The underlying failure.
    pub error: IngestFailure,
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Parse errors already carry the source name via
        // `XmlError::with_source`; read errors carry the path in their
        // message. Only anonymous documents need the index prefix.
        match (&self.source, &self.error) {
            (Some(_), _) => write!(f, "{}", self.error),
            (None, _) => write!(f, "document {}: {}", self.doc_index, self.error),
        }
    }
}

impl std::error::Error for IngestError {}

/// Tracks documents/bytes resident across workers and their peaks.
#[derive(Default)]
struct InFlight {
    bytes: AtomicU64,
    bytes_peak: AtomicU64,
    docs: AtomicU64,
    docs_peak: AtomicU64,
}

impl InFlight {
    fn enter(&self, bytes: u64) {
        let b = self.bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.bytes_peak.fetch_max(b, Ordering::Relaxed);
        let d = self.docs.fetch_add(1, Ordering::Relaxed) + 1;
        self.docs_peak.fetch_max(d, Ordering::Relaxed);
    }

    fn exit(&self, bytes: u64) {
        self.bytes.fetch_sub(bytes, Ordering::Relaxed);
        self.docs.fetch_sub(1, Ordering::Relaxed);
    }

    fn peaks(&self) -> (u64, u64) {
        (
            self.bytes_peak.load(Ordering::Relaxed),
            self.docs_peak.load(Ordering::Relaxed),
        )
    }
}

/// How many indices one claim should take: an equal share of the
/// remaining work spread 8× finer than the worker count (large chunks
/// while the queue is deep, single documents near the tail), clamped to
/// 1..=32. The old 4×/64 tuning was sized for ~0.5 KB documents; with
/// multi-megabyte corpora in the mix, a 64-document chunk claimed near
/// the end can strand one worker with seconds of work, so the cap is
/// halved and the spread doubled — queue traffic stays O(jobs · log n).
fn chunk_size(total: usize, claimed: usize, jobs: usize) -> usize {
    let remaining = total.saturating_sub(claimed);
    (remaining / (jobs * 8)).clamp(1, 32)
}

/// Ingests in-memory `docs` into a fresh state with `jobs` workers.
pub fn ingest<D: AsRef<str> + Sync>(docs: &[D], jobs: usize) -> Result<Ingest, IngestError> {
    ingest_into(EngineState::new(), docs, jobs)
}

/// Ingests in-memory `docs` into an existing state (warm start from a
/// snapshot) with `jobs` workers.
pub fn ingest_into<D: AsRef<str> + Sync>(
    base: EngineState,
    docs: &[D],
    jobs: usize,
) -> Result<Ingest, IngestError> {
    ingest_source(base, &MemSource::new(docs), jobs)
}

/// Ingests every document of `source` into `base` with `jobs` workers.
/// Workers pull indices and load documents themselves, so peak memory is
/// O(jobs · max document size) regardless of corpus size.
pub fn ingest_source<S: DocSource>(
    base: EngineState,
    source: &S,
    jobs: usize,
) -> Result<Ingest, IngestError> {
    let _span = dtdinfer_obs::span("engine.ingest");
    let total = source.len();
    let jobs = jobs.max(1).min(total.max(1));
    if jobs == 1 {
        return ingest_sequential(base, source);
    }
    let next = AtomicUsize::new(0);
    let in_flight = InFlight::default();
    let workers: Vec<(EngineState, ShardReport, Option<IngestError>)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..jobs)
                .map(|shard| {
                    let next = &next;
                    let in_flight = &in_flight;
                    scope.spawn(move || {
                        // The span runs on the worker thread, so traces
                        // carry one distinct tid per worker.
                        let _span = dtdinfer_obs::span("engine.shard");
                        let started = Instant::now();
                        let mut local = EngineState::new();
                        let mut buf = String::new();
                        let mut arena = ParseArena::new();
                        let mut documents = 0u64;
                        let mut bytes = 0u64;
                        let mut busy_ns = 0u64;
                        let mut claims = 0u64;
                        let mut idle_polls = 0u64;
                        let mut first_error: Option<IngestError> = None;
                        loop {
                            let k = chunk_size(total, next.load(Ordering::Relaxed), jobs);
                            let start = next.fetch_add(k, Ordering::Relaxed);
                            if start >= total {
                                idle_polls += 1;
                                break;
                            }
                            claims += 1;
                            record_heartbeat(
                                total.saturating_sub((start + k).min(total)),
                                in_flight,
                            );
                            for i in start..(start + k).min(total) {
                                let doc_started = Instant::now();
                                match absorb_one(
                                    &mut local, source, i, &mut buf, &mut arena, in_flight,
                                ) {
                                    Ok(len) => {
                                        documents += 1;
                                        bytes += len;
                                    }
                                    Err(error) => {
                                        let earlier =
                                            first_error.as_ref().is_none_or(|e| i < e.doc_index);
                                        if earlier {
                                            first_error = Some(error);
                                        }
                                    }
                                }
                                busy_ns += elapsed_ns(doc_started);
                            }
                        }
                        let report = ShardReport {
                            shard,
                            documents,
                            words: local.total_words(),
                            bytes,
                            duration_ns: elapsed_ns(started),
                            busy_ns,
                            claims,
                            idle_polls,
                        };
                        (local, report, first_error)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });
    if let Some(err) = workers
        .iter()
        .filter_map(|(_, _, e)| e.clone())
        .min_by_key(|e| e.doc_index)
    {
        return Err(err);
    }
    let merge_started = Instant::now();
    let mut state = base;
    let mut shards = Vec::with_capacity(workers.len());
    for (local, report, _) in workers {
        state.merge(&local);
        record_shard(&report);
        shards.push(report);
    }
    let merge_ns = elapsed_ns(merge_started);
    dtdinfer_obs::observe("engine.merge_ns", merge_ns);
    let (peak_bytes_in_flight, peak_docs_in_flight) = in_flight.peaks();
    record_peaks(peak_bytes_in_flight, peak_docs_in_flight);
    Ok(Ingest {
        state,
        shards,
        merge_ns,
        peak_bytes_in_flight,
        peak_docs_in_flight,
    })
}

/// Loads document `i` and folds it into `local`, reusing the worker's
/// `buf` and `arena` scratch and tracking residency. Returns the
/// document's size in bytes.
fn absorb_one<S: DocSource>(
    local: &mut EngineState,
    source: &S,
    i: usize,
    buf: &mut String,
    arena: &mut ParseArena,
    in_flight: &InFlight,
) -> Result<u64, IngestError> {
    let fail = |error: IngestFailure| IngestError {
        doc_index: i,
        source: source.name(i),
        error,
    };
    let doc = source
        .load(i, buf)
        .map_err(|m| fail(IngestFailure::Read(m)))?;
    let len = doc.len() as u64;
    in_flight.enter(len);
    let absorbed = match source.name(i) {
        Some(name) => local.absorb_document_from_with(doc, &name, arena),
        None => local.absorb_document_with(doc, arena),
    };
    in_flight.exit(len);
    absorbed.map_err(|e| fail(IngestFailure::Parse(e)))?;
    Ok(len)
}

fn ingest_sequential<S: DocSource>(base: EngineState, source: &S) -> Result<Ingest, IngestError> {
    let started = Instant::now();
    let mut state = base;
    let words_before = state.total_words();
    let mut buf = String::new();
    let mut arena = ParseArena::new();
    let in_flight = InFlight::default();
    let mut busy_ns = 0u64;
    let mut bytes = 0u64;
    for i in 0..source.len() {
        let doc_started = Instant::now();
        bytes += absorb_one(&mut state, source, i, &mut buf, &mut arena, &in_flight)?;
        busy_ns += elapsed_ns(doc_started);
        // The sequential path has no claim points; heartbeat every 64
        // documents so long single-threaded ingests still feed the
        // timeseries sampler.
        if i % 64 == 63 {
            record_heartbeat(source.len() - i - 1, &in_flight);
        }
    }
    let report = ShardReport {
        shard: 0,
        documents: source.len() as u64,
        words: state.total_words() - words_before,
        bytes,
        duration_ns: elapsed_ns(started),
        busy_ns,
        claims: u64::from(source.len() > 0),
        idle_polls: 0,
    };
    record_shard(&report);
    let (peak_bytes_in_flight, peak_docs_in_flight) = in_flight.peaks();
    record_peaks(peak_bytes_in_flight, peak_docs_in_flight);
    Ok(Ingest {
        state,
        shards: vec![report],
        merge_ns: 0,
        peak_bytes_in_flight,
        peak_docs_in_flight,
    })
}

fn record_shard(report: &ShardReport) {
    if !dtdinfer_obs::is_enabled() {
        return;
    }
    let label = report.shard.to_string();
    dtdinfer_obs::count_labeled("engine.shard.documents", &label, report.documents);
    dtdinfer_obs::count_labeled("engine.shard.words", &label, report.words);
    dtdinfer_obs::observe("engine.shard.duration_ns", report.duration_ns);
    // Per-worker point-in-time telemetry: gauges, since re-ingesting in
    // the same process should replace — not accumulate — a worker's
    // stats. One labeled series per metric (`engine_worker_busy_ns
    // {worker="0"}`), not a dot-numbered name per worker, so dashboards
    // aggregate across workers without name surgery.
    let worker = label.as_str();
    let labels: &[(&str, &str)] = &[("worker", worker)];
    dtdinfer_obs::gauge_with("engine_worker_busy_ns", labels, report.busy_ns);
    dtdinfer_obs::gauge_with("engine_worker_documents", labels, report.documents);
    dtdinfer_obs::gauge_with("engine_worker_bytes", labels, report.bytes);
    dtdinfer_obs::gauge_with("engine_worker_claims", labels, report.claims);
    dtdinfer_obs::gauge_with("engine_worker_idle_polls", labels, report.idle_polls);
}

/// Live progress gauges, updated once per queue claim (not per document,
/// so the registry lock stays off the per-document path). These are what
/// the timeseries sampler sees *during* a run — queue depth draining and
/// document bytes in flight — where the peak gauges below only land at
/// the end.
fn record_heartbeat(remaining: usize, in_flight: &InFlight) {
    if !dtdinfer_obs::is_enabled() {
        return;
    }
    dtdinfer_obs::gauge("engine.queue.remaining", remaining as u64);
    dtdinfer_obs::gauge(
        "engine.inflight.bytes",
        in_flight.bytes.load(Ordering::Relaxed),
    );
    dtdinfer_obs::gauge(
        "engine.inflight.docs",
        in_flight.docs.load(Ordering::Relaxed),
    );
}

fn record_peaks(peak_bytes: u64, peak_docs: u64) {
    if dtdinfer_obs::is_enabled() {
        dtdinfer_obs::gauge("engine.ingest.peak_bytes_in_flight", peak_bytes);
        dtdinfer_obs::gauge("engine.ingest.peak_docs_in_flight", peak_docs);
    }
}

fn elapsed_ns(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::PathSource;
    use dtdinfer_xml::infer::InferenceEngine;

    fn docs(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| match i % 5 {
                0 => format!("<r><a/><b/><c>x{i}</c></r>"),
                1 => "<r><b/><a/></r>".to_owned(),
                2 => format!("<r><c>y{i}</c></r>"),
                3 => "<r><a/><a/><b/></r>".to_owned(),
                _ => "<r/>".to_owned(),
            })
            .collect()
    }

    #[test]
    fn sharded_equals_sequential_for_all_job_counts() {
        let docs = docs(53);
        let sequential = ingest(&docs, 1).unwrap();
        let baseline = sequential.state.derive(InferenceEngine::Idtd).0.serialize();
        for jobs in [2, 3, 4, 8] {
            let sharded = ingest(&docs, jobs).unwrap();
            assert_eq!(sharded.state.num_documents, docs.len() as u64);
            assert_eq!(sharded.shards.len(), jobs.min(docs.len()));
            assert_eq!(
                sharded.state.derive(InferenceEngine::Idtd).0.serialize(),
                baseline,
                "jobs {jobs}"
            );
            assert_eq!(
                sharded.shards.iter().map(|s| s.documents).sum::<u64>(),
                docs.len() as u64
            );
        }
    }

    #[test]
    fn error_reporting_is_deterministic() {
        let mut docs = docs(40);
        docs[17] = "<r><unclosed></r>".to_owned();
        docs[31] = "<also><bad></also>".to_owned();
        for jobs in [1, 4] {
            let err = ingest(&docs, jobs).unwrap_err();
            assert_eq!(err.doc_index, 17, "jobs {jobs}");
            assert!(matches!(err.error, IngestFailure::Parse(_)), "{err}");
            assert!(err.to_string().starts_with("document 17:"), "{err}");
        }
    }

    #[test]
    fn path_source_errors_name_the_file() {
        let dir = std::env::temp_dir().join(format!("dtdinfer-pool-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.xml");
        let bad = dir.join("bad.xml");
        std::fs::write(&good, "<r><a/></r>").unwrap();
        std::fs::write(&bad, "<r><broken></r>").unwrap();
        for jobs in [1, 2] {
            let source = PathSource::new(vec![good.clone(), bad.clone(), good.clone()]);
            let err = ingest_source(EngineState::new(), &source, jobs).unwrap_err();
            assert_eq!(err.doc_index, 1, "jobs {jobs}");
            assert_eq!(err.source.as_deref(), Some(&*bad.display().to_string()));
            assert!(err.to_string().contains("bad.xml"), "{err}");
            // The index prefix is redundant once the path is known.
            assert!(!err.to_string().starts_with("document 1"), "{err}");

            let source = PathSource::new(vec![good.clone(), dir.join("absent.xml")]);
            let err = ingest_source(EngineState::new(), &source, jobs).unwrap_err();
            assert!(matches!(err.error, IngestFailure::Read(_)), "{err}");
            assert!(err.to_string().contains("absent.xml"), "{err}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn path_source_matches_in_memory_ingestion() {
        let docs = docs(30);
        let dir = std::env::temp_dir().join(format!("dtdinfer-pool-eq-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let paths: Vec<_> = docs
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let p = dir.join(format!("{i:03}.xml"));
                std::fs::write(&p, d).unwrap();
                p
            })
            .collect();
        let memory = ingest(&docs, 4).unwrap();
        let streamed = ingest_source(EngineState::new(), &PathSource::new(paths), 4).unwrap();
        assert_eq!(
            streamed.state.derive(InferenceEngine::Idtd).0.serialize(),
            memory.state.derive(InferenceEngine::Idtd).0.serialize()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_reports_account_for_busy_time_and_idle_polls() {
        let docs = docs(60);
        let sequential = ingest(&docs, 1).unwrap();
        let seq = &sequential.shards[0];
        assert_eq!(seq.idle_polls, 0, "no queue on the sequential path");
        assert_eq!(seq.claims, 1, "sequential path claims everything once");
        assert!(seq.busy_ns <= seq.duration_ns, "{seq:?}");
        assert!(seq.busy_ns > 0, "60 documents take measurable time");

        let parallel = ingest(&docs, 4).unwrap();
        for s in &parallel.shards {
            assert_eq!(s.idle_polls, 1, "one exhausted poll per worker: {s:?}");
            assert!(s.busy_ns <= s.duration_ns, "{s:?}");
            assert!(s.utilization_pct() <= 100.0, "{s:?}");
            assert!(s.claims <= s.documents.max(1), "{s:?}");
        }
    }

    #[test]
    fn chunked_claims_stay_below_document_count() {
        // 400 docs over 4 workers: per-claim chunks start at 400/32 = 12,
        // so total claims must be far below one per document.
        let docs = docs(400);
        let parallel = ingest(&docs, 4).unwrap();
        let total_claims: u64 = parallel.shards.iter().map(|s| s.claims).sum();
        let total_docs: u64 = parallel.shards.iter().map(|s| s.documents).sum();
        assert_eq!(total_docs, 400);
        assert!(
            total_claims < total_docs / 2,
            "chunking should cut queue traffic: {total_claims} claims for {total_docs} docs"
        );
    }

    #[test]
    fn chunk_size_is_adaptive() {
        assert_eq!(chunk_size(400, 0, 4), 12);
        assert_eq!(chunk_size(400, 396, 4), 1, "tail balances one at a time");
        assert_eq!(chunk_size(10_000, 0, 4), 32, "clamped above");
        assert_eq!(chunk_size(10, 10, 4), 1, "empty remainder still claims 1");
    }

    #[test]
    fn in_flight_peaks_are_bounded_by_workers() {
        let docs = docs(120);
        let max_doc = docs.iter().map(String::len).max().unwrap() as u64;
        for jobs in [1usize, 4] {
            let r = ingest(&docs, jobs).unwrap();
            assert!(r.peak_docs_in_flight >= 1, "{:?}", r.peak_docs_in_flight);
            assert!(
                r.peak_docs_in_flight <= jobs as u64,
                "at most one resident document per worker"
            );
            assert!(r.peak_bytes_in_flight >= 1);
            assert!(
                r.peak_bytes_in_flight <= jobs as u64 * max_doc,
                "peak {} vs bound {}",
                r.peak_bytes_in_flight,
                jobs as u64 * max_doc
            );
        }
    }

    // The obs registry and recorder are process-global, so everything that
    // records through them lives in one test to avoid cross-test races
    // under the parallel runner.
    #[test]
    fn worker_telemetry_lands_in_gauges_and_trace() {
        let docs = docs(40);
        dtdinfer_obs::enable(true, true);
        dtdinfer_obs::reset();
        let ingested = ingest(&docs, 4).unwrap();
        let snap = dtdinfer_obs::snapshot();
        let trace = dtdinfer_obs::take_trace();
        dtdinfer_obs::disable();

        for s in &ingested.shards {
            let key = |name: &str| format!("{name}{{worker=\"{}\"}}", s.shard);
            assert_eq!(snap.gauges[&key("engine_worker_busy_ns")], s.busy_ns);
            assert_eq!(snap.gauges[&key("engine_worker_documents")], s.documents);
            assert_eq!(snap.gauges[&key("engine_worker_bytes")], s.bytes);
            assert_eq!(snap.gauges[&key("engine_worker_claims")], s.claims);
            assert_eq!(snap.gauges[&key("engine_worker_idle_polls")], s.idle_polls);
        }
        // The dot-numbered per-worker names are gone for good.
        assert!(
            !snap.gauges.keys().any(|k| k.starts_with("engine.worker.")),
            "no dot-numbered worker gauges: {:?}",
            snap.gauges.keys()
        );
        assert_eq!(
            snap.gauges["engine.ingest.peak_bytes_in_flight"],
            ingested.peak_bytes_in_flight
        );
        assert_eq!(
            snap.gauges["engine.ingest.peak_docs_in_flight"],
            ingested.peak_docs_in_flight
        );

        let mut shard_tids: Vec<u64> = trace
            .iter()
            .filter_map(|e| match e {
                dtdinfer_obs::TraceEntry::Span { name, tid, .. } if *name == "engine.shard" => {
                    Some(*tid)
                }
                _ => None,
            })
            .collect();
        assert_eq!(shard_tids.len(), 4, "one span per worker: {trace:?}");
        shard_tids.sort_unstable();
        shard_tids.dedup();
        assert_eq!(shard_tids.len(), 4, "each worker has its own tid");
    }

    #[test]
    fn more_jobs_than_documents() {
        let docs = docs(3);
        let r = ingest(&docs, 16).unwrap();
        assert_eq!(r.state.num_documents, 3);
        assert!(r.shards.len() <= 3);
    }

    #[test]
    fn warm_start_equals_one_shot() {
        let docs = docs(30);
        let one_shot = ingest(&docs, 4).unwrap();
        let first = ingest(&docs[..12], 4).unwrap();
        let resumed = ingest_into(first.state, &docs[12..], 4).unwrap();
        for engine in [InferenceEngine::Crx, InferenceEngine::Idtd] {
            assert_eq!(
                resumed.state.derive(engine).0.serialize(),
                one_shot.state.derive(engine).0.serialize(),
                "{engine:?}"
            );
        }
    }
}
