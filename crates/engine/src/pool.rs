//! Std-only worker pool for sharded corpus ingestion.
//!
//! Workers (`std::thread::scope` + an atomic work queue, no external
//! dependencies) pull documents off a shared counter and fold each into a
//! shard-local [`EngineState`]; the shards are then merged in index order.
//! Which document lands on which shard is scheduling-dependent, but every
//! per-element summary is a commutative union of per-word contributions
//! and derivation canonicalizes the alphabet, so the derived DTD is
//! byte-identical for any worker count.

use crate::EngineState;
use dtdinfer_xml::parser::XmlError;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// What one shard did during ingestion, for the stats report and the
/// `--metrics` JSON.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index (0-based).
    pub shard: usize,
    /// Documents this shard absorbed.
    pub documents: u64,
    /// Child-name sequences this shard absorbed.
    pub words: u64,
    /// Wall-clock time the shard spent ingesting (claiming + parsing).
    pub duration_ns: u64,
    /// Time actually spent inside document absorption — the worker's
    /// utilization is `busy_ns / duration_ns`; the rest is queue traffic
    /// and scheduling.
    pub busy_ns: u64,
    /// Queue polls that found no work left (1 per worker with the current
    /// counter queue — its exit poll; 0 on the sequential path, which has
    /// no queue).
    pub idle_polls: u64,
}

impl ShardReport {
    /// Fraction of the shard's wall-clock spent absorbing documents, in
    /// percent (0 when the shard did not run long enough to measure).
    pub fn utilization_pct(&self) -> f64 {
        if self.duration_ns == 0 {
            0.0
        } else {
            self.busy_ns as f64 / self.duration_ns as f64 * 100.0
        }
    }
}

/// Result of a (possibly parallel) ingestion run.
#[derive(Debug, Clone)]
pub struct Ingest {
    /// The merged engine state.
    pub state: EngineState,
    /// Per-shard accounting, in shard order.
    pub shards: Vec<ShardReport>,
    /// Wall-clock time spent merging shard states (0 for one shard).
    pub merge_ns: u64,
}

/// A parse failure during ingestion, attributed to the input document.
///
/// With multiple workers, documents after the failing one may already have
/// been absorbed elsewhere, but the *reported* failure is always the
/// lowest-indexed bad document — the same one sequential ingestion stops
/// at — so error output is deterministic too.
#[derive(Debug, Clone)]
pub struct IngestError {
    /// Index into the ingested document slice.
    pub doc_index: usize,
    /// The underlying parse error.
    pub error: XmlError,
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "document {}: {}", self.doc_index, self.error)
    }
}

impl std::error::Error for IngestError {}

/// Ingests `docs` into a fresh state with `jobs` workers.
pub fn ingest<D: AsRef<str> + Sync>(docs: &[D], jobs: usize) -> Result<Ingest, IngestError> {
    ingest_into(EngineState::new(), docs, jobs)
}

/// Ingests `docs` into an existing state (warm start from a snapshot) with
/// `jobs` workers. The base state is merged with the freshly built shards,
/// so parallelism is available even when resuming.
pub fn ingest_into<D: AsRef<str> + Sync>(
    base: EngineState,
    docs: &[D],
    jobs: usize,
) -> Result<Ingest, IngestError> {
    let _span = dtdinfer_obs::span("engine.ingest");
    let jobs = jobs.max(1).min(docs.len().max(1));
    if jobs == 1 {
        return ingest_sequential(base, docs);
    }
    let next = AtomicUsize::new(0);
    let workers: Vec<(EngineState, ShardReport, Option<IngestError>)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..jobs)
                .map(|shard| {
                    let next = &next;
                    scope.spawn(move || {
                        // The span runs on the worker thread, so traces
                        // carry one distinct tid per worker.
                        let _span = dtdinfer_obs::span("engine.shard");
                        let started = Instant::now();
                        let mut local = EngineState::new();
                        let mut documents = 0u64;
                        let mut busy_ns = 0u64;
                        let mut idle_polls = 0u64;
                        let mut first_error: Option<IngestError> = None;
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= docs.len() {
                                idle_polls += 1;
                                break;
                            }
                            let doc_started = Instant::now();
                            match local.absorb_document(docs[i].as_ref()) {
                                Ok(()) => documents += 1,
                                Err(error) => {
                                    let earlier =
                                        first_error.as_ref().is_none_or(|e| i < e.doc_index);
                                    if earlier {
                                        first_error = Some(IngestError {
                                            doc_index: i,
                                            error,
                                        });
                                    }
                                }
                            }
                            busy_ns += elapsed_ns(doc_started);
                        }
                        let report = ShardReport {
                            shard,
                            documents,
                            words: local.total_words(),
                            duration_ns: elapsed_ns(started),
                            busy_ns,
                            idle_polls,
                        };
                        (local, report, first_error)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });
    if let Some(err) = workers
        .iter()
        .filter_map(|(_, _, e)| e.clone())
        .min_by_key(|e| e.doc_index)
    {
        return Err(err);
    }
    let merge_started = Instant::now();
    let mut state = base;
    let mut shards = Vec::with_capacity(workers.len());
    for (local, report, _) in workers {
        state.merge(&local);
        record_shard(&report);
        shards.push(report);
    }
    let merge_ns = elapsed_ns(merge_started);
    dtdinfer_obs::observe("engine.merge_ns", merge_ns);
    Ok(Ingest {
        state,
        shards,
        merge_ns,
    })
}

fn ingest_sequential<D: AsRef<str>>(base: EngineState, docs: &[D]) -> Result<Ingest, IngestError> {
    let started = Instant::now();
    let mut state = base;
    let words_before = state.total_words();
    let mut busy_ns = 0u64;
    for (doc_index, doc) in docs.iter().enumerate() {
        let doc_started = Instant::now();
        state
            .absorb_document(doc.as_ref())
            .map_err(|error| IngestError { doc_index, error })?;
        busy_ns += elapsed_ns(doc_started);
    }
    let report = ShardReport {
        shard: 0,
        documents: docs.len() as u64,
        words: state.total_words() - words_before,
        duration_ns: elapsed_ns(started),
        busy_ns,
        idle_polls: 0,
    };
    record_shard(&report);
    Ok(Ingest {
        state,
        shards: vec![report],
        merge_ns: 0,
    })
}

fn record_shard(report: &ShardReport) {
    if !dtdinfer_obs::is_enabled() {
        return;
    }
    let label = report.shard.to_string();
    dtdinfer_obs::count_labeled("engine.shard.documents", &label, report.documents);
    dtdinfer_obs::count_labeled("engine.shard.words", &label, report.words);
    dtdinfer_obs::observe("engine.shard.duration_ns", report.duration_ns);
    // Per-worker point-in-time telemetry: gauges, since re-ingesting in
    // the same process should replace — not accumulate — a worker's stats.
    let worker = format!("engine.worker.{}", report.shard);
    dtdinfer_obs::gauge(&format!("{worker}.busy_ns"), report.busy_ns);
    dtdinfer_obs::gauge(&format!("{worker}.documents"), report.documents);
    dtdinfer_obs::gauge(&format!("{worker}.idle_polls"), report.idle_polls);
}

fn elapsed_ns(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtdinfer_xml::infer::InferenceEngine;

    fn docs(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| match i % 5 {
                0 => format!("<r><a/><b/><c>x{i}</c></r>"),
                1 => "<r><b/><a/></r>".to_owned(),
                2 => format!("<r><c>y{i}</c></r>"),
                3 => "<r><a/><a/><b/></r>".to_owned(),
                _ => "<r/>".to_owned(),
            })
            .collect()
    }

    #[test]
    fn sharded_equals_sequential_for_all_job_counts() {
        let docs = docs(53);
        let sequential = ingest(&docs, 1).unwrap();
        let baseline = sequential.state.derive(InferenceEngine::Idtd).0.serialize();
        for jobs in [2, 3, 4, 8] {
            let sharded = ingest(&docs, jobs).unwrap();
            assert_eq!(sharded.state.num_documents, docs.len() as u64);
            assert_eq!(sharded.shards.len(), jobs.min(docs.len()));
            assert_eq!(
                sharded.state.derive(InferenceEngine::Idtd).0.serialize(),
                baseline,
                "jobs {jobs}"
            );
            assert_eq!(
                sharded.shards.iter().map(|s| s.documents).sum::<u64>(),
                docs.len() as u64
            );
        }
    }

    #[test]
    fn error_reporting_is_deterministic() {
        let mut docs = docs(40);
        docs[17] = "<r><unclosed></r>".to_owned();
        docs[31] = "<also><bad></also>".to_owned();
        for jobs in [1, 4] {
            let err = ingest(&docs, jobs).unwrap_err();
            assert_eq!(err.doc_index, 17, "jobs {jobs}");
        }
    }

    #[test]
    fn shard_reports_account_for_busy_time_and_idle_polls() {
        let docs = docs(60);
        let sequential = ingest(&docs, 1).unwrap();
        let seq = &sequential.shards[0];
        assert_eq!(seq.idle_polls, 0, "no queue on the sequential path");
        assert!(seq.busy_ns <= seq.duration_ns, "{seq:?}");
        assert!(seq.busy_ns > 0, "60 documents take measurable time");

        let parallel = ingest(&docs, 4).unwrap();
        for s in &parallel.shards {
            assert_eq!(s.idle_polls, 1, "one exhausted poll per worker: {s:?}");
            assert!(s.busy_ns <= s.duration_ns, "{s:?}");
            assert!(s.utilization_pct() <= 100.0, "{s:?}");
        }
    }

    // The obs registry and recorder are process-global, so everything that
    // records through them lives in one test to avoid cross-test races
    // under the parallel runner.
    #[test]
    fn worker_telemetry_lands_in_gauges_and_trace() {
        let docs = docs(40);
        dtdinfer_obs::enable(true, true);
        dtdinfer_obs::reset();
        let ingested = ingest(&docs, 4).unwrap();
        let snap = dtdinfer_obs::snapshot();
        let trace = dtdinfer_obs::take_trace();
        dtdinfer_obs::disable();

        for s in &ingested.shards {
            let prefix = format!("engine.worker.{}", s.shard);
            assert_eq!(snap.gauges[&format!("{prefix}.busy_ns")], s.busy_ns);
            assert_eq!(snap.gauges[&format!("{prefix}.documents")], s.documents);
            assert_eq!(snap.gauges[&format!("{prefix}.idle_polls")], s.idle_polls);
        }

        let mut shard_tids: Vec<u64> = trace
            .iter()
            .filter_map(|e| match e {
                dtdinfer_obs::TraceEntry::Span { name, tid, .. } if *name == "engine.shard" => {
                    Some(*tid)
                }
                _ => None,
            })
            .collect();
        assert_eq!(shard_tids.len(), 4, "one span per worker: {trace:?}");
        shard_tids.sort_unstable();
        shard_tids.dedup();
        assert_eq!(shard_tids.len(), 4, "each worker has its own tid");
    }

    #[test]
    fn more_jobs_than_documents() {
        let docs = docs(3);
        let r = ingest(&docs, 16).unwrap();
        assert_eq!(r.state.num_documents, 3);
        assert!(r.shards.len() <= 3);
    }

    #[test]
    fn warm_start_equals_one_shot() {
        let docs = docs(30);
        let one_shot = ingest(&docs, 4).unwrap();
        let first = ingest(&docs[..12], 4).unwrap();
        let resumed = ingest_into(first.state, &docs[12..], 4).unwrap();
        for engine in [InferenceEngine::Crx, InferenceEngine::Idtd] {
            assert_eq!(
                resumed.state.derive(engine).0.serialize(),
                one_shot.state.derive(engine).0.serialize(),
                "{engine:?}"
            );
        }
    }
}
