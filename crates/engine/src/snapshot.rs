//! Versioned engine snapshots: persist an [`EngineState`] and warm-start a
//! later run from it.
//!
//! The format is line-oriented text, built on the learners' own
//! serializations (`SupportSoa::to_text`, `CrxState::to_text` — the §9
//! "internal representation is the complete memory" property):
//!
//! ```text
//! #dtdinfer-engine v1
//! documents 24
//! root lib 24
//! element author
//! occurrences 23
//! text A
//! attr id b1
//! s words 23
//! s sym title 23
//! s pair title author 23
//! c words 23
//! c sym title
//! ```
//!
//! `s `-prefixed lines carry the element's support-SOA records and `c `
//! lines its CRX summary. Free-form values (`text`, both `attr` fields,
//! element names in `element`/`root`) are percent-escaped so they stay
//! single whitespace-free tokens: `%` → `%25`, space → `%20`, tab →
//! `%09`, newline → `%0A`, carriage return → `%0D`.
//!
//! The header is mandatory; files with a different version or missing
//! header are rejected with a descriptive error rather than misread.

use crate::{ElementState, EngineState};
use dtdinfer_core::crx::CrxState;
use dtdinfer_core::noise::SupportSoa;
use dtdinfer_regex::alphabet::Sym;
use std::fmt::Write as _;

/// The header every readable snapshot must start with.
pub const HEADER: &str = "#dtdinfer-engine v1";

/// Serializes the state. The state is canonicalized first, so snapshots of
/// the same document multiset are byte-identical regardless of ingestion
/// order or sharding.
pub fn save(state: &EngineState) -> String {
    let mut state = state.canonicalized();
    // Sample lists accumulate in ingestion order; downstream inference
    // (datatypes, attribute defaults) is multiset-invariant, so sorting
    // them here costs nothing and makes the bytes canonical.
    for element in state.elements.values_mut() {
        element.text_samples.sort_unstable();
        for values in element.attributes.values_mut() {
            values.sort_unstable();
        }
    }
    let mut out = String::from(HEADER);
    out.push('\n');
    let _ = writeln!(out, "documents {}", state.num_documents);
    for (&root, count) in &state.roots {
        let _ = writeln!(out, "root {} {count}", esc(state.alphabet.name(root)));
    }
    for (&sym, element) in &state.elements {
        let _ = writeln!(out, "element {}", esc(state.alphabet.name(sym)));
        let _ = writeln!(out, "occurrences {}", element.occurrences);
        for text in &element.text_samples {
            let _ = writeln!(out, "text {}", esc(text));
        }
        for (attr, values) in &element.attributes {
            for value in values {
                let _ = writeln!(out, "attr {} {}", esc(attr), esc(value));
            }
        }
        for line in element.support.to_text(&state.alphabet).lines() {
            if !line.starts_with('#') {
                let _ = writeln!(out, "s {line}");
            }
        }
        for line in element.crx.to_text(&state.alphabet).lines() {
            if !line.starts_with('#') {
                let _ = writeln!(out, "c {line}");
            }
        }
    }
    dtdinfer_obs::observe("engine.snapshot.bytes", out.len() as u64);
    out
}

/// Parses a snapshot produced by [`save`]. Rejects missing headers, other
/// versions, and malformed records with a descriptive error.
pub fn load(text: &str) -> Result<EngineState, String> {
    match text.lines().next().map(str::trim) {
        Some(HEADER) => {}
        Some(h) if h.starts_with("#dtdinfer-engine ") => {
            let version = h.trim_start_matches("#dtdinfer-engine ").trim();
            return Err(format!(
                "unsupported snapshot version {version:?} (this build reads v1)"
            ));
        }
        _ => {
            return Err(format!(
                "not a dtdinfer engine snapshot (expected a {HEADER:?} first line)"
            ));
        }
    }
    let mut state = EngineState::new();
    // The element section currently being accumulated: its symbol plus the
    // raw support/CRX record blocks, parsed when the section closes.
    let mut current: Option<(Sym, ElementState, String, String)> = None;
    let flush = |state: &mut EngineState,
                 current: &mut Option<(Sym, ElementState, String, String)>|
     -> Result<(), String> {
        if let Some((sym, mut element, support, crx)) = current.take() {
            element.support = SupportSoa::from_text(&support, &mut state.alphabet)
                .map_err(|e| format!("support section of {:?}: {e}", state.alphabet.name(sym)))?;
            element.crx = CrxState::from_text(&crx, &mut state.alphabet)
                .map_err(|e| format!("crx section of {:?}: {e}", state.alphabet.name(sym)))?;
            state.elements.insert(sym, element);
        }
        Ok(())
    };
    for (lineno, line) in text.lines().enumerate().skip(1) {
        let err = |m: String| format!("line {}: {m}", lineno + 1);
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (kind, rest) = line.split_once(' ').unwrap_or((line, ""));
        match kind {
            "documents" => {
                state.num_documents = rest
                    .parse()
                    .map_err(|e| err(format!("bad document count: {e}")))?;
            }
            "root" => {
                let (name, count) = rest
                    .rsplit_once(' ')
                    .ok_or_else(|| err("root needs a name and a count".into()))?;
                let sym = state.alphabet.intern(&unesc(name).map_err(err)?);
                let count: u64 = count.parse().map_err(|e| err(format!("bad count: {e}")))?;
                *state.roots.entry(sym).or_insert(0) += count;
            }
            "element" => {
                flush(&mut state, &mut current)?;
                let sym = state.alphabet.intern(&unesc(rest).map_err(err)?);
                current = Some((sym, ElementState::default(), String::new(), String::new()));
            }
            "occurrences" | "text" | "attr" | "s" | "c" => {
                let (_, element, support, crx) = current
                    .as_mut()
                    .ok_or_else(|| err(format!("{kind:?} record outside an element section")))?;
                match kind {
                    "occurrences" => {
                        element.occurrences = rest
                            .parse()
                            .map_err(|e| err(format!("bad occurrence count: {e}")))?;
                    }
                    "text" => element.text_samples.push(unesc(rest).map_err(err)?),
                    "attr" => {
                        let (name, value) = rest
                            .split_once(' ')
                            .ok_or_else(|| err("attr needs a name and a value".into()))?;
                        element
                            .attributes
                            .entry(unesc(name).map_err(err)?)
                            .or_default()
                            .push(unesc(value).map_err(err)?);
                    }
                    "s" => {
                        support.push_str(rest);
                        support.push('\n');
                    }
                    _ => {
                        crx.push_str(rest);
                        crx.push('\n');
                    }
                }
            }
            other => return Err(err(format!("unknown record {other:?}"))),
        }
    }
    flush(&mut state, &mut current)?;
    dtdinfer_obs::observe("engine.snapshot.bytes", text.len() as u64);
    Ok(state)
}

/// Escapes a value into a single whitespace-free token.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\t' => out.push_str("%09"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            _ => out.push(c),
        }
    }
    out
}

/// Reverses [`esc`]; rejects truncated or non-hex escapes.
fn unesc(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let hex: String = chars.by_ref().take(2).collect();
        if hex.len() != 2 {
            return Err(format!("truncated escape in {s:?}"));
        }
        let code =
            u32::from_str_radix(&hex, 16).map_err(|_| format!("bad escape %{hex} in {s:?}"))?;
        out.push(char::from_u32(code).ok_or_else(|| format!("bad escape %{hex} in {s:?}"))?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ingest;
    use dtdinfer_xml::infer::InferenceEngine;

    fn docs() -> Vec<String> {
        let mut docs = vec![
            "<r a=\"1 % two\"><x>hello world</x><y/></r>".to_owned(),
            "<r><y/><x>line\nbreak</x></r>".to_owned(),
        ];
        for i in 0..10 {
            docs.push(format!("<r><x>v{i}</x><y/><y/></r>"));
        }
        docs
    }

    #[test]
    fn round_trip_preserves_state_and_output() {
        let state = ingest(&docs(), 2).unwrap().state;
        let text = save(&state);
        let restored = load(&text).unwrap();
        assert_eq!(restored.num_documents, state.num_documents);
        assert_eq!(restored.total_words(), state.total_words());
        // Re-saving is the identity: the format is canonical.
        assert_eq!(save(&restored), text);
        for engine in [
            InferenceEngine::Crx,
            InferenceEngine::Idtd,
            InferenceEngine::IdtdNoise { threshold: 2 },
        ] {
            assert_eq!(
                restored.derive(engine).0.serialize(),
                state.derive(engine).0.serialize(),
                "{engine:?}"
            );
        }
    }

    #[test]
    fn save_load_absorb_more_equals_one_shot() {
        let docs = docs();
        let one_shot = ingest(&docs, 2).unwrap().state;
        let warm = load(&save(&ingest(&docs[..4], 2).unwrap().state)).unwrap();
        let resumed = crate::pool::ingest_into(warm, &docs[4..], 2).unwrap().state;
        assert_eq!(
            resumed.derive(InferenceEngine::Idtd).0.serialize(),
            one_shot.derive(InferenceEngine::Idtd).0.serialize()
        );
        // The snapshots themselves coincide too.
        assert_eq!(save(&resumed), save(&one_shot));
    }

    #[test]
    fn snapshot_is_ingestion_order_invariant() {
        let docs = docs();
        let forward = ingest(&docs, 1).unwrap().state;
        let reversed: Vec<String> = docs.iter().rev().cloned().collect();
        let backward = ingest(&reversed, 3).unwrap().state;
        assert_eq!(save(&forward), save(&backward));
    }

    #[test]
    fn rejects_missing_header() {
        let err = load("documents 3\n").unwrap_err();
        assert!(err.contains("not a dtdinfer engine snapshot"), "{err}");
    }

    #[test]
    fn rejects_other_versions() {
        let err = load("#dtdinfer-engine v2\ndocuments 3\n").unwrap_err();
        assert!(err.contains("unsupported snapshot version"), "{err}");
        assert!(err.contains("v1"), "{err}");
    }

    #[test]
    fn rejects_corrupted_records() {
        for (bad, needle) in [
            (
                format!("{HEADER}\ndocuments not-a-number\n"),
                "bad document count",
            ),
            (format!("{HEADER}\nfroz x\n"), "unknown record"),
            (
                format!("{HEADER}\noccurrences 3\n"),
                "outside an element section",
            ),
            (format!("{HEADER}\nelement a\nattr only-name\n"), "attr"),
            (
                format!("{HEADER}\nelement a\ns pair x\n"),
                "support section",
            ),
            (format!("{HEADER}\nelement a%2\n"), "truncated escape"),
        ] {
            let err = load(&bad).unwrap_err();
            assert!(err.contains(needle), "{bad:?} → {err}");
        }
    }

    #[test]
    fn escaping_round_trips() {
        for s in ["", "plain", "with space", "100%", "a\tb\nc\rd", "%20", "%%"] {
            let e = esc(s);
            assert!(!e.contains(char::is_whitespace), "{e:?}");
            assert_eq!(unesc(&e).unwrap(), s, "{s:?}");
        }
    }
}
