//! Versioned engine snapshots: persist an [`EngineState`] and warm-start a
//! later run from it.
//!
//! The format is line-oriented text, built on the learners' own
//! serializations (`SupportSoa::to_text`, `CrxState::to_text` — the §9
//! "internal representation is the complete memory" property):
//!
//! ```text
//! #dtdinfer-engine v4
//! documents 24
//! root lib 24
//! element author
//! occurrences 23
//! text 23 64 0
//! tv A 22
//! tv B 1
//! attr id 23 64 0
//! av id b1 1
//! w 23
//! s words 23
//! s sym title 23
//! s pair title author 23
//! c words 23
//! c sym title
//! ```
//!
//! `text total viable overflowed` opens an element's text reservoir
//! (`viable` is the datatype-viability bitmask, `overflowed` 0/1) and each
//! `tv value count` line carries one retained sample; `attr name total
//! viable overflowed` / `av name value count` do the same per attribute.
//! `w count child…` rows (new in v3) carry the element's counted
//! child-sequence multiset, one distinct shape per row in canonical
//! order — `w 23` above records 23 empty child sequences. `s `-prefixed
//! lines carry the element's support-SOA records, `c ` lines its CRX
//! summary, and `k ` lines (new in v4) its k-occurrence automaton
//! (`KoreState::to_text` records). Free-form values (samples, attribute
//! names, element names in `element`/`root`) are percent-escaped so they
//! stay single whitespace-free tokens: `%` → `%25`, space → `%20`,
//! tab → `%09`, newline → `%0A`, carriage return → `%0D`.
//!
//! The header is mandatory. v3 files (identical minus the `k` rows) load
//! losslessly: the k-occurrence automaton is a pure function of the word
//! multiset the `w` rows carry, so it is rebuilt exactly. v2 files
//! (additionally minus the `w` rows) load with empty multisets and an
//! empty k-ORE state — derivation under the three classic engines is
//! unchanged because the learner records stay authoritative; the counted
//! facts view and the k-ORE engine degrade until new documents are
//! absorbed. Other versions (including v1, whose unbounded sample lists
//! this build no longer keeps) and missing headers are rejected with a
//! descriptive error rather than misread.

use crate::{ElementState, EngineState};
use dtdinfer_core::crx::CrxState;
use dtdinfer_core::kore::KoreState;
use dtdinfer_core::noise::SupportSoa;
use dtdinfer_regex::alphabet::{Sym, Word};
use dtdinfer_xml::samples::{SampleBag, DEFAULT_SAMPLE_CAP};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The header every snapshot this build writes starts with.
pub const HEADER: &str = "#dtdinfer-engine v4";

/// The previous format, still readable: v4 minus the `k` k-ORE rows
/// (rebuilt exactly from the `w` multiset rows).
pub const V3_HEADER: &str = "#dtdinfer-engine v3";

/// The oldest readable format: v3 minus the `w` multiset rows.
pub const V2_HEADER: &str = "#dtdinfer-engine v2";

fn write_bag(out: &mut String, kind: &str, prefix: &str, bag: &SampleBag) {
    if bag.is_empty() {
        return;
    }
    let (total, viable, overflowed) = bag.export_header();
    let _ = writeln!(
        out,
        "{kind}{prefix} {total} {viable} {}",
        u8::from(overflowed)
    );
    let value_kind = match kind {
        "text" => "tv".to_owned(),
        _ => format!("av{prefix}"),
    };
    for (value, count) in bag.entries() {
        let _ = writeln!(out, "{value_kind} {} {count}", esc(value));
    }
}

/// Serializes the state. The state is canonicalized first (and sample
/// reservoirs are canonical by construction), so snapshots of the same
/// document multiset are byte-identical regardless of ingestion order or
/// sharding.
pub fn save(state: &EngineState) -> String {
    let state = state.canonicalized();
    let mut out = String::from(HEADER);
    out.push('\n');
    let _ = writeln!(out, "documents {}", state.num_documents);
    for (&root, count) in &state.roots {
        let _ = writeln!(out, "root {} {count}", esc(state.alphabet.name(root)));
    }
    for (&sym, element) in &state.elements {
        let _ = writeln!(out, "element {}", esc(state.alphabet.name(sym)));
        let _ = writeln!(out, "occurrences {}", element.occurrences);
        write_bag(&mut out, "text", "", &element.text_samples);
        for (attr, values) in &element.attributes {
            write_bag(&mut out, "attr", &format!(" {}", esc(attr)), values);
        }
        for (word, count) in element.words.iter() {
            let _ = write!(out, "w {count}");
            for &s in word {
                let _ = write!(out, " {}", esc(state.alphabet.name(s)));
            }
            out.push('\n');
        }
        for line in element.support.to_text(&state.alphabet).lines() {
            if !line.starts_with('#') {
                let _ = writeln!(out, "s {line}");
            }
        }
        for line in element.crx.to_text(&state.alphabet).lines() {
            if !line.starts_with('#') {
                let _ = writeln!(out, "c {line}");
            }
        }
        if !element.kore.is_empty() {
            for line in element.kore.to_text(&state.alphabet).lines() {
                if !line.starts_with('#') {
                    let _ = writeln!(out, "k {line}");
                }
            }
        }
    }
    dtdinfer_obs::observe("engine.snapshot.bytes", out.len() as u64);
    out
}

/// Reservoir parts accumulated while a section is read; assembled into a
/// [`SampleBag`] when the section closes.
#[derive(Default)]
struct BagParts {
    total: u64,
    viable: u8,
    overflowed: bool,
    entries: Vec<(String, u64)>,
}

impl BagParts {
    fn parse_header(rest: &str) -> Result<BagParts, String> {
        let fields: Vec<&str> = rest.split(' ').collect();
        let [total, viable, overflowed] = fields.as_slice() else {
            return Err("reservoir header needs total, viability mask, overflow flag".into());
        };
        Ok(BagParts {
            total: total.parse().map_err(|e| format!("bad total: {e}"))?,
            viable: viable
                .parse()
                .map_err(|e| format!("bad viability mask: {e}"))?,
            overflowed: match *overflowed {
                "0" => false,
                "1" => true,
                other => return Err(format!("bad overflow flag {other:?}")),
            },
            entries: Vec::new(),
        })
    }

    fn push_value(&mut self, rest: &str) -> Result<(), String> {
        let (value, count) = rest
            .rsplit_once(' ')
            .ok_or("sample record needs a value and a count")?;
        let count: u64 = count.parse().map_err(|e| format!("bad count: {e}"))?;
        self.entries.push((unesc(value)?, count));
        Ok(())
    }

    fn into_bag(self) -> Result<SampleBag, String> {
        SampleBag::from_parts(
            DEFAULT_SAMPLE_CAP,
            self.total,
            self.viable,
            self.overflowed,
            self.entries,
        )
    }
}

/// One element section being accumulated: the raw support/CRX record
/// blocks and reservoir parts are parsed when the section closes.
struct Section {
    sym: Sym,
    element: ElementState,
    support: String,
    crx: String,
    kore: String,
    text: Option<BagParts>,
    attrs: BTreeMap<String, BagParts>,
    words: Vec<(Word, u32)>,
}

/// Parses a snapshot produced by [`save`] (v4) or by an earlier build: v3
/// (k-ORE state rebuilt exactly from the multiset rows) or v2 (loaded with
/// empty multisets and an empty k-ORE state). Rejects missing headers,
/// other versions, and malformed records with a descriptive error.
pub fn load(text: &str) -> Result<EngineState, String> {
    match text.lines().next().map(str::trim) {
        Some(h) if h == HEADER || h == V3_HEADER || h == V2_HEADER => {}
        Some(h) if h.starts_with("#dtdinfer-engine ") => {
            let version = h.trim_start_matches("#dtdinfer-engine ").trim();
            return Err(format!(
                "unsupported snapshot version {version:?} (this build reads v2, v3, and v4)"
            ));
        }
        _ => {
            return Err(format!(
                "not a dtdinfer engine snapshot (expected a {HEADER:?} first line)"
            ));
        }
    }
    let mut state = EngineState::new();
    let mut current: Option<Section> = None;
    let flush = |state: &mut EngineState, current: &mut Option<Section>| -> Result<(), String> {
        if let Some(section) = current.take() {
            let Section {
                sym,
                mut element,
                support,
                crx,
                kore,
                text,
                attrs,
                words,
            } = section;
            let name = |state: &EngineState| state.alphabet.name(sym).to_owned();
            // Rows were validated (non-zero counts, well-formed) as they
            // were read; rebuilding through `insert_n` re-canonicalizes
            // under this load's interning order, and a distinct-count
            // mismatch afterwards is exactly a duplicate row.
            let distinct_rows = words.len();
            for (w, n) in words {
                element.words.insert_n(w, n);
            }
            if element.words.distinct() != distinct_rows {
                return Err(format!(
                    "duplicate multiset row in element {:?}",
                    name(state)
                ));
            }
            element.support = SupportSoa::from_text(&support, &mut state.alphabet)
                .map_err(|e| format!("support section of {:?}: {e}", name(state)))?;
            element.crx = CrxState::from_text(&crx, &mut state.alphabet)
                .map_err(|e| format!("crx section of {:?}: {e}", name(state)))?;
            element.kore = if kore.is_empty() {
                // Pre-v4 file: the k-occurrence automaton is a pure
                // function of the word multiset, so rebuilding from the
                // `w` rows is exact for v3 (and yields the documented
                // empty state for v2, whose bag is empty).
                KoreState::learn_counted(&element.words)
            } else {
                KoreState::from_text(&kore, &mut state.alphabet)
                    .map_err(|e| format!("kore section of {:?}: {e}", name(state)))?
            };
            if let Some(parts) = text {
                element.text_samples = parts
                    .into_bag()
                    .map_err(|e| format!("text reservoir of {:?}: {e}", name(state)))?;
            }
            for (attr, parts) in attrs {
                let bag = parts.into_bag().map_err(|e| {
                    format!("attribute {attr:?} reservoir of {:?}: {e}", name(state))
                })?;
                element.attributes.insert(attr, bag);
            }
            state.elements.insert(sym, element);
        }
        Ok(())
    };
    for (lineno, line) in text.lines().enumerate().skip(1) {
        let err = |m: String| format!("line {}: {m}", lineno + 1);
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (kind, rest) = line.split_once(' ').unwrap_or((line, ""));
        match kind {
            "documents" => {
                state.num_documents = rest
                    .parse()
                    .map_err(|e| err(format!("bad document count: {e}")))?;
            }
            "root" => {
                let (name, count) = rest
                    .rsplit_once(' ')
                    .ok_or_else(|| err("root needs a name and a count".into()))?;
                let sym = state.alphabet.intern(&unesc(name).map_err(err)?);
                let count: u64 = count.parse().map_err(|e| err(format!("bad count: {e}")))?;
                *state.roots.entry(sym).or_insert(0) += count;
            }
            "element" => {
                flush(&mut state, &mut current)?;
                let sym = state.alphabet.intern(&unesc(rest).map_err(err)?);
                current = Some(Section {
                    sym,
                    element: ElementState::default(),
                    support: String::new(),
                    crx: String::new(),
                    kore: String::new(),
                    text: None,
                    attrs: BTreeMap::new(),
                    words: Vec::new(),
                });
            }
            "occurrences" | "text" | "tv" | "attr" | "av" | "w" | "s" | "c" | "k" => {
                let section = current
                    .as_mut()
                    .ok_or_else(|| err(format!("{kind:?} record outside an element section")))?;
                match kind {
                    "occurrences" => {
                        section.element.occurrences = rest
                            .parse()
                            .map_err(|e| err(format!("bad occurrence count: {e}")))?;
                    }
                    "text" => {
                        if section.text.is_some() {
                            return Err(err("duplicate text reservoir".into()));
                        }
                        section.text = Some(BagParts::parse_header(rest).map_err(err)?);
                    }
                    "tv" => section
                        .text
                        .as_mut()
                        .ok_or_else(|| err("\"tv\" record before its \"text\" header".into()))?
                        .push_value(rest)
                        .map_err(err)?,
                    "attr" => {
                        let (name, header) = rest
                            .split_once(' ')
                            .ok_or_else(|| err("attr needs a name and a header".into()))?;
                        let name = unesc(name).map_err(err)?;
                        let parts = BagParts::parse_header(header).map_err(err)?;
                        if section.attrs.insert(name.clone(), parts).is_some() {
                            return Err(err(format!("duplicate attribute reservoir {name:?}")));
                        }
                    }
                    "av" => {
                        let (name, value) = rest
                            .split_once(' ')
                            .ok_or_else(|| err("av needs a name, a value and a count".into()))?;
                        let name = unesc(name).map_err(err)?;
                        section
                            .attrs
                            .get_mut(&name)
                            .ok_or_else(|| {
                                err(format!("\"av\" record before its {name:?} header"))
                            })?
                            .push_value(value)
                            .map_err(err)?;
                    }
                    "w" => {
                        let mut fields = rest.split(' ').filter(|f| !f.is_empty());
                        let count: u32 = fields
                            .next()
                            .ok_or_else(|| err("multiset row needs a count".into()))?
                            .parse()
                            .map_err(|e| err(format!("bad multiset count: {e}")))?;
                        if count == 0 {
                            return Err(err("zero-count multiset row".into()));
                        }
                        let mut word = Word::new();
                        for child in fields {
                            word.push(state.alphabet.intern(&unesc(child).map_err(err)?));
                        }
                        section.words.push((word, count));
                    }
                    "s" => {
                        section.support.push_str(rest);
                        section.support.push('\n');
                    }
                    "k" => {
                        section.kore.push_str(rest);
                        section.kore.push('\n');
                    }
                    _ => {
                        section.crx.push_str(rest);
                        section.crx.push('\n');
                    }
                }
            }
            other => return Err(err(format!("unknown record {other:?}"))),
        }
    }
    flush(&mut state, &mut current)?;
    dtdinfer_obs::observe("engine.snapshot.bytes", text.len() as u64);
    Ok(state)
}

/// Escapes a value into a single whitespace-free token.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\t' => out.push_str("%09"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            _ => out.push(c),
        }
    }
    out
}

/// Reverses [`esc`]; rejects truncated or non-hex escapes.
fn unesc(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let hex: String = chars.by_ref().take(2).collect();
        if hex.len() != 2 {
            return Err(format!("truncated escape in {s:?}"));
        }
        let code =
            u32::from_str_radix(&hex, 16).map_err(|_| format!("bad escape %{hex} in {s:?}"))?;
        out.push(char::from_u32(code).ok_or_else(|| format!("bad escape %{hex} in {s:?}"))?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ingest;
    use dtdinfer_xml::infer::InferenceEngine;

    fn docs() -> Vec<String> {
        let mut docs = vec![
            "<r a=\"1 % two\"><x>hello world</x><y/></r>".to_owned(),
            "<r><y/><x>line\nbreak</x></r>".to_owned(),
        ];
        for i in 0..10 {
            docs.push(format!("<r><x>v{i}</x><y/><y/></r>"));
        }
        docs
    }

    #[test]
    fn round_trip_preserves_state_and_output() {
        let state = ingest(&docs(), 2).unwrap().state;
        let text = save(&state);
        let restored = load(&text).unwrap();
        assert_eq!(restored.num_documents, state.num_documents);
        assert_eq!(restored.total_words(), state.total_words());
        // Re-saving is the identity: the format is canonical.
        assert_eq!(save(&restored), text);
        for engine in [
            InferenceEngine::Crx,
            InferenceEngine::Idtd,
            InferenceEngine::IdtdNoise { threshold: 2 },
            InferenceEngine::Kore,
            InferenceEngine::Auto,
        ] {
            assert_eq!(
                restored.derive(engine).0.serialize(),
                state.derive(engine).0.serialize(),
                "{engine:?}"
            );
        }
    }

    #[test]
    fn save_load_absorb_more_equals_one_shot() {
        let docs = docs();
        let one_shot = ingest(&docs, 2).unwrap().state;
        let warm = load(&save(&ingest(&docs[..4], 2).unwrap().state)).unwrap();
        let resumed = crate::pool::ingest_into(warm, &docs[4..], 2).unwrap().state;
        for engine in [InferenceEngine::Idtd, InferenceEngine::Kore] {
            assert_eq!(
                resumed.derive(engine).0.serialize(),
                one_shot.derive(engine).0.serialize(),
                "{engine:?}"
            );
        }
        // The snapshots themselves coincide too.
        assert_eq!(save(&resumed), save(&one_shot));
    }

    #[test]
    fn snapshot_is_ingestion_order_invariant() {
        let docs = docs();
        let forward = ingest(&docs, 1).unwrap().state;
        let reversed: Vec<String> = docs.iter().rev().cloned().collect();
        let backward = ingest(&reversed, 3).unwrap().state;
        assert_eq!(save(&forward), save(&backward));
    }

    #[test]
    fn rejects_missing_header() {
        let err = load("documents 3\n").unwrap_err();
        assert!(err.contains("not a dtdinfer engine snapshot"), "{err}");
    }

    #[test]
    fn rejects_other_versions() {
        for other in ["v1", "v5"] {
            let err = load(&format!("#dtdinfer-engine {other}\ndocuments 3\n")).unwrap_err();
            assert!(err.contains("unsupported snapshot version"), "{err}");
            assert!(err.contains("v2, v3, and v4"), "{err}");
        }
    }

    /// Rewrites a v4 snapshot into the v3 format an earlier build wrote:
    /// same records minus the `k` k-ORE rows, v3 header.
    fn downgrade_to_v3(v4: &str) -> String {
        let mut out = String::new();
        for line in v4.lines() {
            if line == HEADER {
                out.push_str(V3_HEADER);
            } else if line.starts_with("k ") {
                continue;
            } else {
                out.push_str(line);
            }
            out.push('\n');
        }
        out
    }

    /// Rewrites a v4 snapshot into the v2 format: additionally minus the
    /// `w` multiset rows, v2 header.
    fn downgrade_to_v2(v4: &str) -> String {
        let mut out = String::new();
        for line in v4.lines() {
            if line == HEADER {
                out.push_str(V2_HEADER);
            } else if line.starts_with("w ") || line.starts_with("k ") {
                continue;
            } else {
                out.push_str(line);
            }
            out.push('\n');
        }
        out
    }

    #[test]
    fn v3_snapshots_load_losslessly() {
        // The k-ORE state is a pure function of the multiset rows, so a
        // v3 file (no `k` rows) loads into the exact same state a v4 file
        // would: re-saving reproduces the v4 snapshot byte-for-byte.
        let state = ingest(&docs(), 2).unwrap().state;
        let v4 = save(&state);
        assert!(v4.contains("\nk "), "v4 carries k-ORE rows");
        let from_v3 = load(&downgrade_to_v3(&v4)).unwrap();
        assert_eq!(save(&from_v3), v4);
        for engine in [InferenceEngine::Kore, InferenceEngine::Auto] {
            assert_eq!(
                from_v3.derive(engine).0.serialize(),
                state.derive(engine).0.serialize(),
                "{engine:?}"
            );
        }
    }

    #[test]
    fn v2_snapshots_load_and_resave_as_v4_with_identical_output() {
        let state = ingest(&docs(), 2).unwrap().state;
        let v4 = save(&state);
        assert!(v4.starts_with(HEADER), "{}", &v4[..40]);
        assert!(v4.contains("\nw "), "v4 carries multiset rows");
        let v2 = downgrade_to_v2(&v4);
        let from_v2 = load(&v2).unwrap();
        // Derivation is byte-identical: the learner records are
        // authoritative, the multiset only feeds the facts view.
        for engine in [
            InferenceEngine::Crx,
            InferenceEngine::Idtd,
            InferenceEngine::IdtdNoise { threshold: 2 },
        ] {
            assert_eq!(
                from_v2.derive(engine).0.serialize(),
                state.derive(engine).0.serialize(),
                "{engine:?}"
            );
        }
        // Re-saving upgrades the header; the multiset and k-ORE state
        // stay empty (the v2 file never carried them), and that upgraded
        // file round-trips byte-identically.
        let upgraded = save(&from_v2);
        assert!(upgraded.starts_with(HEADER));
        assert!(!upgraded.contains("\nw "), "no rows to resurrect");
        assert!(!upgraded.contains("\nk "), "no k-ORE state to resurrect");
        assert_eq!(save(&load(&upgraded).unwrap()), upgraded);
    }

    #[test]
    fn multiset_rows_survive_round_trip() {
        let state = ingest(&docs(), 2).unwrap().state;
        let restored = load(&save(&state)).unwrap();
        let canon = state.canonicalized();
        let restored = restored.canonicalized();
        for (&sym, element) in &canon.elements {
            let name = canon.alphabet.name(sym);
            let twin = restored.alphabet.get(name).expect("same elements");
            assert_eq!(
                restored.elements[&twin].words, element.words,
                "multiset of {name}"
            );
            assert_eq!(
                element.words.total(),
                element.support.num_words(),
                "bag total matches learner word count for {name}"
            );
        }
    }

    #[test]
    fn rejects_corrupt_multiset_rows() {
        for (bad, needle) in [
            (format!("{HEADER}\nelement a\nw\n"), "needs a count"),
            (format!("{HEADER}\nelement a\nw nope x\n"), "bad multiset"),
            (format!("{HEADER}\nelement a\nw 0 x\n"), "zero-count"),
            (
                format!("{HEADER}\nelement a\nw 1 x\nw 2 x\n"),
                "duplicate multiset row",
            ),
            (format!("{HEADER}\nw 1 x\n"), "outside an element section"),
            (
                format!("{HEADER}\nelement a\nw 1 x%2\n"),
                "truncated escape",
            ),
        ] {
            let err = load(&bad).unwrap_err();
            assert!(err.contains(needle), "{bad:?} → {err}");
        }
    }

    #[test]
    fn rejects_corrupted_records() {
        for (bad, needle) in [
            (
                format!("{HEADER}\ndocuments not-a-number\n"),
                "bad document count",
            ),
            (format!("{HEADER}\nfroz x\n"), "unknown record"),
            (
                format!("{HEADER}\noccurrences 3\n"),
                "outside an element section",
            ),
            (format!("{HEADER}\nelement a\nattr only-name\n"), "attr"),
            (
                format!("{HEADER}\nelement a\nattr id 3 127\n"),
                "reservoir header",
            ),
            (
                format!("{HEADER}\nelement a\ntext 3 127 2\n"),
                "bad overflow flag",
            ),
            (format!("{HEADER}\nelement a\ntv x 1\n"), "before its"),
            (format!("{HEADER}\nelement a\nav id x 1\n"), "before its"),
            (
                // Non-overflowed reservoir whose counts don't add up.
                format!("{HEADER}\nelement a\ntext 5 127 0\ntv x 1\n"),
                "text reservoir",
            ),
            (
                format!("{HEADER}\nelement a\ns pair x\n"),
                "support section",
            ),
            (
                format!("{HEADER}\nelement a\nk edge a 0 b 1\n"),
                "kore section",
            ),
            (format!("{HEADER}\nelement a\nk bogus\n"), "kore section"),
            (format!("{HEADER}\nelement a%2\n"), "truncated escape"),
        ] {
            let err = load(&bad).unwrap_err();
            assert!(err.contains(needle), "{bad:?} → {err}");
        }
    }

    #[test]
    fn rejects_truncated_reservoir_rows() {
        // A "tv" row cut mid-record (value but no count) must fail closed,
        // not default the count.
        let bad = format!("{HEADER}\nelement a\ntext 1 127 0\ntv onlyvalue\n");
        let err = load(&bad).unwrap_err();
        assert!(err.contains("needs a value and a count"), "{err}");
        // Same for attribute rows.
        let bad = format!("{HEADER}\nelement a\nattr id 1 127 0\nav id onlyvalue\n");
        let err = load(&bad).unwrap_err();
        assert!(err.contains("needs a value and a count"), "{err}");
        // A non-numeric count is named, with its line number.
        let bad = format!("{HEADER}\nelement a\ntext 1 127 0\ntv x nope\n");
        let err = load(&bad).unwrap_err();
        assert!(err.contains("bad count"), "{err}");
        assert!(err.contains("line 4"), "{err}");
    }

    #[test]
    fn rejects_bad_escape_sequences() {
        // Non-hex escape digits in a value row.
        let bad = format!("{HEADER}\nelement a\ntext 1 127 0\ntv x%zz 1\n");
        let err = load(&bad).unwrap_err();
        assert!(err.contains("bad escape %zz"), "{err}");
        // An escape that decodes to no valid scalar (a surrogate would
        // need 4 digits; here an out-of-range check via %d8 is fine, so
        // use a name with a truncated escape at end of line instead).
        let bad = format!("{HEADER}\nroot r%a 1\n");
        let err = load(&bad).unwrap_err();
        assert!(err.contains("truncated escape"), "{err}");
    }

    #[test]
    fn rejects_realistic_v1_file_with_version_message() {
        // A plausible earlier-format file: right magic prefix, older
        // version, well-formed records. The version gate must fire before
        // any record parsing, and the message must say what this build
        // reads so the user knows to re-save.
        let v1 = "#dtdinfer-engine v1\n\
                  documents 12\n\
                  root order 12\n\
                  element order\n\
                  occurrences 12\n\
                  s pair item note\n";
        let err = load(v1).unwrap_err();
        assert!(err.contains("unsupported snapshot version \"v1\""), "{err}");
        assert!(err.contains("v2"), "{err}");
    }

    #[test]
    fn snapshot_round_trips_overflowed_reservoirs() {
        let cap = dtdinfer_xml::samples::DEFAULT_SAMPLE_CAP;
        let docs: Vec<String> = (0..cap * 3)
            .map(|i| format!("<r><x>value {i}</x></r>"))
            .collect();
        let state = ingest(&docs, 2).unwrap().state;
        let restored = load(&save(&state)).unwrap();
        assert_eq!(save(&restored), save(&state));
        let x = restored.alphabet.get("x").unwrap();
        let bag = &restored.elements[&x].text_samples;
        assert!(bag.overflowed());
        assert_eq!(bag.distinct_retained(), cap);
        assert_eq!(bag.total(), (cap * 3) as u64);
    }

    #[test]
    fn escaping_round_trips() {
        for s in ["", "plain", "with space", "100%", "a\tb\nc\rd", "%20", "%%"] {
            let e = esc(s);
            assert!(!e.contains(char::is_whitespace), "{e:?}");
            assert_eq!(unesc(&e).unwrap(), s, "{s:?}");
        }
    }
}
