//! Document sources: where ingestion pulls its XML from.
//!
//! The worker pool used to receive every document pre-loaded as a
//! `Vec<String>` — peak memory scaled with the corpus, defeating the
//! paper's "discard the XML as data trickles in" premise (§9). A
//! [`DocSource`] inverts that: workers claim *indices* and load each
//! document themselves into a reused per-worker buffer, so at most one
//! document per worker is resident at a time.
//!
//! [`PathSource`] reads files on demand (the CLI path); [`MemSource`]
//! adapts an in-memory slice (tests, benches, and callers that already
//! hold the documents) with zero copying.

use std::path::PathBuf;

/// A random-access collection of XML documents, loadable by index.
///
/// `Sync` because the worker pool shares one source across threads; `load`
/// takes `&self` and must be safe to call concurrently for distinct (or
/// even equal) indices.
pub trait DocSource: Sync {
    /// Number of documents.
    fn len(&self) -> usize;

    /// Whether the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A human-readable name for document `index` (usually the file path),
    /// used to attribute errors. `None` for anonymous in-memory documents.
    fn name(&self, index: usize) -> Option<String>;

    /// Loads document `index`, borrowing either from the source itself or
    /// from `buf` (cleared and refilled). Returns a message on read
    /// failure.
    fn load<'s>(&'s self, index: usize, buf: &'s mut String) -> Result<&'s str, String>;
}

/// An in-memory document slice; `load` borrows straight from the slice.
pub struct MemSource<'a, D: AsRef<str> + Sync> {
    docs: &'a [D],
}

impl<'a, D: AsRef<str> + Sync> MemSource<'a, D> {
    /// Wraps a document slice.
    pub fn new(docs: &'a [D]) -> Self {
        Self { docs }
    }
}

impl<D: AsRef<str> + Sync> DocSource for MemSource<'_, D> {
    fn len(&self) -> usize {
        self.docs.len()
    }

    fn name(&self, _index: usize) -> Option<String> {
        None
    }

    fn load<'s>(&'s self, index: usize, _buf: &'s mut String) -> Result<&'s str, String> {
        Ok(self.docs[index].as_ref())
    }
}

/// A list of file paths, read lazily into the caller's buffer — the
/// streaming ingestion path: no document is resident before a worker
/// claims it, and each worker holds at most one at a time.
pub struct PathSource {
    paths: Vec<PathBuf>,
}

impl PathSource {
    /// Wraps a path list.
    pub fn new(paths: Vec<PathBuf>) -> Self {
        Self { paths }
    }

    /// The underlying paths.
    pub fn paths(&self) -> &[PathBuf] {
        &self.paths
    }
}

impl DocSource for PathSource {
    fn len(&self) -> usize {
        self.paths.len()
    }

    fn name(&self, index: usize) -> Option<String> {
        Some(self.paths[index].display().to_string())
    }

    fn load<'s>(&'s self, index: usize, buf: &'s mut String) -> Result<&'s str, String> {
        buf.clear();
        let path = &self.paths[index];
        let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let text = String::from_utf8(bytes)
            .map_err(|e| format!("{}: invalid UTF-8: {e}", path.display()))?;
        *buf = text;
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_source_borrows_without_copying() {
        let docs = ["<a/>".to_owned(), "<b/>".to_owned()];
        let source = MemSource::new(&docs);
        assert_eq!(source.len(), 2);
        assert_eq!(source.name(0), None);
        let mut buf = String::new();
        let doc = source.load(1, &mut buf).unwrap();
        assert_eq!(doc, "<b/>");
        assert!(buf.is_empty(), "in-memory load must not copy");
    }

    #[test]
    fn path_source_reads_and_names_files() {
        let dir = std::env::temp_dir().join(format!("dtdinfer-src-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("doc.xml");
        std::fs::write(&file, "<r><a/></r>").unwrap();
        let source = PathSource::new(vec![file.clone(), dir.join("missing.xml")]);
        assert_eq!(source.len(), 2);
        assert_eq!(source.name(0), Some(file.display().to_string()));
        let mut buf = String::new();
        assert_eq!(source.load(0, &mut buf).unwrap(), "<r><a/></r>");
        let err = source.load(1, &mut buf).unwrap_err();
        assert!(err.contains("missing.xml"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
