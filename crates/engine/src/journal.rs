//! Append-only ingest journal layered on the v2 snapshot format.
//!
//! A snapshot is a *compacted* past: re-deriving from it is byte-identical
//! to re-ingesting every document it absorbed. The journal supplies the
//! uncompacted present: every document ingested since the last snapshot is
//! appended as one length-prefixed, CRC-checksummed record, so a session
//! survives a crash by loading the snapshot and replaying the journal.
//!
//! ## File layout
//!
//! ```text
//! #dtdinfer-journal v1 base <N>\n      (text header)
//! [u32 len][u32 crc32][payload]...     (binary records, little-endian)
//! ```
//!
//! `base` is the `num_documents` count of the snapshot this journal layers
//! on *at the moment the journal was started*. Recovery replays only the
//! records the snapshot has not absorbed yet: with a snapshot holding `D`
//! documents and a journal based at `B`, the first `D − B` records are
//! skipped (they are already inside the snapshot) and the rest re-absorbed.
//! That makes compaction crash-safe without a sidecar: the snapshot is
//! atomically renamed into place *before* the journal is reset, and if the
//! process dies between the two steps the stale journal's records are all
//! skipped on the next recovery instead of double-absorbed.
//!
//! ## Failure rules (fail closed, tolerate torn tails)
//!
//! * A record whose checksum mismatches **with more bytes after it** is
//!   corruption in the middle of the file: recovery fails closed (the
//!   journal was damaged, not merely cut short) rather than silently
//!   dropping data.
//! * A record cut short by the end of the file — a partial header, a
//!   payload shorter than its length prefix, or a checksum mismatch on
//!   the final record — is a *torn tail*: the expected shape of a crash
//!   mid-append. Recovery keeps everything before it and truncates the
//!   tear away.
//! * A missing or foreign header fails closed; a zero-byte file (crash
//!   between create and header write) counts as an empty journal.

use crate::{snapshot, EngineState};
use std::fs::{File, OpenOptions};
use std::io::{Seek, Write};
use std::path::{Path, PathBuf};

/// The magic prefix every journal header line starts with.
pub const JOURNAL_MAGIC: &str = "#dtdinfer-journal v1";

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven; the table
/// is built at compile time so the hot path is one lookup per byte.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (IEEE polynomial, standard init/finalize).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Encodes one journal record: length prefix, checksum, payload.
pub fn encode_record(doc: &str) -> Vec<u8> {
    let payload = doc.as_bytes();
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(
        &u32::try_from(payload.len())
            .unwrap_or(u32::MAX)
            .to_le_bytes(),
    );
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// The parsed shape of a journal byte sequence.
#[derive(Debug)]
pub struct ParsedJournal {
    /// The header's base document count (`num_documents` of the snapshot
    /// the journal was started over).
    pub base: u64,
    /// Every structurally valid record payload, in append order.
    pub records: Vec<String>,
    /// Byte length of the valid prefix. Anything beyond it is a torn
    /// tail a writer should truncate away before appending again.
    pub valid_len: u64,
    /// Whether a torn tail was cut off (crash mid-append).
    pub torn_tail: bool,
}

/// Parses raw journal bytes per the failure rules above. An empty input
/// parses as an empty journal with `base` 0 — callers that layer over a
/// snapshot treat "no journal" and "empty journal" as base = snapshot.
pub fn parse_journal(bytes: &[u8]) -> Result<ParsedJournal, String> {
    if bytes.is_empty() {
        return Ok(ParsedJournal {
            base: 0,
            records: Vec::new(),
            valid_len: 0,
            torn_tail: false,
        });
    }
    let Some(nl) = bytes.iter().position(|&b| b == b'\n') else {
        // Crash while writing the header itself: a torn tail before any
        // record ever landed — unless the bytes cannot be a header prefix,
        // in which case this is a foreign file.
        return if JOURNAL_MAGIC.as_bytes().starts_with(bytes) || is_header_prefix(bytes) {
            Ok(ParsedJournal {
                base: 0,
                records: Vec::new(),
                valid_len: 0,
                torn_tail: true,
            })
        } else {
            Err("not a dtdinfer journal (bad header)".to_owned())
        };
    };
    let header = std::str::from_utf8(&bytes[..nl]).map_err(|_| "journal header is not UTF-8")?;
    let base = parse_header(header)?;
    let mut at = nl + 1;
    let mut records = Vec::new();
    let mut torn_tail = false;
    let mut valid_len = at as u64;
    while at < bytes.len() {
        let remaining = bytes.len() - at;
        if remaining < 8 {
            torn_tail = true; // partial record header at EOF
            break;
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        let want = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
        if remaining - 8 < len {
            torn_tail = true; // payload cut short at EOF
            break;
        }
        let payload = &bytes[at + 8..at + 8 + len];
        let got = crc32(payload);
        if got != want {
            if at + 8 + len == bytes.len() {
                torn_tail = true; // checksum tear on the final record
                break;
            }
            return Err(format!(
                "corrupt journal record at offset {at}: checksum {got:#010x} != {want:#010x} \
                 with {} byte(s) following — refusing to replay past damage",
                bytes.len() - (at + 8 + len)
            ));
        }
        let doc = std::str::from_utf8(payload)
            .map_err(|_| format!("journal record at offset {at} is not UTF-8"))?
            .to_owned();
        records.push(doc);
        at += 8 + len;
        valid_len = at as u64;
    }
    Ok(ParsedJournal {
        base,
        records,
        valid_len,
        torn_tail,
    })
}

/// Whether truncated header bytes could still grow into a valid header
/// line (`#dtdinfer-journal v1 base <digits>`).
fn is_header_prefix(bytes: &[u8]) -> bool {
    let full = format!("{JOURNAL_MAGIC} base ");
    let full = full.as_bytes();
    if bytes.len() <= full.len() {
        return full.starts_with(bytes);
    }
    bytes.starts_with(full) && bytes[full.len()..].iter().all(u8::is_ascii_digit)
}

fn parse_header(header: &str) -> Result<u64, String> {
    let rest = header
        .strip_prefix(JOURNAL_MAGIC)
        .ok_or_else(|| {
            if header.starts_with("#dtdinfer-journal ") {
                let version = header.trim_start_matches("#dtdinfer-journal ").trim();
                format!("unsupported journal version {version:?} (this build reads v1)")
            } else {
                "not a dtdinfer journal (bad header)".to_owned()
            }
        })?
        .trim();
    let base = rest
        .strip_prefix("base ")
        .ok_or("journal header missing base count")?;
    base.parse()
        .map_err(|e| format!("bad journal base count: {e}"))
}

/// The result of [`Store::recover`].
#[derive(Debug)]
pub struct Recovered {
    /// The recovered engine state: snapshot plus replayed journal.
    pub state: EngineState,
    /// Journal records re-absorbed on top of the snapshot.
    pub replayed: u64,
    /// Journal records skipped because the snapshot already held them
    /// (the compaction crash window).
    pub skipped: u64,
    /// Whether a torn tail was truncated off the journal file.
    pub truncated_tail: bool,
}

/// Durable storage for one session: a `<name>.snap` v2 snapshot plus a
/// `<name>.journal` of documents ingested since. All mutation goes
/// through the store so the two files never disagree beyond the
/// documented crash windows.
#[derive(Debug)]
pub struct Store {
    snap_path: PathBuf,
    journal_path: PathBuf,
    /// Open append handle; `None` until the first append after open.
    journal: Option<File>,
    /// Documents covered by the journal header's base count.
    journal_base: u64,
    /// Records currently in the journal file.
    journal_records: u64,
    /// Bytes currently in the journal file.
    journal_bytes: u64,
    /// Bytes in the snapshot file (0 when absent).
    snapshot_bytes: u64,
}

impl Store {
    /// A store for session `name` under `dir`. No files are touched until
    /// recovery or the first append.
    pub fn new(dir: &Path, name: &str) -> Store {
        Store {
            snap_path: dir.join(format!("{name}.snap")),
            journal_path: dir.join(format!("{name}.journal")),
            journal: None,
            journal_base: 0,
            journal_records: 0,
            journal_bytes: 0,
            snapshot_bytes: 0,
        }
    }

    /// The snapshot path (for reporting).
    pub fn snapshot_path(&self) -> &Path {
        &self.snap_path
    }

    /// The journal path (for reporting).
    pub fn journal_path(&self) -> &Path {
        &self.journal_path
    }

    /// Whether either backing file exists on disk.
    pub fn exists(&self) -> bool {
        self.snap_path.exists() || self.journal_path.exists()
    }

    /// Bytes on disk across snapshot and journal — the quantity admission
    /// control caps.
    pub fn disk_bytes(&self) -> u64 {
        self.snapshot_bytes + self.journal_bytes
    }

    /// Records currently waiting in the journal (replayed on recovery).
    pub fn journal_records(&self) -> u64 {
        self.journal_records
    }

    /// Loads the snapshot (if any), replays the journal over it (skipping
    /// records the snapshot already absorbed, truncating a torn tail),
    /// and leaves the store positioned to append. Fails closed on any
    /// corruption that is not a torn tail.
    pub fn recover(&mut self) -> Result<Recovered, String> {
        let mut state = match std::fs::read_to_string(&self.snap_path) {
            Ok(text) => {
                self.snapshot_bytes = text.len() as u64;
                snapshot::load(&text).map_err(|e| format!("{}: {e}", self.snap_path.display()))?
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.snapshot_bytes = 0;
                EngineState::new()
            }
            Err(e) => return Err(format!("{}: {e}", self.snap_path.display())),
        };
        let bytes = match std::fs::read(&self.journal_path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(format!("{}: {e}", self.journal_path.display())),
        };
        let journal_exists = !bytes.is_empty();
        let parsed =
            parse_journal(&bytes).map_err(|e| format!("{}: {e}", self.journal_path.display()))?;
        let base = if journal_exists && parsed.valid_len > 0 {
            parsed.base
        } else {
            // No journal (or a tear before the header finished): layered
            // directly on whatever the snapshot holds.
            state.num_documents
        };
        if base > state.num_documents {
            return Err(format!(
                "{}: journal base {} is ahead of the snapshot's {} document(s) — \
                 the snapshot file was replaced or rolled back",
                self.journal_path.display(),
                base,
                state.num_documents
            ));
        }
        let skip = usize::try_from(state.num_documents - base).unwrap_or(usize::MAX);
        if skip > parsed.records.len() {
            return Err(format!(
                "{}: snapshot absorbed {} document(s) past the journal base but the \
                 journal only holds {} record(s)",
                self.journal_path.display(),
                skip,
                parsed.records.len()
            ));
        }
        let mut replayed = 0u64;
        for (i, doc) in parsed.records.iter().enumerate().skip(skip) {
            state.absorb_document(doc).map_err(|e| {
                format!(
                    "{}: replay of record {} failed: {e}",
                    self.journal_path.display(),
                    i + 1
                )
            })?;
            replayed += 1;
        }
        if parsed.torn_tail {
            // Cut the tear off so the next append lands on a clean tail.
            let file = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(false)
                .open(&self.journal_path)
                .map_err(|e| format!("{}: {e}", self.journal_path.display()))?;
            file.set_len(parsed.valid_len)
                .map_err(|e| format!("{}: {e}", self.journal_path.display()))?;
        }
        self.journal = None;
        self.journal_base = base;
        self.journal_records = parsed.records.len() as u64;
        self.journal_bytes = parsed.valid_len;
        dtdinfer_obs::count("engine.journal.replayed", replayed);
        Ok(Recovered {
            state,
            replayed,
            skipped: skip as u64,
            truncated_tail: parsed.torn_tail,
        })
    }

    /// Opens (or creates) the journal for appending, writing the header
    /// for a fresh file. `base` is used only when the file is new.
    fn open_journal(&mut self, base: u64) -> Result<&mut File, String> {
        if self.journal.is_none() {
            let mut file = OpenOptions::new()
                .append(true)
                .create(true)
                .open(&self.journal_path)
                .map_err(|e| format!("{}: {e}", self.journal_path.display()))?;
            let len = file
                .seek(std::io::SeekFrom::End(0))
                .map_err(|e| format!("{}: {e}", self.journal_path.display()))?;
            if len == 0 {
                let header = format!("{JOURNAL_MAGIC} base {base}\n");
                file.write_all(header.as_bytes())
                    .map_err(|e| format!("{}: {e}", self.journal_path.display()))?;
                self.journal_base = base;
                self.journal_bytes = header.len() as u64;
                self.journal_records = 0;
            }
            self.journal = Some(file);
        }
        Ok(self.journal.as_mut().expect("just opened"))
    }

    /// Appends one document record. `state_documents` is the session's
    /// document count *before* this document is absorbed — it becomes the
    /// journal base when this append creates a fresh file.
    pub fn append(&mut self, doc: &str, state_documents: u64) -> Result<(), String> {
        let record = encode_record(doc);
        let path = self.journal_path.clone();
        let file = self.open_journal(state_documents)?;
        file.write_all(&record)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        file.flush()
            .map_err(|e| format!("{}: {e}", path.display()))?;
        self.journal_records += 1;
        self.journal_bytes += record.len() as u64;
        dtdinfer_obs::count("engine.journal.appends", 1);
        dtdinfer_obs::observe("engine.journal.record_bytes", record.len() as u64);
        Ok(())
    }

    /// Compacts: writes a fresh snapshot of `state` (atomic temp + rename)
    /// and resets the journal to an empty file based at the snapshot's
    /// document count. Crash-safe in both windows: before the rename the
    /// old snapshot + full journal still recover; between rename and
    /// journal reset the new snapshot covers every journal record, so
    /// recovery skips them all.
    pub fn compact(&mut self, state: &EngineState) -> Result<(), String> {
        let text = snapshot::save(state);
        let tmp = self.snap_path.with_extension("snap.tmp");
        std::fs::write(&tmp, &text).map_err(|e| format!("{}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &self.snap_path)
            .map_err(|e| format!("{}: {e}", self.snap_path.display()))?;
        self.snapshot_bytes = text.len() as u64;
        // Reset the journal: drop the append handle, rewrite the header.
        self.journal = None;
        let header = format!("{JOURNAL_MAGIC} base {}\n", state.num_documents);
        std::fs::write(&self.journal_path, &header)
            .map_err(|e| format!("{}: {e}", self.journal_path.display()))?;
        self.journal_base = state.num_documents;
        self.journal_records = 0;
        self.journal_bytes = header.len() as u64;
        dtdinfer_obs::count("engine.journal.compactions", 1);
        Ok(())
    }

    /// Whether the journal has grown enough relative to the snapshot to
    /// be worth compacting: more than `min_bytes` of journal and more
    /// journal than snapshot (so compaction at least halves the disk
    /// footprint), or any journal over a missing snapshot once past
    /// `min_bytes`.
    pub fn wants_compaction(&self, min_bytes: u64) -> bool {
        self.journal_bytes >= min_bytes.max(1) && self.journal_bytes > self.snapshot_bytes
    }

    /// Deletes both backing files (session teardown). Missing files are
    /// fine; other IO errors are reported.
    pub fn remove(&mut self) -> Result<(), String> {
        self.journal = None;
        for path in [&self.snap_path, &self.journal_path] {
            match std::fs::remove_file(path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(format!("{}: {e}", path.display())),
            }
        }
        self.snapshot_bytes = 0;
        self.journal_bytes = 0;
        self.journal_records = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn encode_parse_round_trip() {
        let mut bytes = format!("{JOURNAL_MAGIC} base 7\n").into_bytes();
        bytes.extend_from_slice(&encode_record("<a/>"));
        bytes.extend_from_slice(&encode_record("<b x=\"1\">text</b>"));
        let parsed = parse_journal(&bytes).unwrap();
        assert_eq!(parsed.base, 7);
        assert_eq!(parsed.records, vec!["<a/>", "<b x=\"1\">text</b>"]);
        assert_eq!(parsed.valid_len, bytes.len() as u64);
        assert!(!parsed.torn_tail);
    }

    #[test]
    fn empty_and_torn_header_are_empty_journals() {
        let parsed = parse_journal(b"").unwrap();
        assert_eq!((parsed.base, parsed.records.len()), (0, 0));
        // Crash mid-header: a prefix of the magic is a tear, not damage.
        let parsed = parse_journal(b"#dtdinfer-jour").unwrap();
        assert!(parsed.torn_tail);
        assert_eq!(parsed.valid_len, 0);
        // A foreign file is damage.
        assert!(parse_journal(b"<html>").is_err());
        assert!(parse_journal(b"#dtdinfer-journal v9 base 0\n").is_err());
    }

    #[test]
    fn torn_tail_is_tolerated_and_measured() {
        let mut bytes = format!("{JOURNAL_MAGIC} base 0\n").into_bytes();
        bytes.extend_from_slice(&encode_record("<a/>"));
        let good_len = bytes.len() as u64;
        // Append half a record: header only.
        bytes.extend_from_slice(&7u32.to_le_bytes());
        let parsed = parse_journal(&bytes).unwrap();
        assert!(parsed.torn_tail);
        assert_eq!(parsed.valid_len, good_len);
        assert_eq!(parsed.records, vec!["<a/>"]);
        // Payload shorter than its length prefix.
        let mut bytes = format!("{JOURNAL_MAGIC} base 0\n").into_bytes();
        bytes.extend_from_slice(&encode_record("<a/>"));
        let mut partial = encode_record("<bbbb/>");
        partial.truncate(partial.len() - 3);
        bytes.extend_from_slice(&partial);
        let parsed = parse_journal(&bytes).unwrap();
        assert!(parsed.torn_tail);
        assert_eq!(parsed.records, vec!["<a/>"]);
        // Checksum tear on the *final* record is also a torn tail.
        let mut bytes = format!("{JOURNAL_MAGIC} base 0\n").into_bytes();
        bytes.extend_from_slice(&encode_record("<a/>"));
        let mut last = encode_record("<b/>");
        let n = last.len();
        last[n - 1] ^= 0xFF;
        bytes.extend_from_slice(&last);
        let parsed = parse_journal(&bytes).unwrap();
        assert!(parsed.torn_tail);
        assert_eq!(parsed.records, vec!["<a/>"]);
    }

    #[test]
    fn corrupt_middle_record_fails_closed() {
        let mut bytes = format!("{JOURNAL_MAGIC} base 0\n").into_bytes();
        bytes.extend_from_slice(&encode_record("<a/>"));
        let start = bytes.len();
        bytes.extend_from_slice(&encode_record("<b/>"));
        bytes.extend_from_slice(&encode_record("<c/>"));
        bytes[start + 9] ^= 0xFF; // flip a payload byte of the middle record
        let err = parse_journal(&bytes).unwrap_err();
        assert!(err.contains("corrupt journal record"), "{err}");
        assert!(err.contains("refusing to replay"), "{err}");
    }

    #[test]
    fn store_append_recover_round_trip() {
        let dir = std::env::temp_dir().join(format!("dtdinfer-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut store = Store::new(&dir, "t1");
        store.remove().unwrap();
        let mut state = EngineState::new();
        for doc in ["<r><a/></r>", "<r><a/><b/></r>", "<r><b/></r>"] {
            store.append(doc, state.num_documents).unwrap();
            state.absorb_document(doc).unwrap();
        }
        let mut fresh = Store::new(&dir, "t1");
        let recovered = fresh.recover().unwrap();
        assert_eq!(recovered.replayed, 3);
        assert_eq!(recovered.skipped, 0);
        assert!(!recovered.truncated_tail);
        assert_eq!(snapshot::save(&recovered.state), snapshot::save(&state));
        store.remove().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_crash_window_skips_absorbed_records() {
        let dir = std::env::temp_dir().join(format!("dtdinfer-jwin-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut store = Store::new(&dir, "w");
        store.remove().unwrap();
        let mut state = EngineState::new();
        for doc in ["<r><a/></r>", "<r><b/></r>"] {
            store.append(doc, state.num_documents).unwrap();
            state.absorb_document(doc).unwrap();
        }
        // Simulate the crash window: snapshot written and renamed, journal
        // NOT yet reset. Recovery must skip both journal records.
        std::fs::write(store.snapshot_path(), snapshot::save(&state)).unwrap();
        let mut fresh = Store::new(&dir, "w");
        let recovered = fresh.recover().unwrap();
        assert_eq!(recovered.skipped, 2);
        assert_eq!(recovered.replayed, 0);
        assert_eq!(snapshot::save(&recovered.state), snapshot::save(&state));
        // And appending afterwards still recovers correctly.
        fresh
            .append("<r><a/><a/></r>", recovered.state.num_documents)
            .unwrap();
        let mut again = Store::new(&dir, "w");
        let r2 = again.recover().unwrap();
        assert_eq!(r2.replayed, 1);
        assert_eq!(r2.state.num_documents, 3);
        again.remove().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_over_v3_base_snapshot_matches_one_shot() {
        let dir = std::env::temp_dir().join(format!("dtdinfer-jv3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut store = Store::new(&dir, "v3");
        store.remove().unwrap();
        let docs = [
            "<r><a/><b/></r>",
            "<r><a/><b/></r>",
            "<r><b/></r>",
            "<r><a/><a/><b/></r>",
        ];
        // Compact after two documents: the base snapshot is v3 (counted
        // multiset rows included), then journal two more on top.
        let mut state = EngineState::new();
        for doc in &docs[..2] {
            state.absorb_document(doc).unwrap();
        }
        store.compact(&state).unwrap();
        let snap = std::fs::read_to_string(store.snapshot_path()).unwrap();
        assert!(snap.starts_with(snapshot::HEADER), "{}", &snap[..40]);
        assert!(snap.contains("\nw "), "v3 base carries multiset rows");
        for doc in &docs[2..] {
            store.append(doc, state.num_documents).unwrap();
            state.absorb_document(doc).unwrap();
        }
        let recovered = Store::new(&dir, "v3").recover().unwrap();
        assert_eq!(recovered.replayed, 2);
        let mut one_shot = EngineState::new();
        for doc in &docs {
            one_shot.absorb_document(doc).unwrap();
        }
        // Snapshot equality covers the multisets too: replayed documents
        // extended the bags the v3 base carried.
        assert_eq!(snapshot::save(&recovered.state), snapshot::save(&one_shot));
        store.remove().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_ahead_of_snapshot_fails_closed() {
        let dir = std::env::temp_dir().join(format!("dtdinfer-jahead-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut store = Store::new(&dir, "x");
        store.remove().unwrap();
        let header = format!("{JOURNAL_MAGIC} base 5\n");
        std::fs::write(store.journal_path(), header).unwrap();
        let err = Store::new(&dir, "x").recover().unwrap_err();
        assert!(err.contains("ahead of the snapshot"), "{err}");
        store.remove().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
