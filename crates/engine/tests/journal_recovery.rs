//! Journal recovery guarantees, end to end against real files.
//!
//! The contract under test (see `dtdinfer_engine::journal`):
//!
//! * replaying snapshot + journal is **byte-identical** (at the snapshot
//!   level, hence schema level) to cold re-ingesting the same documents;
//! * a torn tail — crash mid-append — is truncated and tolerated;
//! * a corrupt record that is *not* the tail fails closed;
//! * compaction is idempotent and crash-safe in both of its windows.

use dtdinfer_engine::journal::{encode_record, Store, JOURNAL_MAGIC};
use dtdinfer_engine::{snapshot, EngineState};
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dtdinfer-jrec-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn corpus(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| match i % 3 {
            0 => format!("<cat><book id=\"b{i}\"><title>t</title></book></cat>"),
            1 => format!(
                "<cat><book id=\"b{i}\"><title>t</title><author>a</author></book><book><title>u</title></book></cat>"
            ),
            _ => format!("<cat><note>n{i}</note><book><title>v</title></book></cat>"),
        })
        .collect()
}

/// Cold re-ingest of the same documents gives the same snapshot bytes as
/// snapshot + journal replay, across interleaved compactions.
#[test]
fn replay_over_snapshot_matches_cold_reingest_bytes() {
    let dir = scratch("bytes");
    let docs = corpus(24);
    let mut store = Store::new(&dir, "s");
    store.remove().unwrap();
    let mut live = EngineState::new();
    for (i, doc) in docs.iter().enumerate() {
        store.append(doc, live.num_documents).unwrap();
        live.absorb_document(doc).unwrap();
        if i % 7 == 6 {
            store.compact(&live).unwrap();
        }
    }
    let recovered = Store::new(&dir, "s").recover().unwrap().state;
    let mut cold = EngineState::new();
    for doc in &docs {
        cold.absorb_document(doc).unwrap();
    }
    let cold_bytes = snapshot::save(&cold);
    assert_eq!(snapshot::save(&recovered), cold_bytes);
    assert_eq!(snapshot::save(&live), cold_bytes);
    store.remove().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// A crash mid-append (torn tail in any of its three shapes) loses only
/// the torn record; recovery truncates the tear so appends continue.
#[test]
fn truncated_tail_is_tolerated_and_repaired_on_disk() {
    let dir = scratch("tail");
    let docs = corpus(5);
    let mut store = Store::new(&dir, "t");
    store.remove().unwrap();
    let mut state = EngineState::new();
    for doc in &docs {
        store.append(doc, state.num_documents).unwrap();
        state.absorb_document(doc).unwrap();
    }
    // Tear the file: keep the header + first record + half of a record.
    let journal_path = store.journal_path().to_owned();
    let bytes = std::fs::read(&journal_path).unwrap();
    let torn_at = bytes.len() - 3;
    std::fs::write(&journal_path, &bytes[..torn_at]).unwrap();
    let mut fresh = Store::new(&dir, "t");
    let recovered = fresh.recover().unwrap();
    assert!(recovered.truncated_tail);
    assert_eq!(recovered.replayed, docs.len() as u64 - 1);
    // The tear is gone from disk: a second recovery sees a clean file.
    let again = Store::new(&dir, "t").recover().unwrap();
    assert!(!again.truncated_tail);
    assert_eq!(again.state.num_documents, docs.len() as u64 - 1);
    // Appending after the repair resumes normally.
    fresh
        .append(&docs[docs.len() - 1], recovered.state.num_documents)
        .unwrap();
    let full = Store::new(&dir, "t").recover().unwrap().state;
    let mut cold = EngineState::new();
    for doc in &docs {
        cold.absorb_document(doc).unwrap();
    }
    assert_eq!(snapshot::save(&full), snapshot::save(&cold));
    fresh.remove().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Damage strictly before the tail means the file cannot be trusted at
/// all: recovery refuses rather than silently dropping records.
#[test]
fn corrupt_middle_record_fails_closed_via_store() {
    let dir = scratch("mid");
    let mut store = Store::new(&dir, "m");
    store.remove().unwrap();
    let mut state = EngineState::new();
    for doc in corpus(3) {
        store.append(&doc, state.num_documents).unwrap();
        state.absorb_document(&doc).unwrap();
    }
    let journal_path = store.journal_path().to_owned();
    let mut bytes = std::fs::read(&journal_path).unwrap();
    // Flip one payload byte of the FIRST record (well before the tail).
    let header_len = format!("{JOURNAL_MAGIC} base 0\n").len();
    bytes[header_len + 8 + 2] ^= 0xFF;
    std::fs::write(&journal_path, &bytes).unwrap();
    let err = Store::new(&dir, "m").recover().unwrap_err();
    assert!(err.contains("corrupt journal record"), "{err}");
    store.remove().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Compacting repeatedly (including with nothing new in between) always
/// converges on the same snapshot bytes and an empty journal.
#[test]
fn compaction_is_idempotent() {
    let dir = scratch("idem");
    let mut store = Store::new(&dir, "c");
    store.remove().unwrap();
    let mut state = EngineState::new();
    for doc in corpus(6) {
        store.append(&doc, state.num_documents).unwrap();
        state.absorb_document(&doc).unwrap();
    }
    store.compact(&state).unwrap();
    let snap1 = std::fs::read(store.snapshot_path()).unwrap();
    let journal1 = std::fs::read(store.journal_path()).unwrap();
    store.compact(&state).unwrap();
    assert_eq!(std::fs::read(store.snapshot_path()).unwrap(), snap1);
    assert_eq!(std::fs::read(store.journal_path()).unwrap(), journal1);
    assert_eq!(store.journal_records(), 0);
    // Recovery after compaction replays nothing and matches exactly.
    let recovered = Store::new(&dir, "c").recover().unwrap();
    assert_eq!(recovered.replayed, 0);
    assert_eq!(snapshot::save(&recovered.state), snapshot::save(&state));
    store.remove().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// The compaction crash window *between* snapshot rename and journal
/// reset: every journal record is already inside the snapshot, so
/// recovery must skip them all — and must keep working when only *some*
/// records are covered (a journal based before the snapshot).
#[test]
fn compaction_crash_window_partial_overlap() {
    let dir = scratch("window");
    let docs = corpus(4);
    let mut store = Store::new(&dir, "w");
    store.remove().unwrap();
    let mut state = EngineState::new();
    for doc in &docs {
        store.append(doc, state.num_documents).unwrap();
        state.absorb_document(doc).unwrap();
    }
    // Simulate: snapshot covering only the first 2 documents appears
    // (base 0 journal holds all 4) — e.g. an operator restored an older
    // snapshot that the journal still fully covers.
    let mut half = EngineState::new();
    half.absorb_document(&docs[0]).unwrap();
    half.absorb_document(&docs[1]).unwrap();
    std::fs::write(store.snapshot_path(), snapshot::save(&half)).unwrap();
    let recovered = Store::new(&dir, "w").recover().unwrap();
    assert_eq!(recovered.skipped, 2);
    assert_eq!(recovered.replayed, 2);
    assert_eq!(snapshot::save(&recovered.state), snapshot::save(&state));
    store.remove().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// A journal claiming documents the snapshot never had fails closed.
#[test]
fn journal_ahead_of_snapshot_is_rejected() {
    let dir = scratch("ahead");
    let mut store = Store::new(&dir, "a");
    store.remove().unwrap();
    let mut header = format!("{JOURNAL_MAGIC} base 9\n").into_bytes();
    header.extend_from_slice(&encode_record("<r/>"));
    std::fs::write(store.journal_path(), header).unwrap();
    let err = Store::new(&dir, "a").recover().unwrap_err();
    assert!(err.contains("ahead of the snapshot"), "{err}");
    store.remove().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
