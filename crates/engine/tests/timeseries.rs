//! Integration coverage for the always-on observability pipeline: a
//! background timeseries sampler snapshotting the registry *while* a
//! sharded ingest mutates it concurrently (workers counting documents,
//! SampleBag evicting attribute values, the merge folding shards in).
//!
//! Runs as its own integration-test binary so the process-global
//! registry is not shared with the engine's unit tests.

use dtdinfer_engine::pool::ingest;
use dtdinfer_obs::timeseries::{start, SamplerConfig};
use std::time::Duration;

/// A corpus whose attribute values exceed the SampleBag retention cap
/// (64 distinct), so ingestion exercises the eviction path too.
fn corpus(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            format!(
                "<order id=\"id-{i}\" region=\"r{}\"><item sku=\"sku-{i}\"/>\
                 <item sku=\"sku-{i}b\"/><note>n{i}</note></order>",
                i % 3
            )
        })
        .collect()
}

#[test]
fn snapshots_during_sharded_ingest_are_monotone_and_untorn() {
    let docs = corpus(600);
    let max_doc = docs.iter().map(String::len).max().unwrap() as u64;
    let jobs = 4u64;

    dtdinfer_obs::enable(true, false);
    dtdinfer_obs::reset();
    let sampler = start(SamplerConfig {
        interval: Duration::from_millis(1),
        capacity: 4096,
        watch: vec!["engine.documents".to_owned()],
        stall_after: 10_000, // effectively off; stalls are tested in obs
        warn_on_stall: false,
    });

    // Several rounds so the sampler overlaps real mutation, including the
    // shard merges at the end of each round.
    let mut ingested = None;
    for _ in 0..5 {
        ingested = Some(ingest(&docs, jobs as usize).expect("corpus is valid"));
    }
    let ts = sampler.stop();
    let finale = dtdinfer_obs::snapshot();
    dtdinfer_obs::disable();

    assert!(
        ts.points.len() >= 2,
        "sampler must capture the run: {} points",
        ts.points.len()
    );
    assert_eq!(ts.stalls, 0);

    // Counters must be monotone in every adjacent snapshot pair — a
    // snapshot taken mid-merge or mid-claim may be *partial* but never
    // regress, and gauges must never show torn/impossible values.
    let monotone = [
        "engine.documents",
        "xml.documents",
        "xml.samples.evictions",
        "xml.samples.overflow",
    ];
    for pair in ts.points.windows(2) {
        let (a, b) = (&pair[0].snapshot, &pair[1].snapshot);
        for name in monotone {
            let va = a.counters.get(name).copied().unwrap_or(0);
            let vb = b.counters.get(name).copied().unwrap_or(0);
            assert!(va <= vb, "counter {name} went backwards: {va} -> {vb}");
        }
        for point in [a, b] {
            if let Some(&docs_in_flight) = point.gauges.get("engine.inflight.docs") {
                assert!(
                    docs_in_flight <= jobs,
                    "more resident docs than workers: {docs_in_flight}"
                );
            }
            if let Some(&bytes_in_flight) = point.gauges.get("engine.inflight.bytes") {
                assert!(
                    bytes_in_flight <= jobs * max_doc,
                    "in-flight bytes above the residency bound: {bytes_in_flight}"
                );
            }
            if let Some(&remaining) = point.gauges.get("engine.queue.remaining") {
                assert!(
                    remaining <= docs.len() as u64,
                    "queue deeper than the corpus: {remaining}"
                );
            }
            if let Some(&peak) = point.gauges.get("engine.ingest.peak_docs_in_flight") {
                assert!((1..=jobs).contains(&peak), "torn peak gauge: {peak}");
            }
            if let Some(&peak) = point.gauges.get("engine.ingest.peak_bytes_in_flight") {
                assert!(
                    (1..=jobs * max_doc).contains(&peak),
                    "torn byte peak: {peak}"
                );
            }
        }
    }

    // End state: everything the run produced is visible, and the final
    // timeseries point agrees with a direct snapshot.
    let ingested = ingested.expect("ran");
    assert_eq!(finale.counters["engine.documents"], 5 * docs.len() as u64);
    assert!(
        finale.counters["xml.samples.evictions"] > 0,
        "600 distinct attribute values must overflow the 64-cap bag"
    );
    let last = ts.points.last().expect("non-empty");
    assert_eq!(
        last.snapshot.counters["engine.documents"], finale.counters["engine.documents"],
        "stop() takes a final snapshot covering the end of the run"
    );
    assert_eq!(
        last.snapshot.gauges["engine.ingest.peak_docs_in_flight"],
        ingested.peak_docs_in_flight
    );

    // The series is consumable: rates are finite and the JSON parses.
    for (_, rate) in ts.rates("engine.documents") {
        assert!(rate.is_finite() && rate >= 0.0);
    }
    let text = ts.json();
    let parsed = dtdinfer_obs::json::Value::parse(&text).expect("timeseries JSON parses");
    assert_eq!(
        parsed.get("points").unwrap().as_arr().unwrap().len(),
        ts.points.len()
    );
}
