//! The CRX algorithm (§7, Algorithm 3, Theorems 3–5).
//!
//! CRX infers chain regular expressions directly from words, bypassing the
//! automaton representation entirely:
//!
//! 1. Build the pre-order `→W` on symbols (`a →W b` iff `ab` occurs in some
//!    word) and its equivalence classes `≈W` (strongly connected
//!    components).
//! 2. Merge maximal sets of *singleton* classes that share predecessor and
//!    successor sets in the Hasse diagram of the induced partial order.
//! 3. Topologically sort the classes.
//! 4. Qualify each class `[a1,…,an]` from per-word occurrence counts:
//!    exactly one → `(a1+…+an)`, at most one → `…?`, at least one with a
//!    repeat → `…+`, otherwise → `…*`.
//!
//! Its strength is generalization: `(a1+…+an)*` is learned from `O(n)`
//! 2-grams where `rewrite` needs all `n²` and iDTD around `n² − n` (§7).
//!
//! [`CrxState`] is the streaming/incremental form (§7 last paragraph, §9):
//! it retains only the `→W` edge set plus per-word occurrence-count vectors
//! (deduplicated with multiplicities), so the XML corpus itself never needs
//! to stay in memory and new words can be absorbed at any time.

use crate::model::InferredModel;
use dtdinfer_regex::alphabet::{Sym, Word};
use dtdinfer_regex::ast::Regex;
use dtdinfer_regex::classify::{chare_to_regex, ChareFactor, ChareModifier};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Streaming state of CRX: the induced order and occurrence statistics.
///
/// This is the "internal representation" the incremental-computation
/// extension of §9 keeps per element name; `absorb` folds in new words and
/// `infer` recomputes the CHARE at any point.
/// Every component is a set, a multiset, or a count, so the state is
/// invariant under permutation of the absorbed words and two states can be
/// [merged](CrxState::merge) in any order — the property the sharded
/// ingestion engine relies on. Ties (topological order, members of a
/// disjunction) are broken by `Sym` order, which equals first-occurrence
/// order whenever the alphabet was interned from the same word stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrxState {
    /// 2-gram successor relation `→W`.
    edges: BTreeSet<(Sym, Sym)>,
    /// All symbols seen.
    syms: BTreeSet<Sym>,
    /// Occurrence-count vector per word (sorted sparse), with multiplicity.
    count_vectors: BTreeMap<Vec<(Sym, u32)>, usize>,
    /// Total number of words absorbed.
    num_words: usize,
}

impl CrxState {
    /// An empty state (no words seen).
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one word into the state.
    pub fn absorb(&mut self, w: &Word) {
        self.absorb_counted(w, 1);
    }

    /// Folds `n` occurrences of one word into the state. The successor
    /// relation and symbol set are unions (count-invariant), so the word
    /// is walked once; only the count-vector multiplicity and the word
    /// total advance by `n` — identical to `n` calls of
    /// [`CrxState::absorb`].
    pub fn absorb_counted(&mut self, w: &Word, n: u32) {
        if n == 0 {
            return;
        }
        self.num_words += n as usize;
        let mut counts: BTreeMap<Sym, u32> = BTreeMap::new();
        for &s in w {
            self.syms.insert(s);
            *counts.entry(s).or_insert(0) += 1;
        }
        for pair in w.windows(2) {
            self.edges.insert((pair[0], pair[1]));
        }
        let vector: Vec<(Sym, u32)> = counts.into_iter().collect();
        *self.count_vectors.entry(vector).or_insert(0) += n as usize;
    }

    /// Number of words absorbed so far.
    pub fn num_words(&self) -> usize {
        self.num_words
    }

    /// Whether any non-empty word was absorbed (the element has children).
    pub fn has_symbols(&self) -> bool {
        !self.syms.is_empty()
    }

    /// Merges another state in: the result equals absorbing both word
    /// multisets into one state, in any order. This is the CRX counterpart
    /// of `Soa::merge` for sharded ingestion — the summary of §7 is a union
    /// of per-word contributions, so shard-local summaries lose nothing.
    pub fn merge(&mut self, other: &CrxState) {
        self.edges.extend(other.edges.iter().copied());
        self.syms.extend(other.syms.iter().copied());
        for (vector, &mult) in &other.count_vectors {
            *self.count_vectors.entry(vector.clone()).or_insert(0) += mult;
        }
        self.num_words += other.num_words;
        dtdinfer_obs::count("core.crx.merges", 1);
    }

    /// Rebuilds the state under a symbol translation (for merging states
    /// built over different alphabets). `f` must be injective on the
    /// state's symbols.
    pub fn remap(&self, mut f: impl FnMut(Sym) -> Sym) -> CrxState {
        CrxState {
            edges: self.edges.iter().map(|&(a, b)| (f(a), f(b))).collect(),
            syms: self.syms.iter().map(|&s| f(s)).collect(),
            count_vectors: self
                .count_vectors
                .iter()
                .map(|(vector, &mult)| {
                    let mut v: Vec<(Sym, u32)> = vector.iter().map(|&(s, c)| (f(s), c)).collect();
                    v.sort_unstable();
                    (v, mult)
                })
                .collect(),
            num_words: self.num_words,
        }
    }

    /// Runs steps 1–4 of Algorithm 3 on the accumulated state.
    pub fn infer_factors(&self) -> Vec<ChareFactor> {
        let _span = dtdinfer_obs::span("core.crx");
        dtdinfer_obs::count("core.crx.runs", 1);
        dtdinfer_obs::count("core.crx.words", self.num_words as u64);
        if self.syms.is_empty() {
            return Vec::new();
        }
        let syms: Vec<Sym> = self.syms.iter().copied().collect();
        let index: HashMap<Sym, usize> = syms.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let n = syms.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in &self.edges {
            adj[index[&a]].push(index[&b]);
        }

        // Step 1: equivalence classes of ≈W = SCCs of →W.
        let sccs = tarjan_sccs(&adj);
        let class_of: Vec<usize> = {
            let mut c = vec![0usize; n];
            for (ci, comp) in sccs.iter().enumerate() {
                for &v in comp {
                    c[v] = ci;
                }
            }
            c
        };

        // Build the class DAG (condensation), then its Hasse diagram
        // (transitive reduction).
        let mut classes: Vec<BTreeSet<Sym>> = sccs
            .iter()
            .map(|comp| comp.iter().map(|&v| syms[v]).collect())
            .collect();
        let mut dag_succ: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); classes.len()];
        for &(a, b) in &self.edges {
            let (ca, cb) = (class_of[index[&a]], class_of[index[&b]]);
            if ca != cb {
                dag_succ[ca].insert(cb);
            }
        }
        transitive_reduction(&mut dag_succ);
        let mut dag_pred: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); classes.len()];
        for (u, succs) in dag_succ.iter().enumerate() {
            for &v in succs {
                dag_pred[v].insert(u);
            }
        }

        // Step 2–3: repeatedly merge maximal sets of singleton nodes with
        // identical predecessor and successor sets.
        let mut alive: Vec<bool> = vec![true; classes.len()];
        loop {
            let mut groups: BTreeMap<(Vec<usize>, Vec<usize>), Vec<usize>> = BTreeMap::new();
            for (ci, class) in classes.iter().enumerate() {
                if alive[ci] && class.len() == 1 {
                    let key = (
                        dag_pred[ci].iter().copied().collect::<Vec<_>>(),
                        dag_succ[ci].iter().copied().collect::<Vec<_>>(),
                    );
                    groups.entry(key).or_default().push(ci);
                }
            }
            let Some(group) = groups.into_values().find(|g| g.len() >= 2) else {
                break;
            };
            // Merge into the first member; redirect edges; kill the rest.
            let target = group[0];
            for &ci in &group[1..] {
                let members: Vec<Sym> = classes[ci].iter().copied().collect();
                classes[target].extend(members);
                alive[ci] = false;
                let preds: Vec<usize> = dag_pred[ci].iter().copied().collect();
                for p in preds {
                    dag_succ[p].remove(&ci);
                    dag_succ[p].insert(target);
                    dag_pred[target].insert(p);
                }
                let succs: Vec<usize> = dag_succ[ci].iter().copied().collect();
                for s in succs {
                    dag_pred[s].remove(&ci);
                    dag_pred[s].insert(target);
                    dag_succ[target].insert(s);
                }
                dag_pred[ci].clear();
                dag_succ[ci].clear();
            }
        }

        // Step 4: topological sort, deterministic by smallest symbol among
        // class members (= first corpus occurrence when the alphabet was
        // interned from the same word stream).
        let class_key =
            |ci: usize| -> Sym { classes[ci].iter().min().copied().expect("non-empty class") };
        let mut indeg: Vec<usize> = (0..classes.len()).map(|ci| dag_pred[ci].len()).collect();
        let mut ready: BTreeSet<(Sym, usize)> = (0..classes.len())
            .filter(|&ci| alive[ci] && indeg[ci] == 0)
            .map(|ci| (class_key(ci), ci))
            .collect();
        let mut order: Vec<usize> = Vec::new();
        while let Some(&(key, ci)) = ready.iter().next() {
            ready.remove(&(key, ci));
            order.push(ci);
            let succs: Vec<usize> = dag_succ[ci].iter().copied().collect();
            for s in succs {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    ready.insert((class_key(s), s));
                }
            }
        }

        // Steps 5–13: qualifiers from per-word class occurrence counts.
        let factors: Vec<ChareFactor> = order
            .into_iter()
            .map(|ci| {
                let class = &classes[ci];
                let mut min_count = u32::MAX;
                let mut max_count = 0u32;
                for vector in self.count_vectors.keys() {
                    let total: u32 = vector
                        .iter()
                        .filter(|(s, _)| class.contains(s))
                        .map(|&(_, c)| c)
                        .sum();
                    min_count = min_count.min(total);
                    max_count = max_count.max(total);
                }
                let modifier = match (min_count, max_count) {
                    (1, 1) => ChareModifier::One,
                    (0, 1) => ChareModifier::Opt,
                    (1.., 2..) => ChareModifier::Plus,
                    _ => ChareModifier::Star,
                };
                // Alternatives in symbol order: stable, and faithful to
                // first corpus occurrence for stream-interned alphabets.
                let syms: Vec<Sym> = class.iter().copied().collect();
                ChareFactor { syms, modifier }
            })
            .collect();
        dtdinfer_obs::observe("core.crx.factors", factors.len() as u64);
        factors
    }

    /// Serializes the summary to a line-oriented text format, so the §9
    /// incremental workflow can persist CRX state between sessions (the
    /// counterpart of `Soa::to_text` for iDTD).
    ///
    /// Records: `words N`, `sym NAME`, `edge NAME NAME`,
    /// `vec MULTIPLICITY NAME=COUNT …`. (Older files carrying first-seen
    /// positions after the `sym` name still parse; the extra fields are
    /// ignored.)
    pub fn to_text(&self, alphabet: &dtdinfer_regex::alphabet::Alphabet) -> String {
        let mut out = String::from("#dtdinfer-crx v1\n");
        out.push_str(&format!("words {}\n", self.num_words));
        for &s in &self.syms {
            out.push_str(&format!("sym {}\n", alphabet.name(s)));
        }
        for &(a, b) in &self.edges {
            out.push_str(&format!("edge {} {}\n", alphabet.name(a), alphabet.name(b)));
        }
        for (vector, &mult) in &self.count_vectors {
            out.push_str(&format!("vec {mult}"));
            for &(s, c) in vector {
                out.push_str(&format!(" {}={c}", alphabet.name(s)));
            }
            out.push('\n');
        }
        out
    }

    /// Parses the [`CrxState::to_text`] format.
    pub fn from_text(
        text: &str,
        alphabet: &mut dtdinfer_regex::alphabet::Alphabet,
    ) -> Result<Self, String> {
        let mut state = CrxState::new();
        for (lineno, line) in text.lines().enumerate() {
            let err = |m: &str| format!("line {}: {m}", lineno + 1);
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            match parts.next().expect("non-empty") {
                "words" => {
                    state.num_words = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err("bad word count"))?;
                }
                "sym" => {
                    let name = parts.next().ok_or_else(|| err("missing name"))?;
                    // Legacy first-seen fields after the name are ignored.
                    state.syms.insert(alphabet.intern(name));
                }
                "edge" => {
                    let a = alphabet.intern(parts.next().ok_or_else(|| err("missing name"))?);
                    let b = alphabet.intern(parts.next().ok_or_else(|| err("missing name"))?);
                    state.edges.insert((a, b));
                }
                "vec" => {
                    let mult: usize = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err("bad multiplicity"))?;
                    let mut vector = Vec::new();
                    for entry in parts {
                        let (name, count) = entry
                            .split_once('=')
                            .ok_or_else(|| err("bad count entry"))?;
                        let c: u32 = count.parse().map_err(|_| err("bad count"))?;
                        vector.push((alphabet.intern(name), c));
                    }
                    vector.sort_unstable();
                    *state.count_vectors.entry(vector).or_insert(0) += mult;
                }
                other => return Err(err(&format!("unknown record {other:?}"))),
            }
        }
        Ok(state)
    }

    /// Full CRX result including the degenerate cases.
    pub fn infer(&self) -> InferredModel {
        if self.num_words == 0 {
            return InferredModel::Empty;
        }
        let factors = self.infer_factors();
        if factors.is_empty() {
            return InferredModel::EpsilonOnly;
        }
        InferredModel::Regex(chare_to_regex(&factors))
    }
}

/// Runs CRX on a batch of words, yielding the CHARE factors.
pub fn crx_factors<'a, I>(words: I) -> Vec<ChareFactor>
where
    I: IntoIterator<Item = &'a Word>,
{
    let mut state = CrxState::new();
    for w in words {
        state.absorb(w);
    }
    state.infer_factors()
}

/// Example (the paper's Example 1):
///
/// ```
/// use dtdinfer_regex::alphabet::Alphabet;
/// use dtdinfer_regex::display::render;
///
/// let mut al = Alphabet::new();
/// let words: Vec<_> = ["abd", "bcdee", "cade"]
///     .iter()
///     .map(|w| al.word_from_chars(w))
///     .collect();
/// let chare = dtdinfer_core::crx::crx(&words).into_regex().unwrap();
/// assert_eq!(render(&chare, &al), "(a | b | c)+ d e*");
/// ```
/// Runs CRX on a batch of words (Algorithm 3): a CHARE `rW` with
/// `W ⊆ L(rW)` (Theorem 3).
pub fn crx<'a, I>(words: I) -> InferredModel
where
    I: IntoIterator<Item = &'a Word>,
{
    let mut state = CrxState::new();
    for w in words {
        state.absorb(w);
    }
    state.infer()
}

/// [`crx`] over a counted multiset of `(word, count)` entries: equal to
/// running CRX on each word repeated `count` times, at the cost of one
/// pass per *distinct* word.
pub fn crx_counted<'a, I>(words: I) -> InferredModel
where
    I: IntoIterator<Item = (&'a Word, u32)>,
{
    let mut state = CrxState::new();
    for (w, n) in words {
        state.absorb_counted(w, n);
    }
    state.infer()
}

/// Builds `r` as a [`Regex`] from CRX factors (re-exported convenience).
pub fn factors_to_regex(factors: &[ChareFactor]) -> Regex {
    chare_to_regex(factors)
}

/// Tarjan's strongly connected components; returns components as vertex
/// lists in reverse topological order of the condensation.
fn tarjan_sccs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    #[derive(Clone, Copy)]
    struct Frame {
        v: usize,
        edge: usize,
    }
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut comps: Vec<Vec<usize>> = Vec::new();

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call: Vec<Frame> = vec![Frame { v: root, edge: 0 }];
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(frame) = call.last_mut() {
            let v = frame.v;
            if frame.edge < adj[v].len() {
                let w = adj[v][frame.edge];
                frame.edge += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push(Frame { v: w, edge: 0 });
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(parent) = call.last() {
                    low[parent.v] = low[parent.v].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("scc stack");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comps.push(comp);
                }
            }
        }
    }
    comps
}

/// In-place transitive reduction of a DAG given as successor sets.
fn transitive_reduction(succ: &mut [BTreeSet<usize>]) {
    let n = succ.len();
    // reach[u] = vertices reachable from u by paths of length ≥ 1.
    // Computed bottom-up in reverse topological order.
    let order = topo_order(succ);
    let mut reach: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for &u in order.iter().rev() {
        let mut r = BTreeSet::new();
        for &v in &succ[u] {
            r.insert(v);
            r.extend(reach[v].iter().copied());
        }
        reach[u] = r;
    }
    for row in succ.iter_mut() {
        let direct: Vec<usize> = row.iter().copied().collect();
        for &v in &direct {
            // (u,v) is transitive if another direct successor reaches v.
            // (Checking against the snapshot is sound: in a DAG, a removed
            // witness w is itself reached by a surviving one.)
            let redundant = direct.iter().any(|&w| w != v && reach[w].contains(&v));
            if redundant {
                row.remove(&v);
            }
        }
    }
}

fn topo_order(succ: &[BTreeSet<usize>]) -> Vec<usize> {
    let n = succ.len();
    let mut indeg = vec![0usize; n];
    for s in succ {
        for &v in s {
            indeg[v] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop() {
        order.push(v);
        for &w in &succ[v] {
            indeg[w] -= 1;
            if indeg[w] == 0 {
                queue.push(w);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "cycle in condensation DAG");
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtdinfer_regex::alphabet::Alphabet;
    use dtdinfer_regex::display::render;
    use dtdinfer_regex::normalize::equiv_commutative;
    use dtdinfer_regex::parser::parse;

    fn run(words: &[&str]) -> (InferredModel, Alphabet) {
        let mut al = Alphabet::new();
        let ws: Vec<Word> = words.iter().map(|w| al.word_from_chars(w)).collect();
        (crx(&ws), al)
    }

    /// Example 1 of §7: W = {abd, bcdee, cade} yields (a+b+c)+ d e*.
    #[test]
    fn paper_example1() {
        let (model, al) = run(&["abd", "bcdee", "cade"]);
        let r = model.into_regex().unwrap();
        let mut al2 = al.clone();
        let target = parse("(a | b | c)+ d e*", &mut al2).unwrap();
        assert!(equiv_commutative(&r, &target), "got {}", render(&r, &al));
    }

    /// Examples 2–4 of §7: W = {abccde, cccad, bfegg, bfehi} yields
    /// (a+b+c)+ (d+f) e? g* h? i?.
    #[test]
    fn paper_examples_2_to_4() {
        let (model, al) = run(&["abccde", "cccad", "bfegg", "bfehi"]);
        let r = model.into_regex().unwrap();
        let mut al2 = al.clone();
        let target = parse("(a | b | c)+ (d | f) e? g* h? i?", &mut al2).unwrap();
        assert!(equiv_commutative(&r, &target), "got {}", render(&r, &al));
    }

    /// The non-linear-order caveat after Theorem 5: W = {abc, ade, abe}
    /// yields the all-optional chain rather than a(b+d)(c+e).
    #[test]
    fn theorem5_nonlinear_caveat() {
        let (model, al) = run(&["abc", "ade", "abe"]);
        let r = model.as_regex().unwrap().clone();
        // a exactly once, everything else optional singletons (order may
        // put d before or after c; both are topological sorts).
        let rendered = render(&r, &al);
        assert!(rendered.starts_with('a'));
        for w in ["abc", "ade", "abe"] {
            let mut al2 = al.clone();
            assert!(model.matches(&al2.word_from_chars(w)), "{w}");
        }
        assert_eq!(r.symbols().len(), 5);
        assert_eq!(r.symbol_count(), 5, "CHARE is single occurrence");
    }

    /// Theorem 3 on arbitrary samples: W ⊆ L(rW) and the result is a CHARE.
    #[test]
    fn theorem3_battery() {
        let samples: &[&[&str]] = &[
            &["ab", "ba"],
            &["abc", "cab", "bca"],
            &["a", "aa", "aaa"],
            &["xyz"],
            &["ab", "cd", "abcd"],
            &["abcabc"],
            &["a", ""],
            &["ab", "b", "aab"],
        ];
        for words in samples {
            let mut al = Alphabet::new();
            let ws: Vec<Word> = words.iter().map(|w| al.word_from_chars(w)).collect();
            let model = crx(&ws);
            for w in &ws {
                assert!(model.matches(w), "{words:?} lost {w:?}");
            }
            if let Some(r) = model.as_regex() {
                assert!(
                    dtdinfer_regex::classify::is_chare(r),
                    "{words:?} gave non-CHARE {}",
                    render(r, &al)
                );
            }
        }
    }

    /// §7's generalization claim: (a+…+e)* learned from the O(n) cyclic
    /// 2-gram sample {a1a2, a2a3, …, an a1} (plus ε for the star).
    #[test]
    fn linear_sample_learns_repeated_disjunction() {
        let mut al = Alphabet::new();
        let names = ["a", "b", "c", "d", "e"];
        let mut words: Vec<Word> = Vec::new();
        for i in 0..names.len() {
            let j = (i + 1) % names.len();
            words.push(al.word_from_chars(&format!("{}{}", names[i], names[j])));
        }
        words.push(Vec::new()); // ε → star, not plus
        let r = crx(&words).into_regex().unwrap();
        let target = parse("(a | b | c | d | e)*", &mut al).unwrap();
        assert!(equiv_commutative(&r, &target), "got {}", render(&r, &al));
    }

    #[test]
    fn degenerate_inputs() {
        let (model, _) = run(&[]);
        assert_eq!(model, InferredModel::Empty);
        let mut al = Alphabet::new();
        let ws: Vec<Word> = vec![vec![], vec![]];
        assert_eq!(crx(&ws), InferredModel::EpsilonOnly);
        let _ = al.intern("x");
    }

    #[test]
    fn exactly_once_class() {
        let (model, al) = run(&["ab", "ab"]);
        let r = model.into_regex().unwrap();
        assert_eq!(render(&r, &al), "a b");
    }

    #[test]
    fn incremental_equals_batch() {
        let words = ["abccde", "cccad", "bfegg", "bfehi"];
        let mut al = Alphabet::new();
        let ws: Vec<Word> = words.iter().map(|w| al.word_from_chars(w)).collect();
        let batch = crx(&ws);
        let mut state = CrxState::new();
        for w in &ws {
            state.absorb(w);
        }
        assert_eq!(state.infer(), batch);
        assert_eq!(state.num_words(), 4);
    }

    #[test]
    fn text_round_trip_preserves_inference() {
        let words = ["abccde", "cccad", "bfegg", "bfehi"];
        let mut al = Alphabet::new();
        let ws: Vec<Word> = words.iter().map(|w| al.word_from_chars(w)).collect();
        let mut state = CrxState::new();
        for w in &ws {
            state.absorb(w);
        }
        let text = state.to_text(&al);
        let mut al2 = Alphabet::new();
        let back = CrxState::from_text(&text, &mut al2).unwrap();
        assert_eq!(back.num_words(), state.num_words());
        // Inference over the round-tripped state matches (modulo the
        // alphabet renumbering, names coincide by construction here since
        // the serialization order interns identically).
        assert_eq!(back.to_text(&al2), text);
        assert_eq!(back.infer(), state.infer());
    }

    #[test]
    fn text_rejects_garbage() {
        let mut al = Alphabet::new();
        assert!(CrxState::from_text("nonsense", &mut al).is_err());
        assert!(CrxState::from_text("vec x", &mut al).is_err());
        assert!(CrxState::from_text("sym", &mut al).is_err());
        assert!(CrxState::from_text("edge a", &mut al).is_err());
        assert!(CrxState::from_text("#ok\nwords 3\n", &mut al).is_ok());
        // Legacy files carrying first-seen fields still parse.
        assert!(CrxState::from_text("sym a 0 2\n", &mut al).is_ok());
    }

    #[test]
    fn merge_equals_absorbing_everything() {
        let words = ["abccde", "cccad", "bfegg", "bfehi", ""];
        let mut al = Alphabet::new();
        let ws: Vec<Word> = words.iter().map(|w| al.word_from_chars(w)).collect();
        let mut whole = CrxState::new();
        for w in &ws {
            whole.absorb(w);
        }
        for cut in 0..=ws.len() {
            let mut left = CrxState::new();
            for w in &ws[..cut] {
                left.absorb(w);
            }
            let mut right = CrxState::new();
            for w in &ws[cut..] {
                right.absorb(w);
            }
            left.merge(&right);
            assert_eq!(left, whole, "cut at {cut}");
            assert_eq!(left.infer(), whole.infer());
        }
    }

    #[test]
    fn state_is_word_order_invariant() {
        let words = ["abd", "bcdee", "cade", "", "abd"];
        let mut al = Alphabet::new();
        let ws: Vec<Word> = words.iter().map(|w| al.word_from_chars(w)).collect();
        let mut forward = CrxState::new();
        ws.iter().for_each(|w| forward.absorb(w));
        let mut backward = CrxState::new();
        ws.iter().rev().for_each(|w| backward.absorb(w));
        assert_eq!(forward, backward);
        assert_eq!(forward.infer(), backward.infer());
    }

    #[test]
    fn remap_preserves_inference_modulo_renaming() {
        let mut al = Alphabet::new();
        let ws: Vec<Word> = ["abd", "bcdee", "cade"]
            .iter()
            .map(|w| al.word_from_chars(w))
            .collect();
        let mut state = CrxState::new();
        ws.iter().for_each(|w| state.absorb(w));
        let shifted = state.remap(|s| Sym(s.0 + 7));
        assert_eq!(shifted.num_words(), state.num_words());
        assert_eq!(shifted.remap(|s| Sym(s.0 - 7)), state);
    }

    #[test]
    fn count_vectors_deduplicate() {
        let mut al = Alphabet::new();
        let ws: Vec<Word> = (0..1000).map(|_| al.word_from_chars("ab")).collect();
        let mut state = CrxState::new();
        for w in &ws {
            state.absorb(w);
        }
        assert_eq!(state.count_vectors.len(), 1);
        assert_eq!(state.num_words(), 1000);
    }

    /// Disjunction factors must not repeat symbols ("some care has to be
    /// taken to generate factors which are disjunctions without
    /// repetitions").
    #[test]
    fn factors_are_duplicate_free() {
        let (model, _) = run(&["abab", "ba"]);
        let r = model.into_regex().unwrap();
        assert_eq!(r.symbols().len(), r.symbol_count());
    }

    #[test]
    fn qualifier_star_when_absent_and_repeated() {
        let (model, al) = run(&["aab", "b"]);
        let r = model.into_regex().unwrap();
        assert_eq!(render(&r, &al), "a* b");
    }

    #[test]
    fn qualifier_plus_when_present_and_repeated() {
        let (model, al) = run(&["aab", "ab"]);
        let r = model.into_regex().unwrap();
        assert_eq!(render(&r, &al), "a+ b");
    }
}
