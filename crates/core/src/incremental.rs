//! Incremental computation (§9).
//!
//! When XML trickles in (answers to queries, web-service results), the
//! inferred schema should be updatable from the new data alone. Both
//! algorithms keep a compact internal representation — the SOA for iDTD
//! (quadratic in the number of element names) and the partial-order /
//! multiplicity summary for CRX — so the generating XML can be discarded.
//!
//! The types here wrap those representations with an absorb/infer API and a
//! cheap *dirty* flag so repeated `infer` calls without new data are free.

use crate::crx::CrxState;
use crate::idtd::{idtd_with, IdtdConfig};
use crate::model::InferredModel;
use dtdinfer_automata::soa::Soa;
use dtdinfer_regex::alphabet::Word;

/// Incrementally maintained SORE inference (iDTD over a live SOA).
#[derive(Debug, Clone)]
pub struct IncrementalSore {
    soa: Soa,
    cfg: IdtdConfig,
    cached: Option<InferredModel>,
}

impl Default for IncrementalSore {
    fn default() -> Self {
        Self::new()
    }
}

impl IncrementalSore {
    /// An empty inference state.
    pub fn new() -> Self {
        Self::with_config(IdtdConfig::default())
    }

    /// With explicit iDTD parameters.
    pub fn with_config(cfg: IdtdConfig) -> Self {
        Self {
            soa: Soa::new(),
            cfg,
            cached: None,
        }
    }

    /// Absorbs one new word. Invalidates the cache only when the word
    /// actually extends the automaton.
    pub fn absorb(&mut self, w: &Word) {
        let before = self.soa.num_edges();
        self.soa.absorb(w);
        if self.soa.num_edges() != before {
            self.cached = None;
        }
    }

    /// Absorbs many words.
    pub fn absorb_all<'a, I: IntoIterator<Item = &'a Word>>(&mut self, words: I) {
        for w in words {
            self.absorb(w);
        }
    }

    /// Wraps an existing automaton (e.g. restored from a snapshot or built
    /// by a shard worker).
    pub fn from_soa(soa: Soa) -> Self {
        Self {
            soa,
            cfg: IdtdConfig::default(),
            cached: None,
        }
    }

    /// Merges another shard's state in: the SOAs are unioned, so the result
    /// equals having absorbed both word multisets into one state.
    pub fn merge(&mut self, other: &IncrementalSore) {
        self.soa.merge(other.soa());
        self.cached = None;
    }

    /// The current SORE (recomputed only when the SOA changed).
    pub fn infer(&mut self) -> InferredModel {
        if self.cached.is_none() {
            self.cached = Some(idtd_with(&self.soa, self.cfg));
        }
        self.cached.clone().expect("just computed")
    }

    /// Read access to the maintained automaton.
    pub fn soa(&self) -> &Soa {
        &self.soa
    }
}

/// Incrementally maintained CHARE inference (CRX over a live summary).
#[derive(Debug, Clone, Default)]
pub struct IncrementalChare {
    state: CrxState,
    cached: Option<InferredModel>,
}

impl IncrementalChare {
    /// An empty inference state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing summary (e.g. restored from a snapshot or built
    /// by a shard worker).
    pub fn from_state(state: CrxState) -> Self {
        Self {
            state,
            cached: None,
        }
    }

    /// Merges another shard's summary in; equal to absorbing both word
    /// multisets into one state, in any order.
    pub fn merge(&mut self, other: &IncrementalChare) {
        self.state.merge(other.state());
        self.cached = None;
    }

    /// Absorbs one new word.
    pub fn absorb(&mut self, w: &Word) {
        self.state.absorb(w);
        self.cached = None;
    }

    /// Absorbs many words.
    pub fn absorb_all<'a, I: IntoIterator<Item = &'a Word>>(&mut self, words: I) {
        for w in words {
            self.absorb(w);
        }
    }

    /// The current CHARE.
    pub fn infer(&mut self) -> InferredModel {
        if self.cached.is_none() {
            self.cached = Some(self.state.infer());
        }
        self.cached.clone().expect("just computed")
    }

    /// Read access to the maintained summary.
    pub fn state(&self) -> &CrxState {
        &self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crx::crx;
    use crate::idtd::idtd_from_words;
    use dtdinfer_regex::alphabet::Alphabet;

    fn words(al: &mut Alphabet, ws: &[&str]) -> Vec<Word> {
        ws.iter().map(|w| al.word_from_chars(w)).collect()
    }

    #[test]
    fn incremental_sore_equals_batch() {
        let mut al = Alphabet::new();
        let ws = words(&mut al, &["bacacdacde", "cbacdbacde", "abccaadcde"]);
        let batch = idtd_from_words(&ws);
        let mut inc = IncrementalSore::new();
        // Absorb one at a time, inferring between arrivals like a live
        // service would.
        for w in &ws {
            inc.absorb(w);
            let _ = inc.infer();
        }
        assert_eq!(inc.infer(), batch);
    }

    #[test]
    fn incremental_chare_equals_batch() {
        let mut al = Alphabet::new();
        let ws = words(&mut al, &["abccde", "cccad", "bfegg", "bfehi"]);
        let batch = crx(&ws);
        let mut inc = IncrementalChare::new();
        for w in &ws {
            inc.absorb(w);
            let _ = inc.infer();
        }
        assert_eq!(inc.infer(), batch);
    }

    #[test]
    fn sore_refines_as_data_arrives() {
        let mut al = Alphabet::new();
        let ws = words(&mut al, &["bacacdacde", "cbacdbacde", "abccaadcde"]);
        let mut inc = IncrementalSore::new();
        inc.absorb(&ws[0]);
        let first = inc.infer();
        inc.absorb(&ws[1]);
        inc.absorb(&ws[2]);
        let last = inc.infer();
        // Both are inferred models; the final one matches the batch run.
        assert_eq!(last, idtd_from_words(&ws));
        assert!(first.as_regex().is_some());
    }

    #[test]
    fn cache_hit_when_word_adds_nothing() {
        let mut al = Alphabet::new();
        let ws = words(&mut al, &["ab", "ab"]);
        let mut inc = IncrementalSore::new();
        inc.absorb(&ws[0]);
        let m1 = inc.infer();
        inc.absorb(&ws[1]); // no new edges → cache preserved
        assert!(inc.cached.is_some());
        assert_eq!(inc.infer(), m1);
    }

    #[test]
    fn sharded_merge_equals_sequential() {
        let mut al = Alphabet::new();
        let ws = words(&mut al, &["bacacdacde", "cbacdbacde", "abccaadcde", "bc"]);
        for cut in 0..=ws.len() {
            let mut sore_a = IncrementalSore::new();
            sore_a.absorb_all(&ws[..cut]);
            let mut sore_b = IncrementalSore::new();
            sore_b.absorb_all(&ws[cut..]);
            sore_a.merge(&sore_b);
            let mut whole = IncrementalSore::new();
            whole.absorb_all(&ws);
            assert_eq!(sore_a.infer(), whole.infer(), "sore cut {cut}");

            let mut chare_a = IncrementalChare::new();
            chare_a.absorb_all(&ws[..cut]);
            let mut chare_b = IncrementalChare::new();
            chare_b.absorb_all(&ws[cut..]);
            chare_a.merge(&chare_b);
            let mut whole = IncrementalChare::new();
            whole.absorb_all(&ws);
            assert_eq!(chare_a.infer(), whole.infer(), "chare cut {cut}");
        }
    }

    #[test]
    fn empty_state_degenerate() {
        let mut inc = IncrementalSore::new();
        assert_eq!(inc.infer(), InferredModel::Empty);
        let mut inc = IncrementalChare::new();
        assert_eq!(inc.infer(), InferredModel::Empty);
    }
}
