//! Core inference algorithms of "Inference of Concise DTDs from XML Data"
//! (Bex, Neven, Schwentick, Tuyls — VLDB 2006).
//!
//! * [`mod@rewrite`] — the SOA→SORE graph-rewrite system of §5 (Algorithm 1,
//!   Theorem 1): four rules (disjunction, concatenation, self-loop,
//!   optional) that transform a single occurrence automaton into an
//!   equivalent single occurrence regular expression whenever one exists.
//! * [`mod@idtd`] — the iDTD algorithm of §6 (Algorithm 2, Theorem 2): `rewrite`
//!   plus the repair rules *enable-disjunction* and *enable-optional* that
//!   compute a SORE super-approximation when the sample was not
//!   representative.
//! * [`mod@crx`] — the CRX algorithm of §7 (Algorithm 3, Theorems 3–5): direct
//!   inference of chain regular expressions (CHAREs) from words via the
//!   induced partial order on alphabet symbols, without any automaton
//!   intermediate.
//! * [`mod@kore`] — the k-ORE extension (the direct successor paper, Bex,
//!   Gelade, Neven, Vansummeren): k-occurrence automata over a marked
//!   alphabet, rewritten into deterministic k-occurrence regular
//!   expressions, plus the MDL model chooser behind `--engine auto`.
//! * [`incremental`] — the §9 extension: both algorithms re-run from a
//!   compact internal state (the SOA / the partial-order summary) so newly
//!   arriving XML can be absorbed without keeping the original corpus.
//! * [`noise`] — the §9 extension for noisy data: supports on SOA edges and
//!   symbols, with threshold-based pruning and a support-aware iDTD.

#![warn(missing_docs)]

pub mod crx;
pub mod idtd;
pub mod incremental;
pub mod kore;
pub mod model;
pub mod noise;
pub mod rewrite;

pub use crx::{crx, crx_factors};
pub use idtd::{idtd, idtd_from_words, IdtdConfig};
pub use kore::{KoreOutcome, KoreState};
pub use model::InferredModel;
pub use rewrite::{rewrite, rewrite_soa};
