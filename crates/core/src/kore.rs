//! The k-ORE engine: k-occurrence automata and deterministic k-occurrence
//! regular expressions.
//!
//! The paper's SOREs (§3) cannot express content models where a symbol
//! repeats — `a b a` has no single-occurrence expression. The direct
//! successor paper (Bex, Gelade, Neven, Vansummeren, "Learning Deterministic
//! Regular Expressions for the Inference of Schemas from XML Data") lifts
//! the whole pipeline to *k-occurrence* expressions: mark the i-th
//! occurrence of each symbol in every sample word (`a#1`, `a#2`, …), learn
//! an ordinary SOA over the marked alphabet, rewrite it with the unchanged
//! §5/§6 machinery, then erase the marks. The result is a k-ORE: an
//! expression in which each alphabet symbol occurs at most `k` times.
//!
//! Two facts make the incremental/sharded integration exact:
//!
//! * **Marking commutes with 2T-INF.** The marked SOA is a pure function of
//!   the word multiset (in fact of the word *set*), so absorbing words one
//!   at a time, merging shard states, or rebuilding from a persisted
//!   [`WordBag`] all land on the same automaton.
//! * **Capping commutes with 2T-INF.** Folding marks down from [`MAX_K`] to
//!   any smaller `k` (occurrence `min(m, k)`) is an alphabet homomorphism,
//!   and 2T-INF commutes with alphabet homomorphisms, so the folded SOA
//!   equals the SOA learned from the k-capped marked words directly. One
//!   stored automaton therefore serves every `k ≤ MAX_K`.
//!
//! [`KoreState::derive`] tries `k` from the largest observed repeat count
//! downward; each candidate is rewritten by iDTD over the marked alphabet,
//! unmarked, and kept only if the unmarked expression is one-unambiguous
//! (deterministic per the XML spec). `k = 1` is the plain SORE, which is
//! deterministic by definition (§3), so the loop always terminates.
//!
//! The module also hosts the MDL-style model chooser used by
//! `--engine auto`: two-part code length (model bits + data bits under a
//! Glushkov-walk code) computed with integer arithmetic only, so the choice
//! is byte-identical across shard counts and document permutations.

use crate::idtd::{idtd_traced, Event, IdtdConfig};
use crate::model::InferredModel;
use dtdinfer_automata::nfa::Nfa;
use dtdinfer_automata::soa::Soa;
use dtdinfer_regex::alphabet::{Alphabet, Sym, Word};
use dtdinfer_regex::ast::Regex;
use dtdinfer_regex::determinism::check_deterministic;
use dtdinfer_regex::multiset::WordBag;
use dtdinfer_regex::normalize::simplify;
use std::collections::BTreeSet;

/// Largest occurrence index the learner distinguishes. Occurrences beyond
/// the cap collapse onto mark `MAX_K`, which bounds the marked alphabet at
/// `MAX_K·|Σ|` and keeps the automaton size linear in the alphabet.
pub const MAX_K: usize = 4;

/// Encodes `(symbol, occurrence)` as a marked symbol. `occ` is 1-based and
/// must be in `1..=MAX_K`. The encoding is injective and order-preserving
/// (marked symbols sort by `(symbol, occurrence)`), so canonical-alphabet
/// remaps lift to injective remaps of the marked alphabet.
fn mark(s: Sym, occ: usize) -> Sym {
    debug_assert!((1..=MAX_K).contains(&occ));
    Sym(s.0 * MAX_K as u32 + (occ as u32 - 1))
}

/// Inverse of [`mark`].
fn unmark_sym(m: Sym) -> (Sym, usize) {
    (Sym(m.0 / MAX_K as u32), (m.0 % MAX_K as u32) as usize + 1)
}

/// Rewrites a word over Σ into its marked form over Σ×{1..MAX_K}: the i-th
/// occurrence of `s` becomes `mark(s, min(i, MAX_K))`.
fn mark_word(w: &Word, scratch: &mut std::collections::BTreeMap<Sym, usize>) -> Word {
    scratch.clear();
    w.iter()
        .map(|&s| {
            let n = scratch.entry(s).or_insert(0);
            *n += 1;
            mark(s, (*n).min(MAX_K))
        })
        .collect()
}

/// Erases marks from a regex learned over the marked alphabet, rebuilding
/// through the smart constructors so structural invariants (flattening,
/// no 1-ary nodes) hold on the result.
fn unmark_regex(r: &Regex) -> Regex {
    match r {
        Regex::Symbol(m) => Regex::Symbol(unmark_sym(*m).0),
        Regex::Concat(v) => Regex::concat(v.iter().map(unmark_regex).collect()),
        Regex::Union(v) => Regex::union(v.iter().map(unmark_regex).collect()),
        Regex::Optional(b) => Regex::optional(unmark_regex(b)),
        Regex::Plus(b) => Regex::plus(unmark_regex(b)),
        Regex::Star(b) => Regex::star(unmark_regex(b)),
    }
}

/// Streaming state of the k-ORE learner: the 2T-INF automaton over the
/// [`MAX_K`]-marked alphabet plus a word count.
///
/// Every component is a set union or a sum, so the state is invariant under
/// permutation of the absorbed words and two states [`merge`](Self::merge)
/// commutatively — the property the sharded ingestion engine relies on.
/// The state is also a pure function of the absorbed word multiset, so a
/// state rebuilt from a persisted [`WordBag`] is byte-identical to one that
/// was grown incrementally.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KoreState {
    /// 2T-INF automaton over marked symbols.
    marked: Soa,
    /// Total number of words absorbed.
    num_words: u64,
}

/// The result of a k-ORE derivation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KoreOutcome {
    /// The deterministic k-ORE (or a degenerate model).
    pub model: InferredModel,
    /// The iDTD derivation trace at the accepted `k`.
    pub events: Vec<Event>,
    /// The occurrence bound the derivation settled on (`1` = plain SORE).
    pub k: usize,
}

impl KoreState {
    /// An empty state (no words seen).
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one word into the state.
    pub fn absorb(&mut self, w: &Word) {
        self.absorb_counted(w, 1);
    }

    /// Folds `n` occurrences of one word into the state. The marked SOA is
    /// count-invariant (set unions), so the word is marked and absorbed
    /// once; only the word total advances by `n`.
    pub fn absorb_counted(&mut self, w: &Word, n: u32) {
        if n == 0 {
            return;
        }
        self.num_words += u64::from(n);
        let mut scratch = std::collections::BTreeMap::new();
        let marked = mark_word(w, &mut scratch);
        self.marked.absorb(&marked);
    }

    /// Learns a state from a counted word multiset — the batch counterpart
    /// of incremental absorption, guaranteed to produce the same state.
    pub fn learn_counted(bag: &WordBag) -> Self {
        let mut state = Self::new();
        for (w, n) in bag.iter() {
            state.absorb_counted(w, n);
        }
        state
    }

    /// Number of words absorbed so far.
    pub fn num_words(&self) -> u64 {
        self.num_words
    }

    /// Whether no word at all has been absorbed.
    pub fn is_empty(&self) -> bool {
        self.num_words == 0
    }

    /// Merges another state in: the result equals absorbing both word
    /// multisets into one state, in any order.
    pub fn merge(&mut self, other: &KoreState) {
        self.marked.merge(&other.marked);
        self.num_words += other.num_words;
        dtdinfer_obs::count("core.kore.merges", 1);
    }

    /// Rebuilds the state under a symbol translation (alphabet
    /// canonicalization / shard reconciliation). `f` must be injective on
    /// the state's symbols; the lift to marked symbols is then injective
    /// too.
    pub fn remap(&self, mut f: impl FnMut(Sym) -> Sym) -> KoreState {
        KoreState {
            marked: self.marked.remap(|m| {
                let (s, occ) = unmark_sym(m);
                mark(f(s), occ)
            }),
            num_words: self.num_words,
        }
    }

    /// The largest occurrence index present in the marked automaton — the
    /// starting `k` for the derivation loop. `0` when no symbol was seen.
    pub fn k_max(&self) -> usize {
        self.marked
            .states
            .iter()
            .map(|&m| unmark_sym(m).1)
            .max()
            .unwrap_or(0)
    }

    /// The marked SOA folded down to occurrence bound `k`: occurrence
    /// indices above `k` collapse onto `k`. Because capping is an alphabet
    /// homomorphism and 2T-INF commutes with homomorphisms, this equals the
    /// SOA learned from the k-capped marked words directly.
    pub fn fold(&self, k: usize) -> Soa {
        assert!(k >= 1, "occurrence bound must be at least 1");
        let cap = |m: Sym| {
            let (s, occ) = unmark_sym(m);
            mark(s, occ.min(k))
        };
        Soa::from_parts(
            self.marked.initial.iter().map(|&m| cap(m)),
            self.marked.finals.iter().map(|&m| cap(m)),
            self.marked.edges.iter().map(|&(a, b)| (cap(a), cap(b))),
            self.marked.accepts_empty,
        )
    }

    /// Derives a deterministic k-ORE: for `k` from [`k_max`](Self::k_max)
    /// down to 1, fold the marked automaton to `k`, run iDTD over the
    /// marked alphabet, erase the marks, and accept the first candidate
    /// whose unmarked expression is one-unambiguous. At `k = 1` the folded
    /// automaton is the plain SOA and iDTD yields a SORE — deterministic by
    /// definition (§3) — so the loop always succeeds.
    ///
    /// The soundness chain `L(sample) ⊆ L(k-ORE)` holds at every `k`: the
    /// marked SOA over-approximates the marked sample (Theorem 2 over the
    /// marked alphabet) and mark erasure is a homomorphism, which can only
    /// grow the language.
    pub fn derive(&self) -> KoreOutcome {
        let _span = dtdinfer_obs::span("core.kore");
        dtdinfer_obs::count("core.kore.runs", 1);
        if self.marked.num_states() == 0 {
            let model = if self.marked.accepts_empty {
                InferredModel::EpsilonOnly
            } else {
                InferredModel::Empty
            };
            return KoreOutcome {
                model,
                events: Vec::new(),
                k: 1,
            };
        }
        let k_max = self.k_max().max(1);
        for k in (1..=k_max).rev() {
            let folded = self.fold(k);
            let (model, events) = idtd_traced(&folded, IdtdConfig::default());
            let Some(r) = model.as_regex() else {
                // Degenerate models can only arise from empty automata,
                // handled above; keep the fallback total regardless.
                return KoreOutcome { model, events, k };
            };
            let candidate = simplify(&unmark_regex(r));
            if k == 1 || check_deterministic(&candidate).is_ok() {
                dtdinfer_obs::observe("core.kore.k", k as u64);
                return KoreOutcome {
                    model: InferredModel::Regex(candidate),
                    events,
                    k,
                };
            }
        }
        unreachable!("k = 1 fold is a SORE derivation and always accepted")
    }

    /// Serializes the state to a line-oriented text format (the counterpart
    /// of `SupportSoa::to_text` for snapshot persistence and
    /// `dtdinfer learn --state`).
    ///
    /// Records: `words N`, `empty`, `initial NAME OCC`, `final NAME OCC`,
    /// `edge NAME OCC NAME OCC`. States are implied (a marked state always
    /// appears as an endpoint), so they are not stored.
    pub fn to_text(&self, alphabet: &Alphabet) -> String {
        let mut out = String::from("#dtdinfer-kore v1\n");
        out.push_str(&format!("words {}\n", self.num_words));
        if self.marked.accepts_empty {
            out.push_str("empty\n");
        }
        for &m in &self.marked.initial {
            let (s, occ) = unmark_sym(m);
            out.push_str(&format!("initial {} {occ}\n", alphabet.name(s)));
        }
        for &m in &self.marked.finals {
            let (s, occ) = unmark_sym(m);
            out.push_str(&format!("final {} {occ}\n", alphabet.name(s)));
        }
        for &(a, b) in &self.marked.edges {
            let (sa, oa) = unmark_sym(a);
            let (sb, ob) = unmark_sym(b);
            out.push_str(&format!(
                "edge {} {oa} {} {ob}\n",
                alphabet.name(sa),
                alphabet.name(sb)
            ));
        }
        out
    }

    /// Parses the [`to_text`](Self::to_text) format, interning names into
    /// `alphabet`.
    pub fn from_text(text: &str, alphabet: &mut Alphabet) -> Result<Self, String> {
        let mut num_words = 0u64;
        let mut accepts_empty = false;
        let mut initial = BTreeSet::new();
        let mut finals = BTreeSet::new();
        let mut edges = BTreeSet::new();
        let parse_mark = |alphabet: &mut Alphabet,
                          name: &str,
                          occ: &str,
                          lineno: usize|
         -> Result<Sym, String> {
            let occ: usize = occ
                .parse()
                .map_err(|_| format!("line {}: bad occurrence index {occ:?}", lineno + 1))?;
            if !(1..=MAX_K).contains(&occ) {
                return Err(format!(
                    "line {}: occurrence index {occ} out of range 1..={MAX_K}",
                    lineno + 1
                ));
            }
            Ok(mark(alphabet.intern(name), occ))
        };
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            match fields.as_slice() {
                ["words", n] => {
                    num_words = n
                        .parse()
                        .map_err(|_| format!("line {}: bad word count {n:?}", lineno + 1))?;
                }
                ["empty"] => accepts_empty = true,
                ["initial", name, occ] => {
                    initial.insert(parse_mark(alphabet, name, occ, lineno)?);
                }
                ["final", name, occ] => {
                    finals.insert(parse_mark(alphabet, name, occ, lineno)?);
                }
                ["edge", a, oa, b, ob] => {
                    edges.insert((
                        parse_mark(alphabet, a, oa, lineno)?,
                        parse_mark(alphabet, b, ob, lineno)?,
                    ));
                }
                _ => return Err(format!("line {}: unrecognized record {line:?}", lineno + 1)),
            }
        }
        Ok(KoreState {
            marked: Soa::from_parts(initial, finals, edges, accepts_empty),
            num_words,
        })
    }
}

/// `⌈log2(n)⌉` — the number of bits to pick one of `n` options. `0` when
/// there is at most one option.
fn ceil_log2(n: u64) -> u64 {
    if n <= 1 {
        0
    } else {
        u64::from(64 - (n - 1).leading_zeros())
    }
}

/// Sentinel cost of a model that cannot encode the sample at all. The
/// chooser never sees it for iDTD/k-ORE/CRX outputs (all are supersets of
/// their sample by construction); it exists so the cost function is total.
pub const INFEASIBLE: u64 = u64::MAX;

/// Bits to encode one word as a walk through the Glushkov automaton of
/// `nfa`: at each step, `⌈log2⌉` of the number of locally available choices
/// (distinct continuation symbols, plus the option to stop when the walk
/// may end here). `None` when the automaton rejects the word.
fn word_bits(nfa: &Nfa, w: &Word) -> Option<u64> {
    let mut bits = 0u64;
    let mut active: Vec<usize> = Vec::new();
    let mut at_start = true;
    for step in 0..=w.len() {
        let (succ, can_stop) = if at_start {
            (nfa.first.clone(), nfa.accepts_empty)
        } else {
            let mut set = BTreeSet::new();
            for &p in &active {
                set.extend(nfa.follow[p].iter().copied());
            }
            let stop = active.iter().any(|&p| nfa.last[p]);
            (set.into_iter().collect::<Vec<_>>(), stop)
        };
        let continuations: BTreeSet<Sym> = succ.iter().map(|&q| nfa.sym_at[q]).collect();
        let options = continuations.len() as u64 + u64::from(can_stop);
        if step == w.len() {
            if !can_stop {
                return None;
            }
            bits = bits.saturating_add(ceil_log2(options));
            break;
        }
        bits = bits.saturating_add(ceil_log2(options));
        let c = w[step];
        active = succ.into_iter().filter(|&q| nfa.sym_at[q] == c).collect();
        if active.is_empty() {
            return None;
        }
        at_start = false;
    }
    Some(bits)
}

/// Two-part MDL cost of `model` against the counted sample `words`:
/// model bits (`token_count` symbols/operators, each at `⌈log2⌉` of the
/// alphabet size plus the four operator kinds) plus data bits (the
/// Glushkov-walk code of every word, weighted by its count). All integer
/// and saturating, so the comparison is exact and platform-independent.
pub fn mdl_cost(model: &InferredModel, alphabet_len: usize, words: &WordBag) -> u64 {
    match model {
        InferredModel::Empty => {
            if words.is_empty() {
                1
            } else {
                INFEASIBLE
            }
        }
        InferredModel::EpsilonOnly => {
            if words.words().all(|w| w.is_empty()) {
                1
            } else {
                INFEASIBLE
            }
        }
        InferredModel::Regex(r) => {
            let alphabet_and_ops = alphabet_len as u64 + 4;
            let model_bits = (r.token_count() as u64).saturating_mul(ceil_log2(alphabet_and_ops));
            let nfa = Nfa::from_regex(r);
            let mut data_bits = 0u64;
            for (w, n) in words.iter() {
                match word_bits(&nfa, w) {
                    Some(b) => data_bits = data_bits.saturating_add(b.saturating_mul(u64::from(n))),
                    None => return INFEASIBLE,
                }
            }
            model_bits.saturating_add(data_bits)
        }
    }
}

/// The outcome of the `--engine auto` model chooser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AutoPick {
    /// Which candidate won: `"auto-sore"`, `"auto-kore"`, or
    /// `"auto-chare"`.
    pub engine: &'static str,
    /// The winning model.
    pub model: InferredModel,
    /// Derivation trace of the winner (empty for CHARE).
    pub events: Vec<Event>,
    /// Occurrence bound of the winner (`1` for SORE/CHARE).
    pub k: usize,
}

/// Picks among the three per-element candidates by MDL cost. Ties break in
/// the fixed order SORE < k-ORE < CHARE (prefer the paper's primary model),
/// so the choice is deterministic — a requirement for the byte-identity
/// guarantees of the sharded engine.
pub fn pick_auto(
    sore: (InferredModel, Vec<Event>),
    kore: KoreOutcome,
    chare: InferredModel,
    alphabet_len: usize,
    words: &WordBag,
) -> AutoPick {
    let sore_cost = mdl_cost(&sore.0, alphabet_len, words);
    let kore_cost = mdl_cost(&kore.model, alphabet_len, words);
    let chare_cost = mdl_cost(&chare, alphabet_len, words);
    if sore_cost <= kore_cost && sore_cost <= chare_cost {
        AutoPick {
            engine: "auto-sore",
            model: sore.0,
            events: sore.1,
            k: 1,
        }
    } else if kore_cost <= chare_cost {
        AutoPick {
            engine: "auto-kore",
            model: kore.model,
            events: kore.events,
            k: kore.k,
        }
    } else {
        AutoPick {
            engine: "auto-chare",
            model: chare,
            events: Vec::new(),
            k: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtdinfer_regex::display::render;

    fn bag(al: &mut Alphabet, words: &[&str]) -> WordBag {
        words.iter().map(|w| al.word_from_chars(w)).collect()
    }

    fn derive_str(al: &mut Alphabet, words: &[&str]) -> (String, usize) {
        let state = KoreState::learn_counted(&bag(al, words));
        let out = state.derive();
        (out.model.render(al), out.k)
    }

    #[test]
    fn repeated_symbol_yields_k2_ore() {
        let mut al = Alphabet::new();
        let (r, k) = derive_str(&mut al, &["aba"]);
        assert_eq!(r, "a b a");
        assert_eq!(k, 2);
    }

    #[test]
    fn optional_second_occurrence() {
        let mut al = Alphabet::new();
        let (r, k) = derive_str(&mut al, &["aba", "ab"]);
        assert_eq!(r, "a b a?");
        assert_eq!(k, 2);
    }

    #[test]
    fn sore_language_stays_k1() {
        let mut al = Alphabet::new();
        let (_, k) = derive_str(&mut al, &["abc", "ac"]);
        assert_eq!(k, 1);
    }

    #[test]
    fn degenerate_models() {
        let empty = KoreState::new();
        assert_eq!(empty.derive().model, InferredModel::Empty);
        let mut eps = KoreState::new();
        eps.absorb(&Vec::new());
        assert_eq!(eps.derive().model, InferredModel::EpsilonOnly);
    }

    #[test]
    fn occurrences_beyond_max_k_collapse() {
        let mut al = Alphabet::new();
        let state = KoreState::learn_counted(&bag(&mut al, &["aaaaaaa"]));
        assert_eq!(state.k_max(), MAX_K);
        let out = state.derive();
        let r = out.model.as_regex().expect("regex");
        assert!(check_deterministic(r).is_ok());
        // The derived model must still accept the sample word.
        assert!(out.model.matches(&al.word_from_chars("aaaaaaa")));
    }

    #[test]
    fn derivation_is_sound_on_sample() {
        let mut al = Alphabet::new();
        let words = ["aba", "ab", "ba", "abab", "b"];
        let state = KoreState::learn_counted(&bag(&mut al, &words));
        let out = state.derive();
        for w in words {
            assert!(
                out.model.matches(&al.word_from_chars(w)),
                "k-ORE must accept sample word {w:?}"
            );
        }
        if let Some(r) = out.model.as_regex() {
            assert!(
                check_deterministic(r).is_ok(),
                "k-ORE must be deterministic"
            );
        }
    }

    #[test]
    fn merge_equals_batch_and_commutes() {
        let mut al = Alphabet::new();
        let all = bag(&mut al, &["aba", "ab", "cc", "abc", "aba"]);
        let left = bag(&mut al, &["aba", "ab"]);
        let right = bag(&mut al, &["cc", "abc", "aba"]);
        let whole = KoreState::learn_counted(&all);
        let mut ab = KoreState::learn_counted(&left);
        ab.merge(&KoreState::learn_counted(&right));
        let mut ba = KoreState::learn_counted(&right);
        ba.merge(&KoreState::learn_counted(&left));
        assert_eq!(whole, ab);
        assert_eq!(ab, ba);
    }

    #[test]
    fn remap_lifts_injectively() {
        let mut al = Alphabet::new();
        let state = KoreState::learn_counted(&bag(&mut al, &["aba", "bb"]));
        // Swap a ↔ b, twice: identity.
        let swap = |s: Sym| Sym(1 - s.0);
        assert_eq!(state.remap(swap).remap(swap), state);
        // Remapping then deriving equals deriving then renaming: spot-check
        // word membership through the swap.
        let out = state.remap(swap).derive();
        assert!(out.model.matches(&al.word_from_chars("bab")));
    }

    #[test]
    fn text_round_trip() {
        let mut al = Alphabet::new();
        let state = KoreState::learn_counted(&bag(&mut al, &["aba", "ab", "", "ccc"]));
        let text = state.to_text(&al);
        let back = KoreState::from_text(&text, &mut al).expect("parse");
        assert_eq!(back, state);
        // Empty state round trip.
        let empty = KoreState::new();
        let text = empty.to_text(&al);
        assert_eq!(KoreState::from_text(&text, &mut al).expect("parse"), empty);
    }

    #[test]
    fn from_text_rejects_garbage() {
        let mut al = Alphabet::new();
        assert!(KoreState::from_text("edge a 0 b 1", &mut al).is_err());
        assert!(KoreState::from_text("edge a 9 b 1", &mut al).is_err());
        assert!(KoreState::from_text("bogus record", &mut al).is_err());
        assert!(KoreState::from_text("words lots", &mut al).is_err());
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1 << 40), 40);
    }

    #[test]
    fn mdl_prefers_tight_model_on_repetitive_sample() {
        let mut al = Alphabet::new();
        // Many copies of `aba`: the k-ORE `a b a` costs far fewer data bits
        // than the SORE repair (which must generalize to a loop).
        let mut words = WordBag::new();
        words.insert_n(al.word_from_chars("aba"), 50);
        let kore = KoreState::learn_counted(&words).derive();
        let sore = crate::idtd::idtd_traced(&Soa::learn(words.words()), IdtdConfig::default());
        let kore_cost = mdl_cost(&kore.model, al.len(), &words);
        let sore_cost = mdl_cost(&sore.0, al.len(), &words);
        assert!(
            kore_cost < sore_cost,
            "k-ORE ({kore_cost}) should beat SORE ({sore_cost}) on {}",
            render(kore.model.as_regex().unwrap(), &al)
        );
        let pick = pick_auto(sore, kore, InferredModel::Empty, al.len(), &words);
        assert_eq!(pick.engine, "auto-kore");
        assert_eq!(pick.k, 2);
    }

    #[test]
    fn auto_breaks_ties_toward_sore() {
        let mut al = Alphabet::new();
        let words = bag(&mut al, &["ab", "a"]);
        let sore = crate::idtd::idtd_traced(&Soa::learn(words.words()), IdtdConfig::default());
        let kore = KoreState::learn_counted(&words).derive();
        // SORE language ⇒ the k-ORE settles at k = 1 with the same model,
        // the costs tie, and the tie breaks to SORE.
        let pick = pick_auto(sore, kore, InferredModel::Empty, al.len(), &words);
        assert_eq!(pick.engine, "auto-sore");
    }

    #[test]
    fn infeasible_costs() {
        let mut al = Alphabet::new();
        let words = bag(&mut al, &["a"]);
        assert_eq!(
            mdl_cost(&InferredModel::Empty, al.len(), &words),
            INFEASIBLE
        );
        assert_eq!(
            mdl_cost(&InferredModel::EpsilonOnly, al.len(), &words),
            INFEASIBLE
        );
        let b = al.intern("b");
        let model = InferredModel::Regex(Regex::Symbol(b));
        assert_eq!(mdl_cost(&model, al.len(), &words), INFEASIBLE);
    }
}
