//! Inference results.
//!
//! The paper's regular expressions have no ε or ∅ (§3), so the degenerate
//! languages ∅ and {ε} — which arise from empty samples and from elements
//! that are always empty — cannot be returned as a `Regex`. DTDs express
//! them as missing declarations and `EMPTY` content; [`InferredModel`] keeps
//! the three cases apart.

use dtdinfer_regex::alphabet::{Alphabet, Word};
use dtdinfer_regex::ast::Regex;
use dtdinfer_regex::display;

/// The result of inferring a content model from a (possibly empty) sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferredModel {
    /// No sample words at all: nothing is known (∅).
    Empty,
    /// Every sample word was empty: the element has `EMPTY` content.
    EpsilonOnly,
    /// A proper regular expression. If some sample words were empty the
    /// expression is nullable.
    Regex(Regex),
}

impl InferredModel {
    /// The contained expression, if any.
    pub fn as_regex(&self) -> Option<&Regex> {
        match self {
            InferredModel::Regex(r) => Some(r),
            _ => None,
        }
    }

    /// Consumes the model, yielding the expression if any.
    pub fn into_regex(self) -> Option<Regex> {
        match self {
            InferredModel::Regex(r) => Some(r),
            _ => None,
        }
    }

    /// Whether the model accepts `w`.
    pub fn matches(&self, w: &Word) -> bool {
        match self {
            InferredModel::Empty => false,
            InferredModel::EpsilonOnly => w.is_empty(),
            InferredModel::Regex(r) => dtdinfer_automata::nfa::regex_matches(r, w),
        }
    }

    /// Paper-style rendering (`EMPTY` for the ε-only model).
    pub fn render(&self, alphabet: &Alphabet) -> String {
        match self {
            InferredModel::Empty => "<empty language>".to_owned(),
            InferredModel::EpsilonOnly => "EMPTY".to_owned(),
            InferredModel::Regex(r) => display::render(r, alphabet),
        }
    }

    /// Maps the contained regex, preserving degenerate cases.
    pub fn map(self, f: impl FnOnce(Regex) -> Regex) -> InferredModel {
        match self {
            InferredModel::Regex(r) => InferredModel::Regex(f(r)),
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtdinfer_regex::alphabet::Alphabet;
    use dtdinfer_regex::parser::parse;

    #[test]
    fn degenerate_matching() {
        let mut al = Alphabet::new();
        let a = al.intern("a");
        assert!(!InferredModel::Empty.matches(&vec![]));
        assert!(InferredModel::EpsilonOnly.matches(&vec![]));
        assert!(!InferredModel::EpsilonOnly.matches(&vec![a]));
    }

    #[test]
    fn regex_matching_and_render() {
        let mut al = Alphabet::new();
        let r = parse("a b?", &mut al).unwrap();
        let m = InferredModel::Regex(r);
        assert!(m.matches(&al.word_from_chars("a")));
        assert!(m.matches(&al.word_from_chars("ab")));
        assert!(!m.matches(&al.word_from_chars("b")));
        assert_eq!(m.render(&al), "a b?");
        assert_eq!(InferredModel::EpsilonOnly.render(&al), "EMPTY");
    }

    #[test]
    fn map_preserves_degenerates() {
        let mapped = InferredModel::Empty.map(|r| r);
        assert_eq!(mapped, InferredModel::Empty);
    }
}
