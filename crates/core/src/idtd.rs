//! The iDTD algorithm (§6, Algorithm 2, Theorem 2).
//!
//! `rewrite` only succeeds when the input SOA has an equivalent SORE; with
//! incomplete data 2T-INF produces sub-automata (missing edges) for which it
//! gets stuck. iDTD alternates `rewrite` with *repair rules* that add a
//! minimal set of edges — growing the language — until rewriting completes,
//! so the result is always a SORE with `L(A) ⊆ L(r)`.
//!
//! Two repair rules, each parameterized by a fuzziness bound `k`:
//!
//! * **enable-disjunction** — near-miss candidates for the disjunction rule
//!   (predecessor/successor sets differing in at most `k` elements, or
//!   mutually connected states) get the missing edges added so their sets
//!   become equal.
//! * **enable-optional** — a state with at least one bypass edge (or a
//!   single predecessor with few other successors) gets all bypass edges
//!   added, enabling the optional rule.
//!
//! Following the paper's implementation notes, enable-disjunction(a) is
//! tried for pairs only, rules are tried in the order 1 then 2, and `k`
//! grows when no rule applies. Unlike the fixed-`k` variant in the paper
//! (which can fail), the default configuration is unrestricted and
//! guarantees success via a final merge-everything fallback.

use crate::model::InferredModel;
use crate::rewrite::{rewrite_exhaust_traced, Step};
use dtdinfer_automata::gfa::{Gfa, NodeId, SINK, SOURCE};
use dtdinfer_automata::soa::Soa;
use dtdinfer_regex::alphabet::Word;
use dtdinfer_regex::ast::Regex;
use dtdinfer_regex::normalize::{normalize, simplify, star_form};
use std::collections::BTreeSet;

/// Tuning parameters for iDTD.
#[derive(Debug, Clone, Copy)]
pub struct IdtdConfig {
    /// Initial fuzziness; Algorithm 2 starts at 1 and grows it on demand.
    pub initial_k: usize,
    /// Upper bound on `k`. When exceeded the merge-everything fallback
    /// fires (`None` = grow until the fallback threshold of 2·nodes).
    pub max_k: Option<usize>,
}

impl Default for IdtdConfig {
    fn default() -> Self {
        Self {
            initial_k: 1,
            max_k: None,
        }
    }
}

impl IdtdConfig {
    /// The configuration of the paper's own implementation (§6): `k` fixed
    /// at 2, repairs for pairs only. Where this configuration gets stuck
    /// the paper's system fails; ours falls back to the coarse
    /// merge-everything superset (still a valid Theorem 2 answer, but one
    /// the generalization experiment counts as a miss).
    pub fn paper_faithful() -> Self {
        Self {
            initial_k: 2,
            max_k: Some(2),
        }
    }
}

/// One event of an iDTD derivation (for explanation traces).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A rewrite rule fired.
    Rewrite(Step),
    /// A repair rule added edges to the automaton.
    Repair {
        /// Which repair fired.
        kind: RepairKind,
        /// The fuzziness parameter in force.
        k: usize,
        /// Number of edges the repair added.
        edges_added: usize,
    },
    /// The last-resort merge-everything fallback fired.
    Fallback,
}

/// The two repair rules of §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairKind {
    /// enable-disjunction.
    EnableDisjunction,
    /// enable-optional.
    EnableOptional,
}

impl RepairKind {
    /// The paper's name for the rule.
    pub fn name(self) -> &'static str {
        match self {
            RepairKind::EnableDisjunction => "enable-disjunction",
            RepairKind::EnableOptional => "enable-optional",
        }
    }
}

/// Runs iDTD on an SOA: always yields a SORE `r` with `L(A) ⊆ L(r)`
/// (Theorem 2), or a degenerate [`InferredModel`] for the ∅ / {ε}
/// languages.
pub fn idtd(soa: &Soa) -> InferredModel {
    idtd_with(soa, IdtdConfig::default())
}

/// Like [`idtd_with`], additionally returning the full derivation (rewrite
/// steps and repairs) — the machine-readable form of Figure 3 and the §6
/// repair example.
pub fn idtd_traced(soa: &Soa, cfg: IdtdConfig) -> (InferredModel, Vec<Event>) {
    let mut trace = Vec::new();
    let model = idtd_core(soa, cfg, &mut trace);
    (model, trace)
}

/// Example (the §6 walkthrough: the Figure 2 sample still yields the
/// intended SORE thanks to the repair rules):
///
/// ```
/// use dtdinfer_regex::alphabet::Alphabet;
/// use dtdinfer_regex::display::render;
///
/// let mut al = Alphabet::new();
/// let words: Vec<_> = ["bacacdacde", "cbacdbacde"]
///     .iter()
///     .map(|w| al.word_from_chars(w))
///     .collect();
/// let sore = dtdinfer_core::idtd::idtd_from_words(&words)
///     .into_regex()
///     .unwrap();
/// assert_eq!(render(&sore, &al), "((b? (a | c))+ d)+ e");
/// ```
/// Runs 2T-INF then iDTD on raw example words.
pub fn idtd_from_words<'a, I>(words: I) -> InferredModel
where
    I: IntoIterator<Item = &'a Word>,
{
    idtd(&Soa::learn(words))
}

/// iDTD with explicit configuration.
pub fn idtd_with(soa: &Soa, cfg: IdtdConfig) -> InferredModel {
    let mut trace = Vec::new();
    idtd_core(soa, cfg, &mut trace)
}

fn idtd_core(soa: &Soa, cfg: IdtdConfig, trace: &mut Vec<Event>) -> InferredModel {
    let _span = dtdinfer_obs::span("core.idtd");
    let before = trace.len();
    let model = idtd_core_inner(soa, cfg, trace);
    if dtdinfer_obs::is_enabled() {
        record_derivation(soa, &trace[before..]);
    }
    model
}

/// Telemetry for one completed derivation: rewrite-rule applications by
/// rule name, repair invocations by kind, fallback firings, and input
/// automaton size. Only called when recording is on.
fn record_derivation(soa: &Soa, events: &[Event]) {
    // Pre-register the fixed derivation counters at zero so the emitted
    // JSON has a stable key set whether or not each rule fired.
    for rule in [
        crate::rewrite::Rule::Disjunction,
        crate::rewrite::Rule::Concatenation,
        crate::rewrite::Rule::SelfLoop,
        crate::rewrite::Rule::Optional,
    ] {
        dtdinfer_obs::count_labeled("core.rewrite.rule", rule.name(), 0);
    }
    for kind in [RepairKind::EnableDisjunction, RepairKind::EnableOptional] {
        dtdinfer_obs::count_labeled("core.idtd.repair", kind.name(), 0);
    }
    dtdinfer_obs::count("core.idtd.fallback", 0);
    dtdinfer_obs::count("core.idtd.runs", 1);
    dtdinfer_obs::observe("core.idtd.soa_states", soa.num_states() as u64);
    dtdinfer_obs::observe("core.idtd.soa_edges", soa.num_edges() as u64);
    for e in events {
        match e {
            Event::Rewrite(step) => {
                dtdinfer_obs::count_labeled("core.rewrite.rule", step.rule.name(), 1);
            }
            Event::Repair {
                kind,
                k,
                edges_added,
            } => {
                dtdinfer_obs::count_labeled("core.idtd.repair", kind.name(), 1);
                dtdinfer_obs::count("core.idtd.repair.edges_added", *edges_added as u64);
                dtdinfer_obs::event(
                    "core.idtd.repair",
                    &[
                        ("kind", kind.name().to_owned()),
                        ("k", k.to_string()),
                        ("edges_added", edges_added.to_string()),
                    ],
                );
            }
            Event::Fallback => {
                dtdinfer_obs::count("core.idtd.fallback", 1);
                dtdinfer_obs::event("core.idtd.fallback", &[]);
            }
        }
    }
}

fn idtd_core_inner(soa: &Soa, cfg: IdtdConfig, trace: &mut Vec<Event>) -> InferredModel {
    if soa.states.is_empty() {
        return if soa.accepts_empty {
            InferredModel::EpsilonOnly
        } else {
            InferredModel::Empty
        };
    }
    let (mut g, _) = Gfa::from_soa(soa);
    let mut k = cfg.initial_k;
    loop {
        let mut steps = Vec::new();
        rewrite_exhaust_traced(&mut g, &mut steps);
        trace.extend(steps.into_iter().map(Event::Rewrite));
        if g.is_final() {
            let r = g.final_regex().expect("final").clone();
            return InferredModel::Regex(simplify(&star_form(&r)));
        }
        if let Some((kind, edges_added)) = apply_repair(&mut g, k) {
            trace.push(Event::Repair {
                kind,
                k,
                edges_added,
            });
            continue;
        }
        // No repair at this k: grow the fuzziness (Algorithm 2, line 5).
        let limit = cfg.max_k.unwrap_or(2 * g.num_inner() + 4);
        if k < limit {
            k += 1;
        } else {
            // Unrestricted fallback: merge all remaining states into one
            // repeated disjunction — always a SORE superset.
            trace.push(Event::Fallback);
            merge_everything(&mut g);
        }
    }
}

/// Tries the repair rules in the paper's order: enable-disjunction first,
/// enable-optional only when the former cannot be applied. Returns the
/// repair that fired and how many edges it added (repairs that would add
/// nothing are skipped — the corresponding rewrite rule would already have
/// fired).
fn apply_repair(g: &mut Gfa, k: usize) -> Option<(RepairKind, usize)> {
    if let Some(n) = enable_disjunction(g, k) {
        return Some((RepairKind::EnableDisjunction, n));
    }
    enable_optional(g, k).map(|n| (RepairKind::EnableOptional, n))
}

/// **enable-disjunction** (pairs only, as in the paper's implementation).
///
/// Preconditions for `W = {r1, r2}`:
/// (a) predecessor sets overlap and differ by at most `k` on each side, and
///     likewise for successor sets; or
/// (b) the states are mutually connected (`r1 → r2` and `r2 → r1` in `G`).
///
/// Action: add the minimal edge set making `Pred(r1) = Pred(r2)` and
/// `Succ(r1) = Succ(r2)`.
fn enable_disjunction(g: &mut Gfa, k: usize) -> Option<usize> {
    let closure = g.closure();
    let nodes: Vec<NodeId> = g.inner_nodes().collect();
    let mut best: Option<(usize, NodeId, NodeId)> = None;
    for (i, &r1) in nodes.iter().enumerate() {
        for &r2 in &nodes[i + 1..] {
            let p1 = closure.pred(r1);
            let p2 = closure.pred(r2);
            let s1 = closure.succ(r1);
            let s2 = closure.succ(r2);
            let pd1: Vec<_> = p1.difference(p2).collect();
            let pd2: Vec<_> = p2.difference(p1).collect();
            let sd1: Vec<_> = s1.difference(s2).collect();
            let sd2: Vec<_> = s2.difference(s1).collect();
            let missing = pd1.len() + pd2.len() + sd1.len() + sd2.len();
            if missing == 0 {
                continue; // rewrite's disjunction rule handles this itself
            }
            let cond_a = !p1.is_disjoint(p2)
                && !s1.is_disjoint(s2)
                && pd1.len() <= k
                && pd2.len() <= k
                && sd1.len() <= k
                && sd2.len() <= k;
            let cond_b = g.has_edge(r1, r2) && g.has_edge(r2, r1);
            if cond_a || cond_b {
                // Prefer the pair needing the fewest added edges: iDTD aims
                // for the smallest possible superset.
                if best.is_none_or(|(m, _, _)| missing < m) {
                    best = Some((missing, r1, r2));
                }
            }
        }
    }
    let (_, r1, r2) = best?;
    let closure = g.closure();
    let pred_union: BTreeSet<NodeId> = closure.pred(r1).union(closure.pred(r2)).copied().collect();
    let succ_union: BTreeSet<NodeId> = closure.succ(r1).union(closure.succ(r2)).copied().collect();
    let mut added = 0usize;
    for &r in &[r1, r2] {
        for &p in &pred_union {
            if !closure.pred(r).contains(&p) && p != SINK {
                g.add_edge(p, r);
                added += 1;
            }
        }
        for &s in &succ_union {
            if !closure.succ(r).contains(&s) && s != SOURCE {
                g.add_edge(r, s);
                added += 1;
            }
        }
    }
    (added > 0).then_some(added)
}

/// **enable-optional**.
///
/// Preconditions for state `r`:
/// (a) at least one bypass edge from a predecessor of `r` to a successor of
///     `r` already exists; or
/// (b) `Pred(r) = {r'}` and `r'` has at most `k` successors besides `r` and
///     itself.
///
/// Action: add all missing edges from `Pred(r)` to `Succ(r)` (the optional
/// rule then fires on `r` and removes them again, leaving `r?`).
fn enable_optional(g: &mut Gfa, k: usize) -> Option<usize> {
    let closure = g.closure();
    let mut best: Option<(usize, NodeId)> = None;
    for r in g.inner_nodes() {
        if g.label(r).nullable() {
            continue; // already optional; repairing it gains nothing
        }
        let preds: Vec<NodeId> = closure
            .pred(r)
            .iter()
            .copied()
            .filter(|&p| p != r)
            .collect();
        let succs: Vec<NodeId> = closure
            .succ(r)
            .iter()
            .copied()
            .filter(|&s| s != r)
            .collect();
        if preds.is_empty() || succs.is_empty() {
            continue;
        }
        let mut missing = 0usize;
        let mut existing = 0usize;
        for &p in &preds {
            for &s in &succs {
                if closure.succ(p).contains(&s) {
                    existing += 1;
                } else {
                    missing += 1;
                }
            }
        }
        if missing == 0 {
            continue; // optional rule applies without repair
        }
        let cond_a = existing > 0;
        let cond_b = preds.len() == 1 && {
            let p = preds[0];
            closure
                .succ(p)
                .iter()
                .filter(|&&s| s != r && s != p)
                .count()
                <= k
        };
        if (cond_a || cond_b) && best.is_none_or(|(m, _)| missing < m) {
            best = Some((missing, r));
        }
    }
    let (_, r) = best?;
    let closure = g.closure();
    let preds: Vec<NodeId> = closure
        .pred(r)
        .iter()
        .copied()
        .filter(|&p| p != r)
        .collect();
    let succs: Vec<NodeId> = closure
        .succ(r)
        .iter()
        .copied()
        .filter(|&s| s != r)
        .collect();
    let mut added = 0usize;
    for &p in &preds {
        for &s in &succs {
            if !g.has_edge(p, s) && p != SINK && s != SOURCE {
                g.add_edge(p, s);
                added += 1;
            }
        }
    }
    (added > 0).then_some(added)
}

/// Last-resort repair guaranteeing success: merge all remaining inner
/// states into `(r1 + … + rn)` with a self-edge — the coarsest SORE
/// superset of the remaining language.
fn merge_everything(g: &mut Gfa) {
    let nodes: Vec<NodeId> = g.inner_nodes().collect();
    if nodes.len() <= 1 {
        // One stubborn node: force every edge shape optional/self-loop can
        // consume by wiring source→node→sink directly.
        if let Some(&n) = nodes.first() {
            g.add_edge(SOURCE, n);
            g.add_edge(n, SINK);
        }
        return;
    }
    let accepts_empty = g.has_edge(SOURCE, SINK);
    let label = normalize(&Regex::union(
        nodes.iter().map(|&n| g.label(n).clone()).collect(),
    ));
    for &n in &nodes {
        g.remove_node(n);
    }
    let merged = g.add_node(label);
    g.add_edge(SOURCE, merged);
    g.add_edge(merged, merged);
    g.add_edge(merged, SINK);
    if accepts_empty {
        g.add_edge(SOURCE, SINK);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtdinfer_automata::dfa::{soa_minus_regex_witness, soa_subset_of_regex};
    use dtdinfer_regex::alphabet::Alphabet;
    use dtdinfer_regex::classify::is_sore;
    use dtdinfer_regex::display::render;
    use dtdinfer_regex::normalize::equiv_commutative;
    use dtdinfer_regex::parser::parse;

    fn learned(words: &[&str]) -> (Soa, Alphabet) {
        let mut al = Alphabet::new();
        let ws: Vec<_> = words.iter().map(|w| al.word_from_chars(w)).collect();
        (Soa::learn(&ws), al)
    }

    /// §6's worked example: iDTD started on the Figure 2 automaton still
    /// derives the intended SORE ((b?(a|c))+d)+e.
    #[test]
    fn figure2_repaired_to_intended_sore() {
        let (soa, mut al) = learned(&["bacacdacde", "cbacdbacde"]);
        let r = idtd(&soa).into_regex().expect("regex");
        let target = parse("((b? (a|c))+ d)+ e", &mut al).unwrap();
        assert!(equiv_commutative(&r, &target), "got {}", render(&r, &al));
    }

    /// On representative samples iDTD coincides with rewrite.
    #[test]
    fn representative_sample_needs_no_repair() {
        let (soa, mut al) = learned(&["bacacdacde", "cbacdbacde", "abccaadcde"]);
        let r = idtd(&soa).into_regex().unwrap();
        let target = parse("((b? (a|c))+ d)+ e", &mut al).unwrap();
        assert!(equiv_commutative(&r, &target));
    }

    /// Theorem 2: L(A) ⊆ L(iDTD(A)) on a pile of partial samples.
    #[test]
    fn theorem2_superset_battery() {
        let samples: &[&[&str]] = &[
            &["ab", "ba"],
            &["abc", "cab"],
            &["ab", "cd"],
            &["aab", "abb", "b"],
            &["abcd", "acbd", "abd"],
            &["xy", "yx", "xyx"],
            &["abcde", "edcba"],
            &["aa", "bb", "ab"],
            &["abc"],
            &["a", "ab", "abb", "ba"],
        ];
        for words in samples {
            let (soa, al) = learned(words);
            let model = idtd(&soa);
            let r = model.as_regex().unwrap_or_else(|| panic!("{words:?}"));
            assert!(is_sore(r), "{words:?} gave non-SORE {}", render(r, &al));
            if let Some(w) = soa_minus_regex_witness(&soa, r) {
                panic!(
                    "{words:?}: witness {:?} in L(A) \\ L({})",
                    al.render_word(&w, ""),
                    render(r, &al)
                );
            }
        }
    }

    /// Degenerate inputs.
    #[test]
    fn degenerate_models() {
        let soa = Soa::new();
        assert_eq!(idtd(&soa), InferredModel::Empty);
        let mut soa = Soa::new();
        soa.accepts_empty = true;
        assert_eq!(idtd(&soa), InferredModel::EpsilonOnly);
    }

    #[test]
    fn idtd_from_words_api() {
        let mut al = Alphabet::new();
        let words = vec![al.word_from_chars("ab"), al.word_from_chars("b")];
        let r = idtd_from_words(&words).into_regex().unwrap();
        assert_eq!(render(&r, &al), "a? b");
    }

    /// The fallback fires even on adversarial automata and yields a SORE.
    #[test]
    fn fallback_always_succeeds() {
        // A dense "random" automaton unlikely to be SORE-equivalent.
        let (soa, al) = learned(&["abcd", "dcba", "bdac", "cadb", "acbd", "dbca"]);
        let model = idtd(&soa);
        let r = model.as_regex().expect("always succeeds");
        assert!(is_sore(r));
        assert!(soa_subset_of_regex(&soa, r), "fallback must be a superset");
        let _ = al;
    }

    /// With a restrictive max_k the fallback produces the coarse superset.
    #[test]
    fn restricted_k_uses_fallback() {
        let (soa, _) = learned(&["abcd", "dcba", "bdac", "cadb"]);
        let model = idtd_with(
            &soa,
            IdtdConfig {
                initial_k: 1,
                max_k: Some(1),
            },
        );
        let r = model.as_regex().unwrap();
        assert!(is_sore(r));
        assert!(soa_subset_of_regex(&soa, r));
    }

    /// Derivation traces: Figure 3 needs no repairs; Figure 2 needs the
    /// enable-disjunction repair the paper walks through in §6.
    #[test]
    fn derivation_traces() {
        let (full, _) = learned(&["bacacdacde", "cbacdbacde", "abccaadcde"]);
        let (model, trace) = idtd_traced(&full, IdtdConfig::default());
        assert!(model.as_regex().is_some());
        assert!(
            trace.iter().all(|e| matches!(e, Event::Rewrite(_))),
            "representative sample repaired: {trace:?}"
        );
        let rules: Vec<_> = trace
            .iter()
            .filter_map(|e| match e {
                Event::Rewrite(s) => Some(s.rule),
                _ => None,
            })
            .collect();
        assert!(rules.contains(&crate::rewrite::Rule::Disjunction));
        assert!(rules.contains(&crate::rewrite::Rule::Optional));
        assert!(rules.contains(&crate::rewrite::Rule::SelfLoop));
        assert!(rules.contains(&crate::rewrite::Rule::Concatenation));

        let (partial, _) = learned(&["bacacdacde", "cbacdbacde"]);
        let (_, trace) = idtd_traced(&partial, IdtdConfig::default());
        assert!(
            trace.iter().any(|e| matches!(
                e,
                Event::Repair {
                    kind: RepairKind::EnableDisjunction,
                    ..
                }
            )),
            "Figure 2 needs enable-disjunction: {trace:?}"
        );
    }

    /// iDTD generalizes (a1+…+an)* from ~n·(n−1) of the n² pairs (the §7
    /// comparison against CRX's O(n) requirement).
    #[test]
    fn repeated_disjunction_with_missing_pairs() {
        let mut al = Alphabet::new();
        let syms: Vec<String> = ["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect();
        // All ordered pairs except (d, a) and a few; still enough for repair.
        let mut words = Vec::new();
        for x in &syms {
            for y in &syms {
                if (x.as_str(), y.as_str()) != ("d", "a") {
                    words.push(al.word_from_chars(&format!("{x}{y}")));
                }
            }
        }
        let soa = Soa::learn(&words);
        let r = idtd(&soa).into_regex().unwrap();
        let target = parse("(a | b | c | d)+", &mut al).unwrap();
        assert!(equiv_commutative(&r, &target), "got {}", render(&r, &al));
    }
}
