//! Noise handling (§9).
//!
//! Real-world XML is noisy: in the paper's XHTML study, paragraph elements
//! containing >30000 occurrences matched a 41-symbol repeated disjunction
//! except for about a dozen disallowed intruders appearing in ~10 strings.
//! Two countermeasures are described:
//!
//! * the **support threshold**: count the support of every element name and
//!   drop names below a threshold before inference;
//! * the **edge-support refinement** for iDTD: annotate every SOA edge with
//!   how many sample words used it; when `rewrite` gets stuck, first try
//!   *removing* low-support edges to advance before resorting to repair
//!   rules (which grow the language).

use crate::idtd::{idtd_with, IdtdConfig};
use crate::model::InferredModel;
use crate::rewrite::rewrite_exhaust;
use dtdinfer_automata::gfa::Gfa;
use dtdinfer_automata::soa::Soa;
use dtdinfer_regex::alphabet::{Sym, Word};
use dtdinfer_regex::normalize::{simplify, star_form};
use std::collections::HashMap;

/// Kinds of SOA edges, for support accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EdgeKind {
    /// source → a (a word started with `a`).
    Initial(Sym),
    /// a → b (the 2-gram `ab` occurred).
    Pair(Sym, Sym),
    /// a → sink (a word ended with `a`).
    Final(Sym),
    /// source → sink (an empty word occurred).
    Epsilon,
}

/// An SOA annotated with per-edge and per-symbol supports.
#[derive(Debug, Clone, Default)]
pub struct SupportSoa {
    soa: Soa,
    edge_support: HashMap<EdgeKind, u64>,
    sym_support: HashMap<Sym, u64>,
    num_words: u64,
}

impl SupportSoa {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Learns from a batch of words.
    pub fn learn<'a, I: IntoIterator<Item = &'a Word>>(words: I) -> Self {
        let mut s = Self::new();
        for w in words {
            s.absorb(w);
        }
        s
    }

    /// Learns from a counted multiset of `(word, count)` entries: equal to
    /// absorbing each word `count` times, at the cost of one pass per
    /// *distinct* word.
    pub fn learn_counted<'a, I: IntoIterator<Item = (&'a Word, u32)>>(words: I) -> Self {
        let mut s = Self::new();
        for (w, n) in words {
            s.absorb_counted(w, n);
        }
        s
    }

    /// Folds in one word, incrementing supports.
    pub fn absorb(&mut self, w: &Word) {
        self.absorb_counted(w, 1);
    }

    /// Folds in `n` occurrences of one word. The SOA part is a set union
    /// (count-invariant), so the word is walked once and every support
    /// counter advances by `n` — identical to `n` calls of
    /// [`SupportSoa::absorb`].
    pub fn absorb_counted(&mut self, w: &Word, n: u32) {
        if n == 0 {
            return;
        }
        let n = u64::from(n);
        self.num_words += n;
        self.soa.absorb(w);
        match w.split_first() {
            None => {
                *self.edge_support.entry(EdgeKind::Epsilon).or_insert(0) += n;
            }
            Some((&first, _)) => {
                *self
                    .edge_support
                    .entry(EdgeKind::Initial(first))
                    .or_insert(0) += n;
                *self
                    .edge_support
                    .entry(EdgeKind::Final(*w.last().expect("non-empty")))
                    .or_insert(0) += n;
                for pair in w.windows(2) {
                    *self
                        .edge_support
                        .entry(EdgeKind::Pair(pair[0], pair[1]))
                        .or_insert(0) += n;
                }
                for &s in w {
                    *self.sym_support.entry(s).or_insert(0) += n;
                }
            }
        }
    }

    /// The underlying automaton.
    pub fn soa(&self) -> &Soa {
        &self.soa
    }

    /// Number of absorbed words.
    pub fn num_words(&self) -> u64 {
        self.num_words
    }

    /// Support of one edge (0 if never seen).
    pub fn support(&self, edge: EdgeKind) -> u64 {
        self.edge_support.get(&edge).copied().unwrap_or(0)
    }

    /// Support of a symbol: total number of occurrences in the corpus.
    pub fn symbol_support(&self, s: Sym) -> u64 {
        self.sym_support.get(&s).copied().unwrap_or(0)
    }

    /// All symbol supports in symbol order (total occurrences per element
    /// name across the absorbed words).
    pub fn symbol_supports(&self) -> std::collections::BTreeMap<Sym, u64> {
        self.sym_support.iter().map(|(&s, &c)| (s, c)).collect()
    }

    /// Merges another support-annotated automaton in: SOA union plus
    /// pointwise addition of every support counter. Equal to absorbing both
    /// word multisets into one state, in any order.
    pub fn merge(&mut self, other: &SupportSoa) {
        self.soa.merge(other.soa());
        for (&edge, &count) in &other.edge_support {
            *self.edge_support.entry(edge).or_insert(0) += count;
        }
        for (&s, &count) in &other.sym_support {
            *self.sym_support.entry(s).or_insert(0) += count;
        }
        self.num_words += other.num_words;
    }

    /// Rebuilds the state under a symbol translation (for merging states
    /// built over different alphabets). `f` must be injective.
    pub fn remap(&self, mut f: impl FnMut(Sym) -> Sym) -> SupportSoa {
        SupportSoa {
            soa: self.soa.remap(&mut f),
            edge_support: self
                .edge_support
                .iter()
                .map(|(&edge, &count)| {
                    let edge = match edge {
                        EdgeKind::Initial(s) => EdgeKind::Initial(f(s)),
                        EdgeKind::Pair(a, b) => EdgeKind::Pair(f(a), f(b)),
                        EdgeKind::Final(s) => EdgeKind::Final(f(s)),
                        EdgeKind::Epsilon => EdgeKind::Epsilon,
                    };
                    (edge, count)
                })
                .collect(),
            sym_support: self.sym_support.iter().map(|(&s, &c)| (f(s), c)).collect(),
            num_words: self.num_words,
        }
    }

    /// Serializes the state to a line-oriented text format (the iDTD-side
    /// counterpart of `CrxState::to_text` for engine snapshots).
    ///
    /// Records: `words N`, `sym NAME COUNT`, `initial NAME COUNT`,
    /// `final NAME COUNT`, `pair NAME NAME COUNT`, `empty COUNT`. The
    /// support records fully determine the embedded SOA.
    pub fn to_text(&self, alphabet: &dtdinfer_regex::alphabet::Alphabet) -> String {
        let mut out = String::from("#dtdinfer-support-soa v1\n");
        out.push_str(&format!("words {}\n", self.num_words));
        for (s, count) in self.symbol_supports() {
            out.push_str(&format!("sym {} {count}\n", alphabet.name(s)));
        }
        // Edge records in a stable order: initial, final, pair, epsilon.
        let mut edges: Vec<(EdgeKind, u64)> =
            self.edge_support.iter().map(|(&e, &c)| (e, c)).collect();
        edges.sort_unstable();
        for (edge, count) in edges {
            match edge {
                EdgeKind::Initial(s) => {
                    out.push_str(&format!("initial {} {count}\n", alphabet.name(s)));
                }
                EdgeKind::Final(s) => {
                    out.push_str(&format!("final {} {count}\n", alphabet.name(s)));
                }
                EdgeKind::Pair(a, b) => {
                    out.push_str(&format!(
                        "pair {} {} {count}\n",
                        alphabet.name(a),
                        alphabet.name(b)
                    ));
                }
                EdgeKind::Epsilon => out.push_str(&format!("empty {count}\n")),
            }
        }
        out
    }

    /// Parses the [`SupportSoa::to_text`] format, interning names into
    /// `alphabet`.
    pub fn from_text(
        text: &str,
        alphabet: &mut dtdinfer_regex::alphabet::Alphabet,
    ) -> Result<Self, String> {
        let mut state = SupportSoa::new();
        for (lineno, line) in text.lines().enumerate() {
            let err = |m: &str| format!("line {}: {m}", lineno + 1);
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let kind = parts.next().expect("non-empty line");
            let mut name = |parts: &mut std::str::SplitWhitespace<'_>| {
                parts
                    .next()
                    .map(|n| alphabet.intern(n))
                    .ok_or_else(|| err("missing name"))
            };
            let count = |parts: &mut std::str::SplitWhitespace<'_>| {
                parts
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .ok_or_else(|| err("bad count"))
            };
            match kind {
                "words" => state.num_words = count(&mut parts)?,
                "sym" => {
                    let s = name(&mut parts)?;
                    let c = count(&mut parts)?;
                    state.sym_support.insert(s, c);
                    state.soa.states.insert(s);
                }
                "initial" => {
                    let s = name(&mut parts)?;
                    let c = count(&mut parts)?;
                    state.edge_support.insert(EdgeKind::Initial(s), c);
                    state.soa.initial.insert(s);
                    state.soa.states.insert(s);
                }
                "final" => {
                    let s = name(&mut parts)?;
                    let c = count(&mut parts)?;
                    state.edge_support.insert(EdgeKind::Final(s), c);
                    state.soa.finals.insert(s);
                    state.soa.states.insert(s);
                }
                "pair" => {
                    let a = name(&mut parts)?;
                    let b = name(&mut parts)?;
                    let c = count(&mut parts)?;
                    state.edge_support.insert(EdgeKind::Pair(a, b), c);
                    state.soa.edges.insert((a, b));
                    state.soa.states.insert(a);
                    state.soa.states.insert(b);
                }
                "empty" => {
                    let c = count(&mut parts)?;
                    state.edge_support.insert(EdgeKind::Epsilon, c);
                    state.soa.accepts_empty = true;
                }
                other => return Err(err(&format!("unknown record {other:?}"))),
            }
        }
        Ok(state)
    }

    /// The simple countermeasure: an SOA with every symbol of support
    /// < `threshold` dropped (with its incident edges) and every surviving
    /// edge of support < `threshold` dropped.
    pub fn pruned(&self, threshold: u64) -> Soa {
        let keep = |s: &Sym| self.symbol_support(*s) >= threshold;
        let mut soa = Soa::new();
        soa.states = self.soa.states.iter().copied().filter(keep).collect();
        soa.initial = self
            .soa
            .initial
            .iter()
            .copied()
            .filter(|s| keep(s) && self.support(EdgeKind::Initial(*s)) >= threshold)
            .collect();
        soa.finals = self
            .soa
            .finals
            .iter()
            .copied()
            .filter(|s| keep(s) && self.support(EdgeKind::Final(*s)) >= threshold)
            .collect();
        soa.edges = self
            .soa
            .edges
            .iter()
            .copied()
            .filter(|&(a, b)| {
                keep(&a) && keep(&b) && self.support(EdgeKind::Pair(a, b)) >= threshold
            })
            .collect();
        soa.accepts_empty = self.soa.accepts_empty && self.support(EdgeKind::Epsilon) >= threshold;
        soa
    }

    /// iDTD over the pruned automaton (the simple §9 treatment).
    pub fn infer_pruned(&self, threshold: u64) -> InferredModel {
        idtd_with(&self.pruned(threshold), IdtdConfig::default())
    }

    /// A symbol-only prune: drops element names whose total support is
    /// below `threshold` (with their incident edges) but keeps every edge
    /// between surviving symbols. The "obvious way in dealing with noise"
    /// of §9.
    pub fn pruned_symbols(&self, threshold: u64) -> Soa {
        let keep = |s: &Sym| self.symbol_support(*s) >= threshold;
        let mut soa = self.soa.clone();
        soa.states.retain(keep);
        soa.initial.retain(keep);
        soa.finals.retain(keep);
        soa.edges.retain(|&(a, b)| keep(&a) && keep(&b));
        soa
    }

    /// Production entry point combining both §9 treatments: low-support
    /// *symbols* are dropped outright, then rewriting proceeds with the
    /// edge-aware rescue of [`SupportSoa::infer_noise_aware`].
    pub fn infer_denoised(&self, threshold: u64) -> InferredModel {
        self.infer_from(self.pruned_symbols(threshold), threshold)
    }

    /// The refined §9 treatment: run `rewrite`; each time it gets stuck,
    /// try deleting the lowest-support edge below `threshold` (checking
    /// whether that advances rewriting) before falling back to iDTD's
    /// repair rules on whatever remains.
    pub fn infer_noise_aware(&self, threshold: u64) -> InferredModel {
        self.infer_from(self.soa.clone(), threshold)
    }

    fn infer_from(&self, soa: Soa, threshold: u64) -> InferredModel {
        if soa.states.is_empty() {
            return if soa.accepts_empty {
                InferredModel::EpsilonOnly
            } else {
                InferredModel::Empty
            };
        }
        let mut soa = soa;
        loop {
            let (mut g, _) = Gfa::from_soa(&soa);
            rewrite_exhaust(&mut g);
            if let Some(r) = g.final_regex() {
                return InferredModel::Regex(simplify(&star_form(r)));
            }
            // Stuck: find the weakest sub-threshold edge and drop it.
            let weakest = self.weakest_edge(&soa, threshold);
            match weakest {
                Some(edge) => remove_edge(&mut soa, edge),
                // Nothing noisy left to remove: repair instead.
                None => return idtd_with(&soa, IdtdConfig::default()),
            }
        }
    }

    fn weakest_edge(&self, soa: &Soa, threshold: u64) -> Option<EdgeKind> {
        let mut candidates: Vec<(u64, EdgeKind)> = Vec::new();
        for &s in &soa.initial {
            candidates.push((self.support(EdgeKind::Initial(s)), EdgeKind::Initial(s)));
        }
        for &s in &soa.finals {
            candidates.push((self.support(EdgeKind::Final(s)), EdgeKind::Final(s)));
        }
        for &(a, b) in &soa.edges {
            candidates.push((self.support(EdgeKind::Pair(a, b)), EdgeKind::Pair(a, b)));
        }
        if soa.accepts_empty {
            candidates.push((self.support(EdgeKind::Epsilon), EdgeKind::Epsilon));
        }
        candidates
            .into_iter()
            .filter(|&(sup, _)| sup < threshold)
            .min()
            .map(|(_, e)| e)
    }
}

fn remove_edge(soa: &mut Soa, edge: EdgeKind) {
    match edge {
        EdgeKind::Initial(s) => {
            soa.initial.remove(&s);
        }
        EdgeKind::Final(s) => {
            soa.finals.remove(&s);
        }
        EdgeKind::Pair(a, b) => {
            soa.edges.remove(&(a, b));
        }
        EdgeKind::Epsilon => soa.accepts_empty = false,
    }
    // Drop states that became unreferenced so the GFA stays tidy.
    let referenced: std::collections::BTreeSet<Sym> = soa
        .initial
        .iter()
        .chain(soa.finals.iter())
        .copied()
        .chain(soa.edges.iter().flat_map(|&(a, b)| [a, b]))
        .collect();
    soa.states.retain(|s| referenced.contains(s));
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtdinfer_regex::alphabet::Alphabet;
    use dtdinfer_regex::display::render;
    use dtdinfer_regex::normalize::equiv_commutative;
    use dtdinfer_regex::parser::parse;

    /// A clean (a|b|c)* corpus plus a few words with an intruder symbol z.
    fn noisy_corpus(al: &mut Alphabet) -> Vec<Word> {
        let mut words = Vec::new();
        for _ in 0..30 {
            for w in [
                "abc", "bca", "cab", "aa", "bb", "cc", "ac", "ca", "ab", "ba", "bc", "cb", "",
            ] {
                words.push(al.word_from_chars(w));
            }
        }
        // Noise: z appears in only 2 of ~390 words.
        words.push(al.word_from_chars("azb"));
        words.push(al.word_from_chars("zc"));
        words
    }

    #[test]
    fn pruning_removes_low_support_symbols() {
        let mut al = Alphabet::new();
        let s = SupportSoa::learn(&noisy_corpus(&mut al));
        let z = al.get("z").unwrap();
        assert!(s.soa().states.contains(&z));
        let pruned = s.pruned(5);
        assert!(!pruned.states.contains(&z));
        assert!(pruned.states.contains(&al.get("a").unwrap()));
    }

    #[test]
    fn pruned_inference_recovers_clean_expression() {
        let mut al = Alphabet::new();
        let s = SupportSoa::learn(&noisy_corpus(&mut al));
        let r = s.infer_pruned(5).into_regex().unwrap();
        let target = parse("(a | b | c)*", &mut al).unwrap();
        assert!(equiv_commutative(&r, &target), "got {}", render(&r, &al));
    }

    #[test]
    fn noise_aware_idtd_drops_weak_edges_first() {
        let mut al = Alphabet::new();
        let s = SupportSoa::learn(&noisy_corpus(&mut al));
        let r = s.infer_noise_aware(5).into_regex().unwrap();
        // The intruder z must be gone from the inferred expression.
        let z = al.get("z").unwrap();
        assert!(!r.symbols().contains(&z), "got {}", render(&r, &al));
    }

    #[test]
    fn without_threshold_noise_stays() {
        let mut al = Alphabet::new();
        let s = SupportSoa::learn(&noisy_corpus(&mut al));
        // threshold 0 = keep everything: z must appear.
        let r = s.infer_noise_aware(0).into_regex().unwrap();
        let z = al.get("z").unwrap();
        assert!(r.symbols().contains(&z));
    }

    #[test]
    fn supports_counted() {
        let mut al = Alphabet::new();
        let words: Vec<Word> = vec![
            al.word_from_chars("ab"),
            al.word_from_chars("ab"),
            al.word_from_chars("b"),
            vec![],
        ];
        let s = SupportSoa::learn(&words);
        let (a, b) = (al.get("a").unwrap(), al.get("b").unwrap());
        assert_eq!(s.support(EdgeKind::Initial(a)), 2);
        assert_eq!(s.support(EdgeKind::Initial(b)), 1);
        assert_eq!(s.support(EdgeKind::Pair(a, b)), 2);
        assert_eq!(s.support(EdgeKind::Final(b)), 3);
        assert_eq!(s.support(EdgeKind::Epsilon), 1);
        assert_eq!(s.symbol_support(a), 2);
        assert_eq!(s.num_words(), 4);
    }

    #[test]
    fn degenerate_empty() {
        let s = SupportSoa::new();
        assert_eq!(s.infer_noise_aware(3), InferredModel::Empty);
    }

    #[test]
    fn merge_equals_learning_the_union() {
        let mut al = Alphabet::new();
        let words = noisy_corpus(&mut al);
        let whole = SupportSoa::learn(&words);
        for cut in [0, 1, words.len() / 2, words.len() - 1, words.len()] {
            let mut merged = SupportSoa::learn(&words[..cut]);
            merged.merge(&SupportSoa::learn(&words[cut..]));
            assert_eq!(merged.soa(), whole.soa(), "cut {cut}");
            assert_eq!(merged.num_words(), whole.num_words(), "cut {cut}");
            assert_eq!(merged.to_text(&al), whole.to_text(&al), "cut {cut}");
        }
    }

    #[test]
    fn text_round_trip_preserves_supports() {
        let mut al = Alphabet::new();
        let s = SupportSoa::learn(&noisy_corpus(&mut al));
        let text = s.to_text(&al);
        // Restore into a fresh alphabet: supports and the SOA must survive,
        // and re-serializing against the same alphabet is the identity.
        let mut al2 = Alphabet::new();
        let restored = SupportSoa::from_text(&text, &mut al2).unwrap();
        assert_eq!(restored.to_text(&al2), text);
        let (a, z) = (al2.get("a").unwrap(), al2.get("z").unwrap());
        assert_eq!(
            restored.symbol_support(a),
            s.symbol_support(al.get("a").unwrap())
        );
        assert_eq!(
            restored.symbol_support(z),
            s.symbol_support(al.get("z").unwrap())
        );
        assert_eq!(restored.num_words(), s.num_words());
        assert_eq!(
            restored.support(EdgeKind::Epsilon),
            s.support(EdgeKind::Epsilon)
        );
    }

    #[test]
    fn text_rejects_garbage() {
        let mut al = Alphabet::new();
        for bad in ["froz a 1", "sym a", "pair a 1", "words x", "empty"] {
            assert!(
                SupportSoa::from_text(bad, &mut al).is_err(),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn remap_translates_supports() {
        let mut al = Alphabet::new();
        let words: Vec<Word> = vec![al.word_from_chars("ab"), al.word_from_chars("b")];
        let s = SupportSoa::learn(&words);
        let shifted = s.remap(|Sym(i)| Sym(i + 7));
        let (a, b) = (al.get("a").unwrap(), al.get("b").unwrap());
        assert_eq!(shifted.symbol_support(Sym(a.0 + 7)), s.symbol_support(a));
        assert_eq!(
            shifted.support(EdgeKind::Pair(Sym(a.0 + 7), Sym(b.0 + 7))),
            s.support(EdgeKind::Pair(a, b))
        );
        assert_eq!(shifted.num_words(), s.num_words());
    }
}
