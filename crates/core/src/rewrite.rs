//! The `rewrite` algorithm (§5, Algorithm 1, Theorem 1).
//!
//! Transforms a single occurrence automaton into an equivalent SORE when one
//! exists, via four graph-rewrite rules on the generalized automaton:
//!
//! 1. **disjunction** — merge a set of states with identical closure
//!    predecessor and successor sets into `r1 + … + rn`;
//! 2. **concatenation** — merge a maximal chain into `r1 · … · rn`;
//! 3. **self-loop** — delete a self-edge, relabeling `r` to `r+`;
//! 4. **optional** — relabel `r` to `r?` and delete the bypass edges it
//!    makes redundant.
//!
//! The rules work on normalized expressions (no Kleene star; `r*` is
//! `(r+)?`); [`dtdinfer_regex::normalize::star_form`] is applied to the
//! final result as the paper's post-processing step.
//!
//! Termination: disjunction and concatenation decrease the node count;
//! self-loop decreases the edge count; optional either removes at least one
//! edge or turns a non-nullable label nullable (and only applies to
//! non-nullable labels), so the measure (nodes, edges + non-nullable labels)
//! decreases lexicographically with every step.

use dtdinfer_automata::gfa::{Closure, Gfa, NodeId};
use dtdinfer_automata::soa::Soa;
use dtdinfer_regex::ast::Regex;
use dtdinfer_regex::normalize::{normalize, simplify, star_form};
use std::collections::BTreeSet;

/// Which rewrite rule fired (reported by [`rewrite_step`] for tracing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// States merged into a union.
    Disjunction,
    /// States merged into a concatenation.
    Concatenation,
    /// A self-edge became `r+`.
    SelfLoop,
    /// A state became optional, bypass edges removed.
    Optional,
}

impl Rule {
    /// The rule's name as the paper prints it.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Disjunction => "disjunction",
            Rule::Concatenation => "concatenation",
            Rule::SelfLoop => "self-loop",
            Rule::Optional => "optional",
        }
    }
}

/// One applied rewrite step, for Figure 3-style derivation traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// The rule that fired.
    pub rule: Rule,
    /// Labels of the states the rule consumed.
    pub operands: Vec<Regex>,
    /// The label produced (for self-loop/optional: the relabeling).
    pub result: Regex,
}

/// Applies one rewrite rule if any applies; returns which.
///
/// Claim 2 of the paper shows the application order does not affect
/// *success* on SORE-equivalent automata, but it does affect conciseness:
/// firing self-loop before disjunction turns `(a|c)+` into `(a+|c+)+`.
/// Self-loop therefore goes last, letting disjunction absorb direct
/// self-edges into the merged node and letting optional delete self-edges
/// that are mere bypasses.
pub fn rewrite_step(g: &mut Gfa) -> Option<Step> {
    rewrite_step_with(g, RulePriority::SelfLoopLast)
}

/// Rule application priority (ablation knob; see `DESIGN.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RulePriority {
    /// Self-loop tried last (the default): direct self-edges are absorbed
    /// by disjunction merges and optional's bypass removal, keeping outputs
    /// in the concise `(a|c)+` shape.
    #[default]
    SelfLoopLast,
    /// Self-loop tried first (the naive order): correct per Claim 2, but
    /// produces `(a+|c+)+`-style outputs with superfluous operators.
    SelfLoopFirst,
}

/// [`rewrite_step`] with an explicit rule priority.
pub fn rewrite_step_with(g: &mut Gfa, priority: RulePriority) -> Option<Step> {
    if priority == RulePriority::SelfLoopFirst {
        if let Some(step) = try_self_loop(g) {
            return Some(step);
        }
    }
    if let Some(step) = try_concatenation(g) {
        return Some(step);
    }
    let closure = g.closure();
    if let Some(step) = try_disjunction(g, &closure) {
        return Some(step);
    }
    if let Some(step) = try_optional(g, &closure) {
        return Some(step);
    }
    try_self_loop(g)
}

/// Full rewriting under an explicit rule priority; the simplify/star-form
/// post-passes are *not* applied, so the raw effect of the order is
/// observable (ablation use).
pub fn rewrite_soa_with(soa: &Soa, priority: RulePriority) -> Option<Regex> {
    let (mut g, _) = Gfa::from_soa(soa);
    while rewrite_step_with(&mut g, priority).is_some() {}
    g.final_regex().map(star_form)
}

/// Runs the rewrite system to exhaustion on `g`.
pub fn rewrite_exhaust(g: &mut Gfa) {
    while rewrite_step(g).is_some() {}
}

/// Runs the rewrite system to exhaustion, collecting the derivation.
pub fn rewrite_exhaust_traced(g: &mut Gfa, trace: &mut Vec<Step>) {
    while let Some(step) = rewrite_step(g) {
        trace.push(step);
    }
}

/// Algorithm 1: rewrites a GFA into an equivalent SORE.
///
/// Returns `Err` with the irreducible GFA when the automaton has no
/// equivalent SORE (iDTD's repair rules take over from there).
pub fn rewrite(mut g: Gfa) -> Result<Regex, Gfa> {
    rewrite_exhaust(&mut g);
    match g.final_regex() {
        Some(r) => Ok(simplify(&star_form(r))),
        None => Err(g),
    }
}

/// Example (Figure 3: the Figure 1 automaton rewrites to (‡)):
///
/// ```
/// use dtdinfer_automata::soa::Soa;
/// use dtdinfer_regex::alphabet::Alphabet;
/// use dtdinfer_regex::display::render;
///
/// let mut al = Alphabet::new();
/// let words: Vec<_> = ["bacacdacde", "cbacdbacde", "abccaadcde"]
///     .iter()
///     .map(|w| al.word_from_chars(w))
///     .collect();
/// let soa = Soa::learn(&words);
/// let sore = dtdinfer_core::rewrite::rewrite_soa(&soa).unwrap();
/// assert_eq!(render(&sore, &al), "((b? (a | c))+ d)+ e");
/// ```
/// Convenience: rewrites an SOA (`fail` = `None`, matching the paper's
/// Algorithm 1 interface).
pub fn rewrite_soa(soa: &Soa) -> Option<Regex> {
    let (g, _) = Gfa::from_soa(soa);
    rewrite(g).ok()
}

/// **self-loop**: precondition `(r, r) ∈ E`; delete the edge and relabel
/// `r` to `r+`.
fn try_self_loop(g: &mut Gfa) -> Option<Step> {
    let n = g.inner_nodes().find(|&n| g.has_edge(n, n))?;
    g.remove_edge(n, n);
    let old = g.label(n).clone();
    let new_label = normalize(&Regex::Plus(Box::new(old.clone())));
    g.set_label(n, new_label.clone());
    Some(Step {
        rule: Rule::SelfLoop,
        operands: vec![old],
        result: new_label,
    })
}

/// **concatenation**: find a maximal chain `r1 → … → rn` (n ≥ 2) where
/// every node besides `r1` has exactly one incoming edge and every node
/// besides `rn` exactly one outgoing edge; merge into `r1 · … · rn`.
fn try_concatenation(g: &mut Gfa) -> Option<Step> {
    let nodes: Vec<NodeId> = g.inner_nodes().collect();
    for &start in &nodes {
        if let Some(chain) = chain_from(g, start) {
            let operands: Vec<Regex> = chain.iter().map(|&n| g.label(n).clone()).collect();
            let result = merge_chain(g, &chain);
            return Some(Step {
                rule: Rule::Concatenation,
                operands,
                result,
            });
        }
    }
    None
}

/// Whether `n` has exactly one outgoing edge, to an inner node; returns it.
fn sole_inner_succ(g: &Gfa, n: NodeId) -> Option<NodeId> {
    let succ = g.direct_succ(n);
    if succ.len() != 1 {
        return None;
    }
    let &t = succ.iter().next().expect("len 1");
    (!t.is_endpoint()).then_some(t)
}

fn sole_inner_pred(g: &Gfa, n: NodeId) -> Option<NodeId> {
    let pred = g.direct_pred(n);
    if pred.len() != 1 {
        return None;
    }
    let &t = pred.iter().next().expect("len 1");
    (!t.is_endpoint()).then_some(t)
}

/// Builds the maximal chain containing `start`, if a valid chain of length
/// ≥ 2 exists.
fn chain_from(g: &Gfa, start: NodeId) -> Option<Vec<NodeId>> {
    // Grow forward: each extension q must be the unique successor of the
    // current tail, and must have exactly one incoming edge.
    let mut chain = vec![start];
    loop {
        let tail = *chain.last().expect("non-empty");
        match sole_inner_succ(g, tail) {
            Some(q) if q != start && !chain.contains(&q) && g.direct_pred(q).len() == 1 => {
                chain.push(q);
            }
            _ => break,
        }
    }
    // Grow backward from `start` for maximality: p can be prepended when
    // `start` (currently the head) has exactly one incoming edge from p and
    // p has exactly one outgoing edge.
    loop {
        let head = chain[0];
        match sole_inner_pred(g, head) {
            Some(p) if !chain.contains(&p) && g.direct_succ(p).len() == 1 => {
                chain.insert(0, p);
            }
            _ => break,
        }
    }
    (chain.len() >= 2).then_some(chain)
}

fn merge_chain(g: &mut Gfa, chain: &[NodeId]) -> Regex {
    let label = normalize(&Regex::concat(
        chain.iter().map(|&n| g.label(n).clone()).collect(),
    ));
    let first = chain[0];
    let last = *chain.last().expect("chain non-empty");
    let incoming: Vec<NodeId> = g
        .direct_pred(first)
        .iter()
        .copied()
        .filter(|p| !chain.contains(p))
        .collect();
    let outgoing: Vec<NodeId> = g
        .direct_succ(last)
        .iter()
        .copied()
        .filter(|s| !chain.contains(s))
        .collect();
    let closing = g.has_edge(last, first);
    for &n in chain {
        g.remove_node(n);
    }
    let merged = g.add_node(label.clone());
    for p in incoming {
        g.add_edge(p, merged);
    }
    for s in outgoing {
        g.add_edge(merged, s);
    }
    if closing {
        // "if G has an edge (rn, r1) then (r, r) is added"
        g.add_edge(merged, merged);
    }
    label
}

/// **disjunction**: a set `W` (|W| ≥ 2) of states whose closure predecessor
/// and successor sets coincide is merged into `r1 + … + rn`; when `G` has
/// edges between members of `W`, the merged node gets a self-edge.
fn try_disjunction(g: &mut Gfa, closure: &Closure) -> Option<Step> {
    let nodes: Vec<NodeId> = g.inner_nodes().collect();
    let mut found: Option<Vec<NodeId>> = None;
    'outer: for (i, &r1) in nodes.iter().enumerate() {
        for &r2 in &nodes[i + 1..] {
            if !disjunction_compatible(g, closure, &[r1, r2]) {
                continue;
            }
            // Extend to a maximal compatible set.
            let mut w = vec![r1, r2];
            for &r in &nodes {
                if !w.contains(&r) {
                    w.push(r);
                    if !disjunction_compatible(g, closure, &w) {
                        w.pop();
                    }
                }
            }
            found = Some(w);
            break 'outer;
        }
    }
    let members = found?;
    let member_set: BTreeSet<NodeId> = members.iter().copied().collect();
    // Case (ii) iff G has a direct edge between members (incl. self-edges).
    let internal = members
        .iter()
        .any(|&m| g.direct_succ(m).iter().any(|t| member_set.contains(t)));
    let operands: Vec<Regex> = members.iter().map(|&m| g.label(m).clone()).collect();
    let label = normalize(&Regex::union(operands.clone()));
    let incoming: BTreeSet<NodeId> = members
        .iter()
        .flat_map(|&m| g.direct_pred(m).iter().copied())
        .filter(|p| !member_set.contains(p))
        .collect();
    let outgoing: BTreeSet<NodeId> = members
        .iter()
        .flat_map(|&m| g.direct_succ(m).iter().copied())
        .filter(|s| !member_set.contains(s))
        .collect();
    for &m in &members {
        g.remove_node(m);
    }
    let merged = g.add_node(label.clone());
    for p in incoming {
        g.add_edge(p, merged);
    }
    for s in outgoing {
        g.add_edge(merged, s);
    }
    if internal {
        g.add_edge(merged, merged);
    }
    Some(Step {
        rule: Rule::Disjunction,
        operands,
        result: label,
    })
}

/// Whether `w` satisfies the disjunction precondition: identical closure
/// predecessor/successor sets outside `w`, and either no direct edges among
/// members (case i) or closure-complete interconnection including
/// self-edges (case ii).
fn disjunction_compatible(g: &Gfa, closure: &Closure, w: &[NodeId]) -> bool {
    let wset: BTreeSet<NodeId> = w.iter().copied().collect();
    let external = |set: &BTreeSet<NodeId>| -> Vec<NodeId> {
        set.iter().copied().filter(|n| !wset.contains(n)).collect()
    };
    let pred0 = external(closure.pred(w[0]));
    let succ0 = external(closure.succ(w[0]));
    for &r in &w[1..] {
        if external(closure.pred(r)) != pred0 || external(closure.succ(r)) != succ0 {
            return false;
        }
    }
    let any_direct = w
        .iter()
        .any(|&m| g.direct_succ(m).iter().any(|t| wset.contains(t)));
    if !any_direct {
        return true; // case (i): no edges in G between members at all
    }
    // Case (ii): every ordered pair (including self-pairs) connected in G*.
    w.iter()
        .all(|&a| w.iter().all(|&b| closure.succ(a).contains(&b)))
}

/// **optional**: a non-nullable state `r` such that everything reachable
/// through `r` from any closure predecessor is also reachable directly
/// (`Succ(r) ⊆ Succ(r')` for every `r' ∈ Pred(r)`) becomes `r?`; the bypass
/// edges `(r', r'')` with `r' ∈ Pred(r) \ {r}`, `r'' ∈ Succ(r) \ {r}` are
/// deleted.
fn try_optional(g: &mut Gfa, closure: &Closure) -> Option<Step> {
    let candidate = g.inner_nodes().find(|&n| {
        let preds = closure.pred(n);
        if preds.is_empty() {
            return false;
        }
        let succs = closure.succ(n);
        let precondition = preds
            .iter()
            .filter(|&&p| p != n)
            .all(|&p| succs.iter().all(|s| closure.succ(p).contains(s)));
        if !precondition {
            return false;
        }
        if !g.label(n).nullable() {
            return true; // relabeling to r? is progress by itself
        }
        // Already-nullable labels only qualify when the action removes at
        // least one bypass edge (otherwise the rule would loop forever).
        preds
            .iter()
            .filter(|&&p| p != n)
            .any(|&p| succs.iter().any(|&s| s != n && g.has_edge(p, s)))
    });
    let n = candidate?;
    let preds: Vec<NodeId> = closure
        .pred(n)
        .iter()
        .copied()
        .filter(|&p| p != n)
        .collect();
    let succs: Vec<NodeId> = closure
        .succ(n)
        .iter()
        .copied()
        .filter(|&s| s != n)
        .collect();
    let old = g.label(n).clone();
    let new_label = normalize(&Regex::Optional(Box::new(old.clone())));
    g.set_label(n, new_label.clone());
    for &p in &preds {
        for &s in &succs {
            g.remove_edge(p, s);
        }
    }
    Some(Step {
        rule: Rule::Optional,
        operands: vec![old],
        result: new_label,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtdinfer_automata::dfa::soa_equiv_regex;
    use dtdinfer_automata::glushkov::soa_of_sore;
    use dtdinfer_regex::alphabet::Alphabet;
    use dtdinfer_regex::classify::is_sore;
    use dtdinfer_regex::display::render;
    use dtdinfer_regex::normalize::equiv_commutative;
    use dtdinfer_regex::parser::parse;

    fn learned(words: &[&str]) -> (Soa, Alphabet) {
        let mut al = Alphabet::new();
        let ws: Vec<_> = words.iter().map(|w| al.word_from_chars(w)).collect();
        (Soa::learn(&ws), al)
    }

    /// §1.3 / Figure 3: the Figure 1 automaton rewrites to (‡).
    #[test]
    fn figure3_execution() {
        let (soa, mut al) = learned(&["bacacdacde", "cbacdbacde", "abccaadcde"]);
        let r = rewrite_soa(&soa).expect("equivalent SORE exists");
        let target = parse("((b? (a|c))+ d)+ e", &mut al).unwrap();
        assert!(
            equiv_commutative(&r, &target),
            "got {} instead",
            render(&r, &al)
        );
    }

    /// Theorem 1 on a battery of SOREs: Glushkov → rewrite recovers an
    /// equivalent SORE.
    #[test]
    fn roundtrip_battery() {
        for src in [
            "a",
            "a b",
            "a | b",
            "a+",
            "a?",
            "a*",
            "(a | b)+ c",
            "a? b? c",
            "((b? (a|c))+ d)+ e",
            "a (b | c)* d+ (e | f)?",
            "(a+ | b)? c",
            "((a b) | c)+",
            "a1 (a2 | a3)+ (a4 | a5)",
            "(a (b | c)+)+",
            "((a? b)+ c?)+ d",
        ] {
            let mut al = Alphabet::new();
            let target = parse(src, &mut al).unwrap();
            let soa = soa_of_sore(&target).unwrap();
            let r = rewrite_soa(&soa).unwrap_or_else(|| panic!("rewrite failed on {src}"));
            assert!(is_sore(&r), "{src} produced non-SORE {}", render(&r, &al));
            assert!(
                soa_equiv_regex(&soa, &r),
                "{src}: language changed, got {}",
                render(&r, &al)
            );
        }
    }

    /// Figure 2's automaton has no equivalent SORE → rewrite must fail.
    #[test]
    fn figure2_fails() {
        let (soa, _) = learned(&["bacacdacde", "cbacdbacde"]);
        assert!(rewrite_soa(&soa).is_none());
    }

    #[test]
    fn single_symbol() {
        let (soa, al) = learned(&["a"]);
        let r = rewrite_soa(&soa).unwrap();
        assert_eq!(render(&r, &al), "a");
    }

    #[test]
    fn empty_word_only_has_no_regex() {
        let mut soa = Soa::new();
        soa.accepts_empty = true;
        assert!(rewrite_soa(&soa).is_none());
    }

    #[test]
    fn epsilon_in_language_handled_via_optional() {
        let (soa, al) = learned(&["a", ""]);
        let r = rewrite_soa(&soa).unwrap();
        assert_eq!(render(&r, &al), "a?");
    }

    #[test]
    fn star_output_postprocessed() {
        let mut al = Alphabet::new();
        let target = parse("a* b", &mut al).unwrap();
        let soa = soa_of_sore(&target).unwrap();
        let r = rewrite_soa(&soa).unwrap();
        // (a+)? must have been star-formed back to a*.
        assert_eq!(render(&r, &al), "a* b");
    }

    #[test]
    fn figure3_alternative_order_from_caption() {
        // Applying disjunction on the original automaton (before optional)
        // yields ((b?(a|c)+)+d)+e — same language.
        let (soa, mut al) = learned(&["bacacdacde", "cbacdbacde", "abccaadcde"]);
        let alt = parse("((b? (a|c)+)+ d)+ e", &mut al).unwrap();
        let r = rewrite_soa(&soa).unwrap();
        assert!(dtdinfer_automata::dfa::regex_equiv(&r, &alt));
    }

    #[test]
    fn rule_trace_reaches_final() {
        let (soa, _) = learned(&["ab", "b"]);
        let (mut g, _) = Gfa::from_soa(&soa);
        let mut rules = Vec::new();
        while let Some(step) = rewrite_step(&mut g) {
            rules.push(step.rule);
        }
        assert!(g.is_final(), "stuck after {rules:?}");
        assert!(!rules.is_empty());
    }

    #[test]
    fn concatenation_chain_merging() {
        let (soa, al) = learned(&["abcde"]);
        let r = rewrite_soa(&soa).unwrap();
        assert_eq!(render(&r, &al), "a b c d e");
    }

    #[test]
    fn disjunction_simple() {
        let (soa, al) = learned(&["a", "b", "c"]);
        let r = rewrite_soa(&soa).unwrap();
        let mut alts: Vec<&str> = Vec::new();
        if let Regex::Union(parts) = &r {
            for p in parts {
                if let Regex::Symbol(s) = p {
                    alts.push(al.name(*s));
                }
            }
        }
        alts.sort_unstable();
        assert_eq!(alts, vec!["a", "b", "c"]);
    }

    #[test]
    fn self_loop_plus() {
        let (soa, al) = learned(&["a", "aa"]);
        let r = rewrite_soa(&soa).unwrap();
        assert_eq!(render(&r, &al), "a+");
    }

    #[test]
    fn alternating_language_has_no_sore() {
        // {ab, ba, a, b, aba} induces the alternating-word automaton, whose
        // language is not expressible single-occurrence: rewrite must fail
        // (and iDTD then super-approximates it, see the idtd tests).
        let (soa, _) = learned(&["ab", "ba", "a", "b", "aba"]);
        assert!(rewrite_soa(&soa).is_none());
    }

    #[test]
    fn mutual_loop_with_repeats_is_repeated_disjunction() {
        let (soa, mut al) = learned(&["ab", "ba", "a", "b", "aa", "bb"]);
        let r = rewrite_soa(&soa).unwrap();
        assert!(soa_equiv_regex(&soa, &r));
        let target = parse("(a | b)+", &mut al).unwrap();
        assert!(equiv_commutative(&r, &target));
    }
}
