//! Closed-loop differential fuzzer for the DTD inference pipeline.
//!
//! The fuzzer closes the loop the paper leaves open: it *generates* a
//! random target DTD ([`schema`]), samples corpora from it at controlled
//! coverage levels (via the Glushkov-based sampler in `dtdinfer-xml`),
//! runs the full inference pipeline — sequentially, sharded, and through
//! snapshot round-trips — and checks a battery of metamorphic and
//! differential oracles ([`oracle`]). Violations are shrunk by a
//! deterministic ddmin-style reducer ([`reduce`]) and persisted as
//! replayable regression files ([`corpus`]).
//!
//! Everything is seed-driven and deterministic: the same
//! [`runner::FuzzConfig`] produces a byte-identical [`runner::FuzzReport`]
//! (unless a wall-clock time budget cuts the run short).

#![warn(missing_docs)]

pub mod corpus;
pub mod doc;
pub mod oracle;
pub mod reduce;
pub mod runner;
pub mod schema;

pub use corpus::CaseFile;
pub use oracle::{check_case, CaseResult, OracleOptions, PlantedBug, Violation, ORACLES};
pub use runner::{replay_file, run, FuzzConfig, FuzzReport};
