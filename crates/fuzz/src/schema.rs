//! Seed-driven random DTD generation for the fuzz driver.
//!
//! Every generated DTD is *acyclic by construction* (element `i` only ever
//! references higher-indexed elements), so [`dtdinfer_xml::generate`] can
//! always sample documents from it, and every child content model is a
//! SORE (each element name occurs at most once), so the target is in the
//! class the paper's algorithms are complete for. On top of a baseline
//! shape the generator produces the adversarial shapes called out in the
//! fuzz plan: deep operator nesting, large alphabets, skewed optionality,
//! near-duplicate sibling names, and content models lifted from the
//! paper's own experiment scenarios (`dtdinfer-gen`).
//!
//! The one deliberate exception to the SORE invariant is
//! [`Shape::RepeatedSymbols`]: its content models repeat a symbol (`a b
//! a`, `a (b a)*`, …) so the k-ORE engine has something to learn that no
//! single-occurrence expression can state. Those models are drawn from a
//! fixed pool of templates that are one-unambiguous by construction and
//! re-checked with [`dtdinfer_regex::determinism::check_deterministic`].

use dtdinfer_regex::alphabet::Sym;
use dtdinfer_regex::ast::Regex;
use dtdinfer_xml::attlist::{AttDef, AttDefault, AttType};
use dtdinfer_xml::dtd::{ContentSpec, Dtd};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The family of DTD shapes the fuzzer rotates through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// Moderate fan-out, mixed operators — the "typical" schema.
    Baseline,
    /// Few children per model but heavily stacked unary operators and
    /// long element chains.
    DeepNesting,
    /// Many element names and wide content models.
    LargeAlphabet,
    /// Almost everything optional or starred, so sampled corpora skew
    /// towards sparse, barely-representative evidence.
    SkewedOptionality,
    /// Sibling names that differ by one character (`item`, `item1`, …),
    /// stressing name handling rather than language structure.
    NearDuplicateSiblings,
    /// Root content model lifted from a `dtdinfer-gen` paper scenario
    /// (Table 1 / Table 2 / Figure 4 data expressions).
    PaperScenario,
    /// Content models that mention the same element more than once
    /// (`a b a`, `a (b a)*`, …) — outside the SORE class, inside k-ORE.
    RepeatedSymbols,
}

/// All shapes, in the fixed rotation order used by the driver.
pub const SHAPES: [Shape; 7] = [
    Shape::Baseline,
    Shape::DeepNesting,
    Shape::LargeAlphabet,
    Shape::SkewedOptionality,
    Shape::NearDuplicateSiblings,
    Shape::PaperScenario,
    Shape::RepeatedSymbols,
];

/// Tuning knobs derived from a [`Shape`].
struct ShapeParams {
    /// Inclusive element-count range.
    elements: (usize, usize),
    /// Maximum children referenced by one content model.
    max_children: usize,
    /// Probability of wrapping a subexpression in `?`.
    opt_prob: f64,
    /// Probability of wrapping a subexpression in `+`.
    plus_prob: f64,
    /// Probability of wrapping a subexpression in `*`.
    star_prob: f64,
    /// Probability that an internal node is a union (vs concatenation).
    union_prob: f64,
    /// Probability that a non-final element is a leaf anyway.
    leaf_prob: f64,
    /// Probability that a leaf is `(#PCDATA | …)*` mixed content.
    mixed_prob: f64,
    /// Probability that an element gets an `<!ATTLIST>`.
    attr_prob: f64,
    /// Whether element names are near-duplicates of one another.
    near_duplicate_names: bool,
}

impl Shape {
    fn params(self) -> ShapeParams {
        match self {
            Shape::Baseline | Shape::PaperScenario | Shape::RepeatedSymbols => ShapeParams {
                elements: (3, 8),
                max_children: 4,
                opt_prob: 0.25,
                plus_prob: 0.2,
                star_prob: 0.1,
                union_prob: 0.35,
                leaf_prob: 0.3,
                mixed_prob: 0.15,
                attr_prob: 0.25,
                near_duplicate_names: false,
            },
            Shape::DeepNesting => ShapeParams {
                elements: (6, 10),
                max_children: 2,
                opt_prob: 0.45,
                plus_prob: 0.35,
                star_prob: 0.2,
                union_prob: 0.3,
                leaf_prob: 0.15,
                mixed_prob: 0.05,
                attr_prob: 0.1,
                near_duplicate_names: false,
            },
            Shape::LargeAlphabet => ShapeParams {
                elements: (16, 32),
                max_children: 12,
                opt_prob: 0.2,
                plus_prob: 0.15,
                star_prob: 0.05,
                union_prob: 0.45,
                leaf_prob: 0.5,
                mixed_prob: 0.1,
                attr_prob: 0.15,
                near_duplicate_names: false,
            },
            Shape::SkewedOptionality => ShapeParams {
                elements: (4, 9),
                max_children: 5,
                opt_prob: 0.6,
                plus_prob: 0.1,
                star_prob: 0.25,
                union_prob: 0.25,
                leaf_prob: 0.3,
                mixed_prob: 0.1,
                attr_prob: 0.2,
                near_duplicate_names: false,
            },
            Shape::NearDuplicateSiblings => ShapeParams {
                elements: (5, 10),
                max_children: 6,
                opt_prob: 0.3,
                plus_prob: 0.25,
                star_prob: 0.1,
                union_prob: 0.4,
                leaf_prob: 0.35,
                mixed_prob: 0.1,
                attr_prob: 0.2,
                near_duplicate_names: true,
            },
        }
    }
}

/// Generates a random acyclic, SORE-content DTD for `shape`, fully
/// determined by `seed`.
pub fn random_dtd(seed: u64, shape: Shape) -> Dtd {
    let mut rng = StdRng::seed_from_u64(seed);
    if shape == Shape::PaperScenario {
        return scenario_dtd(&mut rng);
    }
    if shape == Shape::RepeatedSymbols {
        return repeated_symbols_dtd(&mut rng);
    }
    let p = shape.params();
    let n = rng.gen_range(p.elements.0..=p.elements.1);
    let names = element_names(n, p.near_duplicate_names);
    let mut dtd = Dtd::new();
    let syms: Vec<Sym> = names.iter().map(|n| dtd.alphabet.intern(n)).collect();
    for i in 0..n {
        let available = &syms[i + 1..];
        let leaf = available.is_empty() || rng.gen_bool(p.leaf_prob);
        let spec = if leaf {
            leaf_spec(&mut rng, available, &p)
        } else {
            let k = rng.gen_range(1..=p.max_children.min(available.len()));
            let children = choose_distinct(&mut rng, available, k);
            ContentSpec::Children(random_sore(&mut rng, &children, &p))
        };
        dtd.elements.insert(syms[i], spec);
        if rng.gen_bool(p.attr_prob) {
            dtd.attlists.insert(syms[i], random_attlist(&mut rng));
        }
    }
    dtd.root = Some(syms[0]);
    dtd
}

/// Leaf content: text, nothing, or occasionally mixed content over later
/// elements (which must themselves be leaves from the generator's point of
/// view — acyclicity still holds since they are higher-indexed).
fn leaf_spec(rng: &mut StdRng, available: &[Sym], p: &ShapeParams) -> ContentSpec {
    if !available.is_empty() && rng.gen_bool(p.mixed_prob) {
        let k = rng.gen_range(1..=available.len().min(3));
        return ContentSpec::Mixed(choose_distinct(rng, available, k));
    }
    if rng.gen_bool(0.25) {
        ContentSpec::Empty
    } else {
        ContentSpec::PcData
    }
}

/// Distinct element names: plain `e0…` or near-duplicate stems.
fn element_names(n: usize, near_duplicates: bool) -> Vec<String> {
    if !near_duplicates {
        return (0..n).map(|i| format!("e{i}")).collect();
    }
    // item, item1, item11, itema, item1a, … — every pair shares a long
    // common prefix.
    (0..n)
        .map(|i| {
            let mut name = String::from("item");
            for bit in 0..i {
                name.push(if bit % 2 == 0 { '1' } else { 'a' });
            }
            name
        })
        .collect()
}

/// Samples `k` distinct symbols, preserving the slice order (so the choice
/// is a pure function of the RNG stream).
fn choose_distinct(rng: &mut StdRng, pool: &[Sym], k: usize) -> Vec<Sym> {
    let mut picked: Vec<usize> = Vec::with_capacity(k);
    while picked.len() < k {
        let i = rng.gen_range(0..pool.len());
        if !picked.contains(&i) {
            picked.push(i);
        }
    }
    picked.sort_unstable();
    picked.into_iter().map(|i| pool[i]).collect()
}

/// Builds a random SORE over `syms` (each symbol used exactly once, so the
/// result is single-occurrence and therefore deterministic/one-unambiguous
/// by construction).
fn random_sore(rng: &mut StdRng, syms: &[Sym], p: &ShapeParams) -> Regex {
    let body = if syms.len() == 1 {
        Regex::sym(syms[0])
    } else {
        // Split into 2..=4 contiguous groups and recurse.
        let max_groups = syms.len().min(4);
        let groups = rng.gen_range(2..=max_groups);
        let mut cuts: Vec<usize> = Vec::with_capacity(groups - 1);
        while cuts.len() < groups - 1 {
            let c = rng.gen_range(1..syms.len());
            if !cuts.contains(&c) {
                cuts.push(c);
            }
        }
        cuts.sort_unstable();
        let mut parts = Vec::with_capacity(groups);
        let mut start = 0;
        for &c in cuts.iter().chain(std::iter::once(&syms.len())) {
            parts.push(random_sore(rng, &syms[start..c], p));
            start = c;
        }
        if rng.gen_bool(p.union_prob) {
            Regex::union(parts)
        } else {
            Regex::concat(parts)
        }
    };
    // The smart constructors collapse stacked unary operators, so applying
    // at most one keeps the expression in normal form.
    let roll: f64 = rng.gen_range(0.0..1.0);
    if roll < p.opt_prob {
        Regex::optional(body)
    } else if roll < p.opt_prob + p.plus_prob {
        Regex::plus(body)
    } else if roll < p.opt_prob + p.plus_prob + p.star_prob {
        Regex::star(body)
    } else {
        body
    }
}

/// A small random `<!ATTLIST>`: one or two attributes drawn from the
/// supported, roundtrip-safe type/default combinations.
fn random_attlist(rng: &mut StdRng) -> Vec<AttDef> {
    let mut defs = Vec::new();
    let count = rng.gen_range(1..=2usize);
    for i in 0..count {
        let ty = match rng.gen_range(0..3u32) {
            0 => AttType::CData,
            1 => AttType::NmToken,
            _ => AttType::Enumeration(vec!["red".into(), "green".into(), "blue".into()]),
        };
        let default = if rng.gen_bool(0.4) {
            AttDefault::Required
        } else {
            AttDefault::Implied
        };
        defs.push(AttDef {
            name: format!("a{i}"),
            ty,
            default,
        });
    }
    defs
}

/// One deterministic repeat template over two distinct symbols. Every
/// template is one-unambiguous (checked below), repeats `a` at least
/// twice, and stays within the k-ORE engine's occurrence cap. Shapes like
/// `(a b)+ a` — which are *not* one-unambiguous — are deliberately absent:
/// the generated target must itself pass the determinism oracle.
fn repeat_template(rng: &mut StdRng, a: Sym, b: Sym) -> Regex {
    let (a, b) = (Regex::sym(a), Regex::sym(b));
    let body = match rng.gen_range(0..7u32) {
        // a b a — the canonical "SORE cannot say this" model.
        0 => Regex::concat(vec![a.clone(), b, a]),
        // a b a? — second occurrence optional.
        1 => Regex::concat(vec![a.clone(), b, Regex::optional(a)]),
        // a+ b a — repetition on the first occurrence.
        2 => Regex::concat(vec![Regex::plus(a.clone()), b, a]),
        // a b+ a — repetition on the separator.
        3 => Regex::concat(vec![a.clone(), Regex::plus(b), a]),
        // a? b a — first occurrence optional.
        4 => Regex::concat(vec![Regex::optional(a.clone()), b, a]),
        // a (b a)* — unbounded alternation anchored on a.
        5 => Regex::concat(vec![a.clone(), Regex::star(Regex::concat(vec![b, a]))]),
        // a b a b — both symbols repeat.
        _ => Regex::concat(vec![a.clone(), b.clone(), a, b]),
    };
    debug_assert!(
        dtdinfer_regex::determinism::check_deterministic(&body).is_ok(),
        "repeat templates must be one-unambiguous"
    );
    body
}

/// A DTD whose non-leaf content models repeat symbols: each is a
/// [`repeat_template`] over two later-indexed elements (acyclic, like
/// every other shape), and each leaf is text or empty.
fn repeated_symbols_dtd(rng: &mut StdRng) -> Dtd {
    let n = rng.gen_range(3..=6usize);
    let names = element_names(n, false);
    let mut dtd = Dtd::new();
    let syms: Vec<Sym> = names.iter().map(|n| dtd.alphabet.intern(n)).collect();
    for i in 0..n {
        let available = &syms[i + 1..];
        // The root always gets a repeat template; deeper elements may too
        // when enough later elements remain, so nested repetition occurs.
        let spec = if available.len() >= 2 && (i == 0 || rng.gen_bool(0.4)) {
            let picked = choose_distinct(rng, available, 2);
            ContentSpec::Children(repeat_template(rng, picked[0], picked[1]))
        } else if rng.gen_bool(0.25) {
            ContentSpec::Empty
        } else {
            ContentSpec::PcData
        };
        dtd.elements.insert(syms[i], spec);
    }
    dtd.root = Some(syms[0]);
    dtd
}

/// A DTD whose root content model is one of the paper's experiment
/// expressions (the `data` column of Table 1 / Table 2 / Figure 4), with
/// every referenced name declared as a `(#PCDATA)` leaf.
fn scenario_dtd(rng: &mut StdRng) -> Dtd {
    let pool: Vec<dtdinfer_gen::scenarios::Scenario> = dtdinfer_gen::scenarios::table1()
        .into_iter()
        .chain(dtdinfer_gen::scenarios::table2())
        .chain(
            dtdinfer_gen::scenarios::figure4()
                .into_iter()
                .map(|(s, _)| s),
        )
        .collect();
    let scenario = &pool[rng.gen_range(0..pool.len())];
    let built = scenario.build();
    let mut dtd = Dtd::new();
    // Re-parse the data expression in the DTD's own alphabet: rendering
    // with the scenario alphabet and parsing back is an exact remap.
    let rendered = dtdinfer_regex::display::render(&built.data, &built.alphabet);
    let data = dtdinfer_regex::parser::parse(&rendered, &mut dtd.alphabet)
        .expect("scenario expressions re-parse");
    let root = dtd.alphabet.intern("scenarioroot");
    dtd.elements.insert(root, ContentSpec::Children(data));
    for sym in dtd.elements[&root].clone().symbols_of() {
        dtd.elements.entry(sym).or_insert(ContentSpec::PcData);
    }
    dtd.root = Some(root);
    dtd
}

/// Helper: the symbols of a content spec (empty for non-`Children`).
trait SymbolsOf {
    fn symbols_of(&self) -> Vec<Sym>;
}

impl SymbolsOf for ContentSpec {
    fn symbols_of(&self) -> Vec<Sym> {
        match self {
            ContentSpec::Children(r) => r.symbols(),
            ContentSpec::Mixed(syms) => syms.clone(),
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtdinfer_xml::generate::{sample_documents, GenerateConfig};

    #[test]
    fn every_shape_yields_generatable_dtds() {
        for (i, shape) in SHAPES.iter().enumerate() {
            for seed in 0..12u64 {
                let dtd = random_dtd(seed * 31 + i as u64, *shape);
                assert!(dtd.root.is_some(), "{shape:?} seed {seed}");
                let docs = sample_documents(&dtd, &GenerateConfig::default(), seed, 3)
                    .unwrap_or_else(|e| panic!("{shape:?} seed {seed}: {e}"));
                for d in &docs {
                    let violations = dtd.validate(d).unwrap();
                    assert!(
                        violations.is_empty(),
                        "{shape:?} seed {seed}: {violations:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for shape in SHAPES {
            let a = random_dtd(99, shape).serialize();
            let b = random_dtd(99, shape).serialize();
            assert_eq!(a, b, "{shape:?}");
        }
    }

    #[test]
    fn random_targets_serialize_to_a_fixpoint() {
        for shape in SHAPES {
            for seed in 0..8u64 {
                let dtd = random_dtd(seed, shape);
                let text = dtd.serialize();
                let reparsed = Dtd::parse(&text).unwrap();
                assert_eq!(reparsed.serialize(), text, "{shape:?} seed {seed}");
            }
        }
    }

    #[test]
    fn near_duplicate_names_share_prefixes() {
        let names = element_names(5, true);
        assert_eq!(names.len(), 5);
        for n in &names {
            assert!(n.starts_with("item"), "{n}");
        }
        let unique: std::collections::BTreeSet<&String> = names.iter().collect();
        assert_eq!(unique.len(), 5, "names must still be distinct");
    }

    #[test]
    fn repeated_symbol_targets_repeat_and_stay_deterministic() {
        fn leaves(r: &Regex) -> usize {
            match r {
                Regex::Symbol(_) => 1,
                Regex::Concat(v) | Regex::Union(v) => v.iter().map(leaves).sum(),
                Regex::Optional(i) | Regex::Plus(i) | Regex::Star(i) => leaves(i),
            }
        }
        let mut saw_repeat = false;
        for seed in 0..40u64 {
            let dtd = random_dtd(seed, Shape::RepeatedSymbols);
            for spec in dtd.elements.values() {
                let ContentSpec::Children(r) = spec else {
                    continue;
                };
                assert!(
                    dtdinfer_regex::determinism::check_deterministic(r).is_ok(),
                    "seed {seed}: {r:?} must be one-unambiguous"
                );
                // symbols() dedupes, so fewer distinct symbols than leaf
                // occurrences means some symbol is used more than once.
                if r.symbols().len() < leaves(r) {
                    saw_repeat = true;
                }
            }
        }
        assert!(saw_repeat, "the shape must actually produce repetition");
    }

    #[test]
    fn random_sores_are_single_occurrence() {
        let p = Shape::DeepNesting.params();
        let mut rng = StdRng::seed_from_u64(3);
        let syms: Vec<Sym> = (0..6).map(Sym).collect();
        for _ in 0..50 {
            let r = random_sore(&mut rng, &syms, &p);
            assert!(
                dtdinfer_regex::classify::is_sore(&r),
                "generated content models must be SOREs"
            );
        }
    }
}
