//! Replayable regression cases: persistence format for `fuzz/corpus/`.
//!
//! Each file stores everything needed to re-run the oracle battery on a
//! reduced failure: the driving seed, the case index, the oracle that
//! fired, the generating (target) DTD, and the reduced documents.
//!
//! ```text
//! #dtdinfer-fuzz case v1
//! seed 42
//! case 17
//! oracle membership.idtd
//! == target ==
//! <!ELEMENT e0 (e1, e2?)>
//! …
//! == document ==
//! <e0>…</e0>
//! == end ==
//! ```
//!
//! Section markers start with `== `; documents and DTD text never produce
//! such lines (serialized DTDs start with `<!`, documents with `<`).

/// The first line of every case file.
pub const CASE_HEADER: &str = "#dtdinfer-fuzz case v1";

/// One persisted regression case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseFile {
    /// The driver seed that produced the case.
    pub seed: u64,
    /// The case index under that seed.
    pub case: usize,
    /// The oracle that fired (one of [`crate::oracle::ORACLES`]).
    pub oracle: String,
    /// The generating DTD, serialized (empty when unknown).
    pub target: String,
    /// The reduced failing documents.
    pub docs: Vec<String>,
}

impl CaseFile {
    /// Deterministic file name for this case.
    pub fn file_name(&self) -> String {
        format!(
            "seed{}-case{}-{}.case",
            self.seed,
            self.case,
            self.oracle.replace('.', "-")
        )
    }

    /// Serializes the case file.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(CASE_HEADER);
        out.push('\n');
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("case {}\n", self.case));
        out.push_str(&format!("oracle {}\n", self.oracle));
        if !self.target.is_empty() {
            out.push_str("== target ==\n");
            out.push_str(&self.target);
            if !self.target.ends_with('\n') {
                out.push('\n');
            }
        }
        for d in &self.docs {
            out.push_str("== document ==\n");
            out.push_str(d);
            out.push('\n');
        }
        out.push_str("== end ==\n");
        out
    }

    /// Parses a case file, rejecting unknown headers and malformed
    /// records with a descriptive error.
    pub fn parse(text: &str) -> Result<CaseFile, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(l) if l.trim() == CASE_HEADER => {}
            other => {
                return Err(format!(
                    "not a dtdinfer fuzz case (expected {CASE_HEADER:?}, got {other:?})"
                ))
            }
        }
        let mut case = CaseFile {
            seed: 0,
            case: 0,
            oracle: String::new(),
            target: String::new(),
            docs: Vec::new(),
        };
        // Section being accumulated: None = header, Some(true) = target,
        // Some(false) = current document.
        let mut section: Option<bool> = None;
        let mut buf = String::new();
        let flush = |case: &mut CaseFile, section: &Option<bool>, buf: &mut String| {
            match section {
                None => {}
                Some(true) => case.target = std::mem::take(buf),
                Some(false) => case.docs.push(std::mem::take(buf).trim_end().to_owned()),
            }
            buf.clear();
        };
        for line in lines {
            match line.trim_end() {
                "== target ==" => {
                    flush(&mut case, &section, &mut buf);
                    section = Some(true);
                }
                "== document ==" => {
                    flush(&mut case, &section, &mut buf);
                    section = Some(false);
                }
                "== end ==" => {
                    flush(&mut case, &section, &mut buf);
                    return Ok(case);
                }
                other => match section {
                    None => {
                        let (key, value) = other.split_once(' ').unwrap_or((other, ""));
                        match key {
                            "seed" => {
                                case.seed = value.parse().map_err(|e| format!("bad seed: {e}"))?;
                            }
                            "case" => {
                                case.case =
                                    value.parse().map_err(|e| format!("bad case index: {e}"))?;
                            }
                            "oracle" => case.oracle = value.to_owned(),
                            "" => {}
                            other => return Err(format!("unknown case record {other:?}")),
                        }
                    }
                    Some(_) => {
                        buf.push_str(line);
                        buf.push('\n');
                    }
                },
            }
        }
        Err("case file is truncated (missing \"== end ==\")".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CaseFile {
        CaseFile {
            seed: 42,
            case: 17,
            oracle: "membership.idtd".into(),
            target: "<!ELEMENT r (x*)>\n<!ELEMENT x EMPTY>\n".into(),
            docs: vec!["<r><x/><x/></r>".into(), "<r/>".into()],
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let case = sample();
        let text = case.render();
        let parsed = CaseFile::parse(&text).unwrap();
        assert_eq!(parsed, case);
        // Render is a fixpoint.
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn file_name_is_path_safe() {
        let name = sample().file_name();
        assert_eq!(name, "seed42-case17-membership-idtd.case");
        assert!(!name.contains(['/', ' ']));
    }

    #[test]
    fn rejects_malformed_files() {
        assert!(CaseFile::parse("").unwrap_err().contains("not a dtdinfer"));
        assert!(CaseFile::parse("#dtdinfer-fuzz case v2\n== end ==\n").is_err());
        let truncated = format!("{CASE_HEADER}\nseed 1\n");
        assert!(CaseFile::parse(&truncated)
            .unwrap_err()
            .contains("truncated"));
        let bad_seed = format!("{CASE_HEADER}\nseed x\n== end ==\n");
        assert!(CaseFile::parse(&bad_seed).unwrap_err().contains("bad seed"));
    }

    #[test]
    fn case_without_target_round_trips() {
        let case = CaseFile {
            target: String::new(),
            ..sample()
        };
        let parsed = CaseFile::parse(&case.render()).unwrap();
        assert_eq!(parsed, case);
    }
}
