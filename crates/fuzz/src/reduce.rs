//! Automatic case reduction: shrink a failing corpus to a minimal
//! replayable regression.
//!
//! Two deterministic stages, in the ddmin spirit:
//!
//! 1. **Documents** — greedily delete chunks of the document list (halving
//!    chunk sizes) while the failure persists.
//! 2. **Tree content** — inside each surviving document, repeatedly try to
//!    delete element subtrees and text chunks (preorder, to a fixpoint).
//!    Deleting a child element also shrinks its parent's child *word*, so
//!    this stage covers both element- and word-level reduction.
//!
//! The predicate re-runs the failing oracle on each candidate corpus, so a
//! reduction step is kept only when it still reproduces the same failure.

use crate::doc;

/// Shrinks `docs` while `still_fails` holds. The input corpus must itself
/// fail (callers only reduce observed violations); if it unexpectedly does
/// not, it is returned unchanged.
pub fn reduce<F: FnMut(&[String]) -> bool>(docs: &[String], mut still_fails: F) -> Vec<String> {
    let mut current: Vec<String> = docs.to_vec();
    if !still_fails(&current) {
        return current;
    }
    current = reduce_documents(current, &mut still_fails);
    reduce_content(&mut current, &mut still_fails);
    current
}

/// Stage 1: drop whole documents, largest chunks first.
fn reduce_documents<F: FnMut(&[String]) -> bool>(
    mut docs: Vec<String>,
    fails: &mut F,
) -> Vec<String> {
    let mut chunk = docs.len().div_ceil(2).max(1);
    while docs.len() > 1 {
        let mut shrunk = false;
        let mut start = 0;
        while start < docs.len() && docs.len() > 1 {
            let end = (start + chunk).min(docs.len());
            let mut candidate = docs.clone();
            candidate.drain(start..end);
            if !candidate.is_empty() && fails(&candidate) {
                docs = candidate;
                shrunk = true;
                // Retry the same offset: the next chunk slid into place.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !shrunk {
            break;
        }
        if !shrunk {
            chunk = (chunk / 2).max(1);
        } else {
            chunk = chunk.min(docs.len()).max(1);
        }
    }
    docs
}

/// Stage 2: delete subtrees / text chunks inside each document until no
/// single deletion preserves the failure.
fn reduce_content<F: FnMut(&[String]) -> bool>(docs: &mut [String], fails: &mut F) {
    for i in 0..docs.len() {
        let Ok(mut tree) = doc::parse_doc(&docs[i]) else {
            continue; // unparseable documents are left as-is
        };
        loop {
            let mut changed = false;
            let mut p = 0;
            // Paths are recomputed after every successful deletion; on
            // failure move to the next path of the *same* snapshot.
            loop {
                let paths = doc::content_paths(&tree);
                if p >= paths.len() {
                    break;
                }
                let mut candidate = tree.clone();
                doc::remove_path(&mut candidate, &paths[p]);
                let mut trial = docs.to_vec();
                trial[i] = doc::render(&candidate);
                if fails(&trial) {
                    tree = candidate;
                    docs[i] = trial[i].clone();
                    changed = true;
                    // Do not advance: path p now addresses new content.
                } else {
                    p += 1;
                }
            }
            if !changed {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Predicate: fails iff some document still contains `<x/><x/>`
    /// adjacency (a stand-in for a real oracle).
    fn adjacent_x(docs: &[String]) -> bool {
        docs.iter().any(|d| {
            doc::parse_doc(d)
                .map(|t| doc::has_adjacent_repeated_siblings(&t))
                .unwrap_or(false)
        })
    }

    #[test]
    fn shrinks_to_one_minimal_document() {
        let docs: Vec<String> = vec![
            "<r><a/><b/></r>".into(),
            "<r><a/><c><x/><x/><y/></c><b/></r>".into(),
            "<r><b/></r>".into(),
            "<r><a/><a/><q/></r>".into(),
        ];
        let reduced = reduce(&docs, adjacent_x);
        assert_eq!(reduced.len(), 1, "{reduced:?}");
        let tree = doc::parse_doc(&reduced[0]).unwrap();
        assert!(doc::has_adjacent_repeated_siblings(&tree));
        // Minimal: removing any single content item breaks the predicate.
        for path in doc::content_paths(&tree) {
            let mut t = tree.clone();
            doc::remove_path(&mut t, &path);
            assert!(
                !adjacent_x(&[doc::render(&t)]),
                "not minimal: could remove {path:?} from {reduced:?}"
            );
        }
    }

    #[test]
    fn reduction_is_deterministic() {
        let docs: Vec<String> = (0..9)
            .map(|i| format!("<r><p{i}/><x/><x/><q{i}/></r>"))
            .collect();
        let a = reduce(&docs, adjacent_x);
        let b = reduce(&docs, adjacent_x);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn non_failing_input_returned_unchanged() {
        let docs: Vec<String> = vec!["<r><a/></r>".into()];
        assert_eq!(reduce(&docs, adjacent_x), docs);
    }
}
