//! A mutable document-tree model for case reduction.
//!
//! The reducer needs to delete subtrees and text chunks from a failing
//! document and re-serialize the remainder; the streaming pull parser
//! cannot do that, so this module round-trips documents through a small
//! owned tree.

use dtdinfer_xml::parser::{XmlEvent, XmlPullParser};

/// One content item of an element: a text chunk or a child element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Content {
    /// Character data (stored decoded; re-encoded on render).
    Text(String),
    /// A child element.
    Element(Node),
}

/// An element node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Element name.
    pub name: String,
    /// Attributes in document order (values stored decoded).
    pub attrs: Vec<(String, String)>,
    /// Content in document order.
    pub children: Vec<Content>,
}

/// Parses a document into its root element tree.
pub fn parse_doc(doc: &str) -> Result<Node, String> {
    let mut parser = XmlPullParser::new(doc);
    let mut stack: Vec<Node> = Vec::new();
    let mut root: Option<Node> = None;
    while let Some(ev) = parser.next().map_err(|e| e.to_string())? {
        match ev {
            XmlEvent::StartElement {
                name, attributes, ..
            } => {
                stack.push(Node {
                    name: name.to_owned(),
                    attrs: attributes
                        .iter()
                        .map(|(k, v)| ((*k).to_owned(), v.clone().into_owned()))
                        .collect(),
                    children: Vec::new(),
                });
            }
            XmlEvent::EndElement { .. } => {
                let node = stack.pop().ok_or("unbalanced end tag")?;
                match stack.last_mut() {
                    Some(parent) => parent.children.push(Content::Element(node)),
                    None => {
                        if root.is_some() {
                            return Err("multiple root elements".into());
                        }
                        root = Some(node);
                    }
                }
            }
            XmlEvent::Text(t) => {
                if let Some(parent) = stack.last_mut() {
                    if !t.trim().is_empty() {
                        parent.children.push(Content::Text(t.into_owned()));
                    }
                }
            }
            _ => {}
        }
    }
    root.ok_or_else(|| "document has no root element".into())
}

/// Serializes a tree back to XML text.
pub fn render(node: &Node) -> String {
    let mut out = String::new();
    render_into(node, &mut out);
    out
}

fn render_into(node: &Node, out: &mut String) {
    out.push('<');
    out.push_str(&node.name);
    for (k, v) in &node.attrs {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        escape_into(v, out);
        out.push('"');
    }
    if node.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for c in &node.children {
        match c {
            Content::Text(t) => escape_into(t, out),
            Content::Element(n) => render_into(n, out),
        }
    }
    out.push_str("</");
    out.push_str(&node.name);
    out.push('>');
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
}

/// Paths (index chains from the root) to every content item, in preorder.
/// Deleting the item at a path removes a whole subtree or text chunk.
pub fn content_paths(node: &Node) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut prefix = Vec::new();
    walk(node, &mut prefix, &mut out);
    out
}

fn walk(node: &Node, prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
    for (i, c) in node.children.iter().enumerate() {
        prefix.push(i);
        out.push(prefix.clone());
        if let Content::Element(child) = c {
            walk(child, prefix, out);
        }
        prefix.pop();
    }
}

/// Removes the content item at `path`. Returns false when the path no
/// longer exists (e.g. after an earlier removal).
pub fn remove_path(node: &mut Node, path: &[usize]) -> bool {
    match path {
        [] => false,
        [i] => {
            if *i < node.children.len() {
                node.children.remove(*i);
                true
            } else {
                false
            }
        }
        [i, rest @ ..] => match node.children.get_mut(*i) {
            Some(Content::Element(child)) => remove_path(child, rest),
            _ => false,
        },
    }
}

/// Whether any element in the tree has two *adjacent* child elements with
/// the same name. This is the trigger condition of the planted synthetic
/// oracle bug used to test the reducer.
pub fn has_adjacent_repeated_siblings(node: &Node) -> bool {
    let names: Vec<&str> = node
        .children
        .iter()
        .filter_map(|c| match c {
            Content::Element(n) => Some(n.name.as_str()),
            Content::Text(_) => None,
        })
        .collect();
    if names.windows(2).any(|w| w[0] == w[1]) {
        return true;
    }
    node.children.iter().any(|c| match c {
        Content::Element(n) => has_adjacent_repeated_siblings(n),
        Content::Text(_) => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_round_trip() {
        let doc = r#"<r a="1 &amp; 2"><x>hi &lt;there&gt;</x><y/><x>bye</x></r>"#;
        let tree = parse_doc(doc).unwrap();
        let out = render(&tree);
        let again = parse_doc(&out).unwrap();
        assert_eq!(tree, again, "render must re-parse to the same tree");
    }

    #[test]
    fn paths_and_removal() {
        let mut tree = parse_doc("<r><a><b/><c/></a><d/></r>").unwrap();
        let paths = content_paths(&tree);
        // a, a/b, a/c, d
        assert_eq!(paths, vec![vec![0], vec![0, 0], vec![0, 1], vec![1]]);
        assert!(remove_path(&mut tree, &[0, 1]));
        assert_eq!(render(&tree), "<r><a><b/></a><d/></r>");
        assert!(!remove_path(&mut tree, &[0, 1]));
    }

    #[test]
    fn adjacent_repeats_detected() {
        assert!(has_adjacent_repeated_siblings(
            &parse_doc("<r><x/><x/></r>").unwrap()
        ));
        assert!(has_adjacent_repeated_siblings(
            &parse_doc("<r><a><x/><x/></a></r>").unwrap()
        ));
        assert!(!has_adjacent_repeated_siblings(
            &parse_doc("<r><x/><y/><x/></r>").unwrap()
        ));
        // Text between elements still counts as adjacency for the planted
        // bug (element siblings, not raw content items).
        assert!(has_adjacent_repeated_siblings(
            &parse_doc("<r><x/>mid<x/></r>").unwrap()
        ));
    }
}
