//! The metamorphic oracle battery.
//!
//! Each oracle is a machine-checked form of one of the paper's semantic
//! claims (or an implementation invariant of this workspace):
//!
//! | oracle | claim |
//! |---|---|
//! | `membership.*` | corpus ⊆ L(inferred) — closed-loop soundness |
//! | `theorem5.sore-recovery` | representative sample ⇒ iDTD returns the target SORE, repair-free (Theorems 1/5) |
//! | `superset.soa-containment` | iDTD output ⊇ L(learned SOA): rewriting preserves, repairs only generalize |
//! | `ordering.idtd-within-crx` | L(SOA) ⊆ L(CRX) always, and L(iDTD) ⊆ L(CRX) when the SORE needed no repairs |
//! | `ordering.kore-within-idtd` | when both derivations are repair-free, L(k-ORE) ⊆ L(SORE): folding occurrences only generalizes |
//! | `identity.shards` | `--jobs N` derivation is byte-identical to sequential inference |
//! | `identity.snapshot` | snapshot save → load → save is the identity and derives identically |
//! | `determinism.one-unambiguous` | every emitted content model is deterministic (XML spec appendix E) |
//! | `roundtrip.dtd` | serialize → parse → serialize is a fixpoint and still validates the corpus |
//! | `roundtrip.xsd` | emitted XSD is well-formed XML and emission is stable |
//!
//! A [`PlantedBug`] deliberately corrupts the membership simulation so the
//! reducer ([`crate::reduce`]) can be tested end to end against a known
//! synthetic failure.

use crate::doc;
use dtdinfer_automata::dfa::{soa_minus_regex_witness, soa_subset_of_regex};
use dtdinfer_automata::glushkov::soa_of_sore;
use dtdinfer_automata::soa::Soa;
use dtdinfer_engine::pool::ingest;
use dtdinfer_engine::snapshot;
use dtdinfer_regex::alphabet::Alphabet;
use dtdinfer_regex::ast::Regex;
use dtdinfer_regex::display::render_dtd;
use dtdinfer_xml::diff::{compare_regexes, Relation};
use dtdinfer_xml::dtd::{ContentSpec, Dtd};
use dtdinfer_xml::extract::Corpus;
use dtdinfer_xml::infer::{infer_dtd_with_stats, InferenceEngine};
use dtdinfer_xml::parser::XmlPullParser;
use dtdinfer_xml::xsd::{generate_xsd, XsdOptions};

/// Every oracle name, in report order. `corpus.generate` is charged by the
/// driver (a target DTD that cannot produce documents is itself a bug);
/// the rest are charged by [`check_case`].
pub const ORACLES: [&str; 15] = [
    "corpus.generate",
    "corpus.parse",
    "membership.crx",
    "membership.idtd",
    "membership.kore",
    "membership.auto",
    "theorem5.sore-recovery",
    "superset.soa-containment",
    "ordering.idtd-within-crx",
    "ordering.kore-within-idtd",
    "identity.shards",
    "identity.snapshot",
    "determinism.one-unambiguous",
    "roundtrip.dtd",
    "roundtrip.xsd",
];

/// A synthetic, deliberately wrong oracle behavior, reachable only through
/// the hidden `--plant-bug` flag / test configuration. Used to prove the
/// reducer shrinks real failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlantedBug {
    /// The membership oracle falsely rejects any document containing two
    /// adjacent same-name sibling elements.
    RepeatedSibling,
}

impl PlantedBug {
    /// Parses the hidden CLI spelling.
    pub fn parse(spec: &str) -> Result<PlantedBug, String> {
        match spec {
            "repeated-sibling" => Ok(PlantedBug::RepeatedSibling),
            other => Err(format!("unknown planted bug {other:?}")),
        }
    }
}

/// Oracle-run options.
#[derive(Debug, Default, Clone, Copy)]
pub struct OracleOptions {
    /// Inject a known-wrong oracle behavior (reducer testing only).
    pub planted: Option<PlantedBug>,
    /// Run only the named oracle (used by the reducer's predicate so
    /// shrinking does not pay for the full battery).
    pub only: Option<&'static str>,
}

/// One oracle violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which oracle fired (one of [`ORACLES`]).
    pub oracle: &'static str,
    /// Deterministic human-readable evidence.
    pub detail: String,
}

/// The outcome of one case: which oracles ran and what they found.
#[derive(Debug, Default)]
pub struct CaseResult {
    /// Oracles that ran to completion on this case.
    pub checked: Vec<&'static str>,
    /// All violations, in oracle order.
    pub violations: Vec<Violation>,
}

impl CaseResult {
    fn violation(&mut self, oracle: &'static str, detail: String) {
        self.violations.push(Violation { oracle, detail });
    }

    /// Whether the named oracle fired at least once.
    pub fn failed(&self, oracle: &str) -> bool {
        self.violations.iter().any(|v| v.oracle == oracle)
    }
}

/// Runs the oracle battery over one case. `target` is the generating DTD
/// when known (fuzz cases and replays have it; ad-hoc corpora may not) —
/// without it the target-relative oracles are skipped.
pub fn check_case(target: Option<&Dtd>, docs: &[String], opts: &OracleOptions) -> CaseResult {
    let mut out = CaseResult::default();
    let want = |name: &'static str| opts.only.is_none_or(|only| only == name);

    // Parse the corpus once; every downstream oracle needs it.
    let mut corpus = Corpus::new();
    let mut parse_failed = false;
    for (i, d) in docs.iter().enumerate() {
        if let Err(e) = corpus.add_document(d) {
            out.violation("corpus.parse", format!("document {i}: {e}"));
            parse_failed = true;
        }
    }
    // Parsing always runs (every downstream oracle needs the corpus), so
    // it is always recorded as checked, even under an `only` filter.
    out.checked.push("corpus.parse");
    if parse_failed {
        return out;
    }
    let canon = corpus.canonicalized();
    let (crx_dtd, _) = infer_dtd_with_stats(&canon, InferenceEngine::Crx);
    let (idtd_dtd, idtd_reports) = infer_dtd_with_stats(&canon, InferenceEngine::Idtd);
    let (kore_dtd, kore_reports) = infer_dtd_with_stats(&canon, InferenceEngine::Kore);
    let (auto_dtd, _) = infer_dtd_with_stats(&canon, InferenceEngine::Auto);

    // membership.{crx,idtd,kore,auto}: every document of the corpus must
    // be in the language of the DTD inferred from that corpus (Glushkov
    // simulation inside Dtd::validate).
    for (name, dtd) in [
        ("membership.crx", &crx_dtd),
        ("membership.idtd", &idtd_dtd),
        ("membership.kore", &kore_dtd),
        ("membership.auto", &auto_dtd),
    ] {
        if !want(name) {
            continue;
        }
        for (i, d) in docs.iter().enumerate() {
            match dtd.validate(d) {
                Ok(violations) => {
                    for v in violations {
                        out.violation(name, format!("document {i}: {v}"));
                    }
                }
                Err(e) => out.violation(name, format!("document {i}: {e}")),
            }
            if name == "membership.idtd" && opts.planted == Some(PlantedBug::RepeatedSibling) {
                if let Ok(tree) = doc::parse_doc(d) {
                    if doc::has_adjacent_repeated_siblings(&tree) {
                        out.violation(
                            name,
                            format!("document {i}: adjacent repeated siblings (planted bug)"),
                        );
                    }
                }
            }
        }
        out.checked.push(name);
    }

    // theorem5.sore-recovery: when the sample is representative of the
    // target content model (the learned SOA equals the target's Glushkov
    // SOA), iDTD must return a language-equal expression without repairs.
    if want("theorem5.sore-recovery") {
        if let Some(target) = target {
            for (&sym, spec) in &target.elements {
                let ContentSpec::Children(target_regex) = spec else {
                    continue;
                };
                let name = target.alphabet.name(sym);
                let Some(words) = canon.sequences_of(name) else {
                    continue; // element never observed
                };
                let Some(mapped) = remap_regex(target_regex, &target.alphabet, &canon.alphabet)
                else {
                    continue; // some target child never observed: not representative
                };
                let Some(target_soa) = soa_of_sore(&mapped) else {
                    continue; // target model not single-occurrence (scenario shapes)
                };
                if Soa::learn(words.words()) != target_soa {
                    continue; // not representative: Theorem 5 makes no promise
                }
                let inferred = idtd_dtd
                    .alphabet
                    .get(name)
                    .and_then(|s| idtd_dtd.elements.get(&s));
                match inferred {
                    Some(ContentSpec::Children(r)) => {
                        let rel =
                            compare_regexes(target_regex, &target.alphabet, r, &idtd_dtd.alphabet);
                        if rel != Relation::Equal {
                            out.violation(
                                "theorem5.sore-recovery",
                                format!(
                                    "element {name}: representative sample but inferred {} is {rel} vs target {}",
                                    render_dtd(r, &idtd_dtd.alphabet),
                                    render_dtd(target_regex, &target.alphabet)
                                ),
                            );
                        }
                        if let Some(report) = idtd_reports.iter().find(|r| r.name == name) {
                            if report.repairs > 0 || report.fallbacks > 0 {
                                out.violation(
                                    "theorem5.sore-recovery",
                                    format!(
                                        "element {name}: representative sample needed {} repair(s), {} fallback(s)",
                                        report.repairs, report.fallbacks
                                    ),
                                );
                            }
                        }
                    }
                    other => out.violation(
                        "theorem5.sore-recovery",
                        format!(
                            "element {name}: representative sample of a child model but inferred {other:?}"
                        ),
                    ),
                }
            }
            out.checked.push("theorem5.sore-recovery");
        }
    }

    // superset.soa-containment: the iDTD expression for an element must
    // contain the language of the SOA learned from that element's child
    // words — rewriting is language-preserving and repairs only add.
    if want("superset.soa-containment") {
        for (&sym, spec) in &idtd_dtd.elements {
            let ContentSpec::Children(r) = spec else {
                continue;
            };
            let name = idtd_dtd.alphabet.name(sym);
            let Some(words) = canon.sequences_of(name) else {
                continue;
            };
            let soa = Soa::learn(words.words());
            if !soa_subset_of_regex(&soa, r) {
                let witness = soa_minus_regex_witness(&soa, r)
                    .map(|w| canon.alphabet.render_word(&w, " "))
                    .unwrap_or_default();
                out.violation(
                    "superset.soa-containment",
                    format!(
                        "element {name}: SOA word [{witness}] not in {}",
                        render_dtd(r, &idtd_dtd.alphabet)
                    ),
                );
            }
        }
        out.checked.push("superset.soa-containment");
    }

    // ordering.idtd-within-crx: the CHARE always contains the learned SOA
    // (CRX's classes and multiplicities come from exactly the precedence
    // pairs the SOA's edges record), and a repair-free SORE is
    // language-equal to the SOA — so it must then sit within the CHARE.
    // Repaired SOREs may generalize past the CHARE (repairs add edges the
    // precedence order never produced), so the direct SORE-vs-CHARE
    // comparison is gated on a repair-free derivation.
    if want("ordering.idtd-within-crx") {
        for (&sym, crx_spec) in &crx_dtd.elements {
            let name = crx_dtd.alphabet.name(sym);
            let idtd_spec = idtd_dtd
                .alphabet
                .get(name)
                .and_then(|s| idtd_dtd.elements.get(&s));
            match (crx_spec, idtd_spec) {
                (ContentSpec::Children(rc), Some(ContentSpec::Children(ri))) => {
                    if let Some(words) = canon.sequences_of(name) {
                        let soa = Soa::learn(words.words());
                        if !soa_subset_of_regex(&soa, rc) {
                            let witness = soa_minus_regex_witness(&soa, rc)
                                .map(|w| canon.alphabet.render_word(&w, " "))
                                .unwrap_or_default();
                            out.violation(
                                "ordering.idtd-within-crx",
                                format!(
                                    "element {name}: SOA word [{witness}] not in CRX {}",
                                    render_dtd(rc, &crx_dtd.alphabet)
                                ),
                            );
                        }
                    }
                    let repair_free = idtd_reports
                        .iter()
                        .find(|r| r.name == name)
                        .map(|r| r.repairs == 0 && r.fallbacks == 0)
                        .unwrap_or(false);
                    if repair_free {
                        let rel = compare_regexes(rc, &crx_dtd.alphabet, ri, &idtd_dtd.alphabet);
                        if rel != Relation::Equal && rel != Relation::Stricter {
                            out.violation(
                                "ordering.idtd-within-crx",
                                format!(
                                    "element {name}: repair-free iDTD {} is {rel} vs CRX {}",
                                    render_dtd(ri, &idtd_dtd.alphabet),
                                    render_dtd(rc, &crx_dtd.alphabet)
                                ),
                            );
                        }
                    }
                }
                (crx_spec, Some(idtd_spec)) => {
                    if std::mem::discriminant(crx_spec) != std::mem::discriminant(idtd_spec) {
                        out.violation(
                            "ordering.idtd-within-crx",
                            format!(
                                "element {name}: engines disagree on content kind \
                                 ({crx_spec:?} vs {idtd_spec:?})"
                            ),
                        );
                    }
                }
                (_, None) => out.violation(
                    "ordering.idtd-within-crx",
                    format!("element {name}: inferred by CRX but absent from iDTD output"),
                ),
            }
        }
        out.checked.push("ordering.idtd-within-crx");
    }

    // ordering.kore-within-idtd: the k-ORE distinguishes occurrences the
    // SORE merges, so folding marks away can only generalize — when *both*
    // derivations are repair- and fallback-free, L(k-ORE) ⊆ L(SORE).
    // (Repairs on either side add language outside the other's view, so
    // the comparison is gated exactly like the CRX ordering above.)
    if want("ordering.kore-within-idtd") {
        for (&sym, kore_spec) in &kore_dtd.elements {
            let name = kore_dtd.alphabet.name(sym);
            let idtd_spec = idtd_dtd
                .alphabet
                .get(name)
                .and_then(|s| idtd_dtd.elements.get(&s));
            let (ContentSpec::Children(rk), Some(ContentSpec::Children(ri))) =
                (kore_spec, idtd_spec)
            else {
                continue;
            };
            let repair_free = |reports: &[dtdinfer_xml::infer::ElementReport]| {
                reports
                    .iter()
                    .find(|r| r.name == name)
                    .map(|r| r.repairs == 0 && r.fallbacks == 0)
                    .unwrap_or(false)
            };
            if !repair_free(&kore_reports) || !repair_free(&idtd_reports) {
                continue;
            }
            let rel = compare_regexes(ri, &idtd_dtd.alphabet, rk, &kore_dtd.alphabet);
            if rel != Relation::Equal && rel != Relation::Stricter {
                out.violation(
                    "ordering.kore-within-idtd",
                    format!(
                        "element {name}: repair-free k-ORE {} is {rel} vs SORE {}",
                        render_dtd(rk, &kore_dtd.alphabet),
                        render_dtd(ri, &idtd_dtd.alphabet)
                    ),
                );
            }
        }
        out.checked.push("ordering.kore-within-idtd");
    }

    // identity.shards: sharded ingestion + derivation must be
    // byte-identical to the sequential pipeline for every worker count.
    if want("identity.shards") && !docs.is_empty() {
        for jobs in [2usize, 5] {
            match ingest(docs, jobs) {
                Ok(ingested) => {
                    for (engine, sequential) in [
                        (InferenceEngine::Crx, &crx_dtd),
                        (InferenceEngine::Idtd, &idtd_dtd),
                        (InferenceEngine::Kore, &kore_dtd),
                        (InferenceEngine::Auto, &auto_dtd),
                    ] {
                        let sharded = ingested.state.derive(engine).0.serialize();
                        if sharded != sequential.serialize() {
                            out.violation(
                                "identity.shards",
                                format!(
                                    "jobs={jobs} {engine:?}: sharded output differs from sequential"
                                ),
                            );
                        }
                    }
                }
                Err(e) => out.violation("identity.shards", format!("jobs={jobs}: {e}")),
            }
        }
        out.checked.push("identity.shards");
    }

    // identity.snapshot: save → load → save is the identity, and the
    // loaded state derives the same DTD as the live pipeline.
    if want("identity.snapshot") && !docs.is_empty() {
        match ingest(docs, 3) {
            Ok(ingested) => {
                let text = snapshot::save(&ingested.state);
                match snapshot::load(&text) {
                    Ok(loaded) => {
                        if snapshot::save(&loaded) != text {
                            out.violation(
                                "identity.snapshot",
                                "save(load(save(state))) is not the identity".to_owned(),
                            );
                        }
                        for (engine, sequential) in [
                            (InferenceEngine::Idtd, &idtd_dtd),
                            (InferenceEngine::Kore, &kore_dtd),
                            (InferenceEngine::Auto, &auto_dtd),
                        ] {
                            let derived = loaded.derive(engine).0.serialize();
                            if derived != sequential.serialize() {
                                out.violation(
                                    "identity.snapshot",
                                    format!(
                                        "snapshot-derived {engine:?} DTD differs from sequential"
                                    ),
                                );
                            }
                        }
                    }
                    Err(e) => out.violation(
                        "identity.snapshot",
                        format!("load of fresh save failed: {e}"),
                    ),
                }
            }
            Err(e) => out.violation("identity.snapshot", format!("ingest: {e}")),
        }
        out.checked.push("identity.snapshot");
    }

    // determinism.one-unambiguous: every emitted content model must be
    // deterministic (SOREs and CHAREs are, by construction — this guards
    // the construction).
    if want("determinism.one-unambiguous") {
        for (engine, dtd) in [
            ("crx", &crx_dtd),
            ("idtd", &idtd_dtd),
            ("kore", &kore_dtd),
            ("auto", &auto_dtd),
        ] {
            for issue in dtd.lint() {
                out.violation("determinism.one-unambiguous", format!("{engine}: {issue}"));
            }
        }
        out.checked.push("determinism.one-unambiguous");
    }

    // roundtrip.dtd: serialize → parse → serialize is a fixpoint, and the
    // re-parsed DTD still validates every document.
    if want("roundtrip.dtd") {
        for (engine, dtd) in [
            ("crx", &crx_dtd),
            ("idtd", &idtd_dtd),
            ("kore", &kore_dtd),
            ("auto", &auto_dtd),
        ] {
            let text = dtd.serialize();
            match Dtd::parse(&text) {
                Ok(reparsed) => {
                    if reparsed.serialize() != text {
                        out.violation(
                            "roundtrip.dtd",
                            format!("{engine}: serialize is not a fixpoint under re-parse"),
                        );
                    }
                    for (i, d) in docs.iter().enumerate() {
                        match reparsed.validate(d) {
                            Ok(v) if v.is_empty() => {}
                            Ok(v) => out.violation(
                                "roundtrip.dtd",
                                format!("{engine}: document {i} invalid after re-parse: {}", v[0]),
                            ),
                            Err(e) => out
                                .violation("roundtrip.dtd", format!("{engine}: document {i}: {e}")),
                        }
                    }
                }
                Err(e) => out.violation("roundtrip.dtd", format!("{engine}: {e}")),
            }
        }
        out.checked.push("roundtrip.dtd");
    }

    // roundtrip.xsd: the emitted schema must be well-formed XML and
    // emission must be stable.
    if want("roundtrip.xsd") {
        let opts_x = XsdOptions {
            numeric_threshold: None,
        };
        let xsd = generate_xsd(&idtd_dtd, Some(&canon), opts_x);
        match XmlPullParser::new(&xsd).collect_events() {
            Ok(events) => {
                if events.is_empty() {
                    out.violation("roundtrip.xsd", "emitted XSD has no XML events".to_owned());
                }
            }
            Err(e) => out.violation(
                "roundtrip.xsd",
                format!("emitted XSD is not well-formed: {e}"),
            ),
        }
        if generate_xsd(&idtd_dtd, Some(&canon), opts_x) != xsd {
            out.violation("roundtrip.xsd", "XSD emission is not stable".to_owned());
        }
        out.checked.push("roundtrip.xsd");
    }

    out
}

/// Maps `r` from one alphabet into another by name, without interning:
/// `None` when some symbol's name is absent from `to`.
fn remap_regex(r: &Regex, from: &Alphabet, to: &Alphabet) -> Option<Regex> {
    Some(match r {
        Regex::Symbol(s) => Regex::Symbol(to.get(from.name(*s))?),
        Regex::Concat(parts) => Regex::Concat(
            parts
                .iter()
                .map(|p| remap_regex(p, from, to))
                .collect::<Option<Vec<_>>>()?,
        ),
        Regex::Union(parts) => Regex::Union(
            parts
                .iter()
                .map(|p| remap_regex(p, from, to))
                .collect::<Option<Vec<_>>>()?,
        ),
        Regex::Optional(inner) => Regex::Optional(Box::new(remap_regex(inner, from, to)?)),
        Regex::Plus(inner) => Regex::Plus(Box::new(remap_regex(inner, from, to)?)),
        Regex::Star(inner) => Regex::Star(Box::new(remap_regex(inner, from, to)?)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs(sources: &[&str]) -> Vec<String> {
        sources.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn clean_case_has_no_violations() {
        let target = Dtd::parse(
            "<!ELEMENT r (a, b?, c+)><!ELEMENT a (#PCDATA)>\
             <!ELEMENT b EMPTY><!ELEMENT c (#PCDATA)>",
        )
        .unwrap();
        let corpus = docs(&[
            "<r><a>x</a><b/><c>1</c></r>",
            "<r><a>y</a><c>2</c><c>3</c></r>",
            "<r><a>z</a><b/><c>4</c><c>5</c></r>",
        ]);
        let result = check_case(Some(&target), &corpus, &OracleOptions::default());
        assert!(result.violations.is_empty(), "{:?}", result.violations);
        assert!(result.checked.contains(&"theorem5.sore-recovery"));
    }

    #[test]
    fn planted_bug_fires_only_when_enabled() {
        let corpus = docs(&["<r><x/><x/></r>", "<r><x/></r>"]);
        let clean = check_case(None, &corpus, &OracleOptions::default());
        assert!(clean.violations.is_empty(), "{:?}", clean.violations);
        let planted = check_case(
            None,
            &corpus,
            &OracleOptions {
                planted: Some(PlantedBug::RepeatedSibling),
                only: None,
            },
        );
        assert!(planted.failed("membership.idtd"));
    }

    #[test]
    fn only_filter_restricts_the_battery() {
        let corpus = docs(&["<r><x/></r>"]);
        let result = check_case(
            None,
            &corpus,
            &OracleOptions {
                planted: None,
                only: Some("membership.idtd"),
            },
        );
        assert_eq!(result.checked, vec!["corpus.parse", "membership.idtd"]);
    }

    #[test]
    fn parse_failure_reported() {
        let result = check_case(None, &docs(&["<r><open></r>"]), &OracleOptions::default());
        assert!(result.failed("corpus.parse"));
    }

    #[test]
    fn remap_by_name() {
        let mut a = Alphabet::new();
        let r = dtdinfer_regex::parser::parse("(x | y) z?", &mut a).unwrap();
        let mut b = Alphabet::new();
        for n in ["z", "y", "x"] {
            b.intern(n);
        }
        let mapped = remap_regex(&r, &a, &b).unwrap();
        assert_eq!(render_dtd(&mapped, &b), render_dtd(&r, &a));
        let sparse = Alphabet::from_names(["x", "y"]);
        assert!(remap_regex(&r, &a, &sparse).is_none());
    }
}
