//! The fuzz driver: generate → sample → infer → check → reduce → persist.
//!
//! Fully deterministic for a given `(seed, cases)` pair: per-case seeds
//! are derived with a splitmix64 step, shapes rotate in a fixed order, and
//! the report contains no timing, so two runs with the same seed are
//! byte-identical (the `--time-budget` escape hatch trades that away).

use crate::corpus::CaseFile;
use crate::oracle::{check_case, CaseResult, OracleOptions, PlantedBug, Violation, ORACLES};
use crate::reduce::reduce;
use crate::schema::{random_dtd, Shape, SHAPES};
use dtdinfer_regex::sample::SampleConfig;
use dtdinfer_xml::dtd::Dtd;
use dtdinfer_xml::generate::{sample_documents, GenerateConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Most violations to keep verbatim in the report (counters are exact).
const MAX_DETAILS: usize = 50;

/// Most reduced regression files to persist per run.
const MAX_PERSISTED: usize = 16;

/// Corpus sizes exercised per coverage level: tiny samples stress the
/// repair path, large ones the Theorem 5 recovery path.
const COVERAGE_LEVELS: [usize; 4] = [2, 6, 25, 90];

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; everything else derives from it.
    pub seed: u64,
    /// Number of cases to run.
    pub cases: usize,
    /// Optional wall-clock budget; the run stops early (and is no longer
    /// run-to-run byte-identical) when exceeded.
    pub time_budget: Option<Duration>,
    /// Where reduced failing cases are persisted.
    pub corpus_dir: PathBuf,
    /// Hidden: inject a known-wrong oracle (reducer testing).
    pub planted: Option<PlantedBug>,
    /// Optional engine focus. `kore`/`auto` restrict the shape rotation to
    /// repeating-symbol grammars (the inputs where those engines differ
    /// from iDTD); `crx`/`idtd` keep the full rotation. The oracle battery
    /// always runs in full — the focus only steers *generation*.
    pub engine: Option<String>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            cases: 100,
            time_budget: None,
            corpus_dir: PathBuf::from("fuzz/corpus"),
            planted: None,
            engine: None,
        }
    }
}

/// The outcome of a fuzz run.
#[derive(Debug, Default)]
pub struct FuzzReport {
    /// Master seed (echoed for the report header).
    pub seed: u64,
    /// Cases requested.
    pub cases_requested: usize,
    /// Cases actually run (less than requested only under a time budget).
    pub cases_run: usize,
    /// Whether the time budget stopped the run early.
    pub stopped_early: bool,
    /// Per-oracle: in how many cases the oracle ran.
    pub checked: BTreeMap<&'static str, u64>,
    /// Per-oracle violation counts.
    pub violations: BTreeMap<&'static str, u64>,
    /// First [`MAX_DETAILS`] violations, verbatim.
    pub details: Vec<(usize, Violation)>,
    /// Regression files written under the corpus directory.
    pub persisted: Vec<String>,
}

impl FuzzReport {
    /// Total violations across all oracles.
    pub fn total_violations(&self) -> u64 {
        self.violations.values().sum()
    }

    /// Renders the deterministic report table (no timing, stable order).
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "fuzz: seed {}, {} case(s) requested, {} run\n",
            self.seed, self.cases_requested, self.cases_run
        );
        if self.stopped_early {
            out.push_str("fuzz: time budget exhausted before all cases ran\n");
        }
        out.push_str(&format!(
            "{:<28} {:>8} {:>11}\n",
            "oracle", "checked", "violations"
        ));
        for name in ORACLES {
            out.push_str(&format!(
                "{:<28} {:>8} {:>11}\n",
                name,
                self.checked.get(name).copied().unwrap_or(0),
                self.violations.get(name).copied().unwrap_or(0)
            ));
        }
        for (case, v) in &self.details {
            out.push_str(&format!("case {case}: [{}] {}\n", v.oracle, v.detail));
        }
        for f in &self.persisted {
            out.push_str(&format!("reduced regression written: {f}\n"));
        }
        out.push_str(&format!(
            "fuzz: {} case(s), {} violation(s)\n",
            self.cases_run,
            self.total_violations()
        ));
        out
    }
}

/// One splitmix64 step — the per-case seed derivation.
fn splitmix(seed: u64, i: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(i.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs the fuzz driver.
pub fn run(cfg: &FuzzConfig) -> Result<FuzzReport, String> {
    let started = Instant::now();
    let mut report = FuzzReport {
        seed: cfg.seed,
        cases_requested: cfg.cases,
        ..FuzzReport::default()
    };
    let opts = OracleOptions {
        planted: cfg.planted,
        only: None,
    };
    // The engine focus narrows *generation* only: kore/auto cases are
    // interesting exactly on grammars that repeat symbols, so a focused
    // run spends its whole budget there instead of one case in seven.
    let shapes: &[Shape] = match cfg.engine.as_deref() {
        None | Some("crx") | Some("idtd") => &SHAPES[..],
        Some("kore") | Some("auto") => &[Shape::RepeatedSymbols],
        Some(other) => return Err(format!("unknown fuzz engine focus {other:?}")),
    };
    for case_index in 0..cfg.cases {
        if let Some(budget) = cfg.time_budget {
            if started.elapsed() > budget {
                report.stopped_early = true;
                break;
            }
        }
        let _span = dtdinfer_obs::span("fuzz.case");
        report.cases_run += 1;
        // Progress heartbeat: the timeseries stall detector watches this
        // counter, so a wedged oracle shows up as a stall warning.
        dtdinfer_obs::count("fuzz.cases", 1);
        let case_seed = splitmix(cfg.seed, case_index as u64);
        let mut rng = StdRng::seed_from_u64(case_seed);
        let shape = shapes[case_index % shapes.len()];
        let target = random_dtd(rng.gen_range(0..u64::MAX), shape);
        let n_docs = COVERAGE_LEVELS[rng.gen_range(0..COVERAGE_LEVELS.len())];
        let gen_cfg = GenerateConfig {
            words: SampleConfig {
                opt_prob: rng.gen_range(0.2..0.8),
                repeat_prob: rng.gen_range(0.2..0.6),
                max_repeat: 3,
            },
            text_variety: 40,
        };
        let docs = match sample_documents(&target, &gen_cfg, rng.gen_range(0..u64::MAX), n_docs) {
            Ok(docs) => docs,
            Err(e) => {
                // The generator itself must accept every target we build.
                bump(&mut report.checked, "corpus.generate", 1);
                bump(&mut report.violations, "corpus.generate", 1);
                record_details(
                    &mut report,
                    case_index,
                    &[Violation {
                        oracle: "corpus.generate",
                        detail: e.to_string(),
                    }],
                );
                continue;
            }
        };
        bump(&mut report.checked, "corpus.generate", 1);
        dtdinfer_obs::observe("fuzz.case.docs", docs.len() as u64);
        let result = check_case(Some(&target), &docs, &opts);
        absorb_case(&mut report, case_index, &result);
        if !result.violations.is_empty() {
            persist_reductions(cfg, &mut report, case_index, &target, &docs, &result)?;
        }
    }
    for name in ORACLES {
        dtdinfer_obs::count_labeled(
            "fuzz.checked",
            name,
            report.checked.get(name).copied().unwrap_or(0),
        );
        let violations = report.violations.get(name).copied().unwrap_or(0);
        if violations > 0 {
            dtdinfer_obs::count_labeled("fuzz.violations", name, violations);
        }
    }
    Ok(report)
}

fn bump(map: &mut BTreeMap<&'static str, u64>, key: &'static str, by: u64) {
    *map.entry(key).or_insert(0) += by;
}

fn absorb_case(report: &mut FuzzReport, case_index: usize, result: &CaseResult) {
    for name in &result.checked {
        bump(&mut report.checked, name, 1);
    }
    for v in &result.violations {
        bump(&mut report.violations, v.oracle, 1);
    }
    record_details(report, case_index, &result.violations);
}

fn record_details(report: &mut FuzzReport, case_index: usize, violations: &[Violation]) {
    for v in violations {
        if report.details.len() < MAX_DETAILS {
            report.details.push((case_index, v.clone()));
        }
    }
}

/// Reduces each distinct failing oracle of a case and persists the result
/// as a replayable regression file.
fn persist_reductions(
    cfg: &FuzzConfig,
    report: &mut FuzzReport,
    case_index: usize,
    target: &Dtd,
    docs: &[String],
    result: &CaseResult,
) -> Result<(), String> {
    let mut seen: Vec<&'static str> = Vec::new();
    for v in &result.violations {
        if seen.contains(&v.oracle) || report.persisted.len() >= MAX_PERSISTED {
            continue;
        }
        seen.push(v.oracle);
        let oracle = v.oracle;
        let predicate_opts = OracleOptions {
            planted: cfg.planted,
            only: Some(oracle),
        };
        let reduced = reduce(docs, |candidate| {
            check_case(Some(target), candidate, &predicate_opts).failed(oracle)
        });
        let case_file = CaseFile {
            seed: cfg.seed,
            case: case_index,
            oracle: oracle.to_owned(),
            target: target.serialize(),
            docs: reduced,
        };
        std::fs::create_dir_all(&cfg.corpus_dir)
            .map_err(|e| format!("{}: {e}", cfg.corpus_dir.display()))?;
        let path = cfg.corpus_dir.join(case_file.file_name());
        std::fs::write(&path, case_file.render())
            .map_err(|e| format!("{}: {e}", path.display()))?;
        report.persisted.push(path.display().to_string());
    }
    Ok(())
}

/// Replays a persisted case file: re-runs the full oracle battery (no
/// planted bugs) on its target and documents.
pub fn replay_file(text: &str) -> Result<(CaseFile, CaseResult), String> {
    let case = CaseFile::parse(text)?;
    let target = if case.target.is_empty() {
        None
    } else {
        Some(Dtd::parse(&case.target).map_err(|e| format!("case target: {e}"))?)
    };
    let result = check_case(target.as_ref(), &case.docs, &OracleOptions::default());
    Ok((case, result))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dtdinfer-fuzz-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn clean_run_finds_no_violations_and_is_deterministic() {
        let cfg = FuzzConfig {
            seed: 7,
            cases: 18,
            corpus_dir: tempdir("clean"),
            ..FuzzConfig::default()
        };
        let a = run(&cfg).unwrap();
        assert_eq!(a.total_violations(), 0, "{}", a.render_text());
        assert_eq!(a.cases_run, 18);
        assert!(a.persisted.is_empty());
        let b = run(&cfg).unwrap();
        assert_eq!(a.render_text(), b.render_text());
        let _ = std::fs::remove_dir_all(&cfg.corpus_dir);
    }

    #[test]
    fn kore_focus_runs_repeated_symbol_grammars_cleanly() {
        let cfg = FuzzConfig {
            seed: 11,
            cases: 12,
            corpus_dir: tempdir("kore-focus"),
            engine: Some("kore".to_owned()),
            ..FuzzConfig::default()
        };
        let report = run(&cfg).unwrap();
        assert_eq!(report.total_violations(), 0, "{}", report.render_text());
        assert_eq!(report.cases_run, 12);
        // The kore-specific oracles must actually have run.
        for oracle in ["membership.kore", "ordering.kore-within-idtd"] {
            assert!(
                report.checked.get(oracle).copied().unwrap_or(0) > 0,
                "{oracle} never ran:\n{}",
                report.render_text()
            );
        }
        let _ = std::fs::remove_dir_all(&cfg.corpus_dir);
    }

    #[test]
    fn unknown_engine_focus_is_rejected() {
        let cfg = FuzzConfig {
            engine: Some("bogus".to_owned()),
            corpus_dir: tempdir("bogus-engine"),
            ..FuzzConfig::default()
        };
        assert!(run(&cfg).is_err());
        let _ = std::fs::remove_dir_all(&cfg.corpus_dir);
    }

    #[test]
    fn splitmix_seeds_are_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..1000 {
            assert!(seen.insert(splitmix(42, i)));
        }
    }

    #[test]
    fn planted_bug_is_reduced_persisted_and_replayable() {
        let dir = tempdir("planted");
        let cfg = FuzzConfig {
            seed: 42,
            cases: 6,
            corpus_dir: dir.clone(),
            planted: Some(PlantedBug::RepeatedSibling),
            ..FuzzConfig::default()
        };
        let report = run(&cfg).unwrap();
        assert!(
            report
                .violations
                .get("membership.idtd")
                .copied()
                .unwrap_or(0)
                > 0,
            "planted bug must fire within the batch:\n{}",
            report.render_text()
        );
        assert!(!report.persisted.is_empty());
        for path in &report.persisted {
            let text = std::fs::read_to_string(path).unwrap();
            let (case, result) = replay_file(&text).unwrap();
            // The reducer must shrink to a tiny corpus…
            assert!(
                case.docs.len() <= 3,
                "reduced corpus too large: {} docs in {path}",
                case.docs.len()
            );
            // …and with the planted bug off, the replay is clean (the
            // "bug" lives in the checker, not the pipeline).
            assert!(
                result.violations.is_empty(),
                "replay of {path}: {:?}",
                result.violations
            );
        }
        // Determinism: a second run persists byte-identical files.
        let dir2 = tempdir("planted2");
        let cfg2 = FuzzConfig {
            corpus_dir: dir2.clone(),
            ..cfg.clone()
        };
        let report2 = run(&cfg2).unwrap();
        assert_eq!(report.persisted.len(), report2.persisted.len());
        for (a, b) in report.persisted.iter().zip(&report2.persisted) {
            assert_eq!(
                std::fs::read_to_string(a).unwrap(),
                std::fs::read_to_string(b).unwrap()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn time_budget_stops_early() {
        let cfg = FuzzConfig {
            seed: 1,
            cases: 10_000,
            time_budget: Some(Duration::from_millis(50)),
            corpus_dir: tempdir("budget"),
            ..FuzzConfig::default()
        };
        let report = run(&cfg).unwrap();
        assert!(report.stopped_early);
        assert!(report.cases_run < 10_000);
        let _ = std::fs::remove_dir_all(&cfg.corpus_dir);
    }
}
