//! # dtdinfer — inference of concise DTDs from XML data
//!
//! A Rust implementation of Bex, Neven, Schwentick & Tuyls,
//! *"Inference of Concise DTDs from XML Data"* (VLDB 2006): learning
//! **single occurrence regular expressions** (SOREs) and **chain regular
//! expressions** (CHAREs) from positive example strings, and from there
//! complete DTDs and simple XSDs for XML corpora.
//!
//! This crate is the facade: it re-exports the whole workspace under one
//! name and hosts the `dtdinfer` command-line tool and the runnable
//! examples.
//!
//! ## Quickstart
//!
//! ```
//! use dtdinfer::xml::{Corpus, infer_dtd, InferenceEngine};
//!
//! let mut corpus = Corpus::new();
//! corpus
//!     .add_document("<book><title>T</title><author>A</author><author>B</author></book>")
//!     .unwrap();
//! corpus
//!     .add_document("<book><title>U</title><author>C</author></book>")
//!     .unwrap();
//! let dtd = infer_dtd(&corpus, InferenceEngine::Crx);
//! assert!(dtd.serialize().contains("<!ELEMENT book (title, author+)>"));
//! ```
//!
//! ## Learning expressions directly
//!
//! ```
//! use dtdinfer::regex::alphabet::Alphabet;
//! use dtdinfer::core::{crx, idtd_from_words};
//! use dtdinfer::regex::display::render;
//!
//! let mut al = Alphabet::new();
//! let words: Vec<_> = ["bacacdacde", "cbacdbacde", "abccaadcde"]
//!     .iter()
//!     .map(|w| al.word_from_chars(w))
//!     .collect();
//! let sore = idtd_from_words(&words).into_regex().unwrap();
//! assert_eq!(render(&sore, &al), "((b? (a | c))+ d)+ e");
//! let chare = crx(&words).into_regex().unwrap();
//! assert_eq!(render(&chare, &al), "(b | a | c | d)+ e");
//! ```

#![warn(missing_docs)]

/// Regular-expression syntax: AST, parser, printer, SORE/CHARE classes,
/// normalization, sampling, numerical predicates.
pub use dtdinfer_regex as regex;

/// Automata substrate: SOAs, 2T-INF, Glushkov, GFAs, state elimination,
/// DFA-based language comparison.
pub use dtdinfer_automata as automata;

/// The inference algorithms: `rewrite`, `iDTD`, `CRX`, incremental state,
/// noise handling.
pub use dtdinfer_core as core;

/// XML substrate: pull parser, corpus extraction, DTD model/validation,
/// XSD generation.
pub use dtdinfer_xml as xml;

/// Baselines: XTRACT reimplementation and the Trang-like inferrer.
pub use dtdinfer_baselines as baselines;

/// Workload generators and the paper's experiment scenarios.
pub use dtdinfer_gen as gen;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        let mut al = crate::regex::alphabet::Alphabet::new();
        let w = al.word_from_chars("ab");
        let model = crate::core::crx(&[w]);
        assert!(model.as_regex().is_some());
    }
}
