//! The `dtdinfer` command-line tool.
//!
//! ```text
//! dtdinfer infer [--engine crx|idtd|idtd-noise:<N>|kore|auto] [--jobs N] [--xsd] [--numeric <N>] FILE...
//! dtdinfer stats [--engine ...] [--jobs N] FILE...  (per-element derivation report)
//! dtdinfer snapshot save|load|update     (persist engine state, warm-start)
//! dtdinfer validate --dtd SCHEMA.dtd FILE...
//! dtdinfer fuzz [--seed S] [--cases N] [--replay CASE]
//! dtdinfer sample [--count N] [--seed S] 'EXPRESSION'
//! dtdinfer learn [--engine ...] [--render dtd|paper]  (words on stdin)
//! ```
//!
//! `infer`, `stats`, and `learn` also accept the observability flags
//! `--metrics <FILE|->`, `--trace <FILE|->`, `--trace-format jsonl|chrome`,
//! and `-v`/`--verbose`; see the README's Observability section.

use dtdinfer_core::crx::crx;
use dtdinfer_core::idtd::idtd_from_words;
use dtdinfer_engine::pool::{ingest_source, Ingest};
use dtdinfer_engine::source::PathSource;
use dtdinfer_engine::{snapshot, EngineState};
use dtdinfer_regex::alphabet::{Alphabet, Word};
use dtdinfer_xml::dtd::Dtd;
use dtdinfer_xml::extract::Corpus;
use dtdinfer_xml::infer::{infer_dtd_with_stats, ElementReport, InferenceEngine};
use dtdinfer_xml::xsd::{generate_xsd, XsdOptions};
use std::io::Read;
use std::process::ExitCode;

/// Counting allocator for `--metrics` memory accounting. Only installed
/// when built with `--features alloc-count`; default builds keep the
/// plain system allocator and pay nothing.
#[cfg(feature = "alloc-count")]
#[global_allocator]
static ALLOC: dtdinfer_obs::alloc::CountingAlloc = dtdinfer_obs::alloc::CountingAlloc;

/// The observability flags shared by `infer`, `stats`, and `learn`.
#[derive(Debug, Default)]
struct ObsOptions {
    /// `--metrics <FILE|->`: write the metrics snapshot.
    metrics: Option<String>,
    /// `--metrics-format json|openmetrics`: snapshot serialization
    /// (default json; openmetrics is the Prometheus text exposition the
    /// future `serve` daemon's `/metrics` endpoint will speak). `None`
    /// when the flag was not given, so a lone `--metrics-format` can be
    /// rejected.
    metrics_format: Option<MetricsFormat>,
    /// `--trace <FILE|->`: write the span/event trace.
    trace: Option<String>,
    /// `--trace-format jsonl|chrome`: trace serialization (default jsonl;
    /// chrome is the trace-event JSON loadable in Perfetto). `None` when
    /// the flag was not given, so a lone `--trace-format` can be rejected.
    trace_format: Option<TraceFormat>,
    /// `--timeseries <FILE|->`: sample the registry on an interval while
    /// the command runs and write the series as JSON.
    timeseries: Option<String>,
    /// `--timeseries-interval <MS>`: sampling interval (default 100 ms).
    timeseries_interval_ms: Option<u64>,
    /// `-v` / `--verbose`: human-oriented progress and counter summary on
    /// stderr.
    verbose: bool,
    /// The background sampler, running between activate and finish.
    sampler: Option<dtdinfer_obs::timeseries::Sampler>,
}

/// How `--trace` output is serialized.
#[derive(Debug, PartialEq)]
enum TraceFormat {
    /// One JSON object per line — the crate's native format.
    Jsonl,
    /// Chrome trace-event JSON array (Perfetto / `chrome://tracing`).
    Chrome,
}

/// How `--metrics` output is serialized.
#[derive(Debug, PartialEq)]
enum MetricsFormat {
    /// One JSON object (the crate's stable snapshot form).
    Json,
    /// OpenMetrics / Prometheus text exposition.
    OpenMetrics,
}

impl ObsOptions {
    /// Tries to consume `a` (and its value from `it`) as an observability
    /// flag. Returns whether the flag was recognized.
    fn take(&mut self, a: &str, it: &mut std::slice::Iter<'_, String>) -> Result<bool, String> {
        match a {
            "--metrics" => {
                self.metrics = Some(
                    it.next()
                        .ok_or("--metrics needs a file argument (or -)")?
                        .to_owned(),
                );
                Ok(true)
            }
            "--trace" => {
                self.trace = Some(
                    it.next()
                        .ok_or("--trace needs a file argument (or -)")?
                        .to_owned(),
                );
                Ok(true)
            }
            "--trace-format" => {
                self.trace_format = Some(match it.next().map(String::as_str) {
                    Some("jsonl") => TraceFormat::Jsonl,
                    Some("chrome") => TraceFormat::Chrome,
                    Some(other) => {
                        return Err(format!(
                            "unknown trace format {other:?} (expected jsonl or chrome)"
                        ));
                    }
                    None => return Err("--trace-format needs a value (jsonl or chrome)".to_owned()),
                });
                Ok(true)
            }
            "--metrics-format" => {
                self.metrics_format = Some(match it.next().map(String::as_str) {
                    Some("json") => MetricsFormat::Json,
                    Some("openmetrics") => MetricsFormat::OpenMetrics,
                    Some(other) => {
                        return Err(format!(
                            "unknown metrics format {other:?} (expected json or openmetrics)"
                        ));
                    }
                    None => {
                        return Err(
                            "--metrics-format needs a value (json or openmetrics)".to_owned()
                        )
                    }
                });
                Ok(true)
            }
            "--timeseries" => {
                self.timeseries = Some(
                    it.next()
                        .ok_or("--timeseries needs a file argument (or -)")?
                        .to_owned(),
                );
                Ok(true)
            }
            "--timeseries-interval" => {
                let ms: u64 = it
                    .next()
                    .ok_or("--timeseries-interval needs a value in milliseconds")?
                    .parse()
                    .map_err(|e| format!("bad --timeseries-interval: {e}"))?;
                if ms == 0 {
                    return Err("--timeseries-interval must be at least 1 ms".to_owned());
                }
                self.timeseries_interval_ms = Some(ms);
                Ok(true)
            }
            "-v" | "--verbose" => {
                self.verbose = true;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Validates flag combinations and turns recording on (cleanly) when
    /// any flag asked for it. Also starts the background timeseries
    /// sampler when `--timeseries` was given, and allocator accounting
    /// whenever metrics are on (a no-op unless the binary was built with
    /// the `alloc-count` feature).
    fn activate(&mut self) -> Result<(), String> {
        if self.trace_format.is_some() && self.trace.is_none() {
            return Err("--trace-format requires --trace".to_owned());
        }
        if self.metrics_format.is_some() && self.metrics.is_none() {
            return Err("--metrics-format requires --metrics".to_owned());
        }
        if self.timeseries_interval_ms.is_some() && self.timeseries.is_none() {
            return Err("--timeseries-interval requires --timeseries".to_owned());
        }
        let metrics = self.metrics.is_some() || self.verbose || self.timeseries.is_some();
        let trace = self.trace.is_some();
        if metrics || trace {
            dtdinfer_obs::enable(metrics, trace);
            dtdinfer_obs::reset();
        }
        if metrics {
            dtdinfer_obs::alloc::enable();
        }
        if self.timeseries.is_some() {
            let interval = self.timeseries_interval_ms.unwrap_or(100);
            self.sampler = Some(dtdinfer_obs::timeseries::start(
                dtdinfer_obs::timeseries::SamplerConfig {
                    interval: std::time::Duration::from_millis(interval),
                    ..Default::default()
                },
            ));
        }
        Ok(())
    }

    /// Emits everything recorded since [`ObsOptions::activate`] and turns
    /// recording back off. Fixed emission order: the trace block first,
    /// then the timeseries, the metrics output last — so when several
    /// share stdout with the DTD, a consumer always finds the metrics
    /// (one JSON line, or an `# EOF`-terminated exposition) at the end.
    fn finish(&mut self) -> Result<(), String> {
        let series = self
            .sampler
            .take()
            .map(dtdinfer_obs::timeseries::Sampler::stop);
        if dtdinfer_obs::metrics_enabled() {
            dtdinfer_obs::alloc::publish_gauges();
        }
        if self.verbose {
            eprint!("{}", dtdinfer_obs::snapshot().render_text());
        }
        if let Some(target) = &self.trace {
            let entries = dtdinfer_obs::take_trace();
            let out = match self.trace_format {
                Some(TraceFormat::Chrome) => format!("{}\n", dtdinfer_obs::chrome_trace(&entries)),
                Some(TraceFormat::Jsonl) | None => {
                    let mut out = String::new();
                    for entry in &entries {
                        out.push_str(&entry.json());
                        out.push('\n');
                    }
                    out
                }
            };
            write_output(target, &out)?;
        }
        if let (Some(target), Some(series)) = (&self.timeseries, series) {
            write_output(target, &format!("{}\n", series.json()))?;
        }
        if let Some(target) = &self.metrics {
            let snap = dtdinfer_obs::snapshot();
            let out = match self.metrics_format {
                Some(MetricsFormat::OpenMetrics) => dtdinfer_obs::openmetrics::openmetrics(&snap),
                Some(MetricsFormat::Json) | None => format!("{}\n", snap.json()),
            };
            write_output(target, &out)?;
        }
        dtdinfer_obs::alloc::disable();
        dtdinfer_obs::disable();
        Ok(())
    }
}

/// Writes to a file, or to stdout when `target` is `-`.
fn write_output(target: &str, content: &str) -> Result<(), String> {
    if target == "-" {
        print!("{content}");
        Ok(())
    } else {
        std::fs::write(target, content).map_err(|e| format!("{target}: {e}"))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("infer") => cmd_infer(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("snapshot") => cmd_snapshot(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("sample") => cmd_sample(&args[1..]),
        Some("learn") => cmd_learn(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("dot") => cmd_dot(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("omlint") => cmd_omlint(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand {other:?} (try --help)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dtdinfer: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "dtdinfer — inference of concise DTDs from XML data (VLDB 2006)

USAGE:
  dtdinfer infer [OPTIONS] FILE...      infer a DTD for the given XML files
      --engine E                        learner: crx, idtd,
                                        idtd-noise:<N>, kore, auto
                                        (default: idtd)
      --xsd                             emit an XML Schema instead of a DTD
      --contextual                      XSD-strength typing: content models
                                        may depend on the parent element
      --numeric <N>                     tighten ?/+/* to numeric bounds
                                        (unbounded above N occurrences)
      --jobs <N>                        shard the corpus across N worker
                                        threads; output is byte-identical
                                        for every N
  dtdinfer stats [OPTIONS] FILE...      per-element derivation report:
                                        engine used, sample size, repairs,
                                        expression size, time
      --engine E                        learner: crx, idtd,
                                        idtd-noise:<N>, kore, auto
                                        (default: idtd)
      --jobs <N>                        shard ingestion; also prints a
                                        per-shard summary, merge time, and
                                        a per-worker utilization table
  dtdinfer snapshot save --out SNAP [--jobs N] FILE...
                                        ingest XML and persist the engine
                                        state as a versioned snapshot
  dtdinfer snapshot load [--engine E] [--xsd] SNAP
                                        derive a DTD (or XSD) from a
                                        snapshot without re-reading XML
  dtdinfer snapshot update [--jobs N] SNAP FILE...
                                        warm start: absorb more documents
                                        into a snapshot and rewrite it
  dtdinfer validate --dtd S.dtd FILE... validate XML files against a DTD
      --lint                            also check the DTD itself for
                                        non-deterministic content models
      --format human|json               witness output format (default
                                        human; json emits the structured
                                        violations the serve daemon's
                                        validate endpoint also speaks)
  dtdinfer serve --data-dir DIR [OPTS]  run the multi-tenant inference
                                        daemon: POST documents into named
                                        schema sessions, GET the evolving
                                        DTD/XSD, validate against it, and
                                        stream schema-drift events as SSE;
                                        sessions are journaled to DIR and
                                        survive restarts (kill -9 safe)
      --addr <HOST:PORT>                bind address (default 127.0.0.1:7700)
      --engine E                        learner: crx, idtd,
                                        idtd-noise:<N>, kore, auto
                                        (default: idtd)
      --workers <N>                     request worker threads (default 4)
      --max-sessions <N>                tenant cap, 429 past it (default 64)
      --max-body-bytes <N>              request body cap, 413 (default 8 MiB)
      --max-session-bytes <N>           per-session disk cap, 413
                                        (default 256 MiB)
      --compact-min-bytes <N>           journal size that triggers
                                        compaction (default 64 KiB)
      --queue-depth <N>                 connection queue bound, 503 when
                                        full (default 64)
      --access-log <FILE|->             append one JSON line per request
                                        (id, method, route, status, bytes,
                                        duration, queue wait, session)
      --flight-capacity <N>             flight-recorder ring size; the ring
                                        is dumped to DIR/flight-<pid>.json
                                        on panic and shutdown (default 256)
      --debug-panic                     enable POST /debug/panic (crash
                                        drill for testing the recorder)
  dtdinfer fuzz [OPTIONS] [CASE...]     closed-loop differential fuzzing:
                                        random DTDs, sampled corpora, a
                                        metamorphic oracle battery, and
                                        automatic case reduction; exits
                                        nonzero on any oracle violation
      --seed <S>                        master seed (default 0); the whole
                                        run is deterministic in the seed
      --cases <N>                       cases to run (default 100)
      --time-budget <SECS>              stop early after this much wall
                                        clock (forfeits determinism)
      --corpus-dir <DIR>                where reduced failing cases are
                                        persisted (default fuzz/corpus)
      --engine <E>                      focus generation on one engine:
                                        kore/auto fuzz repeating-symbol
                                        grammars only (full battery runs
                                        either way)
      --replay <CASE>                   re-run the oracle battery on a
                                        persisted case file instead of
                                        fuzzing (bare arguments work too)
  dtdinfer sample [OPTIONS] 'EXPR'      generate words from an expression
      --count <N>                       number of words (default 10)
      --seed <S>                        RNG seed (default 0)
  dtdinfer learn [OPTIONS]              learn an expression from words on
                                        stdin (one word per line, symbols
                                        whitespace-separated)
      --engine crx|idtd|kore            learner (default: idtd)
      --state FILE                      incremental mode: load/merge/save
                                        the learner's state file
  dtdinfer explain                      like learn --engine idtd, but print
                                        the full rewrite/repair derivation
                                        (Figure 3 of the paper)
  dtdinfer dot 'EXPR'                   Graphviz rendering of the SOA of an
                                        expression
  dtdinfer diff FIRST.dtd SECOND.dtd    compare two DTDs element by element
                                        (schema cleaning: find where the
                                        second is stricter/looser)
  dtdinfer profile [OPTIONS] FILE...    critical-path profile of a full run:
                                        per-phase self time, the longest
                                        span chain, the top-k hottest
                                        elements, and a folded-stack file
                                        for flamegraph tooling
      --engine E                        learner: crx, idtd,
                                        idtd-noise:<N>, kore, auto
                                        (default: idtd)
      --jobs <N>                        shard ingestion across N workers
      --top <K>                         hottest elements to list (default 10)
      --folded <FILE>                   folded-stack output
                                        (default profile.folded)
  dtdinfer omlint [FILE|-]              validate an OpenMetrics exposition
                                        (as written by --metrics-format
                                        openmetrics); also asserts the
                                        allocator counters are monotone
      --require-labels <FAMILY>         fail unless the exposition has at
                                        least one labeled sample of this
                                        family (repeatable)

OBSERVABILITY (infer, stats, snapshot, learn, fuzz):
      --metrics <FILE|->                write pipeline counters and timing
                                        histograms
      --metrics-format json|openmetrics metrics serialization (default json;
                                        openmetrics is the Prometheus text
                                        exposition; requires --metrics)
      --timeseries <FILE|->             sample the metrics registry on an
                                        interval while the run is live and
                                        write the series as JSON
      --timeseries-interval <MS>        sampling interval in milliseconds
                                        (default 100; requires --timeseries)
      --trace <FILE|->                  write spans and events as JSON lines
      --trace-format jsonl|chrome       trace serialization; chrome emits
                                        trace-event JSON for Perfetto /
                                        chrome://tracing (requires --trace)
      -v, --verbose                     progress and counter summary on
                                        stderr
      When several streams share stdout the order is trace, timeseries,
      then metrics, so the metrics payload is always the final block.
      Allocator gauges (alloc.live/peak/total bytes) appear when the
      binary is built with --features alloc-count."
    );
}

fn parse_engine(spec: &str) -> Result<InferenceEngine, String> {
    match spec {
        "crx" => Ok(InferenceEngine::Crx),
        "idtd" => Ok(InferenceEngine::Idtd),
        "kore" => Ok(InferenceEngine::Kore),
        "auto" => Ok(InferenceEngine::Auto),
        other => match other.strip_prefix("idtd-noise:") {
            Some(n) => n
                .parse::<u64>()
                .map(|threshold| InferenceEngine::IdtdNoise { threshold })
                .map_err(|e| format!("bad noise threshold: {e}")),
            None => Err(format!("unknown engine {other:?}")),
        },
    }
}

fn cmd_infer(args: &[String]) -> Result<(), String> {
    let mut engine = InferenceEngine::Idtd;
    let mut xsd = false;
    let mut contextual = false;
    let mut numeric: Option<u32> = None;
    let mut jobs: Option<usize> = None;
    let mut obs = ObsOptions::default();
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--engine" => {
                let v = it.next().ok_or("--engine needs a value")?;
                engine = parse_engine(v)?;
            }
            "--xsd" => xsd = true,
            "--contextual" => contextual = true,
            "--numeric" => {
                let v = it.next().ok_or("--numeric needs a value")?;
                numeric = Some(v.parse().map_err(|e| format!("bad --numeric: {e}"))?);
            }
            "--jobs" => jobs = Some(parse_jobs(it.next())?),
            a if obs.take(a, &mut it)? => {}
            f if f.starts_with('-') => {
                return Err(format!("unknown option {f:?} (try --help)"));
            }
            f => files.push(f.to_owned()),
        }
    }
    if files.is_empty() {
        return Err("no input files".to_owned());
    }
    if let Some(jobs) = jobs {
        if contextual {
            return Err("--contextual does not support --jobs yet".to_owned());
        }
        obs.activate()?;
        let ingested = stream_ingest(EngineState::new(), &files, jobs, &obs)?;
        let (dtd, reports) = ingested.state.derive(engine);
        if obs.verbose {
            for r in &reports {
                eprintln!(
                    "dtdinfer: element {} engine={} words={} repairs={} in {}",
                    r.name,
                    r.engine,
                    r.words,
                    r.repairs,
                    fmt_ns(r.duration_ns)
                );
            }
        }
        if xsd {
            // The engine retains counted child-sequence multisets, so the
            // facts view supports numeric tightening — identical bytes to
            // the sequential corpus path.
            let facts = ingested.state.facts_corpus();
            print!(
                "{}",
                generate_xsd(
                    &dtd,
                    Some(&facts),
                    XsdOptions {
                        numeric_threshold: numeric,
                    }
                )
            );
        } else {
            print!("{}", dtd.serialize());
        }
        return obs.finish();
    }
    obs.activate()?;
    if contextual {
        // Context-aware (XSD-strength) inference: one type per
        // (parent, element) context, merged when language-equal.
        let mut corpus = dtdinfer_xml::contextual::ContextualCorpus::new();
        for f in &files {
            let text = std::fs::read_to_string(f).map_err(|e| format!("{f}: {e}"))?;
            corpus
                .add_document(&text)
                .map_err(|e| format!("{f}: {e}"))?;
            if obs.verbose {
                eprintln!("dtdinfer: parsed {f}");
            }
        }
        let schema = dtdinfer_xml::contextual::infer_contextual(&corpus, engine);
        if xsd {
            print!("{}", dtdinfer_xml::contextual::contextual_xsd(&schema));
        } else {
            print!("{}", schema.render());
            if schema.requires_xsd() {
                eprintln!(
                    "note: this corpus needs XSD typing (an element has context-dependent content)"
                );
            }
        }
        return obs.finish();
    }
    let corpus = read_corpus(&files, &obs)?;
    let (dtd, reports) = infer_dtd_with_stats(&corpus, engine);
    if obs.verbose {
        for r in &reports {
            eprintln!(
                "dtdinfer: element {} engine={} words={} repairs={} in {}",
                r.name,
                r.engine,
                r.words,
                r.repairs,
                fmt_ns(r.duration_ns)
            );
        }
    }
    if xsd {
        print!(
            "{}",
            generate_xsd(
                &dtd,
                Some(&corpus),
                XsdOptions {
                    numeric_threshold: numeric,
                }
            )
        );
    } else {
        print!("{}", dtd.serialize());
    }
    obs.finish()
}

/// Parses every input file into one corpus, with `-v` progress. Files are
/// read one at a time into a reused buffer and dropped after extraction,
/// so peak memory is one document, not the corpus.
fn read_corpus(files: &[String], obs: &ObsOptions) -> Result<Corpus, String> {
    let mut corpus = Corpus::new();
    let mut buf = String::new();
    for f in files {
        buf.clear();
        std::fs::File::open(f)
            .and_then(|mut file| file.read_to_string(&mut buf))
            .map_err(|e| format!("{f}: {e}"))?;
        corpus
            .add_document_from(&buf, f)
            .map_err(|e| e.to_string())?;
        if obs.verbose {
            eprintln!("dtdinfer: parsed {f}");
        }
    }
    Ok(corpus)
}

fn parse_jobs(value: Option<&String>) -> Result<usize, String> {
    let jobs: usize = value
        .ok_or("--jobs needs a value")?
        .parse()
        .map_err(|e| format!("bad --jobs: {e}"))?;
    if jobs == 0 {
        return Err("--jobs must be at least 1".to_owned());
    }
    Ok(jobs)
}

/// Streams the input files through the sharded engine: workers read,
/// parse, and drop each document themselves, so no file is resident
/// before a worker claims it and peak memory is O(jobs · max document).
/// Errors carry the file name straight from the source.
fn stream_ingest(
    base: EngineState,
    files: &[String],
    jobs: usize,
    obs: &ObsOptions,
) -> Result<Ingest, String> {
    if obs.verbose {
        eprintln!(
            "dtdinfer: streaming {} file(s) across {jobs} worker(s)",
            files.len()
        );
    }
    let source = PathSource::new(files.iter().map(std::path::PathBuf::from).collect());
    let ingested = ingest_source(base, &source, jobs).map_err(|e| e.to_string())?;
    if obs.verbose {
        eprintln!(
            "dtdinfer: peak in flight {} byte(s) across {} document(s)",
            ingested.peak_bytes_in_flight, ingested.peak_docs_in_flight
        );
    }
    Ok(ingested)
}

/// Adaptive duration rendering for report tables (ns → µs → ms → s).
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns} ns"),
        10_000..=9_999_999 => format!("{} µs", ns / 1_000),
        10_000_000..=9_999_999_999 => format!("{} ms", ns / 1_000_000),
        _ => format!("{:.2} s", ns as f64 / 1e9),
    }
}

/// `dtdinfer stats FILE...` — the per-element derivation report.
fn cmd_stats(args: &[String]) -> Result<(), String> {
    let mut engine = InferenceEngine::Idtd;
    let mut jobs: Option<usize> = None;
    let mut obs = ObsOptions::default();
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--engine" => {
                let v = it.next().ok_or("--engine needs a value")?;
                engine = parse_engine(v)?;
            }
            "--jobs" => jobs = Some(parse_jobs(it.next())?),
            a if obs.take(a, &mut it)? => {}
            f if f.starts_with('-') => {
                return Err(format!("unknown option {f:?} (try --help)"));
            }
            f => files.push(f.to_owned()),
        }
    }
    if files.is_empty() {
        return Err("no input files".to_owned());
    }
    obs.activate()?;
    if let Some(jobs) = jobs {
        let ingested = stream_ingest(EngineState::new(), &files, jobs, &obs)?;
        let (_, reports) = ingested.state.derive(engine);
        print_stats(ingested.state.num_documents, &reports);
        print_shards(&ingested);
        return obs.finish();
    }
    let corpus = read_corpus(&files, &obs)?;
    let (_, reports) = infer_dtd_with_stats(&corpus, engine);
    print_stats(corpus.num_documents, &reports);
    obs.finish()
}

/// The per-shard ingestion summary and worker utilization table for
/// `stats --jobs N`.
fn print_shards(ingested: &Ingest) {
    for s in &ingested.shards {
        println!(
            "shard {}: {} document(s), {} word(s), ingest {}",
            s.shard,
            s.documents,
            s.words,
            fmt_ns(s.duration_ns)
        );
    }
    println!("shard merge {}", fmt_ns(ingested.merge_ns));
    println!(
        "peak in flight: {} byte(s), {} doc(s)",
        ingested.peak_bytes_in_flight, ingested.peak_docs_in_flight
    );
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>12} {:>7} {:>12} {:>7}",
        "worker", "documents", "bytes", "busy", "wall", "claims", "idle polls", "util"
    );
    for s in &ingested.shards {
        println!(
            "{:<8} {:>10} {:>10} {:>12} {:>12} {:>7} {:>12} {:>6.1}%",
            s.shard,
            s.documents,
            s.bytes,
            fmt_ns(s.busy_ns),
            fmt_ns(s.duration_ns),
            s.claims,
            s.idle_polls,
            s.utilization_pct()
        );
    }
}

fn print_stats(num_documents: u64, reports: &[ElementReport]) {
    println!(
        "{:<24} {:>8} {:>7} {:>9} {:>8} {:>5} {:>10}",
        "element", "engine", "words", "rewrites", "repairs", "size", "time"
    );
    let mut total_ns = 0u64;
    for r in reports {
        let engine = if r.fallbacks > 0 {
            // Flag derivations that needed the merge-everything fallback.
            format!("{}!", r.engine)
        } else {
            r.engine.to_owned()
        };
        println!(
            "{:<24} {:>8} {:>7} {:>9} {:>8} {:>5} {:>10}",
            r.name,
            engine,
            r.words,
            r.rewrite_steps,
            r.repairs,
            r.expr_size,
            fmt_ns(r.duration_ns)
        );
        total_ns += r.duration_ns;
    }
    println!(
        "{num_documents} document(s), {} element(s), inference {}",
        reports.len(),
        fmt_ns(total_ns)
    );
}

/// `dtdinfer snapshot save|load|update` — persist engine state (§9:
/// the learner's internal representation is its complete memory) and
/// warm-start later runs from it.
fn cmd_snapshot(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("save") => cmd_snapshot_save(&args[1..]),
        Some("load") => cmd_snapshot_load(&args[1..]),
        Some("update") => cmd_snapshot_update(&args[1..]),
        _ => Err("usage: dtdinfer snapshot save|load|update ... (try --help)".to_owned()),
    }
}

/// `dtdinfer snapshot save --out SNAP [--jobs N] FILE...`
fn cmd_snapshot_save(args: &[String]) -> Result<(), String> {
    let mut out: Option<String> = None;
    let mut jobs = 1usize;
    let mut obs = ObsOptions::default();
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = Some(it.next().ok_or("--out needs a value")?.to_owned()),
            "--jobs" => jobs = parse_jobs(it.next())?,
            a if obs.take(a, &mut it)? => {}
            f if f.starts_with('-') => {
                return Err(format!("unknown option {f:?} (try --help)"));
            }
            f => files.push(f.to_owned()),
        }
    }
    let out = out.ok_or("--out is required")?;
    if files.is_empty() {
        return Err("no input files".to_owned());
    }
    obs.activate()?;
    let ingested = stream_ingest(EngineState::new(), &files, jobs, &obs)?;
    let text = snapshot::save(&ingested.state);
    std::fs::write(&out, &text).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "{out}: {} document(s), {} element(s), {} bytes",
        ingested.state.num_documents,
        ingested.state.elements.len(),
        text.len()
    );
    obs.finish()
}

/// Reads and parses a snapshot file.
fn read_snapshot(path: &str) -> Result<EngineState, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    snapshot::load(&text).map_err(|e| format!("{path}: {e}"))
}

/// `dtdinfer snapshot load [--engine E] [--xsd] SNAP` — derive a schema
/// from persisted state without re-reading any XML.
fn cmd_snapshot_load(args: &[String]) -> Result<(), String> {
    let mut engine = InferenceEngine::Idtd;
    let mut xsd = false;
    let mut obs = ObsOptions::default();
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--engine" => {
                let v = it.next().ok_or("--engine needs a value")?;
                engine = parse_engine(v)?;
            }
            "--xsd" => xsd = true,
            a if obs.take(a, &mut it)? => {}
            f if f.starts_with('-') => {
                return Err(format!("unknown option {f:?} (try --help)"));
            }
            f => paths.push(f.to_owned()),
        }
    }
    let [path] = paths.as_slice() else {
        return Err("exactly one snapshot file is required".to_owned());
    };
    obs.activate()?;
    let state = read_snapshot(path)?;
    let (dtd, _) = state.derive(engine);
    if xsd {
        let facts = state.facts_corpus();
        print!(
            "{}",
            generate_xsd(
                &dtd,
                Some(&facts),
                XsdOptions {
                    numeric_threshold: None,
                }
            )
        );
    } else {
        print!("{}", dtd.serialize());
    }
    obs.finish()
}

/// `dtdinfer snapshot update [--jobs N] SNAP FILE...` — warm start:
/// absorb more documents into persisted state and write it back.
fn cmd_snapshot_update(args: &[String]) -> Result<(), String> {
    let mut jobs = 1usize;
    let mut obs = ObsOptions::default();
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => jobs = parse_jobs(it.next())?,
            a if obs.take(a, &mut it)? => {}
            f if f.starts_with('-') => {
                return Err(format!("unknown option {f:?} (try --help)"));
            }
            f => paths.push(f.to_owned()),
        }
    }
    let [snap, files @ ..] = paths.as_slice() else {
        return Err("usage: dtdinfer snapshot update [--jobs N] SNAP FILE...".to_owned());
    };
    if files.is_empty() {
        return Err("no input files to absorb".to_owned());
    }
    obs.activate()?;
    let base = read_snapshot(snap)?;
    let ingested = stream_ingest(base, files, jobs, &obs)?;
    let text = snapshot::save(&ingested.state);
    std::fs::write(snap, &text).map_err(|e| format!("{snap}: {e}"))?;
    println!(
        "{snap}: {} document(s), {} element(s), {} bytes",
        ingested.state.num_documents,
        ingested.state.elements.len(),
        text.len()
    );
    obs.finish()
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    let mut dtd_path: Option<String> = None;
    let mut lint = false;
    let mut json = false;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dtd" => dtd_path = Some(it.next().ok_or("--dtd needs a value")?.to_owned()),
            "--lint" => lint = true,
            "--format" => match it.next().ok_or("--format needs a value")?.as_str() {
                "json" => json = true,
                "human" => json = false,
                other => return Err(format!("unknown format {other:?} (human or json)")),
            },
            f if f.starts_with('-') => {
                return Err(format!("unknown option {f:?} (try --help)"));
            }
            f => files.push(f.to_owned()),
        }
    }
    let dtd_path = dtd_path.ok_or("--dtd is required")?;
    let dtd_text = std::fs::read_to_string(&dtd_path).map_err(|e| format!("{dtd_path}: {e}"))?;
    let dtd = Dtd::parse(&dtd_text).map_err(|e| e.to_string())?;
    if lint {
        let issues = dtd.lint();
        for issue in &issues {
            // With --format json stdout is reserved for the JSON document.
            if json {
                eprintln!("{dtd_path}: {issue}");
            } else {
                println!("{dtd_path}: {issue}");
            }
        }
        if files.is_empty() {
            return if issues.is_empty() {
                if !json {
                    println!("DTD is deterministic (XML-spec conformant)");
                }
                Ok(())
            } else {
                Err(format!("{} lint issue(s)", issues.len()))
            };
        }
    }
    let mut total_violations = 0usize;
    let mut json_files = String::new();
    for (i, f) in files.iter().enumerate() {
        let text = std::fs::read_to_string(f).map_err(|e| format!("{f}: {e}"))?;
        if json {
            // Same serializer as the serve daemon's validate endpoint
            // (`violations_json`), wrapped in a per-file envelope.
            let violations = dtd
                .validate_structured(&text)
                .map_err(|e| format!("{f}: {e}"))?;
            if i > 0 {
                json_files.push(',');
            }
            json_files.push_str("\n{\"file\":");
            dtdinfer_obs::json::write_string(&mut json_files, f);
            json_files.push_str(",\"valid\":");
            json_files.push_str(if violations.is_empty() {
                "true"
            } else {
                "false"
            });
            json_files.push_str(",\"violations\":");
            json_files.push_str(&dtdinfer_xml::dtd::violations_json(&violations));
            json_files.push('}');
            total_violations += violations.len();
        } else {
            let violations = dtd.validate(&text).map_err(|e| format!("{f}: {e}"))?;
            for v in &violations {
                println!("{f}: {v}");
            }
            total_violations += violations.len();
        }
    }
    if json {
        println!("{{\"files\":[{json_files}\n],\"total_violations\":{total_violations}}}");
    }
    if total_violations == 0 {
        if !json {
            println!("all {} document(s) valid", files.len());
        }
        Ok(())
    } else {
        Err(format!("{total_violations} violation(s)"))
    }
}

/// `dtdinfer serve` — boot the multi-tenant inference daemon and block
/// until SIGINT/SIGTERM or `POST /shutdown`.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut config = dtdinfer_serve::ServeConfig::default();
    let mut data_dir: Option<String> = None;
    let mut obs = ObsOptions::default();
    fn num(it: &mut std::slice::Iter<'_, String>, what: &str) -> Result<u64, String> {
        it.next()
            .ok_or(format!("{what} needs a value"))?
            .parse()
            .map_err(|e| format!("bad {what}: {e}"))
    }
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => config.addr = it.next().ok_or("--addr needs a value")?.to_owned(),
            "--data-dir" => {
                data_dir = Some(it.next().ok_or("--data-dir needs a value")?.to_owned())
            }
            "--engine" => {
                let v = it.next().ok_or("--engine needs a value")?;
                config.engine = parse_engine(v)?;
            }
            "--workers" => config.workers = num(&mut it, "--workers")? as usize,
            "--max-sessions" => config.max_sessions = num(&mut it, "--max-sessions")? as usize,
            "--max-body-bytes" => {
                config.max_body_bytes = num(&mut it, "--max-body-bytes")? as usize;
            }
            "--max-session-bytes" => {
                config.max_session_bytes = num(&mut it, "--max-session-bytes")?
            }
            "--compact-min-bytes" => {
                config.compact_min_bytes = num(&mut it, "--compact-min-bytes")?
            }
            "--queue-depth" => config.queue_depth = num(&mut it, "--queue-depth")? as usize,
            "--access-log" => {
                config.access_log = Some(std::path::PathBuf::from(
                    it.next().ok_or("--access-log needs a value")?,
                ));
            }
            "--flight-capacity" => {
                config.flight_capacity = num(&mut it, "--flight-capacity")? as usize
            }
            "--debug-panic" => config.debug_panic = true,
            a if obs.take(a, &mut it)? => {}
            f => return Err(format!("unknown option {f:?} (try --help)")),
        }
    }
    config.data_dir = std::path::PathBuf::from(data_dir.ok_or("--data-dir is required")?);
    // The sampler's ring is bounded (capacity + exact drop accounting), so
    // --timeseries is safe even though serve runs indefinitely; the
    // sampler thread is joined in finish() after the daemon stops.
    obs.activate()?;
    let stopped = dtdinfer_serve::run(config, |addr| {
        eprintln!("dtdinfer serve: listening on http://{addr}");
    })?;
    eprintln!("dtdinfer serve: {stopped}");
    obs.finish()
}

/// `dtdinfer fuzz` — closed-loop differential fuzzing: random target DTDs,
/// sampled corpora, the full oracle battery, automatic case reduction.
fn cmd_fuzz(args: &[String]) -> Result<(), String> {
    let mut cfg = dtdinfer_fuzz::FuzzConfig::default();
    let mut replay: Vec<String> = Vec::new();
    let mut obs = ObsOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                cfg.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--cases" => {
                cfg.cases = it
                    .next()
                    .ok_or("--cases needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --cases: {e}"))?;
            }
            "--time-budget" => {
                let secs: f64 = it
                    .next()
                    .ok_or("--time-budget needs a value in seconds")?
                    .parse()
                    .map_err(|e| format!("bad --time-budget: {e}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--time-budget must be a positive number of seconds".to_owned());
                }
                cfg.time_budget = Some(std::time::Duration::from_secs_f64(secs));
            }
            "--corpus-dir" => {
                cfg.corpus_dir =
                    std::path::PathBuf::from(it.next().ok_or("--corpus-dir needs a value")?);
            }
            "--engine" => {
                cfg.engine = Some(it.next().ok_or("--engine needs a value")?.to_owned());
            }
            "--replay" => replay.push(it.next().ok_or("--replay needs a case file")?.to_owned()),
            // Hidden: inject a known-wrong oracle so the reduce/persist
            // path can be exercised end to end (see EXPERIMENTS.md).
            "--plant-bug" => {
                cfg.planted = Some(dtdinfer_fuzz::PlantedBug::parse(
                    it.next().ok_or("--plant-bug needs a value")?,
                )?);
            }
            a if obs.take(a, &mut it)? => {}
            f if f.starts_with('-') => {
                return Err(format!("unknown option {f:?} (try --help)"));
            }
            // Bare arguments are treated as case files to replay, so
            // `dtdinfer fuzz fuzz/corpus/*.case` just works.
            f => replay.push(f.to_owned()),
        }
    }
    obs.activate()?;
    if !replay.is_empty() {
        let mut total = 0usize;
        for path in &replay {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let (case, result) =
                dtdinfer_fuzz::replay_file(&text).map_err(|e| format!("{path}: {e}"))?;
            println!(
                "{path}: seed {} case {} ({}, {} doc(s)): {}",
                case.seed,
                case.case,
                case.oracle,
                case.docs.len(),
                if result.violations.is_empty() {
                    "clean"
                } else {
                    "FAIL"
                }
            );
            for v in &result.violations {
                println!("{path}: [{}] {}", v.oracle, v.detail);
            }
            total += result.violations.len();
        }
        obs.finish()?;
        return if total == 0 {
            Ok(())
        } else {
            Err(format!("{total} violation(s) on replay"))
        };
    }
    let report = dtdinfer_fuzz::run(&cfg)?;
    print!("{}", report.render_text());
    obs.finish()?;
    if report.total_violations() == 0 {
        Ok(())
    } else {
        Err(format!("{} oracle violation(s)", report.total_violations()))
    }
}

/// `dtdinfer profile FILE...` — critical-path profiling: run the full
/// ingest + derivation with tracing on, then post-process the spans into
/// per-phase self-time, the critical path, and the top-k hottest
/// elements by inference cost, plus a folded-stack file for flamegraph
/// tooling.
fn cmd_profile(args: &[String]) -> Result<(), String> {
    let mut engine = InferenceEngine::Idtd;
    let mut jobs = 1usize;
    let mut top = 10usize;
    let mut folded = "profile.folded".to_owned();
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--engine" => {
                let v = it.next().ok_or("--engine needs a value")?;
                engine = parse_engine(v)?;
            }
            "--jobs" => jobs = parse_jobs(it.next())?,
            "--top" => {
                top = it
                    .next()
                    .ok_or("--top needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --top: {e}"))?;
            }
            "--folded" => folded = it.next().ok_or("--folded needs a file")?.to_owned(),
            f if f.starts_with('-') => {
                return Err(format!("unknown option {f:?} (try --help)"));
            }
            f => files.push(f.to_owned()),
        }
    }
    if files.is_empty() {
        return Err("no input files".to_owned());
    }
    // Profiling *is* the observability request: recording is always on.
    dtdinfer_obs::enable(true, true);
    dtdinfer_obs::reset();
    dtdinfer_obs::alloc::enable();
    let quiet = ObsOptions::default();
    let ingested = stream_ingest(EngineState::new(), &files, jobs, &quiet)?;
    let (_, mut reports) = {
        let _span = dtdinfer_obs::span("derive");
        ingested.state.derive(engine)
    };
    let alloc = dtdinfer_obs::alloc::stats();
    let trace = dtdinfer_obs::take_trace();
    dtdinfer_obs::alloc::disable();
    dtdinfer_obs::disable();

    let forest = dtdinfer_obs::profile::build_forest(&trace);
    let path = dtdinfer_obs::profile::critical_path(&forest);
    println!("critical path (longest span chain, wall-clock bound):");
    println!("{:<32} {:>6} {:>12} {:>12}", "phase", "tid", "wall", "self");
    for step in &path {
        println!(
            "{:<32} {:>6} {:>12} {:>12}",
            format!("{}{}", "  ".repeat(step.depth), step.name),
            step.tid,
            fmt_ns(step.dur_ns),
            fmt_ns(step.self_ns)
        );
    }
    println!();
    println!("phases by self time:");
    println!(
        "{:<32} {:>7} {:>12} {:>12} {:>12}",
        "phase", "count", "total", "self", "max"
    );
    for stat in dtdinfer_obs::profile::phase_stats(&forest) {
        println!(
            "{:<32} {:>7} {:>12} {:>12} {:>12}",
            stat.name,
            stat.count,
            fmt_ns(stat.total_ns),
            fmt_ns(stat.self_ns),
            fmt_ns(stat.max_ns)
        );
    }
    println!();
    println!("top {top} elements by inference cost:");
    println!(
        "{:<24} {:>8} {:>7} {:>5} {:>10}",
        "element", "engine", "words", "size", "time"
    );
    reports.sort_by(|a, b| b.duration_ns.cmp(&a.duration_ns).then(a.name.cmp(&b.name)));
    for r in reports.iter().take(top) {
        println!(
            "{:<24} {:>8} {:>7} {:>5} {:>10}",
            r.name,
            r.engine,
            r.words,
            r.expr_size,
            fmt_ns(r.duration_ns)
        );
    }
    if dtdinfer_obs::alloc::compiled_in() {
        println!();
        println!(
            "allocator: peak {} byte(s), total {} byte(s) over {} allocation(s)",
            alloc.peak_bytes, alloc.total_bytes, alloc.allocations
        );
    }
    let stacks = dtdinfer_obs::profile::folded_stacks(&forest);
    if stacks.is_empty() {
        return Err("trace produced no spans to fold".to_owned());
    }
    std::fs::write(&folded, &stacks).map_err(|e| format!("{folded}: {e}"))?;
    println!();
    println!(
        "folded stacks: {folded} ({} line(s)) — feed to flamegraph.pl / inferno / speedscope",
        stacks.lines().count()
    );
    Ok(())
}

/// `dtdinfer omlint [FILE|-]` — validate OpenMetrics text exposition (as
/// produced by `--metrics-format openmetrics`): syntax, TYPE
/// declarations, the `# EOF` terminator, and the allocator-counter
/// invariant live ≤ peak ≤ total when those gauges are present.
/// `--require-labels FAMILY` (repeatable) additionally fails unless the
/// exposition contains at least one *labeled* sample of that family —
/// the scrape-side check that a daemon's per-route series are present.
fn cmd_omlint(args: &[String]) -> Result<(), String> {
    let mut target: Option<String> = None;
    let mut required_labeled: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--require-labels" => required_labeled.push(
                it.next()
                    .ok_or("--require-labels needs a family name")?
                    .clone(),
            ),
            f if f.starts_with("--") => {
                return Err(format!("unknown option {f:?} (try --help)"));
            }
            f => {
                if target.replace(f.to_owned()).is_some() {
                    return Err(
                        "usage: dtdinfer omlint [--require-labels FAMILY]... [FILE|-]".to_owned(),
                    );
                }
            }
        }
    }
    let target = target.unwrap_or_else(|| "-".to_owned());
    let text = if target == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| e.to_string())?;
        buf
    } else {
        std::fs::read_to_string(&target).map_err(|e| format!("{target}: {e}"))?
    };
    dtdinfer_obs::openmetrics::validate(&text).map_err(|e| format!("invalid exposition: {e}"))?;
    let mut families = 0usize;
    let mut samples = 0usize;
    let mut labeled = 0usize;
    let mut labeled_families: std::collections::BTreeSet<String> =
        std::collections::BTreeSet::new();
    let mut alloc: std::collections::BTreeMap<&str, f64> = std::collections::BTreeMap::new();
    for line in text.lines() {
        if line.starts_with("# TYPE ") {
            families += 1;
        } else if !line.starts_with('#') && !line.trim().is_empty() {
            samples += 1;
            if let Some(brace) = line.find('{') {
                labeled += 1;
                labeled_families.insert(line[..brace].to_owned());
            }
            if let Some((name, value)) = line.split_once(' ') {
                if matches!(
                    name,
                    "alloc_live_bytes" | "alloc_peak_bytes" | "alloc_total_bytes"
                ) {
                    alloc.insert(name, value.trim().parse().unwrap_or(f64::NAN));
                }
            }
        }
    }
    for family in &required_labeled {
        // Histogram families expose their samples with suffixes
        // (_count/_sum) and quantile labels, so accept any labeled
        // sample whose name starts with the required family.
        let found = labeled_families
            .iter()
            .any(|f| f == family || f.starts_with(family.as_str()));
        if !found {
            return Err(format!(
                "required labeled family {family:?} has no labeled samples"
            ));
        }
    }
    if let (Some(&live), Some(&peak)) =
        (alloc.get("alloc_live_bytes"), alloc.get("alloc_peak_bytes"))
    {
        if live > peak {
            return Err(format!(
                "allocator counters not monotone: live {live} > peak {peak}"
            ));
        }
        if let Some(&total) = alloc.get("alloc_total_bytes") {
            if peak > total {
                return Err(format!(
                    "allocator counters not monotone: peak {peak} > total {total}"
                ));
            }
        }
    }
    println!("OK: {families} famil(ies), {samples} sample(s), {labeled} labeled");
    Ok(())
}

fn cmd_sample(args: &[String]) -> Result<(), String> {
    let mut count = 10usize;
    let mut seed = 0u64;
    let mut expr: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--count" => {
                count = it
                    .next()
                    .ok_or("--count needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --count: {e}"))?;
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            e if e.starts_with('-') => {
                return Err(format!("unknown option {e:?} (try --help)"));
            }
            e => expr = Some(e.to_owned()),
        }
    }
    let expr = expr.ok_or("an expression argument is required")?;
    let mut al = Alphabet::new();
    let r = dtdinfer_regex::parser::parse(&expr, &mut al).map_err(|e| e.to_string())?;
    for w in dtdinfer_gen::generator::generate_sample(&r, count, seed) {
        println!("{}", al.render_word(&w, " "));
    }
    Ok(())
}

fn cmd_explain(args: &[String]) -> Result<(), String> {
    if !args.is_empty() {
        return Err("explain takes no options; words are read from stdin".into());
    }
    let mut input = String::new();
    std::io::stdin()
        .read_to_string(&mut input)
        .map_err(|e| e.to_string())?;
    let mut al = Alphabet::new();
    let words: Vec<Word> = input
        .lines()
        .map(|line| line.split_whitespace().map(|t| al.intern(t)).collect())
        .collect();
    let soa = dtdinfer_automata::soa::Soa::learn(&words);
    println!(
        "2T-INF: SOA with {} states, {} edges",
        soa.num_states(),
        soa.num_edges()
    );
    let (model, trace) =
        dtdinfer_core::idtd::idtd_traced(&soa, dtdinfer_core::idtd::IdtdConfig::default());
    for (i, event) in trace.iter().enumerate() {
        match event {
            dtdinfer_core::idtd::Event::Rewrite(step) => {
                let operands: Vec<String> = step
                    .operands
                    .iter()
                    .map(|r| dtdinfer_regex::display::render(r, &al))
                    .collect();
                println!(
                    "({:>2}) {:<14} {}  ⇒  {}",
                    i + 1,
                    step.rule.name(),
                    operands.join(" , "),
                    dtdinfer_regex::display::render(&step.result, &al)
                );
            }
            dtdinfer_core::idtd::Event::Repair {
                kind,
                k,
                edges_added,
            } => {
                println!(
                    "({:>2}) {:<14} k={k}, {edges_added} edge(s) added",
                    i + 1,
                    kind.name()
                );
            }
            dtdinfer_core::idtd::Event::Fallback => {
                println!("({:>2}) fallback: merge-everything", i + 1);
            }
        }
    }
    println!("result: {}", model.render(&al));
    Ok(())
}

fn cmd_dot(args: &[String]) -> Result<(), String> {
    let expr = args.first().ok_or("an expression argument is required")?;
    let mut al = Alphabet::new();
    let r = dtdinfer_regex::parser::parse(expr, &mut al).map_err(|e| e.to_string())?;
    let soa = dtdinfer_automata::glushkov::soa_of_sore(&r)
        .ok_or("expression is not single occurrence (no SOA exists)")?;
    print!("{}", soa.to_dot(&al));
    Ok(())
}

fn cmd_diff(args: &[String]) -> Result<(), String> {
    let [first, second] = args else {
        return Err("usage: dtdinfer diff FIRST.dtd SECOND.dtd".into());
    };
    let a = Dtd::parse(&std::fs::read_to_string(first).map_err(|e| format!("{first}: {e}"))?)
        .map_err(|e| e.to_string())?;
    let b = Dtd::parse(&std::fs::read_to_string(second).map_err(|e| format!("{second}: {e}"))?)
        .map_err(|e| e.to_string())?;
    for d in dtdinfer_xml::diff::diff(&a, &b) {
        println!("{:<24} {}", d.name, d.relation);
    }
    Ok(())
}

fn cmd_learn(args: &[String]) -> Result<(), String> {
    let mut engine = "idtd".to_owned();
    let mut state_path: Option<String> = None;
    let mut obs = ObsOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--engine" => engine = it.next().ok_or("--engine needs a value")?.to_owned(),
            "--state" => state_path = Some(it.next().ok_or("--state needs a value")?.to_owned()),
            a if obs.take(a, &mut it)? => {}
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    obs.activate()?;
    let mut input = String::new();
    std::io::stdin()
        .read_to_string(&mut input)
        .map_err(|e| e.to_string())?;
    let mut al = Alphabet::new();
    let words: Vec<Word> = input
        .lines()
        .map(|line| line.split_whitespace().map(|t| al.intern(t)).collect())
        .collect();
    if let Some(path) = state_path {
        // Incremental mode (§9): the persisted internal representation (the
        // SOA for iDTD, the partial-order summary for crx) is the complete
        // memory of all previously seen words.
        let existing = match std::fs::read_to_string(&path) {
            Ok(text) => Some(text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(format!("{path}: {e}")),
        };
        match engine.as_str() {
            "idtd" => {
                let mut soa = match &existing {
                    Some(text) => dtdinfer_automata::soa::Soa::from_text(text, &mut al)
                        .map_err(|e| format!("{path}: {e}"))?,
                    None => dtdinfer_automata::soa::Soa::new(),
                };
                for w in &words {
                    soa.absorb(w);
                }
                std::fs::write(&path, soa.to_text(&al)).map_err(|e| format!("{path}: {e}"))?;
                println!("{}", dtdinfer_core::idtd::idtd(&soa).render(&al));
            }
            "crx" => {
                let mut state = match &existing {
                    Some(text) => dtdinfer_core::crx::CrxState::from_text(text, &mut al)
                        .map_err(|e| format!("{path}: {e}"))?,
                    None => dtdinfer_core::crx::CrxState::new(),
                };
                for w in &words {
                    state.absorb(w);
                }
                std::fs::write(&path, state.to_text(&al)).map_err(|e| format!("{path}: {e}"))?;
                println!("{}", state.infer().render(&al));
            }
            "kore" => {
                let mut state = match &existing {
                    Some(text) => dtdinfer_core::kore::KoreState::from_text(text, &mut al)
                        .map_err(|e| format!("{path}: {e}"))?,
                    None => dtdinfer_core::kore::KoreState::new(),
                };
                for w in &words {
                    state.absorb(w);
                }
                std::fs::write(&path, state.to_text(&al)).map_err(|e| format!("{path}: {e}"))?;
                println!("{}", state.derive().model.render(&al));
            }
            other => return Err(format!("--state does not support engine {other:?}")),
        }
        return obs.finish();
    }
    let model = match engine.as_str() {
        "crx" => crx(&words),
        "idtd" => idtd_from_words(&words),
        "kore" => {
            let mut state = dtdinfer_core::kore::KoreState::new();
            for w in &words {
                state.absorb(w);
            }
            state.derive().model
        }
        other => return Err(format!("unknown engine {other:?}")),
    };
    println!("{}", model.render(&al));
    obs.finish()
}
