//! End-to-end tests of the sharded engine through the CLI: `--jobs`
//! byte-identity on the shipped testdata and the snapshot
//! save → update → load workflow.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dtdinfer"))
}

/// The shipped book catalogs, sorted for a stable argument order.
fn testdata() -> Vec<String> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../testdata/books");
    let mut files: Vec<String> = std::fs::read_dir(dir)
        .expect("testdata/books")
        .map(|e| e.unwrap().path().to_str().unwrap().to_owned())
        .filter(|p| p.ends_with(".xml"))
        .collect();
    files.sort();
    assert!(files.len() >= 4, "expected several catalogs, got {files:?}");
    files
}

fn run(args: &[&str]) -> Output {
    let out = bin().args(args).output().expect("spawn dtdinfer");
    assert!(
        out.status.success(),
        "dtdinfer {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn run_err(args: &[&str]) -> String {
    let out = bin().args(args).output().expect("spawn dtdinfer");
    assert!(
        !out.status.success(),
        "dtdinfer {args:?} unexpectedly passed"
    );
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A scratch directory unique to this test process.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dtdinfer-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn jobs_output_is_byte_identical_for_every_worker_count() {
    let files = testdata();
    let refs: Vec<&str> = files.iter().map(String::as_str).collect();
    let baseline = run(&[&["infer"][..], &refs].concat()).stdout;
    assert!(!baseline.is_empty());
    for jobs in ["1", "2", "4", "8"] {
        let sharded = run(&[&["infer", "--jobs", jobs][..], &refs].concat()).stdout;
        assert_eq!(sharded, baseline, "--jobs {jobs}");
    }
    // The XSD path (datatypes from the facts corpus) must agree too.
    let xsd = run(&[&["infer", "--xsd"][..], &refs].concat()).stdout;
    let xsd4 = run(&[&["infer", "--xsd", "--jobs", "4"][..], &refs].concat()).stdout;
    assert_eq!(xsd4, xsd);
}

#[test]
fn jobs_byte_identity_holds_for_every_engine() {
    let files = testdata();
    let refs: Vec<&str> = files.iter().map(String::as_str).collect();
    for engine in ["crx", "idtd", "idtd-noise:2"] {
        let baseline = run(&[&["infer", "--engine", engine][..], &refs].concat()).stdout;
        let sharded =
            run(&[&["infer", "--engine", engine, "--jobs", "4"][..], &refs].concat()).stdout;
        assert_eq!(sharded, baseline, "--engine {engine}");
    }
}

#[test]
fn snapshot_save_update_load_equals_one_shot() {
    let files = testdata();
    let refs: Vec<&str> = files.iter().map(String::as_str).collect();
    let dir = scratch("snapshot");
    let snap = dir.join("state.snap");
    let snap = snap.to_str().unwrap();

    let (first, rest) = refs.split_at(refs.len() / 2);
    run(&[
        &["snapshot", "save", "--out", snap, "--jobs", "2"][..],
        first,
    ]
    .concat());
    run(&[&["snapshot", "update", "--jobs", "3", snap][..], rest].concat());

    let one_shot = run(&[&["infer"][..], &refs].concat()).stdout;
    let from_snap = run(&["snapshot", "load", snap]).stdout;
    assert_eq!(from_snap, one_shot);

    let one_shot_xsd = run(&[&["infer", "--xsd"][..], &refs].concat()).stdout;
    let from_snap_xsd = run(&["snapshot", "load", "--xsd", snap]).stdout;
    assert_eq!(from_snap_xsd, one_shot_xsd);

    // Snapshots are canonical: re-saving the same corpus in one shot gives
    // the same bytes as the two-step save + update.
    let snap2 = dir.join("oneshot.snap");
    let snap2 = snap2.to_str().unwrap();
    run(&[&["snapshot", "save", "--out", snap2][..], &refs].concat());
    assert_eq!(std::fs::read(snap).unwrap(), std::fs::read(snap2).unwrap());
}

#[test]
fn corrupted_and_future_snapshots_are_rejected() {
    let dir = scratch("reject");
    let bad = dir.join("bad.snap");
    std::fs::write(&bad, "this is not a snapshot\n").unwrap();
    let err = run_err(&["snapshot", "load", bad.to_str().unwrap()]);
    assert!(err.contains("not a dtdinfer engine snapshot"), "{err}");

    let future = dir.join("future.snap");
    std::fs::write(&future, "#dtdinfer-engine v99\ndocuments 1\n").unwrap();
    let err = run_err(&["snapshot", "load", future.to_str().unwrap()]);
    assert!(err.contains("unsupported snapshot version"), "{err}");
    assert!(err.contains("v2"), "{err}");
}

#[test]
fn jobs_rejects_incompatible_flags() {
    let files = testdata();
    let refs: Vec<&str> = files.iter().map(String::as_str).collect();
    let err = run_err(&[&["infer", "--jobs", "2", "--contextual"][..], &refs].concat());
    assert!(err.contains("--contextual"), "{err}");
    let err = run_err(&[&["infer", "--jobs", "0"][..], &refs].concat());
    assert!(err.contains("--jobs"), "{err}");
}

#[test]
fn numeric_xsd_is_identical_with_and_without_jobs() {
    // The engine retains counted child-sequence multisets, so numeric
    // tightening works on the sharded path and must be byte-identical to
    // the sequential corpus path.
    let files = testdata();
    let refs: Vec<&str> = files.iter().map(String::as_str).collect();
    let sequential = run(&[&["infer", "--xsd", "--numeric", "2"][..], &refs].concat()).stdout;
    for jobs in ["1", "2", "4"] {
        let sharded = run(&[
            &["infer", "--jobs", jobs, "--xsd", "--numeric", "2"][..],
            &refs,
        ]
        .concat())
        .stdout;
        assert_eq!(sharded, sequential, "jobs {jobs}");
    }
}

#[test]
fn stats_jobs_reports_shards_and_merge_time() {
    let files = testdata();
    let refs: Vec<&str> = files.iter().map(String::as_str).collect();
    let out = run(&[&["stats", "--jobs", "2"][..], &refs].concat());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("shard 0:"), "{text}");
    assert!(text.contains("word(s)"), "{text}");
    assert!(text.contains("shard merge"), "{text}");
}

#[test]
fn stats_jobs_prints_a_per_worker_utilization_table() {
    let files = testdata();
    let refs: Vec<&str> = files.iter().map(String::as_str).collect();
    let out = run(&[&["stats", "--jobs", "3"][..], &refs].concat());
    let text = String::from_utf8_lossy(&out.stdout);
    let header = text
        .lines()
        .find(|l| l.starts_with("worker"))
        .unwrap_or_else(|| panic!("no worker table header: {text}"));
    for col in ["documents", "busy", "wall", "idle polls", "util"] {
        assert!(header.contains(col), "missing column {col}: {header}");
    }
    // One row per worker, each ending in a percentage.
    let rows: Vec<&str> = text
        .lines()
        .skip_while(|l| !l.starts_with("worker"))
        .skip(1)
        .take_while(|l| l.chars().next().is_some_and(|c| c.is_ascii_digit()))
        .collect();
    assert_eq!(rows.len(), 3, "one row per worker: {text}");
    for row in rows {
        assert!(row.trim_end().ends_with('%'), "utilization column: {row}");
    }
}

/// Drops a trailing `<number> <unit>` time column from a report line, so
/// tables can be compared across runs whose wall-clock times differ.
fn strip_time_column(line: &str) -> String {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    match tokens.as_slice() {
        [head @ .., value, unit]
            if matches!(*unit, "ns" | "µs" | "ms" | "s")
                && value.chars().all(|c| c.is_ascii_digit() || c == '.') =>
        {
            head.join(" ")
        }
        _ => tokens.join(" "),
    }
}

#[test]
fn stats_derivation_table_is_identical_for_every_worker_count() {
    let files = testdata();
    let refs: Vec<&str> = files.iter().map(String::as_str).collect();
    // The derivation table (everything up to the document summary line),
    // times stripped, must not depend on the worker count: sharding may
    // change the timings but never what was derived.
    let table = |jobs: &str| -> Vec<String> {
        let out = run(&[&["stats", "--jobs", jobs][..], &refs].concat());
        let text = String::from_utf8_lossy(&out.stdout).into_owned();
        let mut lines = Vec::new();
        for line in text.lines() {
            let done = line.contains("document(s)");
            lines.push(strip_time_column(line));
            if done {
                return lines;
            }
        }
        panic!("no summary line in stats output: {text}");
    };
    let baseline = table("1");
    assert!(baseline.len() > 2, "table has rows: {baseline:?}");
    for jobs in ["2", "4", "8"] {
        assert_eq!(table(jobs), baseline, "--jobs {jobs}");
    }
}

#[test]
fn parse_errors_name_the_failing_file_deterministically() {
    let dir = scratch("badxml");
    let good = dir.join("good.xml");
    let bad = dir.join("z-bad.xml");
    std::fs::write(&good, "<r><a/></r>").unwrap();
    std::fs::write(&bad, "<r><a></r>").unwrap();
    for jobs in ["1", "4"] {
        let err = run_err(&[
            "infer",
            "--jobs",
            jobs,
            good.to_str().unwrap(),
            bad.to_str().unwrap(),
        ]);
        assert!(err.contains("z-bad.xml"), "--jobs {jobs}: {err}");
    }
}
