//! End-to-end tests for the always-on observability pipeline surface of
//! the `dtdinfer` binary: OpenMetrics exposition, timeseries snapshots,
//! the `profile` subcommand, and the `omlint` exposition validator.
//! Every test spawns a fresh process, so the process-global registry is
//! never shared between tests.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dtdinfer"))
}

fn run_with_stdin(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = bin()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn dtdinfer");
    child
        .stdin
        .as_mut()
        .expect("piped")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn tempdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dtdinfer-obs-test-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// The book catalogs shipped in testdata/, as CLI arguments.
fn corpus_files() -> Vec<String> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../testdata/books");
    let mut files: Vec<String> = std::fs::read_dir(dir)
        .expect("testdata/books exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "xml"))
        .map(|p| p.to_string_lossy().into_owned())
        .collect();
    files.sort();
    assert!(!files.is_empty(), "testdata corpus must not be empty");
    files
}

#[test]
fn stats_emits_valid_openmetrics_that_omlint_accepts() {
    let mut args = vec![
        "stats".to_owned(),
        "--jobs".to_owned(),
        "4".to_owned(),
        "--metrics".to_owned(),
        "-".to_owned(),
        "--metrics-format".to_owned(),
        "openmetrics".to_owned(),
    ];
    args.extend(corpus_files());
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let (stdout, stderr, ok) = run_with_stdin(&argv, "");
    assert!(ok, "stats failed: {stderr}");

    // The exposition is the final block: everything from the first
    // `# TYPE` line through the mandatory `# EOF` terminator.
    let start = stdout
        .find("# TYPE ")
        .unwrap_or_else(|| panic!("no exposition in output: {stdout}"));
    let exposition = &stdout[start..];
    assert!(
        exposition.trim_end().ends_with("# EOF"),
        "exposition must end with # EOF: {exposition}"
    );
    assert!(
        exposition.contains("engine_documents"),
        "counters must be sanitized to OpenMetrics names: {exposition}"
    );
    // Histogram summaries surface as gauges with quantile-ish suffixes.
    assert!(
        exposition.contains("# TYPE"),
        "families need TYPE metadata: {exposition}"
    );

    // The binary's own linter is the acceptance check CI uses.
    let (lint_out, lint_err, lint_ok) = run_with_stdin(&["omlint", "-"], exposition);
    assert!(lint_ok, "omlint rejected our own exposition: {lint_err}");
    assert!(
        lint_out.starts_with("OK:"),
        "unexpected omlint output: {lint_out}"
    );
}

#[test]
fn metrics_format_requires_metrics_flag() {
    let mut args = vec![
        "stats".to_owned(),
        "--metrics-format".to_owned(),
        "openmetrics".to_owned(),
    ];
    args.extend(corpus_files().into_iter().take(1));
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let (_, stderr, ok) = run_with_stdin(&argv, "");
    assert!(!ok);
    assert!(
        stderr.contains("--metrics-format requires --metrics"),
        "unexpected error: {stderr}"
    );
}

#[test]
fn timeseries_interval_requires_timeseries_flag() {
    let mut args = vec![
        "stats".to_owned(),
        "--timeseries-interval".to_owned(),
        "5".to_owned(),
    ];
    args.extend(corpus_files().into_iter().take(1));
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let (_, stderr, ok) = run_with_stdin(&argv, "");
    assert!(!ok);
    assert!(
        stderr.contains("--timeseries-interval requires --timeseries"),
        "unexpected error: {stderr}"
    );
}

#[test]
fn timeseries_file_captures_the_run_as_parseable_json() {
    let dir = tempdir();
    let ts_path = dir.join("run.timeseries.json");
    let mut args = vec![
        "stats".to_owned(),
        "--jobs".to_owned(),
        "2".to_owned(),
        "--timeseries".to_owned(),
        ts_path.to_string_lossy().into_owned(),
        "--timeseries-interval".to_owned(),
        "1".to_owned(),
    ];
    args.extend(corpus_files());
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let (_, stderr, ok) = run_with_stdin(&argv, "");
    assert!(ok, "stats failed: {stderr}");

    let text = std::fs::read_to_string(&ts_path).expect("timeseries file written");
    let parsed = dtdinfer_obs::json::Value::parse(text.trim()).expect("timeseries JSON parses");
    let obj = parsed.as_obj().expect("object");
    assert_eq!(
        obj.get("interval_ms")
            .and_then(dtdinfer_obs::json::Value::as_u64),
        Some(1)
    );
    let points = obj["points"].as_arr().expect("points array");
    assert!(!points.is_empty(), "stop() must flush a final snapshot");
    // The final point carries the full document count for the corpus.
    let last = points.last().unwrap().as_obj().unwrap();
    let counters = last["counters"].as_obj().unwrap();
    assert_eq!(
        counters
            .get("engine.documents")
            .and_then(dtdinfer_obs::json::Value::as_u64),
        Some(corpus_files().len() as u64)
    );
    std::fs::remove_file(&ts_path).ok();
}

#[test]
fn profile_prints_critical_path_and_writes_folded_stacks() {
    let dir = tempdir();
    let folded = dir.join("books.folded");
    let mut args = vec![
        "profile".to_owned(),
        "--jobs".to_owned(),
        "2".to_owned(),
        "--top".to_owned(),
        "3".to_owned(),
        "--folded".to_owned(),
        folded.to_string_lossy().into_owned(),
    ];
    args.extend(corpus_files());
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let (stdout, stderr, ok) = run_with_stdin(&argv, "");
    assert!(ok, "profile failed: {stderr}");

    assert!(stdout.contains("critical path"), "missing table: {stdout}");
    assert!(
        stdout.contains("phases by self time"),
        "missing table: {stdout}"
    );
    assert!(stdout.contains("top 3 elements"), "missing table: {stdout}");
    // The derivation wrapper span must be on the critical path of a
    // profile run — it dominates the post-ingest wall clock.
    assert!(stdout.contains("derive"), "derive span absent: {stdout}");

    let stacks = std::fs::read_to_string(&folded).expect("folded stacks written");
    assert!(!stacks.trim().is_empty(), "folded stacks must be non-empty");
    for line in stacks.lines() {
        let (stack, value) = line.rsplit_once(' ').expect("`frames value` shape");
        assert!(stack.starts_with("tid"), "stack must be tid-rooted: {line}");
        value
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("bad value in {line}"));
    }
    std::fs::remove_file(&folded).ok();
}

#[test]
fn profile_without_inputs_fails() {
    let (_, stderr, ok) = run_with_stdin(&["profile"], "");
    assert!(!ok);
    assert!(stderr.contains("no input files"), "unexpected: {stderr}");
}

#[test]
fn omlint_rejects_garbage_and_non_monotone_allocator_counters() {
    let (_, stderr, ok) = run_with_stdin(&["omlint", "-"], "this is not an exposition\n");
    assert!(!ok);
    assert!(
        stderr.contains("invalid exposition"),
        "unexpected: {stderr}"
    );

    // Structurally valid exposition whose allocator counters are
    // impossible (live above peak) must be rejected too.
    let bogus = "\
# TYPE alloc_live_bytes gauge\n\
alloc_live_bytes 100\n\
# TYPE alloc_peak_bytes gauge\n\
alloc_peak_bytes 50\n\
# EOF\n";
    let (_, stderr, ok) = run_with_stdin(&["omlint", "-"], bogus);
    assert!(!ok);
    assert!(
        stderr.contains("not monotone"),
        "expected monotonicity failure: {stderr}"
    );
}

#[test]
fn help_documents_the_observability_surface() {
    let (stdout, _, ok) = run_with_stdin(&["--help"], "");
    assert!(ok);
    for needle in [
        "profile",
        "omlint",
        "--metrics-format",
        "--timeseries",
        "--timeseries-interval",
    ] {
        assert!(stdout.contains(needle), "help is missing {needle}");
    }
}
