//! End-to-end tests of the `dtdinfer` binary (spawned as a subprocess via
//! the path Cargo provides in `CARGO_BIN_EXE_dtdinfer`).

use std::io::Write as _;
use std::process::{Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dtdinfer"))
}

fn run_with_stdin(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = bin()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn dtdinfer");
    child
        .stdin
        .as_mut()
        .expect("piped")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn tempdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dtdinfer-cli-test-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn help_lists_subcommands() {
    let (stdout, _, ok) = run_with_stdin(&["--help"], "");
    assert!(ok);
    for sub in [
        "infer", "validate", "serve", "sample", "learn", "explain", "diff", "dot",
    ] {
        assert!(stdout.contains(sub), "help is missing {sub}");
    }
}

#[test]
fn unknown_subcommand_fails() {
    let (_, stderr, ok) = run_with_stdin(&["frobnicate"], "");
    assert!(!ok);
    assert!(stderr.contains("unknown subcommand"));
}

#[test]
fn learn_idtd_from_stdin() {
    let (stdout, _, ok) = run_with_stdin(&["learn"], "a b\nb\na a b\n");
    assert!(ok);
    assert_eq!(stdout.trim(), "a* b");
}

#[test]
fn learn_crx_from_stdin() {
    let (stdout, _, ok) =
        run_with_stdin(&["learn", "--engine", "crx"], "a b d\nb c d e e\nc a d e\n");
    assert!(ok);
    assert_eq!(stdout.trim(), "(a | b | c)+ d e*");
}

#[test]
fn explain_prints_figure3_derivation() {
    let words = "b a c a c d a c d e\nc b a c d b a c d e\na b c c a a d c d e\n";
    let (stdout, _, ok) = run_with_stdin(&["explain"], words);
    assert!(ok);
    assert!(stdout.contains("disjunction"), "{stdout}");
    assert!(stdout.contains("result: ((b? (a | c))+ d)+ e"), "{stdout}");
}

#[test]
fn infer_validate_round_trip() {
    let dir = tempdir();
    let doc1 = dir.join("d1.xml");
    let doc2 = dir.join("d2.xml");
    std::fs::write(&doc1, "<order><item/><item/><note>rush</note></order>").unwrap();
    std::fs::write(&doc2, "<order><item/></order>").unwrap();
    let (dtd_text, _, ok) = run_with_stdin(
        &[
            "infer",
            "--engine",
            "crx",
            doc1.to_str().unwrap(),
            doc2.to_str().unwrap(),
        ],
        "",
    );
    assert!(ok);
    assert!(
        dtd_text.contains("<!ELEMENT order (item+, note?)>"),
        "{dtd_text}"
    );
    let schema = dir.join("schema.dtd");
    std::fs::write(&schema, &dtd_text).unwrap();
    let (stdout, _, ok) = run_with_stdin(
        &[
            "validate",
            "--dtd",
            schema.to_str().unwrap(),
            doc1.to_str().unwrap(),
            doc2.to_str().unwrap(),
        ],
        "",
    );
    assert!(ok);
    assert!(stdout.contains("valid"));
    // A violating document fails with a nonzero exit code.
    let bad = dir.join("bad.xml");
    std::fs::write(&bad, "<order><note>first</note><item/></order>").unwrap();
    let (stdout, stderr, ok) = run_with_stdin(
        &[
            "validate",
            "--dtd",
            schema.to_str().unwrap(),
            bad.to_str().unwrap(),
        ],
        "",
    );
    assert!(!ok, "{stdout} {stderr}");
    assert!(stdout.contains("do not match"), "{stdout}");
    // The violation carries a counterexample witness: the first child at
    // which the content model's Glushkov simulation dies.
    assert!(stdout.contains("mismatch at child 1 (<note>)"), "{stdout}");
}

#[test]
fn validate_prints_witness_and_exit_codes() {
    let dir = tempdir();
    let schema = dir.join("wit.dtd");
    std::fs::write(
        &schema,
        "<!ELEMENT a (b, c)>\n<!ELEMENT b EMPTY>\n<!ELEMENT c EMPTY>\n",
    )
    .unwrap();
    let good = dir.join("wit-good.xml");
    std::fs::write(&good, "<a><b/><c/></a>").unwrap();
    let (stdout, _, ok) = run_with_stdin(
        &[
            "validate",
            "--dtd",
            schema.to_str().unwrap(),
            good.to_str().unwrap(),
        ],
        "",
    );
    assert!(ok, "{stdout}");
    assert!(stdout.contains("all 1 document(s) valid"), "{stdout}");
    // Wrong child at position 2 → nonzero exit and a positioned witness.
    let bad = dir.join("wit-bad.xml");
    std::fs::write(&bad, "<a><b/><b/></a>").unwrap();
    let (stdout, stderr, ok) = run_with_stdin(
        &[
            "validate",
            "--dtd",
            schema.to_str().unwrap(),
            bad.to_str().unwrap(),
        ],
        "",
    );
    assert!(!ok);
    assert!(stdout.contains("mismatch at child 2 (<b>)"), "{stdout}");
    assert!(stderr.contains("1 violation(s)"), "{stderr}");
    // Truncated content → the witness says what was expected next.
    let short = dir.join("wit-short.xml");
    std::fs::write(&short, "<a><b/></a>").unwrap();
    let (stdout, _, ok) = run_with_stdin(
        &[
            "validate",
            "--dtd",
            schema.to_str().unwrap(),
            short.to_str().unwrap(),
        ],
        "",
    );
    assert!(!ok);
    assert!(
        stdout.contains("content ends after child 1 (<b>), more children expected"),
        "{stdout}"
    );
}

#[test]
fn validate_format_json_emits_structured_witnesses() {
    let dir = tempdir();
    let schema = dir.join("fmt.dtd");
    std::fs::write(
        &schema,
        "<!ELEMENT a (b, c)>\n<!ELEMENT b EMPTY>\n<!ELEMENT c EMPTY>\n",
    )
    .unwrap();
    let bad = dir.join("fmt-bad.xml");
    std::fs::write(&bad, "<a><b/><b/></a>").unwrap();
    let good = dir.join("fmt-good.xml");
    std::fs::write(&good, "<a><b/><c/></a>").unwrap();
    let (stdout, stderr, ok) = run_with_stdin(
        &[
            "validate",
            "--format",
            "json",
            "--dtd",
            schema.to_str().unwrap(),
            good.to_str().unwrap(),
            bad.to_str().unwrap(),
        ],
        "",
    );
    assert!(!ok);
    assert!(stderr.contains("1 violation(s)"), "{stderr}");
    // stdout is one JSON document with the shared witness fields.
    assert!(stdout.contains("\"valid\":true"), "{stdout}");
    assert!(stdout.contains("\"valid\":false"), "{stdout}");
    assert!(stdout.contains("\"kind\":\"content-model\""), "{stdout}");
    assert!(stdout.contains("\"element\":\"a\""), "{stdout}");
    assert!(stdout.contains("\"position\":2"), "{stdout}");
    assert!(stdout.contains("\"expected\":\"(b, c)\""), "{stdout}");
    assert!(stdout.contains("\"got\":\"b\""), "{stdout}");
    assert!(stdout.contains("\"total_violations\":1"), "{stdout}");
    // The human rendering rides along inside each violation object.
    assert!(stdout.contains("mismatch at child 2 (<b>)"), "{stdout}");
    // Valid corpus in json mode: exit 0, machine-readable stdout only.
    let (stdout, _, ok) = run_with_stdin(
        &[
            "validate",
            "--format",
            "json",
            "--dtd",
            schema.to_str().unwrap(),
            good.to_str().unwrap(),
        ],
        "",
    );
    assert!(ok, "{stdout}");
    assert!(stdout.contains("\"total_violations\":0"), "{stdout}");
    assert!(!stdout.contains("document(s) valid"), "{stdout}");
    // Unknown format is rejected.
    let (_, stderr, ok) = run_with_stdin(
        &[
            "validate",
            "--format",
            "yaml",
            "--dtd",
            schema.to_str().unwrap(),
        ],
        "",
    );
    assert!(!ok);
    assert!(stderr.contains("unknown format"), "{stderr}");
}

/// A short serve lifecycle through the real binary: boot on a random
/// port, ingest over HTTP, read back the DTD, graceful shutdown, and
/// journal files on disk afterwards.
#[test]
fn serve_round_trip_through_binary() {
    use std::io::{Read as _, Write as _};
    let dir = tempdir().join("serve-data");
    std::fs::remove_dir_all(&dir).ok();
    let mut child = bin()
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--data-dir",
            dir.to_str().unwrap(),
            "--workers",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    // The bound address is announced on stderr.
    let mut stderr = child.stderr.take().expect("piped stderr");
    let mut announced = String::new();
    let mut byte = [0u8; 1];
    while !announced.contains('\n') {
        if stderr.read(&mut byte).unwrap_or(0) == 0 {
            break;
        }
        announced.push(byte[0] as char);
    }
    let addr = announced
        .rsplit("http://")
        .next()
        .map(str::trim)
        .unwrap_or_default()
        .to_owned();
    assert!(addr.contains(':'), "no address in {announced:?}");
    let http = |method: &str, path: &str, body: &str| -> String {
        let mut s = std::net::TcpStream::connect(&addr).expect("connect");
        s.set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .unwrap();
        write!(
            s,
            "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).expect("response");
        out
    };
    let reply = http("POST", "/sessions/s/ingest", "<r><a/><b/></r>");
    assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    let dtd = http("GET", "/sessions/s/dtd", "");
    assert!(dtd.contains("<!ELEMENT r (a, b)>"), "{dtd}");
    let reply = http("POST", "/shutdown", "");
    assert!(reply.contains("shutting_down"), "{reply}");
    let status = child.wait().expect("serve exits");
    assert!(status.success());
    assert!(
        dir.join("s.snap").exists(),
        "shutdown flush wrote no snapshot"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn infer_xsd_output() {
    let dir = tempdir();
    let doc = dir.join("x.xml");
    std::fs::write(&doc, "<r><n>42</n><n>7</n></r>").unwrap();
    let (xsd, _, ok) = run_with_stdin(
        &["infer", "--xsd", "--engine", "crx", doc.to_str().unwrap()],
        "",
    );
    assert!(ok);
    assert!(xsd.contains("<xs:schema"), "{xsd}");
    assert!(xsd.contains("type=\"xs:integer\""), "{xsd}");
}

#[test]
fn sample_generates_members() {
    let (stdout, _, ok) =
        run_with_stdin(&["sample", "--count", "6", "--seed", "3", "(a | b)+ c"], "");
    assert!(ok);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 6);
    for line in lines {
        assert!(line.ends_with('c'), "{line:?}");
    }
}

#[test]
fn dot_emits_graphviz() {
    let (stdout, _, ok) = run_with_stdin(&["dot", "(a | b)+ c"], "");
    assert!(ok);
    assert!(stdout.starts_with("digraph"));
    assert!(stdout.contains("label=\"c\""));
}

#[test]
fn diff_reports_relations() {
    let dir = tempdir();
    let first = dir.join("first.dtd");
    let second = dir.join("second.dtd");
    std::fs::write(
        &first,
        "<!ELEMENT r (x?, y?)>\n<!ELEMENT x EMPTY>\n<!ELEMENT y EMPTY>\n",
    )
    .unwrap();
    std::fs::write(
        &second,
        "<!ELEMENT r (x | y)>\n<!ELEMENT x EMPTY>\n<!ELEMENT y EMPTY>\n",
    )
    .unwrap();
    let (stdout, _, ok) = run_with_stdin(
        &["diff", first.to_str().unwrap(), second.to_str().unwrap()],
        "",
    );
    assert!(ok);
    assert!(stdout.contains("stricter"), "{stdout}");
}

#[test]
fn incremental_state_file() {
    let dir = tempdir();
    let state = dir.join("incr.soa");
    let _ = std::fs::remove_file(&state);
    let (first, _, ok) = run_with_stdin(&["learn", "--state", state.to_str().unwrap()], "a b\nb\n");
    assert!(ok);
    assert_eq!(first.trim(), "a? b");
    let (second, _, ok) = run_with_stdin(&["learn", "--state", state.to_str().unwrap()], "a a b\n");
    assert!(ok);
    assert_eq!(second.trim(), "a* b", "state must accumulate");
}

#[test]
fn validate_lint_flags_nondeterministic_models() {
    let dir = tempdir();
    let schema = dir.join("nondet.dtd");
    std::fs::write(
        &schema,
        "<!ELEMENT a ((b, c) | (b, d))>\n<!ELEMENT b EMPTY>\n<!ELEMENT c EMPTY>\n<!ELEMENT d EMPTY>\n",
    )
    .unwrap();
    let (stdout, stderr, ok) = run_with_stdin(
        &["validate", "--dtd", schema.to_str().unwrap(), "--lint"],
        "",
    );
    assert!(!ok, "{stdout} {stderr}");
    assert!(stdout.contains("not deterministic"), "{stdout}");
    // A clean DTD passes.
    let good = dir.join("det.dtd");
    std::fs::write(
        &good,
        "<!ELEMENT a (b?, c)>\n<!ELEMENT b EMPTY>\n<!ELEMENT c EMPTY>\n",
    )
    .unwrap();
    let (stdout, _, ok) =
        run_with_stdin(&["validate", "--dtd", good.to_str().unwrap(), "--lint"], "");
    assert!(ok, "{stdout}");
    assert!(stdout.contains("deterministic"));
}

/// One XML document per sample word, each child-name sequence spelling the
/// word (so `infer` exercises the same derivations as `learn`).
fn docs_from_words(dir: &std::path::Path, words: &[&str]) -> Vec<String> {
    words
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let children: String = w.chars().map(|c| format!("<{c}/>")).collect();
            let path = dir.join(format!("w{i}.xml"));
            std::fs::write(&path, format!("<r>{children}</r>")).unwrap();
            path.to_str().unwrap().to_owned()
        })
        .collect()
}

#[test]
fn unknown_options_are_rejected() {
    for args in [
        vec!["infer", "--bogus", "x.xml"],
        vec!["sample", "--frequency", "3", "(a | b)"],
        vec!["validate", "--dtd", "s.dtd", "--strict", "x.xml"],
        vec!["stats", "--wat", "x.xml"],
    ] {
        let (stdout, stderr, ok) = run_with_stdin(&args, "");
        assert!(!ok, "{args:?} must fail: {stdout}");
        assert!(stderr.contains("unknown option"), "{args:?}: {stderr}");
    }
}

#[test]
fn infer_metrics_emits_json_with_derivation_counters() {
    let dir = tempdir();
    // The paper's Figure 2 sample: iDTD needs the enable-disjunction
    // repair, so the repair counters are non-zero.
    let mut args = vec!["infer".to_owned(), "--metrics".to_owned(), "-".to_owned()];
    args.extend(docs_from_words(&dir, &["bacacdacde", "cbacdbacde"]));
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let (stdout, stderr, ok) = run_with_stdin(&argv, "");
    assert!(ok, "{stderr}");
    // The DTD comes first; the metrics snapshot is the final line.
    assert!(stdout.starts_with("<!ELEMENT"), "{stdout}");
    let json = stdout.lines().last().expect("metrics line");
    assert!(json.starts_with("{\"counters\":{"), "{json}");
    assert!(json.ends_with("}}"), "{json}");
    // Rewrite-rule counts by name.
    assert!(
        json.contains("\"core.rewrite.rule.disjunction\":"),
        "{json}"
    );
    assert!(
        json.contains("\"core.rewrite.rule.concatenation\":"),
        "{json}"
    );
    // Repair counts (Figure 2 requires at least one enable-disjunction).
    let repair = json
        .split("\"core.idtd.repair.enable-disjunction\":")
        .nth(1)
        .unwrap_or_else(|| panic!("{json}"));
    let count: u64 = repair
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap();
    assert!(count >= 1, "Figure 2 needs a repair: {json}");
    // Per-element and pipeline timings land in the histograms.
    assert!(json.contains("\"xml.infer_dtd.ns\":{\"count\":1"), "{json}");
    assert!(json.contains("\"core.idtd.ns\":"), "{json}");
    assert!(json.contains("\"xml.element.expr_size\":"), "{json}");
}

#[test]
fn stats_prints_per_element_report() {
    let dir = tempdir();
    let files = docs_from_words(&dir, &["ab", "b", "aab"]);
    let mut args = vec!["stats".to_owned()];
    args.extend(files);
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let (stdout, stderr, ok) = run_with_stdin(&argv, "");
    assert!(ok, "{stderr}");
    assert!(stdout.contains("element"), "{stdout}");
    assert!(stdout.contains("repairs"), "{stdout}");
    assert!(stdout.contains("idtd"), "{stdout}");
    assert!(stdout.lines().any(|l| l.starts_with('r')), "{stdout}");
    assert!(stdout.contains("document(s)"), "{stdout}");
}

#[test]
fn trace_writes_json_lines_and_verbose_reports_progress() {
    let dir = tempdir();
    let files = docs_from_words(&dir, &["bacacdacde", "cbacdbacde"]);
    let trace_path = dir.join("trace.jsonl");
    let mut args = vec![
        "infer".to_owned(),
        "-v".to_owned(),
        "--trace".to_owned(),
        trace_path.to_str().unwrap().to_owned(),
    ];
    args.extend(files);
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let (_, stderr, ok) = run_with_stdin(&argv, "");
    assert!(ok, "{stderr}");
    assert!(stderr.contains("parsed"), "{stderr}");
    assert!(stderr.contains("element r engine=idtd"), "{stderr}");
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    assert!(!trace.is_empty());
    for line in trace.lines() {
        assert!(
            line.starts_with("{\"span\":") || line.starts_with("{\"event\":"),
            "{line}"
        );
    }
    assert!(trace.contains("{\"event\":\"core.idtd.repair\""), "{trace}");
    assert!(trace.contains("\"span\":\"xml.infer_dtd\""), "{trace}");
}

#[test]
fn metrics_and_trace_on_stdout_keep_a_fixed_order() {
    let dir = tempdir();
    let mut args = vec![
        "infer".to_owned(),
        "--metrics".to_owned(),
        "-".to_owned(),
        "--trace".to_owned(),
        "-".to_owned(),
    ];
    args.extend(docs_from_words(&dir, &["bacacdacde", "cbacdbacde"]));
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let (stdout, stderr, ok) = run_with_stdin(&argv, "");
    assert!(ok, "{stderr}");
    // Pinned interleaving: the DTD leads, the trace block follows, and the
    // single-line metrics object is always the very last line.
    let lines: Vec<&str> = stdout.lines().collect();
    assert!(lines[0].starts_with("<!ELEMENT"), "{stdout}");
    let first_trace = lines
        .iter()
        .position(|l| l.starts_with("{\"span\":") || l.starts_with("{\"event\":"))
        .unwrap_or_else(|| panic!("no trace lines: {stdout}"));
    let metrics = lines
        .iter()
        .position(|l| l.starts_with("{\"counters\":{"))
        .unwrap_or_else(|| panic!("no metrics line: {stdout}"));
    assert_eq!(metrics, lines.len() - 1, "metrics must be last: {stdout}");
    for (i, line) in lines.iter().enumerate().skip(first_trace) {
        if i < metrics {
            assert!(
                line.starts_with("{\"span\":") || line.starts_with("{\"event\":"),
                "line {i} between trace start and metrics is not a trace entry: {line}"
            );
        }
    }
}

#[test]
fn chrome_trace_format_emits_trace_events_with_distinct_tids() {
    let dir = tempdir();
    let trace_path = dir.join("trace-chrome.json");
    let mut args = vec![
        "infer".to_owned(),
        "--jobs".to_owned(),
        "4".to_owned(),
        "--trace".to_owned(),
        trace_path.to_str().unwrap().to_owned(),
        "--trace-format".to_owned(),
        "chrome".to_owned(),
    ];
    args.extend(docs_from_words(
        &dir,
        &["bacacdacde", "cbacdbacde", "ab", "b"],
    ));
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let (stdout, stderr, ok) = run_with_stdin(&argv, "");
    assert!(ok, "{stderr}");
    assert!(stdout.starts_with("<!ELEMENT"), "{stdout}");
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    // Chrome trace-event shape: a JSON array of complete ("X") and
    // instant ("i") events carrying pid/tid rows.
    assert!(trace.starts_with("[\n"), "{trace}");
    assert!(trace.ends_with("\n]\n"), "{trace}");
    assert!(trace.contains("\"ph\":\"X\""), "{trace}");
    assert!(trace.contains("\"pid\":1"), "{trace}");
    assert!(
        trace.contains("\"name\":\"engine.shard\""),
        "worker spans present: {trace}"
    );
    let tids: std::collections::BTreeSet<u64> = trace
        .match_indices("\"tid\":")
        .map(|(i, m)| {
            trace[i + m.len()..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .expect("numeric tid")
        })
        .collect();
    assert!(
        tids.len() >= 2,
        "--jobs 4 must record at least two distinct thread ids, got {tids:?}: {trace}"
    );
}

#[test]
fn trace_format_flag_is_validated() {
    let dir = tempdir();
    let files = docs_from_words(&dir, &["ab"]);
    // chrome without --trace is rejected before any work happens.
    let (_, stderr, ok) = run_with_stdin(
        &["infer", "--trace-format", "chrome", files[0].as_str()],
        "",
    );
    assert!(!ok);
    assert!(
        stderr.contains("--trace-format requires --trace"),
        "{stderr}"
    );
    // Unknown formats are named in the error.
    let (_, stderr, ok) = run_with_stdin(
        &[
            "infer",
            "--trace",
            "-",
            "--trace-format",
            "perfetto",
            files[0].as_str(),
        ],
        "",
    );
    assert!(!ok);
    assert!(stderr.contains("unknown trace format"), "{stderr}");
    // An explicit jsonl with --trace is fine.
    let (stdout, stderr, ok) = run_with_stdin(
        &[
            "infer",
            "--trace",
            "-",
            "--trace-format",
            "jsonl",
            files[0].as_str(),
        ],
        "",
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("{\"span\":"), "{stdout}");
}

#[test]
fn fuzz_smoke_is_clean_and_deterministic() {
    let dir = tempdir();
    let corpus = dir.join("fuzz-corpus");
    let args = [
        "fuzz",
        "--seed",
        "11",
        "--cases",
        "25",
        "--corpus-dir",
        corpus.to_str().unwrap(),
    ];
    let (stdout, stderr, ok) = run_with_stdin(&args, "");
    assert!(ok, "{stdout}{stderr}");
    assert!(stdout.contains("25 case(s), 0 violation(s)"), "{stdout}");
    // Every oracle appears in the counter table and actually ran.
    for oracle in [
        "membership.idtd",
        "theorem5.sore-recovery",
        "identity.shards",
    ] {
        assert!(stdout.contains(oracle), "{stdout}");
    }
    // A clean run persists nothing.
    assert!(!corpus.exists() || std::fs::read_dir(&corpus).unwrap().next().is_none());
    // Byte-identical report for the same seed.
    let (stdout2, _, ok2) = run_with_stdin(&args, "");
    assert!(ok2);
    assert_eq!(
        stdout, stdout2,
        "fuzz report must be deterministic in the seed"
    );
}

#[test]
fn fuzz_planted_bug_reduces_and_replays() {
    let dir = tempdir();
    let corpus = dir.join("planted-corpus");
    let (stdout, stderr, ok) = run_with_stdin(
        &[
            "fuzz",
            "--seed",
            "42",
            "--cases",
            "6",
            "--plant-bug",
            "repeated-sibling",
            "--corpus-dir",
            corpus.to_str().unwrap(),
        ],
        "",
    );
    // The planted bug must fire, exit nonzero, and persist a reduction.
    assert!(!ok, "{stdout}{stderr}");
    assert!(stdout.contains("reduced regression written"), "{stdout}");
    let entries: Vec<_> = std::fs::read_dir(&corpus).unwrap().collect();
    assert!(!entries.is_empty());
    // Replaying the persisted case without the planted bug is clean: the
    // defect was in the (synthetic) checker, not the pipeline.
    let case = entries[0].as_ref().unwrap().path();
    let (stdout, stderr, ok) = run_with_stdin(&["fuzz", "--replay", case.to_str().unwrap()], "");
    assert!(ok, "{stdout}{stderr}");
    assert!(stdout.contains("clean"), "{stdout}");
}

#[test]
fn learn_accepts_metrics_flag() {
    let dir = tempdir();
    let metrics_path = dir.join("learn-metrics.json");
    let (stdout, stderr, ok) = run_with_stdin(
        &["learn", "--metrics", metrics_path.to_str().unwrap()],
        "a b\nb\n",
    );
    assert!(ok, "{stderr}");
    assert_eq!(stdout.trim(), "a? b");
    let json = std::fs::read_to_string(&metrics_path).unwrap();
    assert!(json.contains("\"core.idtd.runs\":1"), "{json}");
}
