//! End-to-end tests of the `dtdinfer` binary (spawned as a subprocess via
//! the path Cargo provides in `CARGO_BIN_EXE_dtdinfer`).

use std::io::Write as _;
use std::process::{Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dtdinfer"))
}

fn run_with_stdin(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = bin()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn dtdinfer");
    child
        .stdin
        .as_mut()
        .expect("piped")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn tempdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dtdinfer-cli-test-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn help_lists_subcommands() {
    let (stdout, _, ok) = run_with_stdin(&["--help"], "");
    assert!(ok);
    for sub in ["infer", "validate", "sample", "learn", "explain", "diff", "dot"] {
        assert!(stdout.contains(sub), "help is missing {sub}");
    }
}

#[test]
fn unknown_subcommand_fails() {
    let (_, stderr, ok) = run_with_stdin(&["frobnicate"], "");
    assert!(!ok);
    assert!(stderr.contains("unknown subcommand"));
}

#[test]
fn learn_idtd_from_stdin() {
    let (stdout, _, ok) = run_with_stdin(&["learn"], "a b\nb\na a b\n");
    assert!(ok);
    assert_eq!(stdout.trim(), "a* b");
}

#[test]
fn learn_crx_from_stdin() {
    let (stdout, _, ok) = run_with_stdin(&["learn", "--engine", "crx"], "a b d\nb c d e e\nc a d e\n");
    assert!(ok);
    assert_eq!(stdout.trim(), "(a | b | c)+ d e*");
}

#[test]
fn explain_prints_figure3_derivation() {
    let words = "b a c a c d a c d e\nc b a c d b a c d e\na b c c a a d c d e\n";
    let (stdout, _, ok) = run_with_stdin(&["explain"], words);
    assert!(ok);
    assert!(stdout.contains("disjunction"), "{stdout}");
    assert!(stdout.contains("result: ((b? (a | c))+ d)+ e"), "{stdout}");
}

#[test]
fn infer_validate_round_trip() {
    let dir = tempdir();
    let doc1 = dir.join("d1.xml");
    let doc2 = dir.join("d2.xml");
    std::fs::write(&doc1, "<order><item/><item/><note>rush</note></order>").unwrap();
    std::fs::write(&doc2, "<order><item/></order>").unwrap();
    let (dtd_text, _, ok) = run_with_stdin(
        &[
            "infer",
            "--engine",
            "crx",
            doc1.to_str().unwrap(),
            doc2.to_str().unwrap(),
        ],
        "",
    );
    assert!(ok);
    assert!(dtd_text.contains("<!ELEMENT order (item+, note?)>"), "{dtd_text}");
    let schema = dir.join("schema.dtd");
    std::fs::write(&schema, &dtd_text).unwrap();
    let (stdout, _, ok) = run_with_stdin(
        &[
            "validate",
            "--dtd",
            schema.to_str().unwrap(),
            doc1.to_str().unwrap(),
            doc2.to_str().unwrap(),
        ],
        "",
    );
    assert!(ok);
    assert!(stdout.contains("valid"));
    // A violating document fails with a nonzero exit code.
    let bad = dir.join("bad.xml");
    std::fs::write(&bad, "<order><note>first</note><item/></order>").unwrap();
    let (stdout, stderr, ok) =
        run_with_stdin(&["validate", "--dtd", schema.to_str().unwrap(), bad.to_str().unwrap()], "");
    assert!(!ok, "{stdout} {stderr}");
    assert!(stdout.contains("do not match"), "{stdout}");
}

#[test]
fn infer_xsd_output() {
    let dir = tempdir();
    let doc = dir.join("x.xml");
    std::fs::write(&doc, "<r><n>42</n><n>7</n></r>").unwrap();
    let (xsd, _, ok) = run_with_stdin(
        &["infer", "--xsd", "--engine", "crx", doc.to_str().unwrap()],
        "",
    );
    assert!(ok);
    assert!(xsd.contains("<xs:schema"), "{xsd}");
    assert!(xsd.contains("type=\"xs:integer\""), "{xsd}");
}

#[test]
fn sample_generates_members() {
    let (stdout, _, ok) = run_with_stdin(&["sample", "--count", "6", "--seed", "3", "(a | b)+ c"], "");
    assert!(ok);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 6);
    for line in lines {
        assert!(line.ends_with('c'), "{line:?}");
    }
}

#[test]
fn dot_emits_graphviz() {
    let (stdout, _, ok) = run_with_stdin(&["dot", "(a | b)+ c"], "");
    assert!(ok);
    assert!(stdout.starts_with("digraph"));
    assert!(stdout.contains("label=\"c\""));
}

#[test]
fn diff_reports_relations() {
    let dir = tempdir();
    let first = dir.join("first.dtd");
    let second = dir.join("second.dtd");
    std::fs::write(&first, "<!ELEMENT r (x?, y?)>\n<!ELEMENT x EMPTY>\n<!ELEMENT y EMPTY>\n").unwrap();
    std::fs::write(&second, "<!ELEMENT r (x | y)>\n<!ELEMENT x EMPTY>\n<!ELEMENT y EMPTY>\n").unwrap();
    let (stdout, _, ok) = run_with_stdin(
        &["diff", first.to_str().unwrap(), second.to_str().unwrap()],
        "",
    );
    assert!(ok);
    assert!(stdout.contains("stricter"), "{stdout}");
}

#[test]
fn incremental_state_file() {
    let dir = tempdir();
    let state = dir.join("incr.soa");
    let _ = std::fs::remove_file(&state);
    let (first, _, ok) = run_with_stdin(
        &["learn", "--state", state.to_str().unwrap()],
        "a b\nb\n",
    );
    assert!(ok);
    assert_eq!(first.trim(), "a? b");
    let (second, _, ok) = run_with_stdin(
        &["learn", "--state", state.to_str().unwrap()],
        "a a b\n",
    );
    assert!(ok);
    assert_eq!(second.trim(), "a* b", "state must accumulate");
}

#[test]
fn validate_lint_flags_nondeterministic_models() {
    let dir = tempdir();
    let schema = dir.join("nondet.dtd");
    std::fs::write(
        &schema,
        "<!ELEMENT a ((b, c) | (b, d))>\n<!ELEMENT b EMPTY>\n<!ELEMENT c EMPTY>\n<!ELEMENT d EMPTY>\n",
    )
    .unwrap();
    let (stdout, stderr, ok) =
        run_with_stdin(&["validate", "--dtd", schema.to_str().unwrap(), "--lint"], "");
    assert!(!ok, "{stdout} {stderr}");
    assert!(stdout.contains("not deterministic"), "{stdout}");
    // A clean DTD passes.
    let good = dir.join("det.dtd");
    std::fs::write(&good, "<!ELEMENT a (b?, c)>\n<!ELEMENT b EMPTY>\n<!ELEMENT c EMPTY>\n").unwrap();
    let (stdout, _, ok) = run_with_stdin(&["validate", "--dtd", good.to_str().unwrap(), "--lint"], "");
    assert!(ok, "{stdout}");
    assert!(stdout.contains("deterministic"));
}
