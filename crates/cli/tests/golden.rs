//! Golden-output regression tests: the DTD and XSD inferred from the
//! shipped book catalogs are pinned byte-for-byte against
//! `testdata/golden/`, for the sequential path and every `--jobs` count.
//!
//! These files were produced by the pre-streaming extractor (unbounded
//! sample collection, owned parser events); the streaming pipeline must
//! reproduce them exactly.

use std::path::PathBuf;
use std::process::Command;

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

/// The shipped book catalogs, sorted for a stable argument order.
fn testdata() -> Vec<String> {
    let mut files: Vec<String> = std::fs::read_dir(repo_path("testdata/books"))
        .expect("testdata/books")
        .map(|e| e.unwrap().path().to_str().unwrap().to_owned())
        .filter(|p| p.ends_with(".xml"))
        .collect();
    files.sort();
    files
}

fn infer(extra: &[&str]) -> Vec<u8> {
    let files = testdata();
    let refs: Vec<&str> = files.iter().map(String::as_str).collect();
    let out = Command::new(env!("CARGO_BIN_EXE_dtdinfer"))
        .args([&["infer"][..], extra, &refs].concat())
        .output()
        .expect("spawn dtdinfer");
    assert!(
        out.status.success(),
        "infer {extra:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

fn golden(name: &str) -> Vec<u8> {
    std::fs::read(repo_path("testdata/golden").join(name))
        .unwrap_or_else(|e| panic!("testdata/golden/{name}: {e}"))
}

#[test]
fn idtd_dtd_matches_golden_for_every_job_count() {
    let expected = golden("books.idtd.dtd");
    assert_eq!(infer(&[]), expected, "sequential");
    for jobs in ["1", "2", "4", "8"] {
        assert_eq!(infer(&["--jobs", jobs]), expected, "--jobs {jobs}");
    }
}

#[test]
fn crx_dtd_matches_golden_for_every_job_count() {
    let expected = golden("books.crx.dtd");
    assert_eq!(infer(&["--engine", "crx"]), expected, "sequential");
    for jobs in ["1", "4"] {
        assert_eq!(
            infer(&["--engine", "crx", "--jobs", jobs]),
            expected,
            "--jobs {jobs}"
        );
    }
}

#[test]
fn idtd_xsd_matches_golden_for_every_job_count() {
    let expected = golden("books.idtd.xsd");
    assert_eq!(infer(&["--xsd"]), expected, "sequential");
    for jobs in ["1", "2", "4", "8"] {
        assert_eq!(infer(&["--xsd", "--jobs", jobs]), expected, "--jobs {jobs}");
    }
}
