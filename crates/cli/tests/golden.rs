//! Golden-output regression tests: the DTD and XSD inferred from the
//! shipped book catalogs are pinned byte-for-byte against
//! `testdata/golden/`, for the sequential path and every `--jobs` count.
//!
//! These files were produced by the pre-streaming extractor (unbounded
//! sample collection, owned parser events); the streaming pipeline must
//! reproduce them exactly.

use std::path::PathBuf;
use std::process::Command;

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

/// The XML files of a shipped corpus, sorted for a stable argument order.
fn corpus(dir: &str) -> Vec<String> {
    let mut files: Vec<String> = std::fs::read_dir(repo_path(dir))
        .unwrap_or_else(|e| panic!("{dir}: {e}"))
        .map(|e| e.unwrap().path().to_str().unwrap().to_owned())
        .filter(|p| p.ends_with(".xml"))
        .collect();
    files.sort();
    files
}

/// The shipped book catalogs, sorted for a stable argument order.
fn testdata() -> Vec<String> {
    corpus("testdata/books")
}

fn infer_files(files: &[String], extra: &[&str]) -> Vec<u8> {
    let refs: Vec<&str> = files.iter().map(String::as_str).collect();
    let out = Command::new(env!("CARGO_BIN_EXE_dtdinfer"))
        .args([&["infer"][..], extra, &refs].concat())
        .output()
        .expect("spawn dtdinfer");
    assert!(
        out.status.success(),
        "infer {extra:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

fn infer(extra: &[&str]) -> Vec<u8> {
    infer_files(&testdata(), extra)
}

fn golden(name: &str) -> Vec<u8> {
    std::fs::read(repo_path("testdata/golden").join(name))
        .unwrap_or_else(|e| panic!("testdata/golden/{name}: {e}"))
}

#[test]
fn idtd_dtd_matches_golden_for_every_job_count() {
    let expected = golden("books.idtd.dtd");
    assert_eq!(infer(&[]), expected, "sequential");
    for jobs in ["1", "2", "4", "8"] {
        assert_eq!(infer(&["--jobs", jobs]), expected, "--jobs {jobs}");
    }
}

#[test]
fn crx_dtd_matches_golden_for_every_job_count() {
    let expected = golden("books.crx.dtd");
    assert_eq!(infer(&["--engine", "crx"]), expected, "sequential");
    for jobs in ["1", "4"] {
        assert_eq!(
            infer(&["--engine", "crx", "--jobs", jobs]),
            expected,
            "--jobs {jobs}"
        );
    }
}

#[test]
fn idtd_xsd_matches_golden_for_every_job_count() {
    let expected = golden("books.idtd.xsd");
    assert_eq!(infer(&["--xsd"]), expected, "sequential");
    for jobs in ["1", "2", "4", "8"] {
        assert_eq!(infer(&["--xsd", "--jobs", jobs]), expected, "--jobs {jobs}");
    }
}

#[test]
fn kore_dtd_matches_golden_for_every_job_count() {
    let expected = golden("books.kore.dtd");
    assert_eq!(infer(&["--engine", "kore"]), expected, "sequential");
    for jobs in ["1", "2", "4", "8"] {
        assert_eq!(
            infer(&["--engine", "kore", "--jobs", jobs]),
            expected,
            "--jobs {jobs}"
        );
    }
}

#[test]
fn auto_dtd_matches_golden_for_every_job_count() {
    let expected = golden("books.auto.dtd");
    assert_eq!(infer(&["--engine", "auto"]), expected, "sequential");
    for jobs in ["1", "2", "4", "8"] {
        assert_eq!(
            infer(&["--engine", "auto", "--jobs", jobs]),
            expected,
            "--jobs {jobs}"
        );
    }
}

/// The repeating-children corpus in `testdata/kore/` is where the k-ORE
/// engine earns its keep: iDTD can only answer `(chorus | verse)+`, while
/// kore (and auto, via the MDL chooser) recover `(chorus, verse, chorus?)`.
/// Each engine's output is pinned byte-for-byte across every job count
/// *and* across document permutations — ingestion order must not matter.
#[test]
fn kore_corpus_matches_golden_across_jobs_and_permutations() {
    let files = corpus("testdata/kore");
    let mut reversed = files.clone();
    reversed.reverse();
    for engine in ["idtd", "kore", "auto"] {
        let expected = golden(&format!("songs.{engine}.dtd"));
        assert_eq!(
            infer_files(&files, &["--engine", engine]),
            expected,
            "{engine} sequential"
        );
        for jobs in ["1", "2", "4", "8"] {
            assert_eq!(
                infer_files(&files, &["--engine", engine, "--jobs", jobs]),
                expected,
                "{engine} --jobs {jobs}"
            );
        }
        assert_eq!(
            infer_files(&reversed, &["--engine", engine, "--jobs", "4"]),
            expected,
            "{engine} reversed file order"
        );
    }
}
