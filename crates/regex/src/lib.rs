//! Regular-expression core for DTD inference.
//!
//! This crate implements the *syntactic* side of the VLDB 2006 paper
//! "Inference of Concise DTDs from XML Data": an AST for regular expressions
//! over an interned alphabet of element names, a parser and pretty-printer
//! for DTD-style content models, the normalization rules used by the
//! `rewrite` algorithm, classification of expressions as single occurrence
//! regular expressions (SOREs) and chain regular expressions (CHAREs),
//! syntactic equality up to commutativity of union (Theorem 5), a
//! coverage-aware random sampler (our ToXgene substitute), and the numerical
//! predicate extension of §9.
//!
//! Semantics (membership, language equivalence) live in `dtdinfer-automata`;
//! the inference algorithms themselves live in `dtdinfer-core`.

#![warn(missing_docs)]

pub mod alphabet;
pub mod ast;
pub mod classify;
pub mod determinism;
pub mod display;
pub mod multiset;
pub mod normalize;
pub mod numeric;
pub mod parser;
pub mod props;
pub mod sample;

pub use alphabet::{Alphabet, Sym, Word};
pub use ast::Regex;
pub use classify::{is_chare, is_sore, ChareFactor, ChareModifier};
pub use determinism::is_deterministic;
pub use normalize::{normalize, star_form};
pub use parser::{parse, ParseError};
