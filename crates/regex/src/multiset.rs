//! A counted multiset of words.
//!
//! Real corpora repeat child-name sequences heavily — every `<book>` with
//! the same `title author+ year` shape contributes the *same* word — so
//! storing one `(Word, count)` entry per distinct word makes corpus
//! accumulation, shard merging, and snapshot size O(distinct words)
//! instead of O(occurrences), and lets count-aware learners absorb each
//! distinct word once.
//!
//! The representation is a `Vec<(Word, u32)>` kept sorted by word
//! (lexicographic over `Sym` ids) with no duplicate words and no zero
//! counts. That canonical order makes equality, merging, and serialized
//! form independent of insertion order, which the byte-identity guarantees
//! of the sharded engine rely on.

use crate::alphabet::{Sym, Word};

/// A canonical-sorted counted multiset of [`Word`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WordBag {
    /// `(word, count)` entries, strictly sorted by word, counts ≥ 1.
    entries: Vec<(Word, u32)>,
}

impl WordBag {
    /// An empty bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one occurrence of `w`.
    pub fn insert(&mut self, w: Word) {
        self.insert_n(w, 1);
    }

    /// Adds one occurrence of `w`, cloning it only on first sight — the
    /// allocation-free path for hot loops that recycle their scratch
    /// [`Word`]s: repeated shapes cost a binary search and an increment.
    pub fn insert_ref(&mut self, w: &Word) {
        match self.entries.binary_search_by(|(e, _)| e.cmp(w)) {
            Ok(i) => self.entries[i].1 = self.entries[i].1.saturating_add(1),
            Err(i) => self.entries.insert(i, (w.clone(), 1)),
        }
    }

    /// Adds `n` occurrences of `w`. `n = 0` is a no-op.
    pub fn insert_n(&mut self, w: Word, n: u32) {
        if n == 0 {
            return;
        }
        match self.entries.binary_search_by(|(e, _)| e.cmp(&w)) {
            Ok(i) => self.entries[i].1 = self.entries[i].1.saturating_add(n),
            Err(i) => self.entries.insert(i, (w, n)),
        }
    }

    /// Folds `other` in: counts add, order stays canonical. One linear
    /// merge pass — O(distinct words), not O(occurrences).
    pub fn merge(&mut self, other: &WordBag) {
        if other.entries.is_empty() {
            return;
        }
        if self.entries.is_empty() {
            self.entries = other.entries.clone();
            return;
        }
        let mut merged = Vec::with_capacity(self.entries.len() + other.entries.len());
        let mut a = std::mem::take(&mut self.entries).into_iter().peekable();
        let mut b = other.entries.iter().cloned().peekable();
        loop {
            match (a.peek(), b.peek()) {
                (Some((wa, _)), Some((wb, _))) => match wa.cmp(wb) {
                    std::cmp::Ordering::Less => merged.push(a.next().expect("peeked")),
                    std::cmp::Ordering::Greater => merged.push(b.next().expect("peeked")),
                    std::cmp::Ordering::Equal => {
                        let (w, ca) = a.next().expect("peeked");
                        let (_, cb) = b.next().expect("peeked");
                        merged.push((w, ca.saturating_add(cb)));
                    }
                },
                (Some(_), None) => merged.push(a.next().expect("peeked")),
                (None, Some(_)) => merged.push(b.next().expect("peeked")),
                (None, None) => break,
            }
        }
        self.entries = merged;
    }

    /// Iterates `(word, count)` in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&Word, u32)> {
        self.entries.iter().map(|(w, c)| (w, *c))
    }

    /// Iterates the distinct words in canonical order.
    pub fn words(&self) -> impl Iterator<Item = &Word> {
        self.entries.iter().map(|(w, _)| w)
    }

    /// The underlying sorted `(word, count)` slice.
    pub fn as_slice(&self) -> &[(Word, u32)] {
        &self.entries
    }

    /// Consumes the bag, handing back its entries (canonical order) so
    /// callers can recycle the `Word` allocations.
    pub fn into_entries(self) -> Vec<(Word, u32)> {
        self.entries
    }

    /// Number of distinct words.
    pub fn distinct(&self) -> usize {
        self.entries.len()
    }

    /// Total occurrences (sum of counts).
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|(_, c)| u64::from(*c)).sum()
    }

    /// Whether no word (of any length) has been inserted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Rebuilds the bag with every symbol remapped through `f`,
    /// re-sorting into canonical order (alphabet canonicalization).
    pub fn map_symbols(&self, mut f: impl FnMut(Sym) -> Sym) -> WordBag {
        let mut entries: Vec<(Word, u32)> = self
            .entries
            .iter()
            .map(|(w, c)| (w.iter().map(|&s| f(s)).collect(), *c))
            .collect();
        entries.sort_unstable_by(|(a, _), (b, _)| a.cmp(b));
        // A symbol remap is injective in practice, but fold duplicates
        // defensively so the canonical invariant always holds.
        let mut bag = WordBag::new();
        for (w, c) in entries {
            match bag.entries.last_mut() {
                Some((last, count)) if *last == w => *count = count.saturating_add(c),
                _ => bag.entries.push((w, c)),
            }
        }
        bag
    }

    /// Builds a bag from raw `(word, count)` rows (snapshot loading),
    /// failing when a row violates the canonical form: zero counts,
    /// duplicate or out-of-order words.
    pub fn from_rows(rows: Vec<(Word, u32)>) -> Result<WordBag, String> {
        for (i, (w, c)) in rows.iter().enumerate() {
            if *c == 0 {
                return Err(format!("word row {i}: zero count"));
            }
            if i > 0 {
                match rows[i - 1].0.cmp(w) {
                    std::cmp::Ordering::Less => {}
                    std::cmp::Ordering::Equal => {
                        return Err(format!("word row {i}: duplicate word"));
                    }
                    std::cmp::Ordering::Greater => {
                        return Err(format!("word row {i}: out of canonical order"));
                    }
                }
            }
        }
        Ok(WordBag { entries: rows })
    }
}

impl FromIterator<Word> for WordBag {
    fn from_iter<I: IntoIterator<Item = Word>>(iter: I) -> Self {
        let mut bag = WordBag::new();
        for w in iter {
            bag.insert(w);
        }
        bag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(syms: &[u32]) -> Word {
        syms.iter().map(|&i| Sym(i)).collect()
    }

    #[test]
    fn insert_counts_and_sorts() {
        let mut bag = WordBag::new();
        bag.insert(w(&[1, 2]));
        bag.insert(w(&[0]));
        bag.insert(w(&[1, 2]));
        bag.insert(w(&[]));
        assert_eq!(
            bag.as_slice(),
            &[(w(&[]), 1), (w(&[0]), 1), (w(&[1, 2]), 2)]
        );
        assert_eq!(bag.distinct(), 3);
        assert_eq!(bag.total(), 4);
    }

    #[test]
    fn insertion_order_is_irrelevant() {
        let a: WordBag = [w(&[1]), w(&[2]), w(&[1]), w(&[])].into_iter().collect();
        let b: WordBag = [w(&[]), w(&[1]), w(&[1]), w(&[2])].into_iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn merge_adds_counts_linearly() {
        let mut a: WordBag = [w(&[1]), w(&[1]), w(&[3])].into_iter().collect();
        let b: WordBag = [w(&[1]), w(&[2])].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.as_slice(), &[(w(&[1]), 3), (w(&[2]), 1), (w(&[3]), 1)]);
        let mut empty = WordBag::new();
        empty.merge(&a);
        assert_eq!(empty, a);
    }

    #[test]
    fn map_symbols_resorts() {
        let bag: WordBag = [w(&[0, 1]), w(&[2])].into_iter().collect();
        // Reverse the symbol order: 0↔2.
        let mapped = bag.map_symbols(|s| Sym(2 - s.0));
        assert_eq!(mapped.as_slice(), &[(w(&[0]), 1), (w(&[2, 1]), 1)]);
    }

    #[test]
    fn from_rows_is_fail_closed() {
        assert!(WordBag::from_rows(vec![(w(&[1]), 1), (w(&[2]), 3)]).is_ok());
        assert!(
            WordBag::from_rows(vec![(w(&[1]), 0)]).is_err(),
            "zero count"
        );
        assert!(
            WordBag::from_rows(vec![(w(&[2]), 1), (w(&[1]), 1)]).is_err(),
            "out of order"
        );
        assert!(
            WordBag::from_rows(vec![(w(&[1]), 1), (w(&[1]), 1)]).is_err(),
            "duplicate"
        );
    }

    #[test]
    fn insert_ref_matches_insert() {
        let words = [w(&[1, 2]), w(&[0]), w(&[1, 2]), w(&[]), w(&[0])];
        let by_value: WordBag = words.iter().cloned().collect();
        let mut by_ref = WordBag::new();
        for word in &words {
            by_ref.insert_ref(word);
        }
        assert_eq!(by_ref, by_value);
        assert_eq!(by_ref.into_entries(), by_value.as_slice().to_vec());
    }

    #[test]
    fn saturating_counts() {
        let mut bag = WordBag::new();
        bag.insert_n(w(&[1]), u32::MAX);
        bag.insert(w(&[1]));
        assert_eq!(bag.as_slice(), &[(w(&[1]), u32::MAX)]);
    }
}
