//! Position-based (Glushkov) properties of regular expressions.
//!
//! Linearizes an expression into *positions* (one per symbol occurrence) and
//! computes the classical `nullable` / `first` / `last` / `follow` functions.
//! These drive the Glushkov automaton construction in `dtdinfer-automata`
//! (Proposition 1: the Glushkov automaton of a SORE is an SOA) and the
//! coverage-guaranteed sampler in [`crate::sample`].

use crate::alphabet::Sym;
use crate::ast::Regex;

/// A position: the index of one symbol occurrence in left-to-right order.
pub type Pos = usize;

/// Result of Glushkov linearization.
#[derive(Debug, Clone)]
pub struct Linearized {
    /// Symbol at each position, indexed by `Pos`.
    pub sym_at: Vec<Sym>,
    /// Whether ε ∈ L(r).
    pub nullable: bool,
    /// Positions that can start a word.
    pub first: Vec<Pos>,
    /// Positions that can end a word.
    pub last: Vec<Pos>,
    /// `follow[p]` = positions that may directly follow `p` in a word.
    pub follow: Vec<Vec<Pos>>,
}

impl Linearized {
    /// Number of positions (symbol occurrences).
    pub fn len(&self) -> usize {
        self.sym_at.len()
    }

    /// Whether the expression has no positions (never: ε/∅ are not REs here),
    /// provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.sym_at.is_empty()
    }

    /// Whether two positions carry the same symbol somewhere (true iff the
    /// source expression was *not* single occurrence).
    pub fn has_duplicate_symbols(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        self.sym_at.iter().any(|s| !seen.insert(*s))
    }
}

/// Intermediate per-subexpression data during linearization.
struct Attrs {
    nullable: bool,
    first: Vec<Pos>,
    last: Vec<Pos>,
}

/// Linearizes `r` and computes nullable/first/last/follow.
pub fn linearize(r: &Regex) -> Linearized {
    let mut sym_at = Vec::new();
    let mut follow: Vec<Vec<Pos>> = Vec::new();
    let attrs = go(r, &mut sym_at, &mut follow);
    let mut lin = Linearized {
        sym_at,
        nullable: attrs.nullable,
        first: attrs.first,
        last: attrs.last,
        follow,
    };
    for f in &mut lin.follow {
        f.sort_unstable();
        f.dedup();
    }
    lin
}

fn go(r: &Regex, sym_at: &mut Vec<Sym>, follow: &mut Vec<Vec<Pos>>) -> Attrs {
    match r {
        Regex::Symbol(s) => {
            let p = sym_at.len();
            sym_at.push(*s);
            follow.push(Vec::new());
            Attrs {
                nullable: false,
                first: vec![p],
                last: vec![p],
            }
        }
        Regex::Concat(parts) => {
            let mut acc = go(&parts[0], sym_at, follow);
            for part in &parts[1..] {
                let rhs = go(part, sym_at, follow);
                // follow: every last of the prefix connects to every first
                // of the next part.
                for &l in &acc.last {
                    follow[l].extend_from_slice(&rhs.first);
                }
                let first = if acc.nullable {
                    let mut f = acc.first.clone();
                    f.extend_from_slice(&rhs.first);
                    f
                } else {
                    acc.first
                };
                let last = if rhs.nullable {
                    let mut l = acc.last;
                    l.extend_from_slice(&rhs.last);
                    l
                } else {
                    rhs.last
                };
                acc = Attrs {
                    nullable: acc.nullable && rhs.nullable,
                    first,
                    last,
                };
            }
            acc
        }
        Regex::Union(parts) => {
            let mut nullable = false;
            let mut first = Vec::new();
            let mut last = Vec::new();
            for part in parts {
                let a = go(part, sym_at, follow);
                nullable |= a.nullable;
                first.extend(a.first);
                last.extend(a.last);
            }
            Attrs {
                nullable,
                first,
                last,
            }
        }
        Regex::Optional(inner) => {
            let a = go(inner, sym_at, follow);
            Attrs {
                nullable: true,
                ..a
            }
        }
        Regex::Plus(inner) | Regex::Star(inner) => {
            let a = go(inner, sym_at, follow);
            for &l in &a.last {
                let firsts = a.first.clone();
                follow[l].extend(firsts);
            }
            Attrs {
                nullable: a.nullable || matches!(r, Regex::Star(_)),
                first: a.first,
                last: a.last,
            }
        }
    }
}

/// The set of 2-grams (ordered symbol pairs `ab`) occurring in words of
/// `L(r)`, together with possible first and last symbols — exactly the
/// `(I, F, S)` triple that characterizes the 2-testable closure of `L(r)`
/// (§4).
pub fn two_gram_profile(r: &Regex) -> TwoGramProfile {
    let lin = linearize(r);
    let mut firsts: Vec<Sym> = lin.first.iter().map(|&p| lin.sym_at[p]).collect();
    let mut lasts: Vec<Sym> = lin.last.iter().map(|&p| lin.sym_at[p]).collect();
    firsts.sort_unstable();
    firsts.dedup();
    lasts.sort_unstable();
    lasts.dedup();
    let mut pairs = Vec::new();
    for (p, succs) in lin.follow.iter().enumerate() {
        for &q in succs {
            pairs.push((lin.sym_at[p], lin.sym_at[q]));
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    TwoGramProfile {
        nullable: lin.nullable,
        first: firsts,
        last: lasts,
        pairs,
    }
}

/// `(I, F, S)` triple of a 2-testable language (plus ε-membership).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoGramProfile {
    /// Whether ε is accepted.
    pub nullable: bool,
    /// Symbols that can start a word (`I`).
    pub first: Vec<Sym>,
    /// Symbols that can end a word (`F`).
    pub last: Vec<Sym>,
    /// Allowed 2-grams (`S`).
    pub pairs: Vec<(Sym, Sym)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::parser::parse;

    fn lin(src: &str) -> (Linearized, Alphabet) {
        let mut a = Alphabet::new();
        let r = parse(src, &mut a).unwrap();
        (linearize(&r), a)
    }

    #[test]
    fn single_symbol() {
        let (l, _) = lin("a");
        assert_eq!(l.len(), 1);
        assert!(!l.nullable);
        assert_eq!(l.first, vec![0]);
        assert_eq!(l.last, vec![0]);
        assert!(l.follow[0].is_empty());
    }

    #[test]
    fn concat_follow() {
        let (l, _) = lin("a b c");
        assert_eq!(l.first, vec![0]);
        assert_eq!(l.last, vec![2]);
        assert_eq!(l.follow[0], vec![1]);
        assert_eq!(l.follow[1], vec![2]);
    }

    #[test]
    fn optional_skips() {
        let (l, _) = lin("a b? c");
        assert_eq!(l.follow[0], vec![1, 2]);
        assert_eq!(l.follow[1], vec![2]);
    }

    #[test]
    fn plus_loops_back() {
        let (l, _) = lin("(a b)+");
        assert_eq!(l.follow[1], vec![0]);
        assert_eq!(l.first, vec![0]);
        assert_eq!(l.last, vec![1]);
        assert!(!l.nullable);
    }

    #[test]
    fn star_is_nullable_and_loops() {
        let (l, _) = lin("a*");
        assert!(l.nullable);
        assert_eq!(l.follow[0], vec![0]);
    }

    #[test]
    fn union_merges() {
        let (l, _) = lin("(a | b) c");
        assert_eq!(l.first, vec![0, 1]);
        assert_eq!(l.follow[0], vec![2]);
        assert_eq!(l.follow[1], vec![2]);
    }

    #[test]
    fn nullable_chain_first_propagates() {
        let (l, _) = lin("a? b? c");
        assert_eq!(l.first, vec![0, 1, 2]);
        assert_eq!(l.last, vec![2]);
    }

    #[test]
    fn duplicates_detected() {
        let (l, _) = lin("a a");
        assert!(l.has_duplicate_symbols());
        let (l, _) = lin("a b");
        assert!(!l.has_duplicate_symbols());
    }

    #[test]
    fn paper_2gram_example() {
        // r = (a|b)+ c: I = {a,b}, F = {c},
        // S = {ab, aa, ba, bb, ac, bc} (§4).
        let mut al = Alphabet::new();
        let r = parse("(a | b)+ c", &mut al).unwrap();
        let prof = two_gram_profile(&r);
        let (a, b, c) = (
            al.get("a").unwrap(),
            al.get("b").unwrap(),
            al.get("c").unwrap(),
        );
        assert!(!prof.nullable);
        assert_eq!(prof.first, vec![a, b]);
        assert_eq!(prof.last, vec![c]);
        let mut expect = vec![(a, b), (a, a), (b, a), (b, b), (a, c), (b, c)];
        expect.sort_unstable();
        assert_eq!(prof.pairs, expect);
    }

    #[test]
    fn paper_running_sore_profile() {
        // ((b?(a|c))+d)+e generates exactly the automaton of Fig. 1, i.e.
        // I = {a,b,c}, F = {e},
        // S = {aa,ad,ac,ab,ba,bc,cb,cc,ca,cd,da,db,dc,de}.
        let mut al = Alphabet::new();
        let r = parse("((b? (a|c))+ d)+ e", &mut al).unwrap();
        let prof = two_gram_profile(&r);
        let s = |n: &str| al.get(n).unwrap();
        assert_eq!(prof.first, {
            let mut v = vec![s("a"), s("b"), s("c")];
            v.sort_unstable();
            v
        });
        assert_eq!(prof.last, vec![s("e")]);
        let mut expect: Vec<(Sym, Sym)> = [
            ("a", "a"),
            ("a", "d"),
            ("a", "c"),
            ("a", "b"),
            ("b", "a"),
            ("b", "c"),
            ("c", "b"),
            ("c", "c"),
            ("c", "a"),
            ("c", "d"),
            ("d", "a"),
            ("d", "b"),
            ("d", "c"),
            ("d", "e"),
        ]
        .iter()
        .map(|&(x, y)| (s(x), s(y)))
        .collect();
        expect.sort_unstable();
        assert_eq!(prof.pairs, expect);
    }
}
