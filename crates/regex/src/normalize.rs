//! Normalization of regular expressions.
//!
//! The completeness proof of `rewrite` (Theorem 1) works on *normalized*
//! SOREs: expressions without superfluous operators, obtained by exhaustively
//! applying
//!
//! ```text
//! (s+)+ → s+        s?? → s?        (s?)+ → (s+)?
//! ```
//!
//! In this normal form the Kleene star does not appear: `r*` is represented
//! as `(r+)?`. The `rewrite` algorithm of `dtdinfer-core` produces normalized
//! expressions; [`star_form`] converts `(r+)?` back to `r*` as the paper's
//! post-processing step so outputs read naturally.
//!
//! This module also provides [`canonicalize`] / [`equiv_commutative`]:
//! syntactic equality *up to commutativity of `+`* (union), the notion of
//! optimality used in Theorem 5.

use crate::ast::Regex;

/// Rewrites `r` into the paper's normal form: unions/concats flattened,
/// `(s+)+ → s+`, `s?? → s?`, `(s?)+ → (s+)?`, and `s*` represented as
/// `(s+)?`.
pub fn normalize(r: &Regex) -> Regex {
    match r {
        Regex::Symbol(s) => Regex::Symbol(*s),
        Regex::Concat(v) => Regex::concat(v.iter().map(normalize).collect()),
        Regex::Union(v) => Regex::union(v.iter().map(normalize).collect()),
        Regex::Optional(inner) => mk_opt(normalize(inner)),
        Regex::Plus(inner) => mk_plus(normalize(inner)),
        Regex::Star(inner) => mk_opt(mk_plus(normalize(inner))),
    }
}

/// `r?` in normal form: collapses `r??`.
fn mk_opt(r: Regex) -> Regex {
    match r {
        r @ Regex::Optional(_) => r,
        r => Regex::Optional(Box::new(r)),
    }
}

/// `r+` in normal form: collapses `(r+)+` and rewrites `(r?)+` to `(r+)?`.
fn mk_plus(r: Regex) -> Regex {
    match r {
        r @ Regex::Plus(_) => r,
        Regex::Optional(inner) => mk_opt(mk_plus(*inner)),
        r => Regex::Plus(Box::new(r)),
    }
}

/// Post-processing step: replaces `(r+)?` (and the redundant `(r?)+`) by
/// `r*` for display. Inverse direction of [`normalize`]'s star elimination.
pub fn star_form(r: &Regex) -> Regex {
    match r {
        Regex::Symbol(s) => Regex::Symbol(*s),
        Regex::Concat(v) => Regex::concat(v.iter().map(star_form).collect()),
        Regex::Union(v) => Regex::union(v.iter().map(star_form).collect()),
        Regex::Optional(inner) => match &**inner {
            Regex::Plus(p) => Regex::star(star_form(p)),
            other => Regex::optional(star_form(other)),
        },
        Regex::Plus(inner) => match &**inner {
            Regex::Optional(o) => Regex::star(star_form(o)),
            other => Regex::plus(star_form(other)),
        },
        Regex::Star(inner) => Regex::star(star_form(inner)),
    }
}

/// Language-preserving conciseness pass applied to final inference outputs.
///
/// Inside a repeated union, repetition and optionality of the alternatives
/// is redundant: `(x+ | y)+ ≡ (x | y)+` and `(x? | y)+ ≡ (x | y)*`. The
/// self-loop rewrite rule can fire before a disjunction merge on repaired
/// automata, leaving such inner operators behind; this pass strips them.
pub fn simplify(r: &Regex) -> Regex {
    match r {
        Regex::Symbol(s) => Regex::Symbol(*s),
        Regex::Concat(v) => Regex::concat(v.iter().map(simplify).collect()),
        Regex::Union(v) => Regex::union(v.iter().map(simplify).collect()),
        Regex::Optional(inner) => Regex::optional(simplify(inner)),
        Regex::Plus(inner) => simplify_repeat(simplify(inner), false),
        Regex::Star(inner) => simplify_repeat(simplify(inner), true),
    }
}

/// Builds `body+` (or `body*` when `nullable`), stripping redundant unary
/// operators off union alternatives.
fn simplify_repeat(body: Regex, mut nullable: bool) -> Regex {
    let body = match body {
        Regex::Union(alts) => {
            let stripped: Vec<Regex> = alts
                .into_iter()
                .map(|alt| {
                    let mut cur = alt;
                    loop {
                        match cur {
                            Regex::Plus(inner) => cur = *inner,
                            Regex::Optional(inner) | Regex::Star(inner) => {
                                nullable = true;
                                cur = *inner;
                            }
                            other => break other,
                        }
                    }
                })
                .collect();
            Regex::union(stripped)
        }
        other => other,
    };
    if nullable {
        Regex::star(body)
    } else {
        Regex::plus(body)
    }
}

/// Canonical form for syntactic comparison: normalizes (star-eliminated
/// normal form) and sorts union alternatives by a structural key. Two
/// expressions are equal up to commutativity of union iff their canonical
/// forms are identical.
pub fn canonicalize(r: &Regex) -> Regex {
    fn go(r: &Regex) -> Regex {
        match r {
            Regex::Symbol(s) => Regex::Symbol(*s),
            Regex::Concat(v) => Regex::concat(v.iter().map(go).collect()),
            Regex::Union(v) => {
                let mut parts: Vec<Regex> = v.iter().map(go).collect();
                parts.sort_by_key(canon_key);
                Regex::union(parts)
            }
            Regex::Optional(inner) => Regex::Optional(Box::new(go(inner))),
            Regex::Plus(inner) => Regex::Plus(Box::new(go(inner))),
            Regex::Star(inner) => Regex::Star(Box::new(go(inner))),
        }
    }
    go(&normalize(r))
}

/// Total-order key on expressions used to sort union alternatives.
fn canon_key(r: &Regex) -> String {
    let mut s = String::new();
    fn go(r: &Regex, out: &mut String) {
        match r {
            Regex::Symbol(sym) => {
                out.push('S');
                // Zero-padded so lexicographic order matches numeric order.
                out.push_str(&format!("{:010}", sym.0));
            }
            Regex::Concat(v) => {
                out.push_str("C(");
                for p in v {
                    go(p, out);
                    out.push(',');
                }
                out.push(')');
            }
            Regex::Union(v) => {
                out.push_str("U(");
                for p in v {
                    go(p, out);
                    out.push(',');
                }
                out.push(')');
            }
            Regex::Optional(inner) => {
                out.push('?');
                go(inner, out);
            }
            Regex::Plus(inner) => {
                out.push('+');
                go(inner, out);
            }
            Regex::Star(inner) => {
                out.push('*');
                go(inner, out);
            }
        }
    }
    go(r, &mut s);
    s
}

/// Whether `a` and `b` are syntactically equal up to commutativity of union
/// and removal of superfluous operators (the equality notion of Theorem 5).
pub fn equiv_commutative(a: &Regex, b: &Regex) -> bool {
    canonicalize(a) == canonicalize(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::display::render;
    use crate::parser::parse;

    fn p(src: &str, a: &mut Alphabet) -> Regex {
        parse(src, a).unwrap()
    }

    #[test]
    fn normalize_eliminates_star() {
        let mut a = Alphabet::new();
        let r = normalize(&p("a*", &mut a));
        assert_eq!(render(&r, &a), "(a+)?");
    }

    #[test]
    fn normalize_collapses_superfluous() {
        let mut a = Alphabet::new();
        // Constructed through raw variants to bypass the smart constructors.
        let sym = a.intern("a");
        let raw = Regex::Plus(Box::new(Regex::Plus(Box::new(Regex::Optional(Box::new(
            Regex::Optional(Box::new(Regex::Symbol(sym))),
        ))))));
        // ((a??)+)+  →  (a+)?
        assert_eq!(render(&normalize(&raw), &a), "(a+)?");
    }

    #[test]
    fn star_form_restores_star() {
        let mut a = Alphabet::new();
        let r = normalize(&p("(a | b)* c", &mut a));
        assert_eq!(render(&r, &a), "((a | b)+)? c");
        assert_eq!(render(&star_form(&r), &a), "(a | b)* c");
    }

    #[test]
    fn star_form_handles_plus_of_optional() {
        let mut a = Alphabet::new();
        let sym = a.intern("a");
        let raw = Regex::Plus(Box::new(Regex::Optional(Box::new(Regex::Symbol(sym)))));
        assert_eq!(render(&star_form(&raw), &a), "a*");
    }

    #[test]
    fn commutative_equality() {
        let mut a = Alphabet::new();
        let x = p("(a | b | c)+ d", &mut a);
        let y = p("(c | a | b)+ d", &mut a);
        let z = p("(a | b)+ d", &mut a);
        assert!(equiv_commutative(&x, &y));
        assert!(!equiv_commutative(&x, &z));
    }

    #[test]
    fn commutative_equality_modulo_star_representation() {
        let mut a = Alphabet::new();
        let x = p("(b | a)*", &mut a);
        let y = p("((a | b)+)?", &mut a);
        assert!(equiv_commutative(&x, &y));
    }

    #[test]
    fn nested_unions_sorted_recursively() {
        let mut a = Alphabet::new();
        let x = p("(a d | c | b)", &mut a);
        let y = p("(b | c | a d)", &mut a);
        assert!(equiv_commutative(&x, &y));
    }

    #[test]
    fn simplify_strips_plus_in_repeated_union() {
        let mut a = Alphabet::new();
        let r = p("(a+ | b | (c | d)+)+", &mut a);
        assert_eq!(render(&simplify(&r), &a), "(a | b | c | d)+");
    }

    #[test]
    fn simplify_optional_alternative_makes_star() {
        let mut a = Alphabet::new();
        let r = p("(a? | b)+", &mut a);
        assert_eq!(render(&simplify(&r), &a), "(a | b)*");
        let r = p("(a* | b)+", &mut a);
        assert_eq!(render(&simplify(&r), &a), "(a | b)*");
    }

    #[test]
    fn simplify_keeps_concat_structure() {
        let mut a = Alphabet::new();
        // (x+ y*)* must NOT be flattened: the inner operators are load-
        // bearing in concatenation position (cf. example5's iDTD output).
        let r = p("((a | b | c)+ d*)*", &mut a);
        assert_eq!(render(&simplify(&r), &a), "((a | b | c)+ d*)*");
    }

    #[test]
    fn simplify_is_language_preserving_shape() {
        let mut a = Alphabet::new();
        let r = p("(a+ | b?)+ c (d | e+)*", &mut a);
        let s = simplify(&r);
        assert_eq!(render(&s, &a), "(a | b)* c (d | e)*");
    }

    #[test]
    fn concat_not_commutative() {
        let mut a = Alphabet::new();
        let x = p("a b", &mut a);
        let y = p("b a", &mut a);
        assert!(!equiv_commutative(&x, &y));
    }
}
