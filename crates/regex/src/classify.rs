//! Classification of expressions as SOREs and CHAREs.
//!
//! * A **single occurrence regular expression (SORE)** is an RE in which
//!   every element name occurs at most once — e.g. `((b? (a|c))+ d)+ e` is a
//!   SORE while `a (a|b)*` is not (§1.2).
//! * A **chain regular expression (CHARE)** is a SORE that is a sequence of
//!   factors `f1 … fn`, each factor being `(a1|…|ak)`, `(a1|…|ak)?`,
//!   `(a1|…|ak)+` or `(a1|…|ak)*` with `k ≥ 1` and every `ai` an alphabet
//!   symbol — e.g. `a (b|c)* d+ (e|f)?` is a CHARE, `(a b | c)*` is not.

use crate::alphabet::Sym;
use crate::ast::Regex;
use std::collections::HashSet;

/// Whether every element name occurs at most once in `r`.
pub fn is_sore(r: &Regex) -> bool {
    r.symbol_count() == r.symbols().len()
}

/// Repetition modifier of a CHARE factor.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum ChareModifier {
    /// `(a1|…|ak)` — exactly one.
    One,
    /// `(a1|…|ak)?` — zero or one.
    Opt,
    /// `(a1|…|ak)+` — one or more.
    Plus,
    /// `(a1|…|ak)*` — zero or more.
    Star,
}

impl ChareModifier {
    /// Whether the factor can match the empty word.
    pub fn nullable(self) -> bool {
        matches!(self, ChareModifier::Opt | ChareModifier::Star)
    }

    /// Whether the factor can match more than one symbol occurrence.
    pub fn repeatable(self) -> bool {
        matches!(self, ChareModifier::Plus | ChareModifier::Star)
    }
}

/// One factor of a CHARE: a disjunction of symbols plus a modifier.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ChareFactor {
    /// The alternatives `a1 … ak` (non-empty, duplicate-free).
    pub syms: Vec<Sym>,
    /// The repetition modifier.
    pub modifier: ChareModifier,
}

impl ChareFactor {
    /// Builds the factor's AST fragment.
    pub fn to_regex(&self) -> Regex {
        let base = if self.syms.len() == 1 {
            Regex::sym(self.syms[0])
        } else {
            Regex::union(self.syms.iter().copied().map(Regex::sym).collect())
        };
        match self.modifier {
            ChareModifier::One => base,
            ChareModifier::Opt => Regex::optional(base),
            ChareModifier::Plus => Regex::plus(base),
            ChareModifier::Star => Regex::star(base),
        }
    }
}

/// Builds the full CHARE from a chain of factors.
pub fn chare_to_regex(factors: &[ChareFactor]) -> Regex {
    assert!(!factors.is_empty(), "a CHARE has at least one factor");
    Regex::concat(factors.iter().map(ChareFactor::to_regex).collect())
}

/// Decomposes `r` into CHARE factors if it is a CHARE, `None` otherwise.
pub fn as_chare(r: &Regex) -> Option<Vec<ChareFactor>> {
    let parts: &[Regex] = match r {
        Regex::Concat(v) => v,
        single => std::slice::from_ref(single),
    };
    let mut factors = Vec::with_capacity(parts.len());
    let mut seen: HashSet<Sym> = HashSet::new();
    for p in parts {
        let (base, modifier) = match p {
            Regex::Optional(inner) => (&**inner, ChareModifier::Opt),
            Regex::Plus(inner) => (&**inner, ChareModifier::Plus),
            Regex::Star(inner) => (&**inner, ChareModifier::Star),
            other => (other, ChareModifier::One),
        };
        let syms = match base {
            Regex::Symbol(s) => vec![*s],
            Regex::Union(alts) => {
                let mut syms = Vec::with_capacity(alts.len());
                for alt in alts {
                    match alt {
                        Regex::Symbol(s) => syms.push(*s),
                        _ => return None,
                    }
                }
                syms
            }
            _ => return None,
        };
        for &s in &syms {
            if !seen.insert(s) {
                return None; // repeated element name: not single occurrence
            }
        }
        factors.push(ChareFactor { syms, modifier });
    }
    Some(factors)
}

/// Whether `r` is a chain regular expression.
pub fn is_chare(r: &Regex) -> bool {
    as_chare(r).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::display::render;
    use crate::parser::parse;

    fn p(src: &str) -> (Regex, Alphabet) {
        let mut a = Alphabet::new();
        let r = parse(src, &mut a).unwrap();
        (r, a)
    }

    #[test]
    fn paper_sore_examples() {
        // ((b?(a|c))+d)+e is a SORE; a(a|b)* is not (§1.2).
        assert!(is_sore(&p("((b? (a|c))+ d)+ e").0));
        assert!(!is_sore(&p("a (a|b)*").0));
    }

    #[test]
    fn paper_chare_examples() {
        // a(b|c)*d+(e|f)? is a CHARE; (a b|c)* and (a*|b?)* are not (§1.2).
        assert!(is_chare(&p("a (b|c)* d+ (e|f)?").0));
        assert!(!is_chare(&p("(a b | c)*").0));
        assert!(!is_chare(&p("(a* | b?)*").0));
    }

    #[test]
    fn every_chare_is_a_sore() {
        for src in ["a", "a b? c*", "(a|b)+ (c|d)? e"] {
            let (r, _) = p(src);
            assert!(is_chare(&r));
            assert!(is_sore(&r));
        }
    }

    #[test]
    fn sore_but_not_chare() {
        let (r, _) = p("((b? (a|c))+ d)+ e");
        assert!(is_sore(&r) && !is_chare(&r));
        let (r, _) = p("a+ | (b? c+)"); // `authors` from Table 1
        assert!(is_sore(&r) && !is_chare(&r));
    }

    #[test]
    fn repeated_symbol_across_factors_rejected() {
        assert!(!is_chare(&p("a (a|b)?").0));
    }

    #[test]
    fn decomposition_round_trips() {
        let (r, a) = p("a (b|c)* d+ (e|f)?");
        let factors = as_chare(&r).unwrap();
        assert_eq!(factors.len(), 4);
        assert_eq!(factors[0].modifier, ChareModifier::One);
        assert_eq!(factors[1].modifier, ChareModifier::Star);
        assert_eq!(factors[2].modifier, ChareModifier::Plus);
        assert_eq!(factors[3].modifier, ChareModifier::Opt);
        assert_eq!(
            render(&chare_to_regex(&factors), &a),
            "a (b | c)* d+ (e | f)?"
        );
    }

    #[test]
    fn modifier_properties() {
        assert!(ChareModifier::Opt.nullable());
        assert!(ChareModifier::Star.nullable());
        assert!(!ChareModifier::One.nullable());
        assert!(!ChareModifier::Plus.nullable());
        assert!(ChareModifier::Plus.repeatable());
        assert!(ChareModifier::Star.repeatable());
        assert!(!ChareModifier::Opt.repeatable());
    }
}
