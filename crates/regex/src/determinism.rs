//! One-unambiguity (determinism) checking.
//!
//! The XML specification requires content models to be *deterministic*
//! (one-unambiguous in the sense of Brüggemann-Klein & Wood, cited as [12]
//! in the paper): while matching a word left to right, the next input
//! symbol must determine the next position of the expression without
//! lookahead. §3 notes that every SORE — and hence every CHARE — is
//! deterministic by definition; this module provides the general check so
//! the DTD validator can flag hand-written non-deterministic models like
//! `(a b) | (a c)`.
//!
//! Criterion (Glushkov form): an expression is one-unambiguous iff no two
//! distinct positions carrying the same symbol compete — i.e. appear
//! together in `first`, or together in `follow(p)` for some position `p`.

use crate::alphabet::Sym;
use crate::ast::Regex;
use crate::props::{linearize, Pos};

/// A witness of non-determinism: two competing positions of one symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ambiguity {
    /// The symbol both positions carry.
    pub symbol: Sym,
    /// The competing positions (indices into the linearization).
    pub positions: (Pos, Pos),
    /// The position after which the conflict arises; `None` when the
    /// conflict is between possible first symbols.
    pub after: Option<Pos>,
}

/// Checks one-unambiguity; returns the first conflict found.
pub fn check_deterministic(r: &Regex) -> Result<(), Ambiguity> {
    let lin = linearize(r);
    find_conflict(&lin.first, &lin.sym_at, None)?;
    for (p, succs) in lin.follow.iter().enumerate() {
        find_conflict(succs, &lin.sym_at, Some(p))?;
    }
    Ok(())
}

/// Whether `r` is one-unambiguous (deterministic per the XML spec).
pub fn is_deterministic(r: &Regex) -> bool {
    check_deterministic(r).is_ok()
}

fn find_conflict(positions: &[Pos], sym_at: &[Sym], after: Option<Pos>) -> Result<(), Ambiguity> {
    // Position lists are small; a quadratic scan keeps the witness simple.
    for (i, &p) in positions.iter().enumerate() {
        for &q in &positions[i + 1..] {
            if p != q && sym_at[p] == sym_at[q] {
                return Err(Ambiguity {
                    symbol: sym_at[p],
                    positions: (p, q),
                    after,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::classify::is_sore;
    use crate::parser::parse;

    fn det(src: &str) -> bool {
        let mut al = Alphabet::new();
        is_deterministic(&parse(src, &mut al).unwrap())
    }

    #[test]
    fn sores_are_deterministic() {
        for src in [
            "a",
            "((b? (a|c))+ d)+ e",
            "a (b|c)* d+ (e|f)?",
            "a1 a2* (a3 | a4)?",
        ] {
            let mut al = Alphabet::new();
            let r = parse(src, &mut al).unwrap();
            assert!(is_sore(&r));
            assert!(is_deterministic(&r), "{src}");
        }
    }

    #[test]
    fn classic_nondeterministic_examples() {
        // (a b) | (a c): after seeing `a` the match is ambiguous.
        assert!(!det("(a b) | (a c)"));
        // a? a: ambiguous on first symbol a.
        assert!(!det("a? a"));
        // (a | b)* a — the textbook one-ambiguous expression.
        assert!(!det("(a | b)* a"));
    }

    #[test]
    fn deterministic_non_sores() {
        // a (b a)* repeats `a` but is deterministic.
        assert!(det("a (b a)*"));
        // b? a (b a)* likewise.
        assert!(det("b? a (b a)*"));
    }

    #[test]
    fn witness_reports_symbol() {
        let mut al = Alphabet::new();
        let r = parse("(a b) | (a c)", &mut al).unwrap();
        let amb = check_deterministic(&r).unwrap_err();
        assert_eq!(amb.symbol, al.get("a").unwrap());
        assert_eq!(amb.after, None, "conflict on the first symbol");
    }

    #[test]
    fn follow_conflict_reports_position() {
        let mut al = Alphabet::new();
        // After the first a: both `b a` loop and trailing `a` compete… use
        // (a | b)* a which conflicts inside follow sets.
        let r = parse("(a | b)* a", &mut al).unwrap();
        let amb = check_deterministic(&r).unwrap_err();
        assert_eq!(amb.symbol, al.get("a").unwrap());
    }
}
