//! Regular expression abstract syntax.
//!
//! Following §3 of the paper, ε and ∅ are not basic expressions: every leaf
//! is an alphabet symbol. The empty word can only be matched through the `?`
//! and `*` operators. Union and concatenation are n-ary in the AST (flattened
//! by [`crate::normalize::normalize`]); this keeps the SORE/CHARE shape
//! checks and the printer simple.

use crate::alphabet::Sym;

/// A regular expression over interned symbols.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Regex {
    /// A single alphabet symbol.
    Symbol(Sym),
    /// Concatenation `r1 · r2 · … · rn` (n ≥ 2 after normalization).
    Concat(Vec<Regex>),
    /// Union `r1 + r2 + … + rn` (n ≥ 2 after normalization).
    Union(Vec<Regex>),
    /// Zero-or-one `r?`.
    Optional(Box<Regex>),
    /// One-or-more `r+`.
    Plus(Box<Regex>),
    /// Zero-or-more `r*`. The `rewrite` algorithm never produces `Star`
    /// directly (it uses `(r+)?`); [`crate::normalize::star_form`] converts
    /// post-hoc.
    Star(Box<Regex>),
}

impl Regex {
    /// Leaf constructor.
    pub fn sym(s: Sym) -> Self {
        Regex::Symbol(s)
    }

    /// Smart concatenation: flattens nested concats and avoids 1-ary nodes.
    pub fn concat(parts: Vec<Regex>) -> Self {
        let mut out = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Regex::Concat(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => panic!("empty concatenation (ε is not a regex)"),
            1 => out.pop().unwrap(),
            _ => Regex::Concat(out),
        }
    }

    /// Smart union: flattens nested unions and avoids 1-ary nodes.
    pub fn union(parts: Vec<Regex>) -> Self {
        let mut out = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Regex::Union(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => panic!("empty union (∅ is not a regex)"),
            1 => out.pop().unwrap(),
            _ => Regex::Union(out),
        }
    }

    /// `r?`, collapsing `r??` to `r?` and `(r*)?` to `r*`.
    pub fn optional(r: Regex) -> Self {
        match r {
            r @ (Regex::Optional(_) | Regex::Star(_)) => r,
            r => Regex::Optional(Box::new(r)),
        }
    }

    /// `r+`, collapsing `(r+)+` to `r+` and `(r?)+` / `(r*)+` to `r*`.
    pub fn plus(r: Regex) -> Self {
        match r {
            r @ (Regex::Plus(_) | Regex::Star(_)) => r,
            // (r?)+ ≡ r*; recurse so nested operators inside collapse too.
            Regex::Optional(inner) => Regex::star(*inner),
            r => Regex::Plus(Box::new(r)),
        }
    }

    /// `r*`, collapsing any nested unary operator (recursively, so chains
    /// like `((r+)?)*` flatten to `r*`).
    pub fn star(r: Regex) -> Self {
        match r {
            Regex::Star(inner) | Regex::Plus(inner) | Regex::Optional(inner) => Regex::star(*inner),
            r => Regex::Star(Box::new(r)),
        }
    }

    /// Number of occurrences of alphabet symbols (the "size" measure of the
    /// paper: a SORE over n distinct names has exactly n of these).
    pub fn symbol_count(&self) -> usize {
        match self {
            Regex::Symbol(_) => 1,
            Regex::Concat(v) | Regex::Union(v) => v.iter().map(Regex::symbol_count).sum(),
            Regex::Optional(r) | Regex::Plus(r) | Regex::Star(r) => r.symbol_count(),
        }
    }

    /// Token count: symbols plus operators (each `?`/`+`/`*` is one token,
    /// each union of k alternatives contributes k−1 tokens, concatenation is
    /// free). Used to compare conciseness with xtract, whose outputs the
    /// paper reports as "an expression of 185 tokens".
    pub fn token_count(&self) -> usize {
        match self {
            Regex::Symbol(_) => 1,
            Regex::Concat(v) => v.iter().map(Regex::token_count).sum(),
            Regex::Union(v) => v.iter().map(Regex::token_count).sum::<usize>() + v.len() - 1,
            Regex::Optional(r) | Regex::Plus(r) | Regex::Star(r) => r.token_count() + 1,
        }
    }

    /// All symbols occurring in the expression, in left-to-right order of
    /// first occurrence.
    pub fn symbols(&self) -> Vec<Sym> {
        let mut out = Vec::new();
        self.collect_symbols(&mut out);
        out
    }

    fn collect_symbols(&self, out: &mut Vec<Sym>) {
        match self {
            Regex::Symbol(s) => {
                if !out.contains(s) {
                    out.push(*s);
                }
            }
            Regex::Concat(v) | Regex::Union(v) => {
                for r in v {
                    r.collect_symbols(out);
                }
            }
            Regex::Optional(r) | Regex::Plus(r) | Regex::Star(r) => r.collect_symbols(out),
        }
    }

    /// Total number of symbol *occurrences*, counting repeats (unlike
    /// [`Regex::symbols`] which deduplicates).
    pub fn occurrence_count(&self) -> usize {
        self.symbol_count()
    }

    /// Whether the empty word is in the language of the expression.
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Symbol(_) => false,
            Regex::Concat(v) => v.iter().all(Regex::nullable),
            Regex::Union(v) => v.iter().any(Regex::nullable),
            Regex::Optional(_) | Regex::Star(_) => true,
            Regex::Plus(r) => r.nullable(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn syms() -> (Sym, Sym, Sym) {
        let mut a = Alphabet::new();
        (a.intern("a"), a.intern("b"), a.intern("c"))
    }

    #[test]
    fn concat_flattens() {
        let (a, b, c) = syms();
        let r = Regex::concat(vec![
            Regex::concat(vec![Regex::sym(a), Regex::sym(b)]),
            Regex::sym(c),
        ]);
        assert_eq!(
            r,
            Regex::Concat(vec![Regex::sym(a), Regex::sym(b), Regex::sym(c)])
        );
    }

    #[test]
    fn union_flattens() {
        let (a, b, c) = syms();
        let r = Regex::union(vec![
            Regex::union(vec![Regex::sym(a), Regex::sym(b)]),
            Regex::sym(c),
        ]);
        assert_eq!(
            r,
            Regex::Union(vec![Regex::sym(a), Regex::sym(b), Regex::sym(c)])
        );
    }

    #[test]
    fn unary_smart_constructors_collapse() {
        let (a, _, _) = syms();
        let s = Regex::sym(a);
        assert_eq!(
            Regex::optional(Regex::optional(s.clone())),
            Regex::optional(s.clone())
        );
        assert_eq!(Regex::plus(Regex::plus(s.clone())), Regex::plus(s.clone()));
        // (r?)+ == r*
        assert_eq!(
            Regex::plus(Regex::optional(s.clone())),
            Regex::star(s.clone())
        );
        // (r+)? == (r+)? stays as Optional(Plus) via the raw variant, but the
        // smart constructor of star collapses everything:
        assert_eq!(Regex::star(Regex::plus(s.clone())), Regex::star(s.clone()));
        assert_eq!(Regex::optional(Regex::star(s.clone())), Regex::star(s));
    }

    #[test]
    fn single_element_collapse() {
        let (a, _, _) = syms();
        assert_eq!(Regex::concat(vec![Regex::sym(a)]), Regex::sym(a));
        assert_eq!(Regex::union(vec![Regex::sym(a)]), Regex::sym(a));
    }

    #[test]
    fn counts() {
        let (a, b, c) = syms();
        // (a|b)+ c
        let r = Regex::concat(vec![
            Regex::plus(Regex::union(vec![Regex::sym(a), Regex::sym(b)])),
            Regex::sym(c),
        ]);
        assert_eq!(r.symbol_count(), 3);
        assert_eq!(r.token_count(), 3 + 1 + 1); // 3 syms, 1 union bar, 1 plus
        assert_eq!(r.symbols(), vec![a, b, c]);
    }

    #[test]
    fn nullability() {
        let (a, b, _) = syms();
        assert!(!Regex::sym(a).nullable());
        assert!(Regex::optional(Regex::sym(a)).nullable());
        assert!(Regex::star(Regex::sym(a)).nullable());
        assert!(!Regex::plus(Regex::sym(a)).nullable());
        assert!(Regex::concat(vec![
            Regex::optional(Regex::sym(a)),
            Regex::star(Regex::sym(b))
        ])
        .nullable());
        assert!(Regex::union(vec![Regex::sym(a), Regex::optional(Regex::sym(b))]).nullable());
    }

    #[test]
    #[should_panic]
    fn empty_concat_panics() {
        let _ = Regex::concat(vec![]);
    }
}
