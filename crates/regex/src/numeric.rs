//! Numerical predicates (§9).
//!
//! SOREs cannot count: `a a b b+` ("two a's then at least two b's") is not
//! single occurrence. The paper extends REs with numerical predicates `r=i`
//! and `r≥i` (semantically `r^i` and `r^i r*`) and proposes a
//! *post-processing step* that tightens the `?`/`+`/`*` qualifiers of an
//! inferred expression to numerical bounds justified by the data.
//!
//! We implement this for CHAREs (the factor structure makes per-factor
//! occurrence counting well-defined): a [`NumericChare`] is a chain of
//! factors each annotated with an occurrence interval `[min, max]`
//! (`max = None` means unbounded), directly renderable as XML Schema
//! `minOccurs`/`maxOccurs`.

use crate::alphabet::{Alphabet, Sym, Word};
use crate::classify::ChareFactor;
use std::collections::HashMap;
use std::fmt::Write as _;

/// An occurrence interval `[min, max]`; `max = None` means unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bounds {
    /// Minimum number of occurrences.
    pub min: u32,
    /// Maximum number of occurrences, or `None` for unbounded.
    pub max: Option<u32>,
}

impl Bounds {
    /// The `[1,1]` interval (a plain factor).
    pub const ONE: Bounds = Bounds {
        min: 1,
        max: Some(1),
    };

    /// Renders the interval in the paper's notation: `=i` for `[i,i]`,
    /// `≥i` rendered as `>=i` for `[i,∞)`, otherwise `[i,j]`. The `[1,1]`
    /// interval renders as the empty string (no annotation needed).
    pub fn render(&self) -> String {
        match (self.min, self.max) {
            (1, Some(1)) => String::new(),
            (0, Some(1)) => "?".to_owned(),
            (i, Some(j)) if i == j => format!("{{={i}}}"),
            (i, None) => format!("{{>={i}}}"),
            (i, Some(j)) => format!("{{{i},{j}}}"),
        }
    }
}

/// A CHARE factor annotated with occurrence bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NumericFactor {
    /// The alternatives of the factor.
    pub syms: Vec<Sym>,
    /// How many symbol occurrences from this factor each word contains.
    pub bounds: Bounds,
}

/// A CHARE whose qualifiers have been tightened to numerical bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NumericChare {
    /// Factors in chain order.
    pub factors: Vec<NumericFactor>,
}

impl NumericChare {
    /// Renders the expression, e.g. `a{=2} (b | c){>=1} d?`.
    pub fn render(&self, alphabet: &Alphabet) -> String {
        let mut out = String::new();
        for (i, f) in self.factors.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            if f.syms.len() == 1 {
                out.push_str(alphabet.name(f.syms[0]));
            } else {
                out.push('(');
                for (j, s) in f.syms.iter().enumerate() {
                    if j > 0 {
                        out.push_str(" | ");
                    }
                    out.push_str(alphabet.name(*s));
                }
                out.push(')');
            }
            let _ = write!(out, "{}", f.bounds.render());
        }
        out
    }

    /// Whether `w` matches the numeric chain. Factors are matched greedily
    /// in order; because factors are disjoint symbol classes (single
    /// occurrence), greedy matching is exact.
    pub fn matches(&self, w: &Word) -> bool {
        let mut i = 0usize;
        for f in &self.factors {
            let mut count = 0u32;
            while i < w.len() && f.syms.contains(&w[i]) {
                count += 1;
                i += 1;
                if let Some(max) = f.bounds.max {
                    if count > max {
                        return false;
                    }
                }
            }
            if count < f.bounds.min {
                return false;
            }
            if let Some(max) = f.bounds.max {
                if count > max {
                    return false;
                }
            }
        }
        i == w.len()
    }
}

/// Post-processing step of §9: tightens the qualifiers of an inferred CHARE
/// to the exact occurrence bounds observed in `sample`.
///
/// For each factor, counts how many occurrences of its symbols each sample
/// word contains and sets `min` / `max` to the observed minimum / maximum.
/// A factor whose maximum observed count exceeds `unbounded_threshold`
/// keeps an unbounded upper limit (`max = None`) — matching the paper's use
/// of `≥i`: observing many different high counts is evidence of "any number",
/// not of a tight bound.
pub fn tighten(factors: &[ChareFactor], sample: &[Word], unbounded_threshold: u32) -> NumericChare {
    let mut class_of: HashMap<Sym, usize> = HashMap::new();
    for (i, f) in factors.iter().enumerate() {
        for &s in &f.syms {
            class_of.insert(s, i);
        }
    }
    let mut mins = vec![u32::MAX; factors.len()];
    let mut maxs = vec![0u32; factors.len()];
    let mut counts = vec![0u32; factors.len()];
    for w in sample {
        counts.iter_mut().for_each(|c| *c = 0);
        for s in w {
            if let Some(&i) = class_of.get(s) {
                counts[i] += 1;
            }
        }
        for i in 0..factors.len() {
            mins[i] = mins[i].min(counts[i]);
            maxs[i] = maxs[i].max(counts[i]);
        }
    }
    let factors = factors
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let (min, max) = if sample.is_empty() {
                (0, None)
            } else {
                let max = if maxs[i] > unbounded_threshold {
                    None
                } else {
                    Some(maxs[i])
                };
                (mins[i], max)
            };
            NumericFactor {
                syms: f.syms.clone(),
                bounds: Bounds { min, max },
            }
        })
        .collect();
    NumericChare { factors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::classify::as_chare;
    use crate::parser::parse;

    fn chare(src: &str, a: &mut Alphabet) -> Vec<ChareFactor> {
        as_chare(&parse(src, a).unwrap()).unwrap()
    }

    #[test]
    fn paper_example_counts() {
        // Data for "a=2 b>=2": strings aabb, aabbb, aabbbb…
        let mut a = Alphabet::new();
        let factors = chare("a+ b+", &mut a);
        let words: Vec<Word> = ["aabb", "aabbb", "aabbbbbb"]
            .iter()
            .map(|s| a.word_from_chars(s))
            .collect();
        let num = tighten(&factors, &words, 3);
        assert_eq!(num.render(&a), "a{=2} b{>=2}");
    }

    #[test]
    fn exact_single_occurrence_renders_plain() {
        let mut a = Alphabet::new();
        let factors = chare("a b?", &mut a);
        let words: Vec<Word> = ["ab", "a"].iter().map(|s| a.word_from_chars(s)).collect();
        let num = tighten(&factors, &words, 10);
        assert_eq!(num.render(&a), "a b?");
    }

    #[test]
    fn bounded_interval() {
        let mut a = Alphabet::new();
        let factors = chare("a*", &mut a);
        let words: Vec<Word> = ["aa", "aaa", ""]
            .iter()
            .map(|s| a.word_from_chars(s))
            .collect();
        let num = tighten(&factors, &words, 10);
        assert_eq!(num.render(&a), "a{0,3}");
    }

    #[test]
    fn matches_respects_bounds() {
        let mut a = Alphabet::new();
        let factors = chare("a+ b+", &mut a);
        let words: Vec<Word> = ["aabb", "aabbb"]
            .iter()
            .map(|s| a.word_from_chars(s))
            .collect();
        let num = tighten(&factors, &words, 100);
        assert!(num.matches(&a.word_from_chars("aabb")));
        assert!(num.matches(&a.word_from_chars("aabbb")));
        assert!(!num.matches(&a.word_from_chars("abb"))); // a count 1 < 2
        assert!(!num.matches(&a.word_from_chars("aabbbb"))); // b count 4 > 3
        assert!(!num.matches(&a.word_from_chars("aab"))); // b count 1 < 2
    }

    #[test]
    fn disjunctive_factor_counts_jointly() {
        let mut a = Alphabet::new();
        let factors = chare("(a | b)+ c", &mut a);
        let words: Vec<Word> = ["abc", "bac", "ac"]
            .iter()
            .map(|s| a.word_from_chars(s))
            .collect();
        let num = tighten(&factors, &words, 100);
        assert_eq!(
            num.factors[0].bounds,
            Bounds {
                min: 1,
                max: Some(2)
            }
        );
        assert_eq!(num.factors[1].bounds, Bounds::ONE);
    }

    #[test]
    fn unbounded_threshold_triggers() {
        let mut a = Alphabet::new();
        let factors = chare("a+", &mut a);
        let words: Vec<Word> = ["a", "aaaaaaaa"]
            .iter()
            .map(|s| a.word_from_chars(s))
            .collect();
        let num = tighten(&factors, &words, 4);
        assert_eq!(num.factors[0].bounds, Bounds { min: 1, max: None });
        assert_eq!(num.render(&a), "a{>=1}");
    }

    #[test]
    fn bounds_render_notation() {
        assert_eq!(
            Bounds {
                min: 1,
                max: Some(1)
            }
            .render(),
            ""
        );
        assert_eq!(
            Bounds {
                min: 0,
                max: Some(1)
            }
            .render(),
            "?"
        );
        assert_eq!(
            Bounds {
                min: 2,
                max: Some(2)
            }
            .render(),
            "{=2}"
        );
        assert_eq!(Bounds { min: 2, max: None }.render(), "{>=2}");
        assert_eq!(
            Bounds {
                min: 1,
                max: Some(3)
            }
            .render(),
            "{1,3}"
        );
    }
}
