//! Parser for DTD-style regular expressions.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! union   := concat ('|' concat)*
//! concat  := postfix ((','? postfix))*      -- comma or juxtaposition
//! postfix := atom ('?' | '+' | '*')*
//! atom    := NAME | '(' union ')'
//! NAME    := [A-Za-z_:][A-Za-z0-9_.:-]*
//! ```
//!
//! This covers both DTD content-model syntax (`(a | b)+, c?`) and the
//! juxtaposition style used throughout the paper (`((b? (a|c))+ d)+ e`).
//! Note that the paper writes union as `+`; since `+` is also the postfix
//! repetition operator we require `|` for union, as DTDs do.

use crate::alphabet::Alphabet;
use crate::ast::Regex;
use std::fmt;

/// Error produced when a regular expression fails to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses `input` as a regular expression, interning element names into
/// `alphabet`.
pub fn parse(input: &str, alphabet: &mut Alphabet) -> Result<Regex, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        alphabet,
    };
    let r = p.union()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing input"));
    }
    Ok(r)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    alphabet: &'a mut Alphabet,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn union(&mut self) -> Result<Regex, ParseError> {
        let mut parts = vec![self.concat()?];
        loop {
            self.skip_ws();
            if self.peek() == Some(b'|') {
                self.pos += 1;
                parts.push(self.concat()?);
            } else {
                break;
            }
        }
        Ok(Regex::union(parts))
    }

    fn concat(&mut self) -> Result<Regex, ParseError> {
        let mut parts = vec![self.postfix()?];
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    parts.push(self.postfix()?);
                }
                Some(b'(') => parts.push(self.postfix()?),
                Some(c) if is_name_start(c) => parts.push(self.postfix()?),
                _ => break,
            }
        }
        Ok(Regex::concat(parts))
    }

    fn postfix(&mut self) -> Result<Regex, ParseError> {
        let mut r = self.atom()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'?') => {
                    self.pos += 1;
                    r = Regex::optional(r);
                }
                Some(b'+') => {
                    self.pos += 1;
                    r = Regex::plus(r);
                }
                Some(b'*') => {
                    self.pos += 1;
                    r = Regex::star(r);
                }
                _ => break,
            }
        }
        Ok(r)
    }

    fn atom(&mut self) -> Result<Regex, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let r = self.union()?;
                self.skip_ws();
                if self.peek() != Some(b')') {
                    return Err(self.err("expected ')'"));
                }
                self.pos += 1;
                Ok(r)
            }
            Some(c) if is_name_start(c) => {
                let start = self.pos;
                while matches!(self.peek(), Some(c) if is_name_char(c)) {
                    self.pos += 1;
                }
                let name = std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("name chars are ASCII");
                Ok(Regex::sym(self.alphabet.intern(name)))
            }
            Some(_) => Err(self.err("expected element name or '('")),
            None => Err(self.err("unexpected end of input")),
        }
    }
}

fn is_name_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c == b':'
}

fn is_name_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, b'_' | b'.' | b':' | b'-')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::display::DisplayRegex;

    fn round_trip(src: &str) -> String {
        let mut a = Alphabet::new();
        let r = parse(src, &mut a).expect("parse");
        DisplayRegex::new(&r, &a).to_string()
    }

    #[test]
    fn single_symbol() {
        assert_eq!(round_trip("title"), "title");
    }

    #[test]
    fn dtd_style_commas() {
        assert_eq!(
            round_trip("authors, citation, (volume | month), year, pages?"),
            "authors citation (volume | month) year pages?"
        );
    }

    #[test]
    fn juxtaposition_style() {
        assert_eq!(round_trip("((b? (a|c))+ d)+ e"), "((b? (a | c))+ d)+ e");
    }

    #[test]
    fn postfix_chains_collapse() {
        // (a?)+ is normalized to a* by the smart constructors
        assert_eq!(round_trip("a?+"), "a*");
        assert_eq!(round_trip("a++"), "a+");
        assert_eq!(round_trip("a??"), "a?");
    }

    #[test]
    fn nested_unions_flatten() {
        assert_eq!(round_trip("a | (b | c)"), "a | b | c");
    }

    #[test]
    fn star_parses() {
        assert_eq!(round_trip("(a | b)* c"), "(a | b)* c");
    }

    #[test]
    fn errors_are_reported() {
        let mut a = Alphabet::new();
        assert!(parse("", &mut a).is_err());
        assert!(parse("(a", &mut a).is_err());
        assert!(parse("a)", &mut a).is_err());
        assert!(parse("|a", &mut a).is_err());
        assert!(parse("a | ", &mut a).is_err());
        assert!(parse("8a", &mut a).is_err());
    }

    #[test]
    fn names_with_punctuation() {
        assert_eq!(round_trip("ns:item-name.x_1"), "ns:item-name.x_1");
    }

    #[test]
    fn same_name_same_symbol() {
        let mut a = Alphabet::new();
        let r = parse("a a", &mut a).unwrap();
        let syms = r.symbols();
        assert_eq!(syms.len(), 1);
        assert_eq!(r.symbol_count(), 2);
    }
}
