//! Pretty-printing of regular expressions.
//!
//! Two renderings are provided: a compact paper-style rendering with
//! juxtaposition for concatenation (`(a | b)+ c?`), and a strict DTD
//! content-model rendering with commas (`((a | b)+, c?)`) suitable for
//! inclusion in `<!ELEMENT …>` declarations.

use crate::alphabet::Alphabet;
use crate::ast::Regex;
use std::fmt;

/// Binding strength used for parenthesization.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Prec {
    Union = 0,
    Concat = 1,
    Postfix = 2,
    Atom = 3,
}

fn prec(r: &Regex) -> Prec {
    match r {
        Regex::Union(_) => Prec::Union,
        Regex::Concat(_) => Prec::Concat,
        Regex::Optional(_) | Regex::Plus(_) | Regex::Star(_) => Prec::Postfix,
        Regex::Symbol(_) => Prec::Atom,
    }
}

/// Paper-style display adapter: `fmt::Display` for a `(Regex, Alphabet)` pair.
pub struct DisplayRegex<'a> {
    regex: &'a Regex,
    alphabet: &'a Alphabet,
}

impl<'a> DisplayRegex<'a> {
    /// Wraps `regex` for display using names from `alphabet`.
    pub fn new(regex: &'a Regex, alphabet: &'a Alphabet) -> Self {
        Self { regex, alphabet }
    }
}

impl fmt::Display for DisplayRegex<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_paper(f, self.regex, self.alphabet, Prec::Union)
    }
}

fn write_paper(f: &mut fmt::Formatter<'_>, r: &Regex, a: &Alphabet, min: Prec) -> fmt::Result {
    let needs_parens = prec(r) < min;
    if needs_parens {
        f.write_str("(")?;
    }
    match r {
        Regex::Symbol(s) => f.write_str(a.name(*s))?,
        Regex::Concat(parts) => {
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    f.write_str(" ")?;
                }
                write_paper(f, p, a, Prec::Concat)?;
            }
        }
        Regex::Union(parts) => {
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    f.write_str(" | ")?;
                }
                write_paper(f, p, a, Prec::Concat)?;
            }
        }
        Regex::Optional(inner) => {
            write_paper(f, inner, a, Prec::Atom)?;
            f.write_str("?")?;
        }
        Regex::Plus(inner) => {
            write_paper(f, inner, a, Prec::Atom)?;
            f.write_str("+")?;
        }
        Regex::Star(inner) => {
            write_paper(f, inner, a, Prec::Atom)?;
            f.write_str("*")?;
        }
    }
    if needs_parens {
        f.write_str(")")?;
    }
    Ok(())
}

/// Renders `r` in paper style (`(a | b)+ c?`).
pub fn render(r: &Regex, a: &Alphabet) -> String {
    DisplayRegex::new(r, a).to_string()
}

/// Renders `r` as a strict DTD content model: commas for sequence, every
/// group parenthesized, and a parenthesized top level as required by the
/// `<!ELEMENT>` syntax. E.g. `((a | b)+, c?)`.
pub fn render_dtd(r: &Regex, a: &Alphabet) -> String {
    let mut s = String::new();
    write_dtd(&mut s, r, a);
    // The XML spec requires the content model itself to be parenthesized.
    if !s.starts_with('(') || !balanced_to_end(&s) {
        s = format!("({s})");
    }
    s
}

/// Whether the '(' at position 0 closes only at the final character (so the
/// whole string is already one parenthesized group).
fn balanced_to_end(s: &str) -> bool {
    let mut depth = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return i == s.len() - 1;
                }
            }
            _ => {}
        }
    }
    false
}

fn write_dtd(out: &mut String, r: &Regex, a: &Alphabet) {
    match r {
        Regex::Symbol(s) => out.push_str(a.name(*s)),
        Regex::Concat(parts) => {
            out.push('(');
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_dtd(out, p, a);
            }
            out.push(')');
        }
        Regex::Union(parts) => {
            out.push('(');
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                write_dtd(out, p, a);
            }
            out.push(')');
        }
        Regex::Optional(inner) => {
            write_dtd_group(out, inner, a);
            out.push('?');
        }
        Regex::Plus(inner) => {
            write_dtd_group(out, inner, a);
            out.push('+');
        }
        Regex::Star(inner) => {
            write_dtd_group(out, inner, a);
            out.push('*');
        }
    }
}

/// DTD postfix operators may only follow a name or a parenthesized group.
fn write_dtd_group(out: &mut String, r: &Regex, a: &Alphabet) {
    match r {
        Regex::Symbol(_) | Regex::Concat(_) | Regex::Union(_) => write_dtd(out, r, a),
        nested => {
            out.push('(');
            write_dtd(out, nested, a);
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn setup(src: &str) -> (Regex, Alphabet) {
        let mut a = Alphabet::new();
        let r = parse(src, &mut a).unwrap();
        (r, a)
    }

    #[test]
    fn paper_rendering_minimal_parens() {
        let (r, a) = setup("((b? (a|c))+ d)+ e");
        assert_eq!(render(&r, &a), "((b? (a | c))+ d)+ e");
    }

    #[test]
    fn dtd_rendering_strict() {
        let (r, a) = setup("(a|b)+ c?");
        assert_eq!(render_dtd(&r, &a), "((a | b)+, c?)");
    }

    #[test]
    fn dtd_single_symbol_parenthesized() {
        let (r, a) = setup("a");
        assert_eq!(render_dtd(&r, &a), "(a)");
    }

    #[test]
    fn dtd_nested_postfix_gets_group() {
        // (a+)? must render as ((a+)?) not (a+?)
        let (mut al, sym);
        {
            let mut a = Alphabet::new();
            sym = a.intern("a");
            al = a;
        }
        let r = Regex::Optional(Box::new(Regex::Plus(Box::new(Regex::sym(sym)))));
        assert_eq!(render_dtd(&r, &al), "((a+)?)");
        let _ = &mut al;
    }

    #[test]
    fn dtd_union_top_level() {
        let (r, a) = setup("a | b");
        assert_eq!(render_dtd(&r, &a), "(a | b)");
    }

    #[test]
    fn parse_render_fixpoint() {
        for src in [
            "a",
            "a b c",
            "(a | b)* c+ d?",
            "((b? (a | c))+ d)+ e",
            "a1 a2 a3? a4* (a5 | a6)+",
        ] {
            let (r, a) = setup(src);
            let printed = render(&r, &a);
            let mut a2 = Alphabet::new();
            let r2 = parse(&printed, &mut a2).unwrap();
            assert_eq!(render(&r2, &a2), printed, "fixpoint for {src}");
        }
    }
}
