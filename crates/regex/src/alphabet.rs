//! Interned alphabet of element names.
//!
//! All algorithms in this workspace operate on dense integer symbol ids
//! (`Sym`) rather than strings; an [`Alphabet`] owns the bidirectional
//! mapping between XML element names and ids. Words (child-name sequences
//! extracted from XML documents) are `Vec<Sym>`.

use std::collections::HashMap;
use std::fmt;

/// An interned alphabet symbol (an XML element name).
///
/// `Sym` is a dense index into an [`Alphabet`]; it is `Copy` and cheap to
/// hash, so the inference algorithms can use it as a graph-node key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

impl Sym {
    /// The dense index of this symbol.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A word over the alphabet: one child-name sequence.
pub type Word = Vec<Sym>;

/// Bidirectional mapping between element names and dense [`Sym`] ids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Alphabet {
    names: Vec<String>,
    index: HashMap<String, Sym>,
}

impl Alphabet {
    /// Creates an empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an alphabet containing `names` in order.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut a = Self::new();
        for n in names {
            a.intern(n.as_ref());
        }
        a
    }

    /// Interns `name`, returning its symbol (existing or fresh).
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&s) = self.index.get(name) {
            return s;
        }
        let s = Sym(u32::try_from(self.names.len()).expect("alphabet overflow"));
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), s);
        s
    }

    /// Looks up an already-interned name.
    pub fn get(&self, name: &str) -> Option<Sym> {
        self.index.get(name).copied()
    }

    /// Returns the name of `sym`.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this alphabet.
    pub fn name(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Number of distinct symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no symbol has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all symbols in id order.
    pub fn symbols(&self) -> impl Iterator<Item = Sym> + '_ {
        (0..self.names.len() as u32).map(Sym)
    }

    /// Iterates over `(Sym, name)` pairs in id order.
    pub fn entries(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Sym(i as u32), n.as_str()))
    }

    /// Interns every character of `s` as a single-character name, producing a
    /// word. Convenient for tests that use the paper's one-letter examples
    /// (e.g. `"bacacdacde"`).
    pub fn word_from_chars(&mut self, s: &str) -> Word {
        s.chars().map(|c| self.intern(&c.to_string())).collect()
    }

    /// Renders a word as a string of names separated by `sep`.
    pub fn render_word(&self, w: &[Sym], sep: &str) -> String {
        w.iter()
            .map(|&s| self.name(s))
            .collect::<Vec<_>>()
            .join(sep)
    }
}

/// Creates a fresh alphabet with generated names `a1..an` (paper style) and
/// returns both the alphabet and the symbols in order.
pub fn numbered_alphabet(n: usize) -> (Alphabet, Vec<Sym>) {
    let mut a = Alphabet::new();
    let syms = (1..=n).map(|i| a.intern(&format!("a{i}"))).collect();
    (a, syms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut a = Alphabet::new();
        let x = a.intern("title");
        let y = a.intern("title");
        assert_eq!(x, y);
        assert_eq!(a.len(), 1);
        assert_eq!(a.name(x), "title");
    }

    #[test]
    fn distinct_names_get_distinct_syms() {
        let mut a = Alphabet::new();
        let x = a.intern("a");
        let y = a.intern("b");
        assert_ne!(x, y);
        assert_eq!(a.get("a"), Some(x));
        assert_eq!(a.get("b"), Some(y));
        assert_eq!(a.get("c"), None);
    }

    #[test]
    fn word_from_chars_round_trips() {
        let mut a = Alphabet::new();
        let w = a.word_from_chars("abca");
        assert_eq!(w.len(), 4);
        assert_eq!(w[0], w[3]);
        assert_eq!(a.render_word(&w, ""), "abca");
    }

    #[test]
    fn numbered_alphabet_names() {
        let (a, syms) = numbered_alphabet(3);
        assert_eq!(a.len(), 3);
        assert_eq!(a.name(syms[0]), "a1");
        assert_eq!(a.name(syms[2]), "a3");
    }

    #[test]
    fn entries_enumerates_in_order() {
        let a = Alphabet::from_names(["x", "y"]);
        let v: Vec<_> = a
            .entries()
            .map(|(s, n)| (s.index(), n.to_owned()))
            .collect();
        assert_eq!(v, vec![(0, "x".to_owned()), (1, "y".to_owned())]);
    }
}
