//! Word generation from regular expressions.
//!
//! This is our substitute for ToXgene (the template-based XML generator the
//! paper used to produce data for Table 2): a random sampler plus a
//! *coverage* generator that emits a small set of words guaranteed to contain
//! every possible first symbol, last symbol and 2-gram of the language — the
//! "representative sample" notion of §4 under which 2T-INF recovers the SOA
//! exactly.

use crate::alphabet::Word;
use crate::ast::Regex;
use crate::props::{linearize, Linearized, Pos};
use rand::Rng;

/// Tuning knobs for the random sampler.
#[derive(Debug, Clone, Copy)]
pub struct SampleConfig {
    /// Probability that an `r?` body is generated.
    pub opt_prob: f64,
    /// Continuation probability of the geometric distribution governing
    /// extra repetitions of `r+` / `r*` bodies.
    pub repeat_prob: f64,
    /// Hard cap on repetitions per `+`/`*` node (guards pathological
    /// configurations).
    pub max_repeat: usize,
}

impl Default for SampleConfig {
    fn default() -> Self {
        Self {
            opt_prob: 0.5,
            repeat_prob: 0.5,
            max_repeat: 16,
        }
    }
}

/// Draws one random word from `L(r)`.
pub fn sample_word<R: Rng + ?Sized>(r: &Regex, cfg: &SampleConfig, rng: &mut R) -> Word {
    let mut out = Vec::new();
    gen(r, cfg, rng, &mut out);
    out
}

/// Draws `n` random words from `L(r)`.
pub fn sample_words<R: Rng + ?Sized>(
    r: &Regex,
    cfg: &SampleConfig,
    rng: &mut R,
    n: usize,
) -> Vec<Word> {
    (0..n).map(|_| sample_word(r, cfg, rng)).collect()
}

fn gen<R: Rng + ?Sized>(r: &Regex, cfg: &SampleConfig, rng: &mut R, out: &mut Word) {
    match r {
        Regex::Symbol(s) => out.push(*s),
        Regex::Concat(parts) => {
            for p in parts {
                gen(p, cfg, rng, out);
            }
        }
        Regex::Union(parts) => {
            let i = rng.gen_range(0..parts.len());
            gen(&parts[i], cfg, rng, out);
        }
        Regex::Optional(inner) => {
            if rng.gen_bool(cfg.opt_prob) {
                gen(inner, cfg, rng, out);
            }
        }
        Regex::Plus(inner) => {
            let n = 1 + geometric(rng, cfg.repeat_prob, cfg.max_repeat - 1);
            for _ in 0..n {
                gen(inner, cfg, rng, out);
            }
        }
        Regex::Star(inner) => {
            let n = if rng.gen_bool(cfg.repeat_prob) {
                1 + geometric(rng, cfg.repeat_prob, cfg.max_repeat - 1)
            } else {
                0
            };
            for _ in 0..n {
                gen(inner, cfg, rng, out);
            }
        }
    }
}

fn geometric<R: Rng + ?Sized>(rng: &mut R, p: f64, cap: usize) -> usize {
    let mut n = 0;
    while n < cap && rng.gen_bool(p) {
        n += 1;
    }
    n
}

/// Generates a small set of words covering every first symbol, last symbol
/// and 2-gram of `L(r)`; if ε ∈ L(r) the empty word is included. Together
/// these form a *representative sample* (§4): 2T-INF on the result recovers
/// the 2-testable closure of `L(r)` exactly.
///
/// Words are built by greedy *path covering*: each word is one walk from a
/// first position to a last position that consumes as many still-uncovered
/// follow edges as possible, so the sample stays small (like the compact
/// real-world samples of Table 1, where 10 strings exhibit ~20 distinct
/// 2-grams).
pub fn covering_words(r: &Regex) -> Vec<Word> {
    let lin = linearize(r);
    let paths = PositionPaths::new(&lin);
    let n = lin.len();
    let mut out: Vec<Word> = Vec::new();
    if lin.nullable {
        out.push(Vec::new());
    }

    let mut uncovered: Vec<std::collections::BTreeSet<Pos>> = lin
        .follow
        .iter()
        .map(|succs| succs.iter().copied().collect())
        .collect();
    let mut uncovered_count: usize = uncovered.iter().map(|s| s.len()).sum();
    let mut first_covered = vec![false; n];
    let mut last_covered = vec![false; n];
    let is_last = {
        let mut v = vec![false; n];
        for &p in &lin.last {
            v[p] = true;
        }
        v
    };

    // Bound: every iteration covers ≥1 new edge / first / last.
    while uncovered_count > 0 {
        // Start at a first position that owns — or can reach — an
        // uncovered edge (one always exists: every position is reachable
        // from some first position).
        let start = lin
            .first
            .iter()
            .copied()
            .find(|&p| {
                !uncovered[p].is_empty()
                    || step_toward(&lin, p, |q| !uncovered[q].is_empty()).is_some()
            })
            .expect("uncovered edges are reachable from a first position");
        first_covered[start] = true;
        let mut positions = vec![start];
        let mut cur = start;
        // Walk, preferring uncovered edges, else stepping toward the
        // nearest reachable uncovered edge, else toward the end.
        loop {
            if let Some(&q) = uncovered[cur].iter().next() {
                uncovered[cur].remove(&q);
                uncovered_count -= 1;
                positions.push(q);
                cur = q;
                continue;
            }
            // BFS for the nearest position with an uncovered outgoing edge.
            match step_toward(&lin, cur, |p| !uncovered[p].is_empty()) {
                Some(next) => {
                    positions.push(next);
                    cur = next;
                }
                None => break,
            }
        }
        // Finish at a last position (preferring an uncovered one).
        if !is_last[cur] {
            let mut tail = paths.suffix(cur);
            tail.remove(0);
            positions.extend(tail);
            cur = *positions.last().expect("non-empty");
        }
        last_covered[cur] = true;
        out.push(positions.into_iter().map(|p| lin.sym_at[p]).collect());
    }

    // Any firsts/lasts not yet exhibited get a dedicated shortest word.
    for &p in &lin.first {
        if !first_covered[p] && !out.iter().any(|w: &Word| w.first() == Some(&lin.sym_at[p])) {
            out.push(paths.word_from(&lin, p));
            first_covered[p] = true;
        }
    }
    for &p in &lin.last {
        if !last_covered[p] && !out.iter().any(|w: &Word| w.last() == Some(&lin.sym_at[p])) {
            out.push(paths.word_to(&lin, p));
            last_covered[p] = true;
        }
    }
    out.sort();
    out.dedup();
    out
}

/// One BFS step from `cur` toward the nearest position satisfying `goal`
/// (including `cur`'s successors); `None` when no such position is
/// reachable.
fn step_toward(lin: &Linearized, cur: Pos, goal: impl Fn(Pos) -> bool) -> Option<Pos> {
    let mut seen = vec![false; lin.len()];
    let mut queue: std::collections::VecDeque<(Pos, Pos)> =
        lin.follow[cur].iter().map(|&q| (q, q)).collect();
    for &q in &lin.follow[cur] {
        seen[q] = true;
    }
    while let Some((p, entry)) = queue.pop_front() {
        if goal(p) {
            return Some(entry);
        }
        for &q in &lin.follow[p] {
            if !seen[q] {
                seen[q] = true;
                queue.push_back((q, entry));
            }
        }
    }
    None
}

/// Shortest-path helpers over the position graph.
struct PositionPaths {
    /// Predecessor on a shortest path from some first position (usize::MAX =
    /// is itself a first position).
    parent_from_start: Vec<usize>,
    /// Successor on a shortest path to some last position (usize::MAX = is
    /// itself a last position).
    next_to_end: Vec<usize>,
}

const NONE: usize = usize::MAX;

impl PositionPaths {
    fn new(lin: &Linearized) -> Self {
        let n = lin.len();
        // Forward BFS from first positions.
        let mut parent_from_start = vec![NONE; n];
        let mut seen = vec![false; n];
        let mut queue: std::collections::VecDeque<Pos> = lin.first.iter().copied().collect();
        for &p in &lin.first {
            seen[p] = true;
        }
        while let Some(p) = queue.pop_front() {
            for &q in &lin.follow[p] {
                if !seen[q] {
                    seen[q] = true;
                    parent_from_start[q] = p;
                    queue.push_back(q);
                }
            }
        }
        // Backward BFS from last positions (on reversed edges).
        let mut rev: Vec<Vec<Pos>> = vec![Vec::new(); n];
        for (p, succs) in lin.follow.iter().enumerate() {
            for &q in succs {
                rev[q].push(p);
            }
        }
        let mut next_to_end = vec![NONE; n];
        let mut seen2 = vec![false; n];
        let mut queue2: std::collections::VecDeque<Pos> = lin.last.iter().copied().collect();
        for &p in &lin.last {
            seen2[p] = true;
        }
        while let Some(p) = queue2.pop_front() {
            for &q in &rev[p] {
                if !seen2[q] {
                    seen2[q] = true;
                    next_to_end[q] = p;
                    queue2.push_back(q);
                }
            }
        }
        Self {
            parent_from_start,
            next_to_end,
        }
    }

    /// Positions from a first position up to and including `p`.
    fn prefix(&self, p: Pos) -> Vec<Pos> {
        let mut path = vec![p];
        let mut cur = p;
        while self.parent_from_start[cur] != NONE {
            cur = self.parent_from_start[cur];
            path.push(cur);
        }
        path.reverse();
        path
    }

    /// Positions from `p` (inclusive) to a last position.
    fn suffix(&self, p: Pos) -> Vec<Pos> {
        let mut path = vec![p];
        let mut cur = p;
        while self.next_to_end[cur] != NONE {
            cur = self.next_to_end[cur];
            path.push(cur);
        }
        path
    }

    fn word_from(&self, lin: &Linearized, p: Pos) -> Word {
        self.suffix(p).into_iter().map(|p| lin.sym_at[p]).collect()
    }

    fn word_to(&self, lin: &Linearized, p: Pos) -> Word {
        self.prefix(p).into_iter().map(|p| lin.sym_at[p]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::parser::parse;
    use crate::props::two_gram_profile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn p(src: &str) -> (Regex, Alphabet) {
        let mut a = Alphabet::new();
        let r = parse(src, &mut a).unwrap();
        (r, a)
    }

    /// The 2-gram profile computed from a set of words.
    type Profile = (
        bool,
        HashSet<crate::alphabet::Sym>,
        HashSet<crate::alphabet::Sym>,
        HashSet<(crate::alphabet::Sym, crate::alphabet::Sym)>,
    );

    fn profile_of_words(words: &[Word]) -> Profile {
        let mut nullable = false;
        let mut first = HashSet::new();
        let mut last = HashSet::new();
        let mut pairs = HashSet::new();
        for w in words {
            if w.is_empty() {
                nullable = true;
                continue;
            }
            first.insert(w[0]);
            last.insert(*w.last().unwrap());
            for win in w.windows(2) {
                pairs.insert((win[0], win[1]));
            }
        }
        (nullable, first, last, pairs)
    }

    #[test]
    fn covering_words_are_representative() {
        for src in [
            "a",
            "a b c",
            "(a | b)+ c",
            "((b? (a|c))+ d)+ e",
            "a? (b | c)* d+",
            "(a1 (a2 | a3)+ (a4 | a5))+",
            "a*",
        ] {
            let (r, _) = p(src);
            let prof = two_gram_profile(&r);
            let words = covering_words(&r);
            let (nullable, first, last, pairs) = profile_of_words(&words);
            assert_eq!(nullable, prof.nullable, "{src}: nullable");
            assert_eq!(
                first,
                prof.first.iter().copied().collect(),
                "{src}: first symbols"
            );
            assert_eq!(
                last,
                prof.last.iter().copied().collect(),
                "{src}: last symbols"
            );
            assert_eq!(
                pairs,
                prof.pairs.iter().copied().collect(),
                "{src}: 2-grams"
            );
        }
    }

    #[test]
    fn covering_words_subset_check_via_sampler_profile() {
        // Random samples never produce 2-grams outside the profile.
        let (r, _) = p("((b? (a|c))+ d)+ e");
        let prof = two_gram_profile(&r);
        let allowed: HashSet<_> = prof.pairs.iter().copied().collect();
        let mut rng = StdRng::seed_from_u64(42);
        for w in sample_words(&r, &SampleConfig::default(), &mut rng, 200) {
            assert!(!w.is_empty());
            for win in w.windows(2) {
                assert!(allowed.contains(&(win[0], win[1])));
            }
        }
    }

    #[test]
    fn sampler_respects_concatenation_order() {
        let (r, _) = p("a b c");
        let mut rng = StdRng::seed_from_u64(1);
        let w = sample_word(&r, &SampleConfig::default(), &mut rng);
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn sampler_plus_produces_at_least_one() {
        let (r, _) = p("a+");
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            assert!(!sample_word(&r, &SampleConfig::default(), &mut rng).is_empty());
        }
    }

    #[test]
    fn sampler_star_can_produce_empty() {
        let (r, _) = p("a*");
        let mut rng = StdRng::seed_from_u64(3);
        let words = sample_words(&r, &SampleConfig::default(), &mut rng, 100);
        assert!(words.iter().any(Vec::is_empty));
        assert!(words.iter().any(|w| !w.is_empty()));
    }

    #[test]
    fn sampler_respects_max_repeat() {
        let (r, _) = p("a+");
        let cfg = SampleConfig {
            repeat_prob: 1.0,
            max_repeat: 4,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            assert!(sample_word(&r, &cfg, &mut rng).len() <= 4);
        }
    }

    #[test]
    fn covering_words_dedup() {
        let (r, _) = p("a b");
        let words = covering_words(&r);
        let set: HashSet<_> = words.iter().cloned().collect();
        assert_eq!(set.len(), words.len());
    }
}
