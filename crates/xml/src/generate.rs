//! Document generation: sampling XML documents *from* a DTD.
//!
//! The inverse of inference, and the backbone of closed-loop testing: a
//! corpus generated from a DTD, when re-inferred, must yield a schema that
//! validates the corpus (and, given enough data, the original content
//! models). This replaces the paper's use of ToXgene at the document level
//! (the word-level substitute lives in `dtdinfer-regex::sample`).

use crate::attlist::{AttDefault, AttType};
use crate::dtd::{ContentSpec, Dtd};
use crate::parser::encode_entities;
use dtdinfer_regex::alphabet::Sym;
use dtdinfer_regex::sample::{sample_word, SampleConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::fmt;

/// Errors from document generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenerateError {
    /// The DTD has no root element.
    NoRoot,
    /// The element dependency graph is recursive; bounded documents cannot
    /// cover it without violating some content model.
    RecursiveDtd {
        /// An element on the cycle.
        element: String,
    },
    /// An element is referenced in a content model but never declared.
    Undeclared {
        /// The missing element.
        element: String,
    },
}

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenerateError::NoRoot => write!(f, "DTD has no root element"),
            GenerateError::RecursiveDtd { element } => {
                write!(
                    f,
                    "recursive DTD: <{element}> (directly or indirectly) contains itself"
                )
            }
            GenerateError::Undeclared { element } => {
                write!(f, "element <{element}> used but not declared")
            }
        }
    }
}

impl std::error::Error for GenerateError {}

/// Configuration for document sampling.
#[derive(Debug, Clone, Copy)]
pub struct GenerateConfig {
    /// Word-sampler knobs for content models.
    pub words: SampleConfig,
    /// Sample texts are drawn as `text N` with N below this bound.
    pub text_variety: u32,
}

impl Default for GenerateConfig {
    fn default() -> Self {
        Self {
            words: SampleConfig::default(),
            text_variety: 100,
        }
    }
}

/// Samples one document conforming to `dtd`.
pub fn sample_document(
    dtd: &Dtd,
    cfg: &GenerateConfig,
    seed: u64,
) -> Result<String, GenerateError> {
    let root = dtd.root.ok_or(GenerateError::NoRoot)?;
    check_acyclic(dtd)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::new();
    emit(dtd, root, cfg, &mut rng, &mut out)?;
    Ok(out)
}

/// Samples `n` documents with distinct seeds derived from `seed`.
pub fn sample_documents(
    dtd: &Dtd,
    cfg: &GenerateConfig,
    seed: u64,
    n: usize,
) -> Result<Vec<String>, GenerateError> {
    (0..n)
        .map(|i| sample_document(dtd, cfg, seed.wrapping_add(i as u64 * 0x9e37_79b9)))
        .collect()
}

fn check_acyclic(dtd: &Dtd) -> Result<(), GenerateError> {
    // DFS with colors over element dependencies.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    fn children_of(dtd: &Dtd, sym: Sym) -> Vec<Sym> {
        match dtd.elements.get(&sym) {
            Some(ContentSpec::Children(r)) => r.symbols(),
            Some(ContentSpec::Mixed(syms)) => syms.clone(),
            _ => Vec::new(),
        }
    }
    fn visit(
        dtd: &Dtd,
        sym: Sym,
        colors: &mut std::collections::BTreeMap<Sym, Color>,
    ) -> Result<(), GenerateError> {
        match colors.get(&sym).copied().unwrap_or(Color::White) {
            Color::Black => return Ok(()),
            Color::Grey => {
                return Err(GenerateError::RecursiveDtd {
                    element: dtd.alphabet.name(sym).to_owned(),
                })
            }
            Color::White => {}
        }
        colors.insert(sym, Color::Grey);
        for child in children_of(dtd, sym) {
            if !dtd.elements.contains_key(&child) {
                return Err(GenerateError::Undeclared {
                    element: dtd.alphabet.name(child).to_owned(),
                });
            }
            visit(dtd, child, colors)?;
        }
        colors.insert(sym, Color::Black);
        Ok(())
    }
    let mut colors = std::collections::BTreeMap::new();
    for &sym in dtd.elements.keys() {
        visit(dtd, sym, &mut colors)?;
    }
    Ok(())
}

fn emit(
    dtd: &Dtd,
    sym: Sym,
    cfg: &GenerateConfig,
    rng: &mut StdRng,
    out: &mut String,
) -> Result<(), GenerateError> {
    let name = dtd.alphabet.name(sym).to_owned();
    out.push('<');
    out.push_str(&name);
    if let Some(defs) = dtd.attlists.get(&sym) {
        let mut used_ids: BTreeSet<String> = BTreeSet::new();
        for def in defs {
            let present = def.default == AttDefault::Required || rng.gen_bool(0.6);
            if !present {
                continue;
            }
            let value = match &def.ty {
                AttType::CData => format!("value {}", rng.gen_range(0..cfg.text_variety)),
                AttType::NmToken => format!("tok{}", rng.gen_range(0..cfg.text_variety)),
                AttType::Id => loop {
                    let candidate = format!("id{}", rng.gen_range(0..u32::MAX));
                    if used_ids.insert(candidate.clone()) {
                        break candidate;
                    }
                },
                AttType::Enumeration(values) => values[rng.gen_range(0..values.len())].clone(),
            };
            out.push(' ');
            out.push_str(&def.name);
            out.push_str("=\"");
            out.push_str(&encode_entities(&value));
            out.push('"');
        }
    }
    let spec = dtd
        .elements
        .get(&sym)
        .ok_or_else(|| GenerateError::Undeclared {
            element: name.clone(),
        })?;
    match spec {
        ContentSpec::Empty => {
            out.push_str("/>");
        }
        ContentSpec::Any | ContentSpec::PcData => {
            out.push('>');
            out.push_str(&encode_entities(&format!(
                "text {}",
                rng.gen_range(0..cfg.text_variety)
            )));
            out.push_str("</");
            out.push_str(&name);
            out.push('>');
        }
        ContentSpec::Mixed(children) => {
            out.push('>');
            let pieces = rng.gen_range(0..4usize);
            for _ in 0..pieces {
                if rng.gen_bool(0.5) || children.is_empty() {
                    out.push_str(&encode_entities(&format!(
                        "mix {} ",
                        rng.gen_range(0..cfg.text_variety)
                    )));
                } else {
                    let child = children[rng.gen_range(0..children.len())];
                    emit(dtd, child, cfg, rng, out)?;
                }
            }
            out.push_str("</");
            out.push_str(&name);
            out.push('>');
        }
        ContentSpec::Children(regex) => {
            out.push('>');
            for child in sample_word(regex, &cfg.words, rng) {
                emit(dtd, child, cfg, rng, out)?;
            }
            out.push_str("</");
            out.push_str(&name);
            out.push('>');
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::{infer_dtd, InferenceEngine};

    const BOOKS: &str = r#"
<!ELEMENT catalog (book+)>
<!ELEMENT book (title, author+, year, price?)>
<!ATTLIST book id ID #REQUIRED binding (hard | soft) #IMPLIED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT price (#PCDATA)>
"#;

    #[test]
    fn generated_documents_validate() {
        let dtd = Dtd::parse(BOOKS).unwrap();
        let docs = sample_documents(&dtd, &GenerateConfig::default(), 7, 25).unwrap();
        for d in &docs {
            let violations = dtd.validate(d).unwrap();
            assert!(violations.is_empty(), "{violations:?}\n{d}");
        }
    }

    #[test]
    fn closed_loop_inference() {
        // generate → infer → the inferred DTD validates the corpus, and its
        // book content model equals the original.
        let dtd = Dtd::parse(BOOKS).unwrap();
        let docs = sample_documents(&dtd, &GenerateConfig::default(), 3, 120).unwrap();
        let mut corpus = crate::extract::Corpus::new();
        for d in &docs {
            corpus.add_document(d).unwrap();
        }
        let inferred = infer_dtd(&corpus, InferenceEngine::Idtd);
        for d in &docs {
            assert!(inferred.validate(d).unwrap().is_empty());
        }
        let text = inferred.serialize();
        assert!(
            text.contains("<!ELEMENT book (title, author+, year, price?)>"),
            "{text}"
        );
        assert!(text.contains("<!ATTLIST book id ID #REQUIRED>"), "{text}");
    }

    #[test]
    fn recursive_dtd_rejected() {
        let dtd = Dtd::parse("<!ELEMENT a (b?)><!ELEMENT b (a?)>").unwrap();
        assert!(matches!(
            sample_document(&dtd, &GenerateConfig::default(), 0),
            Err(GenerateError::RecursiveDtd { .. })
        ));
    }

    #[test]
    fn undeclared_child_rejected() {
        let dtd = Dtd::parse("<!ELEMENT a (ghost)>").unwrap();
        assert!(matches!(
            sample_document(&dtd, &GenerateConfig::default(), 0),
            Err(GenerateError::Undeclared { .. })
        ));
    }

    #[test]
    fn deterministic_by_seed() {
        let dtd = Dtd::parse(BOOKS).unwrap();
        let a = sample_document(&dtd, &GenerateConfig::default(), 5).unwrap();
        let b = sample_document(&dtd, &GenerateConfig::default(), 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mixed_content_generated() {
        let dtd = Dtd::parse("<!ELEMENT p (#PCDATA | em)*><!ELEMENT em (#PCDATA)>").unwrap();
        let docs = sample_documents(&dtd, &GenerateConfig::default(), 11, 30).unwrap();
        for d in &docs {
            assert!(dtd.validate(d).unwrap().is_empty(), "{d}");
        }
        assert!(docs.iter().any(|d| d.contains("<em>")));
    }
}
