//! XML Schema generation (§9).
//!
//! "The study in \[9\] shows that 85% of XSDs are structurally equivalent to
//! a DTD. Generating such XSDs is merely a matter of using the correct
//! syntax." This module emits exactly that class of schema from an inferred
//! [`Dtd`]:
//!
//! * content models map structurally — concatenation → `xs:sequence`,
//!   union → `xs:choice`, `?`/`+`/`*` → `minOccurs`/`maxOccurs`;
//! * the numerical-predicate extension maps to tightened
//!   `minOccurs`/`maxOccurs` values on CHARE factors;
//! * text-only elements get a built-in datatype from the heuristics of
//!   [`crate::datatype`].

use crate::attlist::{AttDefault, AttType};
use crate::dtd::{ContentSpec, Dtd};
use crate::extract::Corpus;
use dtdinfer_regex::alphabet::{Alphabet, Word};
use dtdinfer_regex::ast::Regex;
use dtdinfer_regex::classify::as_chare;
use dtdinfer_regex::numeric::tighten;
use std::fmt::Write as _;

/// Options for XSD generation.
#[derive(Debug, Clone, Copy, Default)]
pub struct XsdOptions {
    /// Tighten `?`/`+`/`*` to observed numeric bounds when the content
    /// model is a CHARE and the corpus is available (§9 numerical
    /// predicates). A factor whose maximum observed count exceeds this
    /// value keeps `maxOccurs="unbounded"`.
    pub numeric_threshold: Option<u32>,
}

/// Renders an XSD for `dtd`; `corpus` (when given) supplies text samples
/// for datatype inference and occurrence counts for numeric bounds.
pub fn generate_xsd(dtd: &Dtd, corpus: Option<&Corpus>, options: XsdOptions) -> String {
    let mut out = String::new();
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    out.push_str("<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">\n");
    let mut syms: Vec<_> = dtd.elements.keys().copied().collect();
    if let Some(root) = dtd.root {
        syms.sort_by_key(|&s| (s != root, dtd.alphabet.name(s).to_owned()));
    }
    for sym in syms {
        let name = dtd.alphabet.name(sym);
        let attrs = attribute_lines(dtd, sym);
        match &dtd.elements[&sym] {
            ContentSpec::Empty => {
                if attrs.is_empty() {
                    let _ = writeln!(
                        out,
                        "  <xs:element name=\"{name}\"><xs:complexType/></xs:element>"
                    );
                } else {
                    let _ = writeln!(out, "  <xs:element name=\"{name}\"><xs:complexType>");
                    out.push_str(&attrs.join(""));
                    out.push_str("  </xs:complexType></xs:element>\n");
                }
            }
            ContentSpec::Any => {
                let _ = writeln!(
                    out,
                    "  <xs:element name=\"{name}\"><xs:complexType mixed=\"true\">\
                     <xs:sequence><xs:any minOccurs=\"0\" maxOccurs=\"unbounded\"/>\
                     </xs:sequence></xs:complexType></xs:element>"
                );
            }
            ContentSpec::PcData => {
                // Corpus facts are looked up by name: the DTD's alphabet is
                // canonical (name-sorted) and need not share ids with the
                // corpus the caller extracted.
                let ty = corpus
                    .and_then(|c| c.alphabet.get(name).and_then(|s| c.elements.get(&s)))
                    .map(|f| f.text_samples.datatype())
                    .unwrap_or(crate::datatype::XsdType::String);
                if attrs.is_empty() {
                    let _ = writeln!(
                        out,
                        "  <xs:element name=\"{name}\" type=\"{}\"/>",
                        ty.xsd_name()
                    );
                } else {
                    // Text plus attributes: simpleContent extension.
                    let _ = writeln!(out, "  <xs:element name=\"{name}\"><xs:complexType>");
                    let _ = writeln!(
                        out,
                        "    <xs:simpleContent><xs:extension base=\"{}\">",
                        ty.xsd_name()
                    );
                    out.push_str(&attrs.join(""));
                    out.push_str("    </xs:extension></xs:simpleContent>\n");
                    out.push_str("  </xs:complexType></xs:element>\n");
                }
            }
            ContentSpec::Mixed(children) => {
                let _ = writeln!(
                    out,
                    "  <xs:element name=\"{name}\"><xs:complexType mixed=\"true\">"
                );
                out.push_str("    <xs:choice minOccurs=\"0\" maxOccurs=\"unbounded\">\n");
                for &c in children {
                    let _ = writeln!(out, "      <xs:element ref=\"{}\"/>", dtd.alphabet.name(c));
                }
                out.push_str("    </xs:choice>\n");
                out.push_str(&attrs.join(""));
                out.push_str("  </xs:complexType></xs:element>\n");
            }
            ContentSpec::Children(regex) => {
                let _ = writeln!(out, "  <xs:element name=\"{name}\"><xs:complexType>");
                let body = render_content(regex, &dtd.alphabet, sym, corpus, options);
                out.push_str(&body);
                out.push_str(&attrs.join(""));
                out.push_str("  </xs:complexType></xs:element>\n");
            }
        }
    }
    out.push_str("</xs:schema>\n");
    out
}

/// Renders the `<xs:attribute>` lines of one element.
fn attribute_lines(dtd: &Dtd, sym: dtdinfer_regex::alphabet::Sym) -> Vec<String> {
    let Some(defs) = dtd.attlists.get(&sym) else {
        return Vec::new();
    };
    defs.iter()
        .map(|def| {
            let use_attr = match def.default {
                AttDefault::Required => " use=\"required\"",
                AttDefault::Implied => "",
            };
            match &def.ty {
                AttType::CData => format!(
                    "    <xs:attribute name=\"{}\" type=\"xs:string\"{use_attr}/>\n",
                    def.name
                ),
                AttType::NmToken => format!(
                    "    <xs:attribute name=\"{}\" type=\"xs:NMTOKEN\"{use_attr}/>\n",
                    def.name
                ),
                AttType::Id => format!(
                    "    <xs:attribute name=\"{}\" type=\"xs:ID\"{use_attr}/>\n",
                    def.name
                ),
                AttType::Enumeration(values) => {
                    let mut s = format!(
                        "    <xs:attribute name=\"{}\"{use_attr}><xs:simpleType>\
                         <xs:restriction base=\"xs:string\">\n",
                        def.name
                    );
                    for v in values {
                        let _ = writeln!(s, "      <xs:enumeration value=\"{v}\"/>");
                    }
                    s.push_str("    </xs:restriction></xs:simpleType></xs:attribute>\n");
                    s
                }
            }
        })
        .collect()
}

/// Renders a content model, using numeric CHARE bounds when enabled.
fn render_content(
    regex: &Regex,
    alphabet: &Alphabet,
    sym: dtdinfer_regex::alphabet::Sym,
    corpus: Option<&Corpus>,
    options: XsdOptions,
) -> String {
    if let (Some(threshold), Some(corpus)) = (options.numeric_threshold, corpus) {
        let facts = corpus
            .alphabet
            .get(alphabet.name(sym))
            .and_then(|s| corpus.elements.get(&s));
        if let (Some(factors), Some(facts)) = (as_chare(regex), facts) {
            // The corpus may intern names in a different order than the
            // canonical DTD alphabet: translate the observed words by name
            // before counting factor occurrences. Names unknown to the DTD
            // (corpus/DTD mismatch) disable tightening for this element.
            // Distinct words suffice: `tighten` takes per-word minima and
            // maxima, which repeats cannot change.
            let sequences: Option<Vec<Word>> = facts
                .child_sequences
                .words()
                .map(|w| {
                    w.iter()
                        .map(|&s| alphabet.get(corpus.alphabet.name(s)))
                        .collect()
                })
                .collect();
            let Some(sequences) = sequences else {
                let mut out = String::new();
                render_regex(&mut out, regex, alphabet, 4, 1, Some(1));
                return out;
            };
            let numeric = tighten(&factors, &sequences, threshold);
            let mut out = String::from("    <xs:sequence>\n");
            for f in &numeric.factors {
                let occurs = occurs_attrs(f.bounds.min, f.bounds.max);
                if f.syms.len() == 1 {
                    let _ = writeln!(
                        out,
                        "      <xs:element ref=\"{}\"{occurs}/>",
                        alphabet.name(f.syms[0])
                    );
                } else {
                    let _ = writeln!(out, "      <xs:choice{occurs}>");
                    for &s in &f.syms {
                        let _ = writeln!(out, "        <xs:element ref=\"{}\"/>", alphabet.name(s));
                    }
                    out.push_str("      </xs:choice>\n");
                }
            }
            out.push_str("    </xs:sequence>\n");
            return out;
        }
    }
    let mut out = String::new();
    render_regex(&mut out, regex, alphabet, 4, 1, Some(1));
    out
}

fn occurs_attrs(min: u32, max: Option<u32>) -> String {
    let mut s = String::new();
    if min != 1 {
        let _ = write!(s, " minOccurs=\"{min}\"");
    }
    match max {
        Some(1) => {}
        Some(m) => {
            let _ = write!(s, " maxOccurs=\"{m}\"");
        }
        None => s.push_str(" maxOccurs=\"unbounded\""),
    }
    s
}

/// Structural translation of an arbitrary RE into nested
/// sequence/choice particles with occurrence attributes.
fn render_regex(
    out: &mut String,
    r: &Regex,
    alphabet: &Alphabet,
    indent: usize,
    min: u32,
    max: Option<u32>,
) {
    let pad = " ".repeat(indent);
    let occurs = occurs_attrs(min, max);
    match r {
        Regex::Symbol(s) => {
            let _ = writeln!(
                out,
                "{pad}<xs:element ref=\"{}\"{occurs}/>",
                alphabet.name(*s)
            );
        }
        Regex::Concat(parts) => {
            let _ = writeln!(out, "{pad}<xs:sequence{occurs}>");
            for p in parts {
                render_regex(out, p, alphabet, indent + 2, 1, Some(1));
            }
            let _ = writeln!(out, "{pad}</xs:sequence>");
        }
        Regex::Union(parts) => {
            let _ = writeln!(out, "{pad}<xs:choice{occurs}>");
            for p in parts {
                render_regex(out, p, alphabet, indent + 2, 1, Some(1));
            }
            let _ = writeln!(out, "{pad}</xs:choice>");
        }
        Regex::Optional(inner) => render_regex(out, inner, alphabet, indent, 0, max),
        Regex::Plus(inner) => render_regex(out, inner, alphabet, indent, min, None),
        Regex::Star(inner) => render_regex(out, inner, alphabet, indent, 0, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::{infer_dtd, InferenceEngine};

    fn corpus(docs: &[&str]) -> Corpus {
        let mut c = Corpus::new();
        for d in docs {
            c.add_document(d).unwrap();
        }
        c
    }

    #[test]
    fn structural_translation() {
        let c = corpus(&[
            "<book><title>T</title><author>A</author><author>B</author></book>",
            "<book><title>T</title><author>C</author></book>",
        ]);
        let dtd = infer_dtd(&c, InferenceEngine::Crx);
        let xsd = generate_xsd(&dtd, Some(&c), XsdOptions::default());
        assert!(xsd.contains("<xs:element name=\"book\">"), "{xsd}");
        assert!(xsd.contains("<xs:element ref=\"title\"/>"));
        assert!(xsd.contains("<xs:element ref=\"author\" maxOccurs=\"unbounded\"/>"));
        assert!(xsd.contains("<xs:element name=\"title\" type=\"xs:NMTOKEN\"/>"));
    }

    #[test]
    fn datatype_heuristics_applied() {
        let c = corpus(&["<r><n>42</n><n>7</n><d>2006-09-12</d></r>"]);
        let dtd = infer_dtd(&c, InferenceEngine::Crx);
        let xsd = generate_xsd(&dtd, Some(&c), XsdOptions::default());
        assert!(
            xsd.contains("<xs:element name=\"n\" type=\"xs:integer\"/>"),
            "{xsd}"
        );
        assert!(xsd.contains("<xs:element name=\"d\" type=\"xs:date\"/>"));
    }

    #[test]
    fn numeric_bounds_emitted() {
        // a always appears exactly twice, b two-or-more times.
        let c = corpus(&["<r><a/><a/><b/><b/></r>", "<r><a/><a/><b/><b/><b/></r>"]);
        let dtd = infer_dtd(&c, InferenceEngine::Crx);
        let xsd = generate_xsd(
            &dtd,
            Some(&c),
            XsdOptions {
                numeric_threshold: Some(10),
            },
        );
        assert!(
            xsd.contains("<xs:element ref=\"a\" minOccurs=\"2\" maxOccurs=\"2\"/>"),
            "{xsd}"
        );
        assert!(xsd.contains("<xs:element ref=\"b\" minOccurs=\"2\" maxOccurs=\"3\"/>"));
    }

    #[test]
    fn numeric_threshold_unbounded() {
        let c = corpus(&["<r><a/></r>", "<r><a/><a/><a/><a/><a/><a/><a/><a/></r>"]);
        let dtd = infer_dtd(&c, InferenceEngine::Crx);
        let xsd = generate_xsd(
            &dtd,
            Some(&c),
            XsdOptions {
                numeric_threshold: Some(4),
            },
        );
        assert!(
            xsd.contains("<xs:element ref=\"a\" maxOccurs=\"unbounded\"/>"),
            "{xsd}"
        );
    }

    #[test]
    fn mixed_and_empty_forms() {
        let c = corpus(&["<r><p>t <em>e</em></p><hr/></r>"]);
        let dtd = infer_dtd(&c, InferenceEngine::Crx);
        let xsd = generate_xsd(&dtd, Some(&c), XsdOptions::default());
        assert!(xsd.contains("mixed=\"true\""));
        assert!(xsd.contains("<xs:element name=\"hr\"><xs:complexType/></xs:element>"));
    }

    #[test]
    fn attributes_emitted() {
        let c = corpus(&[
            r#"<r><item id="n1" kind="big">7</item><item id="n2" kind="small">8</item><item id="n3" kind="big">9</item><item id="n4" kind="small">10</item></r>"#,
        ]);
        let dtd = infer_dtd(&c, InferenceEngine::Crx);
        let xsd = generate_xsd(&dtd, Some(&c), XsdOptions::default());
        assert!(
            xsd.contains("<xs:attribute name=\"id\" type=\"xs:ID\" use=\"required\"/>"),
            "{xsd}"
        );
        assert!(xsd.contains("<xs:enumeration value=\"big\"/>"), "{xsd}");
        // Text + attributes → simpleContent extension over the datatype.
        assert!(xsd.contains("<xs:extension base=\"xs:integer\">"), "{xsd}");
        // Still well-formed XML.
        assert!(crate::parser::XmlPullParser::new(&xsd)
            .collect_events()
            .is_ok());
    }

    #[test]
    fn optional_group() {
        let c = corpus(&["<r><a/><b/></r>", "<r><b/></r>"]);
        let dtd = infer_dtd(&c, InferenceEngine::Crx);
        let xsd = generate_xsd(&dtd, Some(&c), XsdOptions::default());
        assert!(
            xsd.contains("<xs:element ref=\"a\" minOccurs=\"0\"/>"),
            "{xsd}"
        );
    }
}
