//! XML substrate: parsing, DTD handling, corpus extraction, XSD output.
//!
//! The inference algorithms of `dtdinfer-core` operate on words (child-name
//! sequences); this crate supplies everything between raw XML text and those
//! words, implemented from scratch:
//!
//! * [`parser`] — a streaming pull parser for the XML subset relevant to
//!   schema inference (tags, attributes, text, CDATA, comments, processing
//!   instructions, DOCTYPE, predefined/numeric entities);
//! * [`extract`] — corpus construction: one multiset of child sequences per
//!   element name, plus text/attribute samples;
//! * [`samples`] — bounded, shard-merge-deterministic reservoirs backing
//!   those text/attribute samples, so corpus memory is O(schema) rather
//!   than O(input);
//! * [`dtd`] — DTD document types: content-spec model, parsing of
//!   `<!ELEMENT>`/`<!ATTLIST>` declarations, serialization, and validation
//!   of documents against a DTD;
//! * [`attlist`] — attribute declarations and their inference (REQUIRED vs
//!   IMPLIED, CDATA/NMTOKEN/ID/enumeration);
//! * [`generate`] — the inverse direction: sampling documents *from* a DTD
//!   (closed-loop testing, document-level ToXgene substitute);
//! * [`diff`] — language-level schema comparison (the §1.1 schema-cleaning
//!   workflow: detect where the inferred DTD is stricter than the
//!   published one);
//! * [`contextual`] — the §10 future-work step: context-aware (1-local,
//!   XSD-strength) inference, where an element's content model may depend
//!   on its parent;
//! * [`infer`] — the end-to-end pipeline: corpus → (CRX or iDTD per
//!   element) → DTD;
//! * [`datatype`] — §9's built-in datatype heuristics (dates, integers,
//!   doubles, NMTOKEN, string) for XSD generation;
//! * [`xsd`] — simple XML Schema generation, structurally equivalent to the
//!   inferred DTD (the 85% case reported by \[9\] in the paper), including
//!   `minOccurs`/`maxOccurs` from the numerical-predicate extension.

#![warn(missing_docs)]

pub mod attlist;
pub mod contextual;
pub mod datatype;
pub mod diff;
pub mod dtd;
pub mod extract;
pub mod generate;
pub mod infer;
pub mod parser;
pub mod samples;
pub mod scan;
pub mod xsd;

pub use dtd::{ContentSpec, Dtd};
pub use extract::Corpus;
pub use infer::{infer_dtd, InferenceEngine};
pub use parser::{XmlError, XmlEvent, XmlPullParser};
