//! Document Type Definitions: model, parsing, serialization, validation.
//!
//! A DTD is abstracted as a mapping from element names to regular
//! expressions plus a start symbol (§3); concretely each element carries a
//! [`ContentSpec`] covering the full `<!ELEMENT>` declaration syntax
//! (`EMPTY`, `ANY`, `(#PCDATA)`, mixed content, and child content models).

use crate::attlist::{AttDef, AttType};
use crate::parser::{XmlError, XmlEvent, XmlPullParser};
use dtdinfer_automata::nfa::Nfa;
use dtdinfer_regex::alphabet::{Alphabet, Sym, Word};
use dtdinfer_regex::ast::Regex;
use dtdinfer_regex::display::render_dtd;
use dtdinfer_regex::parser::parse as parse_regex;
use std::collections::BTreeMap;
use std::fmt;

/// The content specification of one element declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContentSpec {
    /// `EMPTY` — no content at all.
    Empty,
    /// `ANY` — anything goes.
    Any,
    /// `(#PCDATA)` — text only.
    PcData,
    /// `(#PCDATA | a | b)*` — mixed content.
    Mixed(Vec<Sym>),
    /// A child content model.
    Children(Regex),
}

/// A Document Type Definition.
#[derive(Debug, Clone, Default)]
pub struct Dtd {
    /// Shared element-name alphabet.
    pub alphabet: Alphabet,
    /// Start symbol (the document element).
    pub root: Option<Sym>,
    /// Element declarations in insertion order.
    pub elements: BTreeMap<Sym, ContentSpec>,
    /// Attribute-list declarations per element.
    pub attlists: BTreeMap<Sym, Vec<AttDef>>,
}

/// Error from DTD text parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DtdParseError {
    /// Description.
    pub message: String,
}

impl fmt::Display for DtdParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DTD parse error: {}", self.message)
    }
}

impl std::error::Error for DtdParseError {}

impl Dtd {
    /// An empty DTD.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares (or replaces) an element.
    pub fn declare(&mut self, name: &str, spec: ContentSpec) -> Sym {
        let sym = self.alphabet.intern(name);
        self.elements.insert(sym, spec);
        sym
    }

    /// Parses the `<!ELEMENT …>` and `<!ATTLIST …>` declarations of an
    /// external-subset DTD text. `<!ENTITY>`, `<!NOTATION>`, comments and
    /// parameter entities are skipped.
    pub fn parse(text: &str) -> Result<Self, DtdParseError> {
        let mut dtd = Dtd::new();
        let mut rest = text;
        while let Some(start) = rest.find("<!") {
            rest = &rest[start..];
            if let Some(comment) = rest.strip_prefix("<!--") {
                match comment.find("-->") {
                    Some(end) => rest = &comment[end + 3..],
                    None => {
                        return Err(DtdParseError {
                            message: "unterminated comment".into(),
                        })
                    }
                }
                continue;
            }
            if let Some(decl) = rest.strip_prefix("<!ELEMENT") {
                let end = decl.find('>').ok_or_else(|| DtdParseError {
                    message: "unterminated <!ELEMENT".into(),
                })?;
                dtd.parse_element_decl(decl[..end].trim())?;
                rest = &decl[end + 1..];
            } else if let Some(decl) = rest.strip_prefix("<!ATTLIST") {
                let end = decl.find('>').ok_or_else(|| DtdParseError {
                    message: "unterminated <!ATTLIST".into(),
                })?;
                dtd.parse_attlist_decl(decl[..end].trim())?;
                rest = &decl[end + 1..];
            } else {
                // Skip any other declaration to its '>'.
                match rest.find('>') {
                    Some(end) => rest = &rest[end + 1..],
                    None => {
                        return Err(DtdParseError {
                            message: "unterminated declaration".into(),
                        })
                    }
                }
            }
        }
        if dtd.root.is_none() {
            dtd.root = dtd.elements.keys().next().copied();
        }
        Ok(dtd)
    }

    fn parse_element_decl(&mut self, body: &str) -> Result<(), DtdParseError> {
        let (name, spec_text) =
            body.split_once(char::is_whitespace)
                .ok_or_else(|| DtdParseError {
                    message: format!("malformed element declaration: {body:?}"),
                })?;
        let spec_text = spec_text.trim();
        let spec = if spec_text == "EMPTY" {
            ContentSpec::Empty
        } else if spec_text == "ANY" {
            ContentSpec::Any
        } else if spec_text.replace(' ', "") == "(#PCDATA)" {
            ContentSpec::PcData
        } else if spec_text.contains("#PCDATA") {
            // (#PCDATA | a | b)*
            let inner = spec_text
                .trim_start_matches('(')
                .trim_end_matches('*')
                .trim_end_matches(')');
            let syms = inner
                .split('|')
                .map(str::trim)
                .filter(|p| *p != "#PCDATA" && !p.is_empty())
                .map(|n| self.alphabet.intern(n))
                .collect();
            ContentSpec::Mixed(syms)
        } else {
            let regex = parse_regex(spec_text, &mut self.alphabet).map_err(|e| DtdParseError {
                message: format!("bad content model for {name}: {e}"),
            })?;
            ContentSpec::Children(regex)
        };
        let sym = self.alphabet.intern(name);
        if self.root.is_none() {
            self.root = Some(sym);
        }
        self.elements.insert(sym, spec);
        Ok(())
    }

    /// Parses the body of one `<!ATTLIST elem (attr type default)*>`.
    fn parse_attlist_decl(&mut self, body: &str) -> Result<(), DtdParseError> {
        let mut tokens = tokenize_attlist(body);
        let element = tokens.next().ok_or_else(|| DtdParseError {
            message: "ATTLIST without element name".into(),
        })?;
        let sym = self.alphabet.intern(&element);
        let defs = self.attlists.entry(sym).or_default();
        while let Some(attr) = tokens.next() {
            let ty_token = tokens.next().ok_or_else(|| DtdParseError {
                message: format!("ATTLIST {element}: missing type for {attr}"),
            })?;
            let ty =
                if let Some(inner) = ty_token.strip_prefix('(').and_then(|t| t.strip_suffix(')')) {
                    AttType::Enumeration(
                        inner
                            .split('|')
                            .map(|v| v.trim().to_owned())
                            .filter(|v| !v.is_empty())
                            .collect(),
                    )
                } else {
                    match ty_token.as_str() {
                        "CDATA" => AttType::CData,
                        "ID" => AttType::Id,
                        // NMTOKENS/IDREF/ENTITY… are treated as their closest
                        // supported category.
                        _ => AttType::NmToken,
                    }
                };
            let default_token = tokens.next().ok_or_else(|| DtdParseError {
                message: format!("ATTLIST {element}: missing default for {attr}"),
            })?;
            let default = match default_token.as_str() {
                "#REQUIRED" => crate::attlist::AttDefault::Required,
                "#FIXED" => {
                    let _value = tokens.next();
                    crate::attlist::AttDefault::Required
                }
                // #IMPLIED or a literal default value.
                _ => crate::attlist::AttDefault::Implied,
            };
            defs.push(AttDef {
                name: attr,
                ty,
                default,
            });
        }
        Ok(())
    }

    /// Serializes as an external-subset DTD document.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        // Root first, then the rest in name order.
        let mut syms: Vec<Sym> = self.elements.keys().copied().collect();
        if let Some(root) = self.root {
            syms.sort_by_key(|&s| (s != root, self.alphabet.name(s).to_owned()));
        }
        for sym in syms {
            let name = self.alphabet.name(sym);
            let spec = match &self.elements[&sym] {
                ContentSpec::Empty => "EMPTY".to_owned(),
                ContentSpec::Any => "ANY".to_owned(),
                ContentSpec::PcData => "(#PCDATA)".to_owned(),
                ContentSpec::Mixed(syms) => {
                    let mut s = String::from("(#PCDATA");
                    for m in syms {
                        s.push_str(" | ");
                        s.push_str(self.alphabet.name(*m));
                    }
                    s.push_str(")*");
                    s
                }
                ContentSpec::Children(r) => render_dtd(r, &self.alphabet),
            };
            out.push_str(&format!("<!ELEMENT {name} {spec}>\n"));
            if let Some(defs) = self.attlists.get(&sym) {
                for def in defs {
                    out.push_str(&format!(
                        "<!ATTLIST {name} {} {} {}>\n",
                        def.name, def.ty, def.default
                    ));
                }
            }
        }
        out
    }

    /// Validates a document against this DTD. Returns the human-readable
    /// violation messages (empty = valid). Elements without a declaration
    /// are violations; so are content-model mismatches. The structured
    /// twin [`Dtd::validate_structured`] carries the same findings with
    /// machine-readable witness fields.
    pub fn validate(&self, doc: &str) -> Result<Vec<String>, XmlError> {
        Ok(self
            .validate_structured(doc)?
            .into_iter()
            .map(|v| v.message)
            .collect())
    }

    /// Validates a document against this DTD, returning structured
    /// [`Violation`]s: the offending element, the 1-based child position
    /// of the counterexample witness, and the expected/got pair — the
    /// payload `dtdinfer validate --format json` and the serve daemon's
    /// validate endpoint share.
    pub fn validate_structured(&self, doc: &str) -> Result<Vec<Violation>, XmlError> {
        let mut parser = XmlPullParser::new(doc);
        let mut violations: Vec<Violation> = Vec::new();
        // (name, children, has_text) — names borrow from the document, so
        // validation streams without per-event allocation.
        let mut stack: Vec<(&str, Vec<&str>, bool)> = Vec::new();
        while let Some(ev) = parser.next()? {
            match ev {
                XmlEvent::StartElement {
                    name, attributes, ..
                } => {
                    self.check_attributes(name, &attributes, &mut violations);
                    if stack.is_empty() {
                        if let Some(root) = self.root {
                            if self.alphabet.name(root) != name {
                                let expected = self.alphabet.name(root);
                                violations.push(Violation {
                                    kind: ViolationKind::Root,
                                    element: name.to_owned(),
                                    position: None,
                                    expected: Some(expected.to_owned()),
                                    got: Some(name.to_owned()),
                                    message: format!(
                                        "root element is <{name}>, expected <{expected}>"
                                    ),
                                });
                            }
                        }
                    }
                    if let Some((_, children, _)) = stack.last_mut() {
                        children.push(name);
                    }
                    stack.push((name, Vec::new(), false));
                }
                XmlEvent::Text(t) => {
                    if let Some((_, _, has_text)) = stack.last_mut() {
                        if !t.trim().is_empty() {
                            *has_text = true;
                        }
                    }
                }
                XmlEvent::EndElement { .. } => {
                    let (name, children, has_text) = stack.pop().expect("balanced");
                    self.check_element(name, &children, has_text, &mut violations);
                }
                _ => {}
            }
        }
        Ok(violations)
    }

    fn check_element(
        &self,
        name: &str,
        children: &[&str],
        has_text: bool,
        violations: &mut Vec<Violation>,
    ) {
        let undeclared = |violations: &mut Vec<Violation>| {
            violations.push(Violation {
                kind: ViolationKind::UndeclaredElement,
                element: name.to_owned(),
                position: None,
                expected: None,
                got: None,
                message: format!("undeclared element <{name}>"),
            });
        };
        let Some(sym) = self.alphabet.get(name) else {
            undeclared(violations);
            return;
        };
        let Some(spec) = self.elements.get(&sym) else {
            undeclared(violations);
            return;
        };
        match spec {
            ContentSpec::Any => {}
            ContentSpec::Empty => {
                if has_text || !children.is_empty() {
                    violations.push(Violation {
                        kind: ViolationKind::Content,
                        element: name.to_owned(),
                        position: None,
                        expected: Some("EMPTY".to_owned()),
                        got: children.first().map(|c| (*c).to_owned()),
                        message: format!("<{name}> declared EMPTY but has content"),
                    });
                }
            }
            ContentSpec::PcData => {
                if !children.is_empty() {
                    violations.push(Violation {
                        kind: ViolationKind::Content,
                        element: name.to_owned(),
                        position: Some(1),
                        expected: Some("(#PCDATA)".to_owned()),
                        got: children.first().map(|c| (*c).to_owned()),
                        message: format!("<{name}> is (#PCDATA) but has element children"),
                    });
                }
            }
            ContentSpec::Mixed(allowed) => {
                for (i, child) in children.iter().enumerate() {
                    match self.alphabet.get(child) {
                        Some(c) if allowed.contains(&c) => {}
                        _ => violations.push(Violation {
                            kind: ViolationKind::ContentModel,
                            element: name.to_owned(),
                            position: Some(i + 1),
                            expected: Some(self.render_spec(spec)),
                            got: Some((*child).to_owned()),
                            message: format!("<{child}> not allowed in mixed content of <{name}>"),
                        }),
                    }
                }
            }
            ContentSpec::Children(regex) => {
                let model = render_dtd(regex, &self.alphabet);
                if has_text {
                    violations.push(Violation {
                        kind: ViolationKind::Content,
                        element: name.to_owned(),
                        position: None,
                        expected: Some(model.clone()),
                        got: Some("#PCDATA".to_owned()),
                        message: format!(
                            "<{name}> has character data but declares element content"
                        ),
                    });
                }
                let word: Option<Word> = children.iter().map(|c| self.alphabet.get(c)).collect();
                match word {
                    None => {
                        // Some child name never occurs anywhere in the DTD;
                        // point at the first such child as the witness.
                        let bad = children
                            .iter()
                            .position(|c| self.alphabet.get(c).is_none())
                            .unwrap_or(0);
                        violations.push(Violation {
                            kind: ViolationKind::ContentModel,
                            element: name.to_owned(),
                            position: Some(bad + 1),
                            expected: Some(model.clone()),
                            got: Some(children[bad].to_owned()),
                            message: format!(
                                "children of <{name}> ({}) do not match {model}: child {} \
                                 (<{}>) is not part of the content model",
                                children.join(" "),
                                bad + 1,
                                children[bad]
                            ),
                        });
                    }
                    Some(w) => {
                        let nfa = Nfa::from_regex(regex);
                        if !nfa.accepts(&w) {
                            let at = failing_position(&nfa, &w);
                            let (position, got, witness) = if at == w.len() {
                                if w.is_empty() {
                                    (
                                        Some(1),
                                        None,
                                        ": content is empty, more children expected".to_owned(),
                                    )
                                } else {
                                    (
                                        Some(w.len() + 1),
                                        None,
                                        format!(
                                            ": content ends after child {} (<{}>), more \
                                             children expected",
                                            w.len(),
                                            children[w.len() - 1]
                                        ),
                                    )
                                }
                            } else {
                                (
                                    Some(at + 1),
                                    Some(children[at].to_owned()),
                                    format!(": mismatch at child {} (<{}>)", at + 1, children[at]),
                                )
                            };
                            violations.push(Violation {
                                kind: ViolationKind::ContentModel,
                                element: name.to_owned(),
                                position,
                                expected: Some(model.clone()),
                                got,
                                message: format!(
                                    "children of <{name}> ({}) do not match {model}{witness}",
                                    children.join(" ")
                                ),
                            });
                        }
                    }
                }
            }
        }
    }

    /// Renders one content spec the way [`Dtd::serialize`] would.
    fn render_spec(&self, spec: &ContentSpec) -> String {
        match spec {
            ContentSpec::Empty => "EMPTY".to_owned(),
            ContentSpec::Any => "ANY".to_owned(),
            ContentSpec::PcData => "(#PCDATA)".to_owned(),
            ContentSpec::Mixed(syms) => {
                let mut s = String::from("(#PCDATA");
                for m in syms {
                    s.push_str(" | ");
                    s.push_str(self.alphabet.name(*m));
                }
                s.push_str(")*");
                s
            }
            ContentSpec::Children(r) => render_dtd(r, &self.alphabet),
        }
    }
}

/// What a [`Violation`] is about, for machine consumers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// The document's root differs from the DTD's.
    Root,
    /// An element with no declaration in the DTD.
    UndeclaredElement,
    /// Content present where the declaration forbids it (EMPTY with
    /// content, element content with character data, #PCDATA with
    /// element children).
    Content,
    /// A child word rejected by the declared content model, with the
    /// witness position.
    ContentModel,
    /// An attribute violation (missing required, bad type, undeclared).
    Attribute,
}

impl ViolationKind {
    /// The stable kebab-case identifier used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            ViolationKind::Root => "root",
            ViolationKind::UndeclaredElement => "undeclared-element",
            ViolationKind::Content => "content",
            ViolationKind::ContentModel => "content-model",
            ViolationKind::Attribute => "attribute",
        }
    }
}

/// One structured validation violation: the machine-readable form of the
/// positioned counterexample witnesses `validate` prints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// What went wrong.
    pub kind: ViolationKind,
    /// The element the violation is about.
    pub element: String,
    /// 1-based child position of the witness, when the violation points
    /// at a specific place in a child word. For a premature end this is
    /// one past the last child (where the missing child should go).
    pub position: Option<usize>,
    /// What the DTD expected there (a rendered content model, the
    /// declared root, an attribute type).
    pub expected: Option<String>,
    /// What the document actually had (the offending child or root
    /// element name, the offending attribute value); `None` when content
    /// ended early.
    pub got: Option<String>,
    /// The human-readable rendering (exactly what `validate` returns).
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Violation {
    /// Stable one-line JSON object: `kind`, `element`, then `position` /
    /// `expected` / `got` when present, then `message`. The CLI's
    /// `validate --format json` and the serve daemon's validate endpoint
    /// both emit exactly this.
    pub fn json(&self) -> String {
        use dtdinfer_obs::json::{write_key, write_string};
        let mut out = String::from("{");
        write_key(&mut out, "kind");
        write_string(&mut out, self.kind.as_str());
        out.push(',');
        write_key(&mut out, "element");
        write_string(&mut out, &self.element);
        if let Some(position) = self.position {
            out.push(',');
            write_key(&mut out, "position");
            out.push_str(&position.to_string());
        }
        if let Some(expected) = &self.expected {
            out.push(',');
            write_key(&mut out, "expected");
            write_string(&mut out, expected);
        }
        if let Some(got) = &self.got {
            out.push(',');
            write_key(&mut out, "got");
            write_string(&mut out, got);
        }
        out.push(',');
        write_key(&mut out, "message");
        write_string(&mut out, &self.message);
        out.push('}');
        out
    }
}

/// Renders a violation list as a JSON array (one violation per line for
/// easy grepping, still a single valid JSON document).
pub fn violations_json(violations: &[Violation]) -> String {
    let mut out = String::from("[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&v.json());
    }
    out.push_str("\n]");
    out
}

/// The counterexample witness position for a rejected child word: the
/// index of the first child at which the Glushkov simulation dies (no NFA
/// state survives), or `word.len()` when every child matches a prefix of
/// the model but the content ends before an accepting state.
fn failing_position(nfa: &Nfa, word: &Word) -> usize {
    let mut current: Vec<usize> = Vec::new();
    for (i, &sym) in word.iter().enumerate() {
        let next: Vec<usize> = if i == 0 {
            nfa.first
                .iter()
                .copied()
                .filter(|&p| nfa.sym_at[p] == sym)
                .collect()
        } else {
            let mut seen = vec![false; nfa.sym_at.len()];
            let mut out = Vec::new();
            for &p in &current {
                for &q in &nfa.follow[p] {
                    if nfa.sym_at[q] == sym && !seen[q] {
                        seen[q] = true;
                        out.push(q);
                    }
                }
            }
            out
        };
        if next.is_empty() {
            return i;
        }
        current = next;
    }
    word.len()
}

impl Dtd {
    /// Lints the DTD itself: the XML specification requires content models
    /// to be *deterministic* (one-unambiguous, §3 of the paper); every
    /// inferred SORE/CHARE satisfies this by construction, but hand-written
    /// or parsed DTDs may not. Returns one message per offending element.
    pub fn lint(&self) -> Vec<String> {
        let mut issues = Vec::new();
        for (&sym, spec) in &self.elements {
            if let ContentSpec::Children(r) = spec {
                if let Err(amb) = dtdinfer_regex::determinism::check_deterministic(r) {
                    issues.push(format!(
                        "content model of <{}> is not deterministic: competing \
                         occurrences of {:?} (XML spec appendix E)",
                        self.alphabet.name(sym),
                        self.alphabet.name(amb.symbol)
                    ));
                }
            }
        }
        issues
    }

    /// Validates one element's attributes against its `<!ATTLIST>`
    /// declarations (if any): required attributes present, values within
    /// the declared type, no undeclared attributes when a declaration
    /// exists for the element.
    fn check_attributes(
        &self,
        name: &str,
        attributes: &[(&str, std::borrow::Cow<'_, str>)],
        violations: &mut Vec<Violation>,
    ) {
        let undeclared = |violations: &mut Vec<Violation>, attr: &str| {
            violations.push(Violation {
                kind: ViolationKind::Attribute,
                element: name.to_owned(),
                position: None,
                expected: None,
                got: Some(attr.to_owned()),
                message: format!("attribute {attr:?} on <{name}> is not declared"),
            });
        };
        let Some(sym) = self.alphabet.get(name) else {
            return; // undeclared element is reported by check_element
        };
        let Some(defs) = self.attlists.get(&sym) else {
            if !attributes.is_empty() && self.elements.contains_key(&sym) {
                for (attr, _) in attributes {
                    undeclared(violations, attr);
                }
            }
            return;
        };
        for def in defs {
            let observed = attributes.iter().find(|(a, _)| a == &def.name);
            match observed {
                Some((_, value)) => {
                    if !def.accepts(value) {
                        violations.push(Violation {
                            kind: ViolationKind::Attribute,
                            element: name.to_owned(),
                            position: None,
                            expected: Some(def.ty.to_string()),
                            got: Some(format!("{}=\"{value}\"", def.name)),
                            message: format!(
                                "attribute {}=\"{}\" on <{name}> violates type {}",
                                def.name, value, def.ty
                            ),
                        });
                    }
                }
                None => {
                    if def.default == crate::attlist::AttDefault::Required {
                        violations.push(Violation {
                            kind: ViolationKind::Attribute,
                            element: name.to_owned(),
                            position: None,
                            expected: Some(def.name.clone()),
                            got: None,
                            message: format!(
                                "required attribute {:?} missing on <{name}>",
                                def.name
                            ),
                        });
                    }
                }
            }
        }
        for (attr, _) in attributes {
            if !defs.iter().any(|d| &d.name == attr) {
                undeclared(violations, attr);
            }
        }
    }
}

/// Splits an ATTLIST body into tokens, keeping parenthesized enumerations
/// and quoted default values as single tokens.
fn tokenize_attlist(body: &str) -> impl Iterator<Item = String> + '_ {
    let mut tokens: Vec<String> = Vec::new();
    let mut rest = body.trim_start();
    while !rest.is_empty() {
        let token_end = if rest.starts_with('(') {
            rest.find(')').map(|i| i + 1).unwrap_or(rest.len())
        } else if let Some(stripped) = rest.strip_prefix('"') {
            stripped.find('"').map(|i| i + 2).unwrap_or(rest.len())
        } else if let Some(stripped) = rest.strip_prefix('\'') {
            stripped.find('\'').map(|i| i + 2).unwrap_or(rest.len())
        } else {
            rest.find(char::is_whitespace).unwrap_or(rest.len())
        };
        // Enumerations may contain internal whitespace; normalize it away.
        tokens.push(
            rest[..token_end]
                .split_whitespace()
                .collect::<Vec<_>>()
                .join(" "),
        );
        rest = rest[token_end..].trim_start();
    }
    tokens.into_iter()
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_DTD: &str = r#"
<!-- refinfo from the Protein Sequence Database -->
<!ELEMENT refinfo (authors, citation, (volume | month), year, pages?,
                   (title | description)?, xrefs?)>
<!ELEMENT authors (author+)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT citation (#PCDATA)>
<!ELEMENT volume (#PCDATA)>
<!ELEMENT month (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT pages (#PCDATA)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT xrefs EMPTY>
"#;

    #[test]
    fn parse_paper_dtd() {
        let dtd = Dtd::parse(PAPER_DTD).unwrap();
        assert_eq!(dtd.elements.len(), 11);
        let refinfo = dtd.alphabet.get("refinfo").unwrap();
        assert_eq!(dtd.root, Some(refinfo));
        match &dtd.elements[&refinfo] {
            ContentSpec::Children(r) => assert_eq!(r.symbols().len(), 9),
            other => panic!("{other:?}"),
        }
        let xrefs = dtd.alphabet.get("xrefs").unwrap();
        assert_eq!(dtd.elements[&xrefs], ContentSpec::Empty);
    }

    #[test]
    fn serialize_round_trips() {
        let dtd = Dtd::parse(PAPER_DTD).unwrap();
        let text = dtd.serialize();
        let dtd2 = Dtd::parse(&text).unwrap();
        assert_eq!(dtd2.elements.len(), dtd.elements.len());
        let text2 = dtd2.serialize();
        assert_eq!(text, text2, "serialize is a fixpoint");
    }

    #[test]
    fn validate_accepts_conforming_document() {
        let dtd = Dtd::parse(PAPER_DTD).unwrap();
        let doc = "<refinfo><authors><author>A</author></authors>\
                   <citation>c</citation><volume>1</volume><year>2006</year></refinfo>";
        assert_eq!(dtd.validate(doc).unwrap(), Vec::<String>::new());
    }

    #[test]
    fn validate_rejects_volume_and_month_together() {
        // The §1.1 motivating example: the tightened content model forbids
        // volume and month from occurring together.
        let dtd = Dtd::parse(PAPER_DTD).unwrap();
        let doc = "<refinfo><authors><author>A</author></authors>\
                   <citation>c</citation><volume>1</volume><month>5</month>\
                   <year>2006</year></refinfo>";
        let violations = dtd.validate(doc).unwrap();
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("refinfo"));
    }

    #[test]
    fn validate_reports_witness_position() {
        // The violation message must name the failing child and its
        // position, not just that the word was rejected.
        let dtd = Dtd::parse(PAPER_DTD).unwrap();
        let doc = "<refinfo><authors><author>A</author></authors>\
                   <citation>c</citation><volume>1</volume><month>5</month>\
                   <year>2006</year></refinfo>";
        let violations = dtd.validate(doc).unwrap();
        assert_eq!(violations.len(), 1);
        // (volume | month) allows exactly one of the two: the simulation
        // dies at the fourth child, <month>.
        assert!(
            violations[0].contains("mismatch at child 4 (<month>)"),
            "{}",
            violations[0]
        );
    }

    #[test]
    fn validate_reports_premature_end_witness() {
        let dtd = Dtd::parse("<!ELEMENT a (b, c)><!ELEMENT b EMPTY><!ELEMENT c EMPTY>").unwrap();
        let violations = dtd.validate("<a><b/></a>").unwrap();
        assert_eq!(violations.len(), 1);
        assert!(
            violations[0].contains("content ends after child 1 (<b>), more children expected"),
            "{}",
            violations[0]
        );
        let empty = dtd.validate("<a></a>").unwrap();
        assert!(
            empty[0].contains("content is empty, more children expected"),
            "{}",
            empty[0]
        );
    }

    #[test]
    fn validate_rejects_wrong_root_and_undeclared() {
        let dtd = Dtd::parse("<!ELEMENT a (b)><!ELEMENT b EMPTY>").unwrap();
        let violations = dtd.validate("<c><b/></c>").unwrap();
        assert!(violations.iter().any(|v| v.contains("root")));
        assert!(violations.iter().any(|v| v.contains("undeclared")));
    }

    #[test]
    fn structured_violations_carry_witness_fields() {
        let dtd = Dtd::parse("<!ELEMENT a (b, c)><!ELEMENT b EMPTY><!ELEMENT c EMPTY>").unwrap();
        let vs = dtd.validate_structured("<a><b/><b/></a>").unwrap();
        assert_eq!(vs.len(), 1);
        let v = &vs[0];
        assert_eq!(v.kind, ViolationKind::ContentModel);
        assert_eq!(v.element, "a");
        assert_eq!(v.position, Some(2));
        assert_eq!(v.got.as_deref(), Some("b"));
        assert_eq!(v.expected.as_deref(), Some("(b, c)"));
        assert!(
            v.message.contains("mismatch at child 2 (<b>)"),
            "{}",
            v.message
        );

        // Premature end: position points one past the last child, no `got`.
        let vs = dtd.validate_structured("<a><b/></a>").unwrap();
        assert_eq!(vs[0].position, Some(2));
        assert_eq!(vs[0].got, None);

        // Wrong root carries expected/got.
        let vs = dtd.validate_structured("<b></b>").unwrap();
        assert_eq!(vs[0].kind, ViolationKind::Root);
        assert_eq!(vs[0].expected.as_deref(), Some("a"));
        assert_eq!(vs[0].got.as_deref(), Some("b"));
    }

    #[test]
    fn violations_json_is_stable() {
        let dtd = Dtd::parse("<!ELEMENT a (b, c)><!ELEMENT b EMPTY><!ELEMENT c EMPTY>").unwrap();
        let vs = dtd.validate_structured("<a><b/><b/></a>").unwrap();
        let json = violations_json(&vs);
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
        assert!(
            json.contains(r#""kind":"content-model""#)
                && json.contains(r#""element":"a""#)
                && json.contains(r#""position":2"#)
                && json.contains(r#""expected":"(b, c)""#)
                && json.contains(r#""got":"b""#)
                && json.contains(r#""message":"#),
            "{json}"
        );
        assert_eq!(violations_json(&[]), "[\n]");
    }

    #[test]
    fn validate_empty_and_pcdata() {
        let dtd =
            Dtd::parse("<!ELEMENT a (b, c)><!ELEMENT b EMPTY><!ELEMENT c (#PCDATA)>").unwrap();
        assert_eq!(
            dtd.validate("<a><b/><c>text</c></a>").unwrap(),
            Vec::<String>::new()
        );
        let violations = dtd.validate("<a><b>oops</b><c><b/></c></a>").unwrap();
        assert_eq!(violations.len(), 2);
    }

    #[test]
    fn mixed_content() {
        let dtd = Dtd::parse("<!ELEMENT p (#PCDATA | em | strong)*><!ELEMENT em (#PCDATA)><!ELEMENT strong (#PCDATA)>").unwrap();
        assert_eq!(
            dtd.validate("<p>a<em>b</em>c<strong>d</strong></p>")
                .unwrap(),
            Vec::<String>::new()
        );
        let violations = dtd.validate("<p><em>x</em></p>").unwrap();
        assert!(violations.is_empty());
    }

    #[test]
    fn mixed_content_rejects_intruder() {
        let dtd = Dtd::parse(
            "<!ELEMENT p (#PCDATA | em)*><!ELEMENT em (#PCDATA)><!ELEMENT h1 (#PCDATA)>",
        )
        .unwrap();
        let violations = dtd.validate("<p><h1>big</h1></p>").unwrap();
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("h1"));
    }

    #[test]
    fn attlist_parsed_and_entities_skipped() {
        let text = r#"
<!ELEMENT a (b*)>
<!ATTLIST a id ID #REQUIRED
            color (red | blue) #IMPLIED
            note CDATA #IMPLIED>
<!ENTITY  x "y">
<!ELEMENT b EMPTY>
"#;
        let dtd = Dtd::parse(text).unwrap();
        assert_eq!(dtd.elements.len(), 2);
        let a = dtd.alphabet.get("a").unwrap();
        let defs = &dtd.attlists[&a];
        assert_eq!(defs.len(), 3);
        assert_eq!(defs[0].ty, AttType::Id);
        assert_eq!(
            defs[1].ty,
            AttType::Enumeration(vec!["red".into(), "blue".into()])
        );
        assert_eq!(defs[2].ty, AttType::CData);
    }

    #[test]
    fn attlist_serialization_round_trips() {
        let text = "<!ELEMENT a EMPTY>\n<!ATTLIST a id ID #REQUIRED>\n<!ATTLIST a kind (x | y) #IMPLIED>\n";
        let dtd = Dtd::parse(text).unwrap();
        let out = dtd.serialize();
        let dtd2 = Dtd::parse(&out).unwrap();
        assert_eq!(dtd2.serialize(), out);
        assert!(out.contains("<!ATTLIST a id ID #REQUIRED>"));
        assert!(out.contains("<!ATTLIST a kind (x | y) #IMPLIED>"));
    }

    #[test]
    fn attribute_validation() {
        let text = r#"
<!ELEMENT a EMPTY>
<!ATTLIST a id ID #REQUIRED kind (x | y) #IMPLIED>
"#;
        let dtd = Dtd::parse(text).unwrap();
        assert_eq!(
            dtd.validate(r#"<a id="n1" kind="x"/>"#).unwrap(),
            Vec::<String>::new()
        );
        // Missing required attribute.
        let v = dtd.validate(r#"<a kind="y"/>"#).unwrap();
        assert!(v.iter().any(|m| m.contains("required attribute")), "{v:?}");
        // Enumeration violation.
        let v = dtd.validate(r#"<a id="n1" kind="z"/>"#).unwrap();
        assert!(v.iter().any(|m| m.contains("violates type")), "{v:?}");
        // Undeclared attribute.
        let v = dtd.validate(r#"<a id="n1" extra="1"/>"#).unwrap();
        assert!(v.iter().any(|m| m.contains("not declared")), "{v:?}");
    }

    #[test]
    fn lint_flags_nondeterministic_models() {
        let dtd = Dtd::parse(
            "<!ELEMENT a ((b, c) | (b, d))><!ELEMENT b EMPTY><!ELEMENT c EMPTY><!ELEMENT d EMPTY>",
        )
        .unwrap();
        let issues = dtd.lint();
        assert_eq!(issues.len(), 1);
        assert!(issues[0].contains("not deterministic"), "{issues:?}");
        assert!(issues[0].contains('b'));
        // Inferred (SORE) models always pass.
        let clean = Dtd::parse(
            "<!ELEMENT a (b?, (c | d)+)><!ELEMENT b EMPTY><!ELEMENT c EMPTY><!ELEMENT d EMPTY>",
        )
        .unwrap();
        assert!(clean.lint().is_empty());
    }

    #[test]
    fn declare_api() {
        let mut dtd = Dtd::new();
        let r = parse_regex("b*", &mut dtd.alphabet).unwrap();
        dtd.declare("a", ContentSpec::Children(r));
        dtd.root = dtd.alphabet.get("a");
        assert!(dtd.serialize().contains("<!ELEMENT a (b*)>"));
    }
}
