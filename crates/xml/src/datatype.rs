//! Built-in datatype heuristics (§9).
//!
//! "Improvements to the derivation of built-in data types can be made by
//! introducing heuristics to recognize times or dates, integers, doubles,
//! nmtokens and strings." Given the text samples of an element or
//! attribute, [`infer_datatype`] returns the most specific XSD built-in
//! that covers all of them.

/// The recognized XML Schema built-in datatypes, most-specific first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum XsdType {
    /// `xs:boolean` — true/false/0/1.
    Boolean,
    /// `xs:integer`.
    Integer,
    /// `xs:decimal` / `xs:double` lexical space.
    Double,
    /// `xs:date` — YYYY-MM-DD.
    Date,
    /// `xs:time` — HH:MM:SS(.fff)?.
    Time,
    /// `xs:dateTime` — date`T`time.
    DateTime,
    /// `xs:NMTOKEN` — name characters only, no spaces.
    NmToken,
    /// `xs:string` — anything.
    String,
}

impl XsdType {
    /// The `xs:…` name.
    pub fn xsd_name(self) -> &'static str {
        match self {
            XsdType::Boolean => "xs:boolean",
            XsdType::Integer => "xs:integer",
            XsdType::Double => "xs:double",
            XsdType::Date => "xs:date",
            XsdType::Time => "xs:time",
            XsdType::DateTime => "xs:dateTime",
            XsdType::NmToken => "xs:NMTOKEN",
            XsdType::String => "xs:string",
        }
    }
}

/// Whether `s` lexically belongs to `t`.
pub fn matches_type(s: &str, t: XsdType) -> bool {
    let s = s.trim();
    match t {
        XsdType::Boolean => matches!(s, "true" | "false" | "0" | "1"),
        XsdType::Integer => {
            let body = s.strip_prefix(['+', '-']).unwrap_or(s);
            !body.is_empty() && body.bytes().all(|b| b.is_ascii_digit())
        }
        XsdType::Double => is_double(s),
        XsdType::Date => is_date(s),
        XsdType::Time => is_time(s),
        XsdType::DateTime => s
            .split_once('T')
            .is_some_and(|(d, t)| is_date(d) && is_time(t)),
        XsdType::NmToken => {
            !s.is_empty()
                && s.bytes()
                    .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b':' | b'-'))
        }
        XsdType::String => true,
    }
}

fn is_double(s: &str) -> bool {
    if s.is_empty() {
        return false;
    }
    // Accept the xs:double lexical space: optional sign, digits with
    // optional fraction, optional exponent; also INF/NaN.
    if matches!(s, "INF" | "-INF" | "NaN") {
        return true;
    }
    let body = s.strip_prefix(['+', '-']).unwrap_or(s);
    let (mantissa, exponent) = match body.split_once(['e', 'E']) {
        Some((m, e)) => (m, Some(e)),
        None => (body, None),
    };
    let mantissa_ok = match mantissa.split_once('.') {
        Some((int, frac)) => {
            (!int.is_empty() || !frac.is_empty())
                && int.bytes().all(|b| b.is_ascii_digit())
                && frac.bytes().all(|b| b.is_ascii_digit())
                && !(int.is_empty() && frac.is_empty())
        }
        None => !mantissa.is_empty() && mantissa.bytes().all(|b| b.is_ascii_digit()),
    };
    let exponent_ok = exponent.is_none_or(|e| {
        let e = e.strip_prefix(['+', '-']).unwrap_or(e);
        !e.is_empty() && e.bytes().all(|b| b.is_ascii_digit())
    });
    mantissa_ok && exponent_ok
}

fn is_date(s: &str) -> bool {
    let parts: Vec<&str> = s.split('-').collect();
    parts.len() == 3
        && parts[0].len() == 4
        && parts[1].len() == 2
        && parts[2].len() == 2
        && parts.iter().all(|p| p.bytes().all(|b| b.is_ascii_digit()))
        && (1..=12).contains(&parts[1].parse::<u32>().unwrap_or(0))
        && (1..=31).contains(&parts[2].parse::<u32>().unwrap_or(0))
}

fn is_time(s: &str) -> bool {
    let (hms, frac) = match s.split_once('.') {
        Some((h, f)) => (h, Some(f)),
        None => (s, None),
    };
    let parts: Vec<&str> = hms.split(':').collect();
    parts.len() == 3
        && parts
            .iter()
            .all(|p| p.len() == 2 && p.bytes().all(|b| b.is_ascii_digit()))
        && parts[0].parse::<u32>().unwrap_or(99) < 24
        && parts[1].parse::<u32>().unwrap_or(99) < 60
        && parts[2].parse::<u32>().unwrap_or(99) < 60
        && frac.is_none_or(|f| !f.is_empty() && f.bytes().all(|b| b.is_ascii_digit()))
}

/// The most specific type covering every sample (preference order:
/// boolean, integer, double, date, time, dateTime, NMTOKEN, string).
/// Empty sample sets default to `xs:string`.
pub fn infer_datatype<'a, I>(samples: I) -> XsdType
where
    I: IntoIterator<Item = &'a str>,
{
    const ORDER: [XsdType; 7] = [
        XsdType::Boolean,
        XsdType::Integer,
        XsdType::Double,
        XsdType::Date,
        XsdType::Time,
        XsdType::DateTime,
        XsdType::NmToken,
    ];
    let mut viable = [true; 7];
    let mut any = false;
    for s in samples {
        any = true;
        for (i, t) in ORDER.iter().enumerate() {
            if viable[i] && !matches_type(s, *t) {
                viable[i] = false;
            }
        }
    }
    if !any {
        return XsdType::String;
    }
    ORDER
        .iter()
        .zip(viable)
        .find(|&(_, v)| v)
        .map(|(&t, _)| t)
        .unwrap_or(XsdType::String)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers() {
        assert_eq!(infer_datatype(["1", "-42", "+7"]), XsdType::Integer);
        assert_eq!(infer_datatype(["1", "2.5"]), XsdType::Double);
    }

    #[test]
    fn booleans() {
        assert_eq!(infer_datatype(["true", "false"]), XsdType::Boolean);
        // 0/1 alone are boolean-viable (most specific wins).
        assert_eq!(infer_datatype(["0", "1"]), XsdType::Boolean);
        assert_eq!(infer_datatype(["0", "2"]), XsdType::Integer);
    }

    #[test]
    fn doubles() {
        assert_eq!(
            infer_datatype(["1.5", "-0.25", "3e8", "NaN"]),
            XsdType::Double
        );
        assert!(!matches_type("1.2.3", XsdType::Double));
        assert!(!matches_type("e8", XsdType::Double));
        assert!(matches_type(".5", XsdType::Double));
    }

    #[test]
    fn dates_times() {
        assert_eq!(infer_datatype(["2006-09-12", "2006-09-15"]), XsdType::Date);
        assert_eq!(infer_datatype(["23:59:59", "00:00:00.5"]), XsdType::Time);
        assert_eq!(infer_datatype(["2006-09-12T10:30:00"]), XsdType::DateTime);
        assert!(!matches_type("2006-13-01", XsdType::Date));
        assert!(!matches_type("24:00:00", XsdType::Time));
    }

    #[test]
    fn nmtoken_and_string() {
        assert_eq!(infer_datatype(["abc", "a-b_c.1"]), XsdType::NmToken);
        assert_eq!(infer_datatype(["two words"]), XsdType::String);
        assert_eq!(infer_datatype(["abc", "two words"]), XsdType::String);
    }

    #[test]
    fn empty_is_string() {
        assert_eq!(infer_datatype(std::iter::empty::<&str>()), XsdType::String);
    }

    #[test]
    fn mixed_specificity() {
        // dates are NMTOKEN-shaped too; Date is preferred because it is
        // checked first among the viable ones... but both stay viable, and
        // Integer/Boolean/Double drop out.
        assert_eq!(infer_datatype(["2006-09-12"]), XsdType::Date);
    }
}
