//! Bounded, deterministic sample reservoirs for text and attribute values.
//!
//! The paper's premise (§9) is that inference state stays compact while
//! "the generating XML can be discarded as data trickles in" — yet naively
//! collecting every text chunk and attribute value makes memory scale with
//! the corpus, not the schema. A [`SampleBag`] caps that: it keeps value →
//! count statistics for at most `cap` *distinct* values, chosen by a
//! content hash so the retained set is a pure function of the set of
//! values seen — independent of arrival order and of how a corpus was
//! split across shards.
//!
//! # Determinism under sharding
//!
//! Each distinct value gets a fixed priority `(hash(value), value)`; the
//! bag keeps the `cap` smallest priorities (a K-minimum-values sketch).
//! Two invariants make `--jobs N` byte-identical to sequential ingestion:
//!
//! 1. **Never-evicted counts are exact.** The eviction threshold (the
//!    cap-th smallest priority) only ever decreases, so a value that is in
//!    the final kept set can never have been rejected or evicted earlier —
//!    its count has been incremented since its first arrival.
//! 2. **Merge = union, re-trim.** A value in the merged kept set has one
//!    of the `cap` smallest global priorities, hence one of the `cap`
//!    smallest in every shard where it appeared (a shard sees a subset of
//!    the distinct values), hence was kept with an exact count in each —
//!    so summed shard counts equal the sequential count.
//!
//! Alongside the capped counts the bag folds every observation into an
//! exact datatype-viability bitmask, so [`SampleBag::datatype`] and
//! [`SampleBag::all_nmtoken`] are computed over *all* values ever seen,
//! not just the retained sample.

use crate::datatype::{matches_type, XsdType};
use std::collections::BTreeMap;

/// Default cap on distinct retained values. Must stay ≥ the attribute
/// inference `max_enumeration` so that an overflowed bag can never have
/// been enumeration-eligible (see [`crate::attlist`]).
pub const DEFAULT_SAMPLE_CAP: usize = 64;

/// Datatype preference order mirrored by the viability bitmask (most
/// specific first; `xs:string` is the implicit fallback).
const ORDER: [XsdType; 7] = [
    XsdType::Boolean,
    XsdType::Integer,
    XsdType::Double,
    XsdType::Date,
    XsdType::Time,
    XsdType::DateTime,
    XsdType::NmToken,
];

/// All seven viability bits set (the empty-bag state).
const ALL_VIABLE: u8 = 0x7f;

/// A retained value's bookkeeping: its exact occurrence count and its
/// fixed priority (cached so eviction scans never re-hash).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Kept {
    count: u64,
    prio: u64,
}

/// A bounded multiset sketch over observed string values.
#[derive(Debug, Clone)]
pub struct SampleBag {
    /// Retained distinct values with exact occurrence counts.
    kept: BTreeMap<String, Kept>,
    /// Total observations, including values not retained.
    total: u64,
    /// Datatype-viability bitmask over *all* observations (bit i ↔
    /// `ORDER[i]` still matches every value seen).
    viable: u8,
    /// Whether more than `cap` distinct values were observed.
    overflowed: bool,
    /// Maximum number of distinct values to retain.
    cap: usize,
    /// Cached eviction threshold: the largest `(priority, value)` among
    /// `kept`, valid only while the kept set is unchanged. Pure cache —
    /// excluded from equality — that makes the common overflow case
    /// (arriving value rejected) O(1) instead of an O(cap) rescan.
    threshold: Option<(u64, String)>,
}

impl PartialEq for SampleBag {
    fn eq(&self, other: &Self) -> bool {
        self.kept == other.kept
            && self.total == other.total
            && self.viable == other.viable
            && self.overflowed == other.overflowed
            && self.cap == other.cap
    }
}

impl Eq for SampleBag {}

impl Default for SampleBag {
    fn default() -> Self {
        Self::with_cap(DEFAULT_SAMPLE_CAP)
    }
}

impl SampleBag {
    /// An empty bag retaining at most `cap` distinct values (`cap` ≥ 1).
    pub fn with_cap(cap: usize) -> Self {
        Self {
            kept: BTreeMap::new(),
            total: 0,
            viable: ALL_VIABLE,
            overflowed: false,
            cap: cap.max(1),
            threshold: None,
        }
    }

    /// The largest `(priority, value)` among the kept values, computing
    /// and caching it on demand (from stored priorities — no hashing).
    fn threshold(&mut self) -> &(u64, String) {
        if self.threshold.is_none() {
            self.threshold = self
                .kept
                .iter()
                .map(|(v, k)| (k.prio, v.clone()))
                .max()
                .or_else(|| Some((u64::MAX, String::new())));
        }
        self.threshold.as_ref().expect("just computed")
    }

    /// Records one observation of `value`.
    pub fn insert(&mut self, value: &str) {
        self.total += 1;
        if self.viable != 0 {
            for (i, t) in ORDER.iter().enumerate() {
                if self.viable & (1 << i) != 0 && !matches_type(value, *t) {
                    self.viable &= !(1 << i);
                }
            }
        }
        if let Some(kept) = self.kept.get_mut(value) {
            kept.count += 1;
            return;
        }
        if self.kept.len() < self.cap {
            let prio = priority(value);
            self.kept.insert(value.to_owned(), Kept { count: 1, prio });
            self.threshold = None;
            return;
        }
        // Full: keep the cap smallest (hash, value) priorities. The
        // arriving value enters only by beating the current maximum; a
        // value already evicted or rejected can never return, because the
        // threshold only decreases.
        self.overflowed = true;
        dtdinfer_obs::count("xml.samples.overflow", 1);
        let p = priority(value);
        let (evict_p, evict) = self.threshold();
        if (p, value) < (*evict_p, evict.as_str()) {
            let evict = evict.clone();
            self.kept.remove(&evict);
            self.kept
                .insert(value.to_owned(), Kept { count: 1, prio: p });
            self.threshold = None;
            dtdinfer_obs::count("xml.samples.evictions", 1);
        }
    }

    /// Folds another bag in: totals add, viability masks intersect,
    /// retained counts union-sum, then the union is re-trimmed to the cap
    /// smallest priorities. Commutative and associative up to the shared
    /// cap, so shard merges reproduce sequential ingestion exactly.
    ///
    /// Bags built with different caps normalize to the *smaller* of the
    /// two: merging must never claim more reservoir capacity than every
    /// contributor actually had, or the merged sketch would report values
    /// a same-cap sequential run would have evicted. Normalizing (instead
    /// of adopting the left cap silently) keeps the operation commutative
    /// even across mismatched configurations.
    pub fn merge(&mut self, other: &SampleBag) {
        self.cap = self.cap.min(other.cap);
        self.threshold = None;
        self.total += other.total;
        self.viable &= other.viable;
        self.overflowed |= other.overflowed;
        for (value, kept) in &other.kept {
            self.kept
                .entry(value.clone())
                .and_modify(|k| k.count += kept.count)
                .or_insert_with(|| Kept {
                    count: kept.count,
                    prio: kept.prio,
                });
        }
        if self.kept.len() > self.cap {
            self.overflowed = true;
            let mut ranked: Vec<(u64, &str)> = self
                .kept
                .iter()
                .map(|(v, k)| (k.prio, v.as_str()))
                .collect();
            ranked.sort_unstable();
            let doomed: Vec<String> = ranked[self.cap..]
                .iter()
                .map(|(_, v)| (*v).to_owned())
                .collect();
            dtdinfer_obs::count("xml.samples.evictions", doomed.len() as u64);
            for v in doomed {
                self.kept.remove(&v);
            }
        }
    }

    /// Total observations (including values not retained).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of retained distinct values. Equal to the true distinct
    /// count unless [`SampleBag::overflowed`].
    pub fn distinct_retained(&self) -> usize {
        self.kept.len()
    }

    /// Whether more than `cap` distinct values were observed (so the
    /// retained set is a sample of the distinct values, not all of them).
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// The retention cap.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Retained `(value, count)` pairs in lexicographic value order.
    /// Counts are exact (see the module docs).
    pub fn entries(&self) -> impl Iterator<Item = (&str, u64)> {
        self.kept.iter().map(|(v, k)| (v.as_str(), k.count))
    }

    /// Whether every observed value appeared exactly once, as far as the
    /// retained sample can tell. Exact when not overflowed; under overflow
    /// it is evidence from a uniform sample of the distinct values.
    pub fn looks_all_distinct(&self) -> bool {
        self.kept.values().all(|k| k.count == 1)
    }

    /// Whether every observed value (retained or not) is a NMTOKEN.
    /// Vacuously true for an empty bag, matching slice-based `all()`.
    pub fn all_nmtoken(&self) -> bool {
        self.viable & (1 << 6) != 0
    }

    /// The most specific datatype covering every observed value — exact
    /// even under overflow, because the viability mask is updated on every
    /// observation. Empty bags default to `xs:string`.
    pub fn datatype(&self) -> XsdType {
        if self.total == 0 {
            return XsdType::String;
        }
        ORDER
            .iter()
            .enumerate()
            .find(|(i, _)| self.viable & (1 << i) != 0)
            .map(|(_, &t)| t)
            .unwrap_or(XsdType::String)
    }

    /// Serializable parts: `(total, viable mask, overflowed)`; the counts
    /// come from [`SampleBag::entries`].
    pub fn export_header(&self) -> (u64, u8, bool) {
        (self.total, self.viable, self.overflowed)
    }

    /// Rebuilds a bag from snapshot parts. `entries` must hold at most
    /// `cap` pairs of distinct values; the retained-count sum must not
    /// exceed `total`.
    pub fn from_parts(
        cap: usize,
        total: u64,
        viable: u8,
        overflowed: bool,
        entries: impl IntoIterator<Item = (String, u64)>,
    ) -> Result<SampleBag, String> {
        let mut kept = BTreeMap::new();
        for (value, count) in entries {
            if count == 0 {
                return Err(format!("zero count for sample {value:?}"));
            }
            let prio = priority(&value);
            if kept.insert(value.clone(), Kept { count, prio }).is_some() {
                return Err(format!("duplicate sample {value:?}"));
            }
        }
        let cap = cap.max(1);
        if kept.len() > cap {
            return Err(format!("{} samples exceed cap {cap}", kept.len()));
        }
        let sum: u64 = kept.values().map(|k| k.count).sum();
        if sum > total {
            return Err(format!("sample counts {sum} exceed total {total}"));
        }
        if !overflowed && sum != total {
            return Err(format!(
                "non-overflowed bag must account for every observation ({sum} != {total})"
            ));
        }
        Ok(SampleBag {
            kept,
            total,
            viable: viable & ALL_VIABLE,
            overflowed,
            cap,
            threshold: None,
        })
    }
}

/// The fixed priority hash: FNV-1a folded through a splitmix64-style
/// finalizer for avalanche. Ties (hash collisions) are broken by value
/// order, so priorities form a strict total order over distinct values.
fn priority(value: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in value.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(values: &[&str], cap: usize) -> SampleBag {
        let mut bag = SampleBag::with_cap(cap);
        for v in values {
            bag.insert(v);
        }
        bag
    }

    #[test]
    fn exact_below_cap() {
        let bag = filled(&["a", "b", "a", "c", "a"], 8);
        assert_eq!(bag.total(), 5);
        assert!(!bag.overflowed());
        let entries: Vec<_> = bag.entries().collect();
        assert_eq!(entries, vec![("a", 3), ("b", 1), ("c", 1)]);
    }

    #[test]
    fn caps_distinct_values() {
        let values: Vec<String> = (0..100).map(|i| format!("v{i}")).collect();
        let mut bag = SampleBag::with_cap(16);
        for v in &values {
            bag.insert(v);
        }
        assert_eq!(bag.distinct_retained(), 16);
        assert!(bag.overflowed());
        assert_eq!(bag.total(), 100);
    }

    #[test]
    fn retained_set_is_order_invariant() {
        let mut values: Vec<String> = (0..200).map(|i| format!("v{i}")).collect();
        let forward = {
            let mut bag = SampleBag::with_cap(10);
            values.iter().for_each(|v| bag.insert(v));
            bag
        };
        values.reverse();
        let backward = {
            let mut bag = SampleBag::with_cap(10);
            values.iter().for_each(|v| bag.insert(v));
            bag
        };
        assert_eq!(forward, backward);
    }

    #[test]
    fn retained_counts_are_exact_under_overflow() {
        // Repeat every value 3 times, way past the cap: whatever survives
        // must carry its true count.
        let mut bag = SampleBag::with_cap(8);
        for round in 0..3 {
            for i in 0..50 {
                let _ = round;
                bag.insert(&format!("v{i}"));
            }
        }
        assert!(bag.overflowed());
        assert!(bag.entries().all(|(_, c)| c == 3), "{bag:?}");
        assert_eq!(bag.total(), 150);
    }

    #[test]
    fn merge_equals_sequential() {
        let values: Vec<String> = (0..120).map(|i| format!("v{}", i % 37)).collect();
        let sequential = {
            let mut bag = SampleBag::with_cap(12);
            values.iter().for_each(|v| bag.insert(v));
            bag
        };
        for split in [1, 13, 60, 119] {
            let (left, right) = values.split_at(split);
            let mut a = SampleBag::with_cap(12);
            left.iter().for_each(|v| a.insert(v));
            let mut b = SampleBag::with_cap(12);
            right.iter().for_each(|v| b.insert(v));
            a.merge(&b);
            assert_eq!(a, sequential, "split at {split}");
        }
    }

    #[test]
    fn merge_normalizes_mismatched_caps_to_the_smaller() {
        // A big-cap bag folded into a small-cap bag must not inflate the
        // small reservoir — and the other way around must not silently
        // keep the big cap either.
        let values: Vec<String> = (0..60).map(|i| format!("v{i}")).collect();
        let small = filled(&values.iter().map(String::as_str).collect::<Vec<_>>(), 8);
        let big = filled(&values.iter().map(String::as_str).collect::<Vec<_>>(), 32);
        let mut small_into_big = big.clone();
        small_into_big.merge(&small);
        assert_eq!(small_into_big.cap(), 8);
        assert!(small_into_big.distinct_retained() <= 8);
        let mut big_into_small = small.clone();
        big_into_small.merge(&big);
        assert_eq!(big_into_small.cap(), 8);
        // Both orders land on the same normalized sketch (KMV retention
        // depends only on priorities, not on which side held the values).
        assert_eq!(small_into_big, big_into_small);
        assert!(small_into_big.overflowed());
    }

    #[test]
    fn merge_with_smaller_cap_matches_sequential_at_that_cap() {
        // Normalization is not just a cap field update: the retained set
        // must equal what a sequential same-cap run would keep.
        let values: Vec<String> = (0..40).map(|i| format!("v{i}")).collect();
        let sequential = {
            let mut bag = SampleBag::with_cap(6);
            values.iter().for_each(|v| bag.insert(v));
            bag
        };
        let (left, right) = values.split_at(17);
        let mut a = SampleBag::with_cap(6);
        left.iter().for_each(|v| a.insert(v));
        let mut b = SampleBag::with_cap(24);
        right.iter().for_each(|v| b.insert(v));
        a.merge(&b);
        assert_eq!(a.cap(), 6);
        assert_eq!(a.total(), sequential.total());
        // Every value the sequential run retained whose priority beats the
        // merged threshold is present; the merged bag never retains a
        // value the sequential run evicted.
        let seq: std::collections::BTreeSet<&str> = sequential.entries().map(|(v, _)| v).collect();
        for (v, _) in a.entries() {
            assert!(seq.contains(v), "{v} was evicted by the sequential run");
        }
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = filled(&["x", "y", "x"], 4);
        let mut b = filled(&["y", "z", "w", "q", "r"], 4);
        let ab = {
            let mut m = a.clone();
            m.merge(&b);
            m
        };
        b.merge(&a);
        assert_eq!(ab, b);
        a = ab;
        assert_eq!(a.total(), 8);
    }

    #[test]
    fn datatype_exact_despite_eviction() {
        // One non-integer value among hundreds of integers: even if the
        // string sample gets evicted, the viability mask remembers it.
        let mut bag = SampleBag::with_cap(4);
        bag.insert("not a number");
        for i in 0..500 {
            bag.insert(&i.to_string());
        }
        assert_eq!(bag.datatype(), XsdType::String);
        assert!(!bag.all_nmtoken());

        let mut ints = SampleBag::with_cap(4);
        for i in 0..500 {
            ints.insert(&i.to_string());
        }
        assert_eq!(ints.datatype(), XsdType::Integer);
        assert!(ints.all_nmtoken());
    }

    #[test]
    fn empty_bag_defaults() {
        let bag = SampleBag::default();
        assert!(bag.is_empty());
        assert_eq!(bag.datatype(), XsdType::String);
        assert!(bag.all_nmtoken());
        assert!(bag.looks_all_distinct());
        assert_eq!(bag.cap(), DEFAULT_SAMPLE_CAP);
    }

    #[test]
    fn all_distinct_exact_when_not_overflowed() {
        assert!(filled(&["a", "b", "c"], 8).looks_all_distinct());
        assert!(!filled(&["a", "b", "a"], 8).looks_all_distinct());
    }

    #[test]
    fn export_round_trip() {
        let bag = filled(&["a", "b", "a", "c"], 2);
        let (total, viable, overflowed) = bag.export_header();
        let rebuilt = SampleBag::from_parts(
            bag.cap(),
            total,
            viable,
            overflowed,
            bag.entries().map(|(v, c)| (v.to_owned(), c)),
        )
        .unwrap();
        assert_eq!(rebuilt, bag);
    }

    #[test]
    fn from_parts_rejects_corrupt_state() {
        let none: Vec<(String, u64)> = Vec::new();
        assert!(SampleBag::from_parts(4, 0, ALL_VIABLE, false, none).is_ok());
        // Zero count.
        assert!(SampleBag::from_parts(4, 1, ALL_VIABLE, false, vec![("a".to_owned(), 0)]).is_err());
        // Counts above total.
        assert!(SampleBag::from_parts(4, 1, ALL_VIABLE, false, vec![("a".to_owned(), 2)]).is_err());
        // Non-overflowed bag missing observations.
        assert!(SampleBag::from_parts(4, 5, ALL_VIABLE, false, vec![("a".to_owned(), 2)]).is_err());
        // Over cap.
        assert!(SampleBag::from_parts(
            1,
            2,
            ALL_VIABLE,
            false,
            vec![("a".to_owned(), 1), ("b".to_owned(), 1)]
        )
        .is_err());
    }
}
