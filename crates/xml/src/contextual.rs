//! Context-aware (XSD-strength) inference — the paper's stated future work.
//!
//! §10: "we plan to investigate the inference of XML Schema Definitions,
//! which by [9] can be abstracted by DTDs with vertical regular patterns".
//! The essential extra power of XSDs over DTDs is *context*: the same
//! element name may have different content models under different parents
//! (the 1-local case of the vertical patterns). This module implements that
//! step:
//!
//! 1. extract child sequences per `(parent, element)` pair instead of per
//!    element;
//! 2. infer one content model per pair with the chosen engine;
//! 3. merge contexts whose inferred languages coincide (so a DTD-expressible
//!    corpus collapses back to one type per element, recovering exactly the
//!    DTD inference of the paper);
//! 4. emit an XSD with one named `complexType` per surviving context.

use crate::diff::{compare_regexes, Relation};
use crate::infer::InferenceEngine;
use dtdinfer_core::crx::crx;
use dtdinfer_core::idtd::{idtd_from_words, idtd_traced, IdtdConfig};
use dtdinfer_core::kore::{pick_auto, KoreState};
use dtdinfer_core::model::InferredModel;
use dtdinfer_core::noise::SupportSoa;
use dtdinfer_regex::alphabet::{Alphabet, Sym, Word};
use dtdinfer_regex::ast::Regex;
use std::collections::BTreeMap;

/// Per-(parent, element) child sequences. The root context uses
/// `parent = None`.
#[derive(Debug, Clone, Default)]
pub struct ContextualCorpus {
    /// Interned element names.
    pub alphabet: Alphabet,
    /// `(parent, element)` → child sequences.
    pub contexts: BTreeMap<(Option<Sym>, Sym), Vec<Word>>,
    /// Document root element (first seen).
    pub root: Option<Sym>,
}

impl ContextualCorpus {
    /// Empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses one document, recording child sequences per context.
    pub fn add_document(&mut self, doc: &str) -> Result<(), crate::parser::XmlError> {
        let mut parser = crate::parser::XmlPullParser::new(doc);
        let mut stack: Vec<(Sym, Word)> = Vec::new();
        while let Some(ev) = parser.next()? {
            match ev {
                crate::parser::XmlEvent::StartElement { name, .. } => {
                    let sym = self.alphabet.intern(name);
                    if let Some((_, children)) = stack.last_mut() {
                        children.push(sym);
                    } else if self.root.is_none() {
                        self.root = Some(sym);
                    }
                    stack.push((sym, Word::new()));
                }
                crate::parser::XmlEvent::EndElement { .. } => {
                    let (sym, children) = stack.pop().expect("balanced");
                    let parent = stack.last().map(|&(p, _)| p);
                    self.contexts
                        .entry((parent, sym))
                        .or_default()
                        .push(children);
                }
                _ => {}
            }
        }
        Ok(())
    }
}

/// One inferred type: an element name, the parent contexts it covers, and
/// its content model.
#[derive(Debug, Clone)]
pub struct ContextualType {
    /// The element this type describes.
    pub element: Sym,
    /// The parents under which this type applies (`None` = document root).
    pub parents: Vec<Option<Sym>>,
    /// The inferred content model (`None` = always empty).
    pub model: Option<Regex>,
}

/// The result of contextual inference.
#[derive(Debug, Clone)]
pub struct ContextualSchema {
    /// Interned element names.
    pub alphabet: Alphabet,
    /// The inferred types, deterministic order.
    pub types: Vec<ContextualType>,
    /// Document root.
    pub root: Option<Sym>,
}

impl ContextualSchema {
    /// Whether any element needed more than one type — i.e. the corpus is
    /// *not* expressible as a DTD and genuinely requires XSD typing.
    pub fn requires_xsd(&self) -> bool {
        let mut counts: BTreeMap<Sym, usize> = BTreeMap::new();
        for t in &self.types {
            *counts.entry(t.element).or_insert(0) += 1;
        }
        counts.values().any(|&c| c > 1)
    }

    /// Renders one line per type: `element (under parents): model`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for t in &self.types {
            let parents: Vec<String> = t
                .parents
                .iter()
                .map(|p| match p {
                    Some(s) => self.alphabet.name(*s).to_owned(),
                    None => "#root".to_owned(),
                })
                .collect();
            let model = match &t.model {
                Some(r) => dtdinfer_regex::display::render(r, &self.alphabet),
                None => "EMPTY".to_owned(),
            };
            out.push_str(&format!(
                "{} (under {}): {}\n",
                self.alphabet.name(t.element),
                parents.join(", "),
                model
            ));
        }
        out
    }
}

/// Runs contextual inference: one model per `(parent, element)` context,
/// then merges contexts of an element whose languages are equal.
pub fn infer_contextual(corpus: &ContextualCorpus, engine: InferenceEngine) -> ContextualSchema {
    // Infer per context.
    type PerElement = BTreeMap<Sym, Vec<(Option<Sym>, Option<Regex>)>>;
    let mut per_element: PerElement = BTreeMap::new();
    for (&(parent, element), words) in &corpus.contexts {
        let model = match engine {
            InferenceEngine::Crx => crx(words),
            InferenceEngine::Idtd => idtd_from_words(words),
            InferenceEngine::IdtdNoise { threshold } => {
                SupportSoa::learn(words).infer_denoised(threshold)
            }
            InferenceEngine::Kore => {
                let bag: dtdinfer_regex::multiset::WordBag = words.iter().cloned().collect();
                KoreState::learn_counted(&bag).derive().model
            }
            InferenceEngine::Auto => {
                let bag: dtdinfer_regex::multiset::WordBag = words.iter().cloned().collect();
                let sore = idtd_traced(
                    &dtdinfer_automata::soa::Soa::learn(bag.words()),
                    IdtdConfig::default(),
                );
                let kore = KoreState::learn_counted(&bag).derive();
                let chare = crx(words);
                pick_auto(sore, kore, chare, corpus.alphabet.len(), &bag).model
            }
        };
        let model = match model {
            InferredModel::Regex(r) => Some(r),
            InferredModel::EpsilonOnly | InferredModel::Empty => None,
        };
        per_element
            .entry(element)
            .or_default()
            .push((parent, model));
    }
    // Merge language-equal contexts per element.
    let mut types = Vec::new();
    for (element, contexts) in per_element {
        let mut groups: Vec<ContextualType> = Vec::new();
        'ctx: for (parent, model) in contexts {
            for group in &mut groups {
                let same = match (&group.model, &model) {
                    (None, None) => true,
                    (Some(a), Some(b)) => {
                        compare_regexes(a, &corpus.alphabet, b, &corpus.alphabet) == Relation::Equal
                    }
                    _ => false,
                };
                if same {
                    group.parents.push(parent);
                    continue 'ctx;
                }
            }
            groups.push(ContextualType {
                element,
                parents: vec![parent],
                model,
            });
        }
        types.extend(groups);
    }
    ContextualSchema {
        alphabet: corpus.alphabet.clone(),
        types,
        root: corpus.root,
    }
}

/// Emits an XSD with one named `complexType` per contextual type and local
/// element declarations that reference the right type per parent.
pub fn contextual_xsd(schema: &ContextualSchema) -> String {
    let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    out.push_str("<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">\n");
    // Name types tN in order; remember which (parent, element) uses which.
    let mut type_name: BTreeMap<usize, String> = BTreeMap::new();
    let mut by_context: BTreeMap<(Option<Sym>, Sym), usize> = BTreeMap::new();
    for (i, t) in schema.types.iter().enumerate() {
        let base = schema.alphabet.name(t.element);
        let name = if schema
            .types
            .iter()
            .filter(|u| u.element == t.element)
            .count()
            == 1
        {
            format!("{base}Type")
        } else {
            format!("{base}Type{}", i)
        };
        type_name.insert(i, name);
        for &p in &t.parents {
            by_context.insert((p, t.element), i);
        }
    }
    for (i, t) in schema.types.iter().enumerate() {
        out.push_str(&format!("  <xs:complexType name=\"{}\">\n", type_name[&i]));
        if let Some(model) = &t.model {
            render_particles(&mut out, model, schema, &by_context, 4);
        }
        out.push_str("  </xs:complexType>\n");
    }
    if let Some(root) = schema.root {
        let idx = by_context.get(&(None, root)).copied();
        let ty = idx
            .map(|i| type_name[&i].clone())
            .unwrap_or_else(|| "xs:anyType".to_owned());
        out.push_str(&format!(
            "  <xs:element name=\"{}\" type=\"{}\"/>\n",
            schema.alphabet.name(root),
            ty
        ));
    }
    out.push_str("</xs:schema>\n");
    out
}

fn render_particles(
    out: &mut String,
    r: &Regex,
    schema: &ContextualSchema,
    _by_context: &BTreeMap<(Option<Sym>, Sym), usize>,
    indent: usize,
) {
    // Structural rendering; local element declarations use the element
    // name's merged type when unique, xs:anyType otherwise (full
    // single-type resolution is the subject of the follow-up work the
    // paper announces).
    let pad = " ".repeat(indent);
    match r {
        Regex::Symbol(s) => {
            out.push_str(&format!(
                "{pad}<xs:element name=\"{}\" type=\"xs:anyType\"/>\n",
                schema.alphabet.name(*s)
            ));
        }
        Regex::Concat(v) => {
            out.push_str(&format!("{pad}<xs:sequence>\n"));
            for p in v {
                render_particles(out, p, schema, _by_context, indent + 2);
            }
            out.push_str(&format!("{pad}</xs:sequence>\n"));
        }
        Regex::Union(v) => {
            out.push_str(&format!("{pad}<xs:choice>\n"));
            for p in v {
                render_particles(out, p, schema, _by_context, indent + 2);
            }
            out.push_str(&format!("{pad}</xs:choice>\n"));
        }
        Regex::Optional(p) => {
            out.push_str(&format!("{pad}<xs:sequence minOccurs=\"0\">\n"));
            render_particles(out, p, schema, _by_context, indent + 2);
            out.push_str(&format!("{pad}</xs:sequence>\n"));
        }
        Regex::Plus(p) => {
            out.push_str(&format!("{pad}<xs:sequence maxOccurs=\"unbounded\">\n"));
            render_particles(out, p, schema, _by_context, indent + 2);
            out.push_str(&format!("{pad}</xs:sequence>\n"));
        }
        Regex::Star(p) => {
            out.push_str(&format!(
                "{pad}<xs:sequence minOccurs=\"0\" maxOccurs=\"unbounded\">\n"
            ));
            render_particles(out, p, schema, _by_context, indent + 2);
            out.push_str(&format!("{pad}</xs:sequence>\n"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The canonical XSD-but-not-DTD corpus: a dealer's `car` elements have
    /// different content under `new` vs `used` (the classic example from
    /// the XSD-expressiveness line of work).
    const DEALER_DOCS: &[&str] = &[
        "<dealer>\
           <new><car><model/><price/></car><car><model/><price/></car></new>\
           <used><car><model/><mileage/><price/></car></used>\
         </dealer>",
        "<dealer>\
           <new><car><model/><price/></car></new>\
           <used><car><model/><mileage/><price/></car><car><model/><mileage/><price/></car></used>\
         </dealer>",
    ];

    fn corpus(docs: &[&str]) -> ContextualCorpus {
        let mut c = ContextualCorpus::new();
        for d in docs {
            c.add_document(d).unwrap();
        }
        c
    }

    #[test]
    fn context_split_detected() {
        let c = corpus(DEALER_DOCS);
        let schema = infer_contextual(&c, InferenceEngine::Crx);
        assert!(schema.requires_xsd(), "{}", schema.render());
        // car has two types: (model price) under new, (model mileage price)
        // under used.
        let car = c.alphabet.get("car").unwrap();
        let car_types: Vec<_> = schema.types.iter().filter(|t| t.element == car).collect();
        assert_eq!(car_types.len(), 2, "{}", schema.render());
    }

    #[test]
    fn dtd_expressible_corpus_collapses_to_one_type_each() {
        let docs = [
            "<r><a><x/></a><b><a><x/></a></b></r>",
            "<r><b><a><x/></a></b></r>",
        ];
        let c = corpus(&docs);
        let schema = infer_contextual(&c, InferenceEngine::Crx);
        // `a` occurs under r and under b with the same content model → one
        // merged type covering both parents.
        assert!(!schema.requires_xsd(), "{}", schema.render());
        let a = c.alphabet.get("a").unwrap();
        let a_types: Vec<_> = schema.types.iter().filter(|t| t.element == a).collect();
        assert_eq!(a_types.len(), 1);
        assert_eq!(a_types[0].parents.len(), 2);
    }

    #[test]
    fn xsd_emission_wellformed_and_typed() {
        let c = corpus(DEALER_DOCS);
        let schema = infer_contextual(&c, InferenceEngine::Idtd);
        let xsd = contextual_xsd(&schema);
        assert!(
            crate::parser::XmlPullParser::new(&xsd)
                .collect_events()
                .is_ok(),
            "{xsd}"
        );
        // Two distinct car types appear.
        let count = xsd.matches("<xs:complexType name=\"carType").count();
        assert_eq!(count, 2, "{xsd}");
        assert!(xsd.contains("<xs:element name=\"dealer\""));
    }

    #[test]
    fn render_is_readable() {
        let c = corpus(DEALER_DOCS);
        let schema = infer_contextual(&c, InferenceEngine::Crx);
        let text = schema.render();
        assert!(text.contains("car (under new)"), "{text}");
        assert!(text.contains("car (under used)"), "{text}");
        assert!(text.contains("dealer (under #root)"), "{text}");
    }
}
