//! Attribute-list declarations: model, inference, validation.
//!
//! DTDs declare attributes per element via `<!ATTLIST>`; the paper's §9
//! datatype discussion ("heuristics to recognize times or dates, integers,
//! doubles, nmtokens and strings") applies to attribute values just as to
//! element text. Inference follows the same
//! specialization-over-generalization principle as the content models:
//!
//! * an attribute present on *every* occurrence of its element becomes
//!   `#REQUIRED`, otherwise `#IMPLIED`;
//! * a small closed set of NMTOKEN values becomes an enumeration
//!   `(v1 | v2 | …)`; otherwise `NMTOKEN` when every value is one,
//!   else `CDATA`.

use crate::datatype::{matches_type, XsdType};
use crate::samples::SampleBag;
use std::collections::BTreeSet;
use std::fmt;

/// The attribute type of a declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttType {
    /// `CDATA` — any character data.
    CData,
    /// `NMTOKEN` — a single name token.
    NmToken,
    /// `ID` — a document-unique identifier.
    Id,
    /// An enumerated choice `(v1 | v2 | …)`.
    Enumeration(Vec<String>),
}

impl fmt::Display for AttType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttType::CData => f.write_str("CDATA"),
            AttType::NmToken => f.write_str("NMTOKEN"),
            AttType::Id => f.write_str("ID"),
            AttType::Enumeration(values) => {
                write!(f, "({})", values.join(" | "))
            }
        }
    }
}

/// The default specification of a declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttDefault {
    /// `#REQUIRED` — must be present.
    Required,
    /// `#IMPLIED` — optional.
    Implied,
}

impl fmt::Display for AttDefault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttDefault::Required => f.write_str("#REQUIRED"),
            AttDefault::Implied => f.write_str("#IMPLIED"),
        }
    }
}

/// One attribute definition inside an `<!ATTLIST>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttDef {
    /// Attribute name.
    pub name: String,
    /// Declared type.
    pub ty: AttType,
    /// Default specification.
    pub default: AttDefault,
}

impl AttDef {
    /// Whether `value` conforms to the declared type.
    pub fn accepts(&self, value: &str) -> bool {
        match &self.ty {
            AttType::CData => true,
            AttType::NmToken | AttType::Id => matches_type(value, XsdType::NmToken),
            AttType::Enumeration(values) => values.iter().any(|v| v == value),
        }
    }
}

/// Tuning for attribute inference.
#[derive(Debug, Clone, Copy)]
pub struct AttInferenceOptions {
    /// Maximum number of distinct values for an enumeration; beyond it the
    /// type generalizes to NMTOKEN/CDATA.
    pub max_enumeration: usize,
    /// Minimum number of observations per distinct value before an
    /// enumeration is trusted (guards against enumerating IDs).
    pub min_support_per_value: usize,
}

impl Default for AttInferenceOptions {
    fn default() -> Self {
        Self {
            max_enumeration: 8,
            min_support_per_value: 2,
        }
    }
}

/// Infers one attribute definition from observed values.
///
/// `values` holds one entry per element occurrence where the attribute was
/// present; `occurrences` is the total number of element occurrences.
pub fn infer_attdef(
    name: &str,
    values: &[String],
    occurrences: u64,
    options: AttInferenceOptions,
) -> AttDef {
    let default = if values.len() as u64 == occurrences && occurrences > 0 {
        AttDefault::Required
    } else {
        AttDefault::Implied
    };
    let all_nmtoken = values.iter().all(|v| matches_type(v, XsdType::NmToken));
    let distinct: BTreeSet<&String> = values.iter().collect();
    // All-distinct NMTOKEN values on every occurrence look like IDs.
    let id_like = all_nmtoken
        && default == AttDefault::Required
        && values.len() >= 3
        && distinct.len() == values.len();
    let ty = if id_like {
        AttType::Id
    } else if all_nmtoken
        && !values.is_empty()
        && distinct.len() <= options.max_enumeration
        && values.len() >= distinct.len() * options.min_support_per_value
    {
        AttType::Enumeration(distinct.into_iter().cloned().collect())
    } else if all_nmtoken && !values.is_empty() {
        AttType::NmToken
    } else {
        AttType::CData
    };
    AttDef {
        name: name.to_owned(),
        ty,
        default,
    }
}

/// [`infer_attdef`] over a bounded [`SampleBag`] instead of a value slice.
///
/// When the bag has not overflowed its cap this makes *exactly* the
/// decisions of the slice-based path: totals and per-value counts are
/// exact, and the NMTOKEN check rides the bag's exact viability mask.
/// When it has overflowed (more distinct values than the cap, which must
/// be ≥ `max_enumeration`):
///
/// * enumeration is correctly ruled out — distinct > cap ≥ the maximum
///   enumeration size, so the slice path would reject it too;
/// * the ID heuristic's all-distinct test becomes evidence from a uniform
///   sample of the distinct values (retained counts all 1) instead of a
///   full scan — the only decision that is sampled rather than exact.
pub fn infer_attdef_from_bag(
    name: &str,
    values: &SampleBag,
    occurrences: u64,
    options: AttInferenceOptions,
) -> AttDef {
    let default = if values.total() == occurrences && occurrences > 0 {
        AttDefault::Required
    } else {
        AttDefault::Implied
    };
    let all_nmtoken = values.all_nmtoken();
    let id_like = all_nmtoken
        && default == AttDefault::Required
        && values.total() >= 3
        && values.looks_all_distinct();
    let ty = if id_like {
        AttType::Id
    } else if all_nmtoken
        && !values.is_empty()
        && !values.overflowed()
        && values.distinct_retained() <= options.max_enumeration
        && values.total() >= (values.distinct_retained() * options.min_support_per_value) as u64
    {
        AttType::Enumeration(values.entries().map(|(v, _)| v.to_owned()).collect())
    } else if all_nmtoken && !values.is_empty() {
        AttType::NmToken
    } else {
        AttType::CData
    };
    AttDef {
        name: name.to_owned(),
        ty,
        default,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn required_vs_implied() {
        let always = infer_attdef("x", &strings(&["a", "b"]), 2, Default::default());
        assert_eq!(always.default, AttDefault::Required);
        let sometimes = infer_attdef("x", &strings(&["a"]), 2, Default::default());
        assert_eq!(sometimes.default, AttDefault::Implied);
    }

    #[test]
    fn enumeration_for_closed_sets() {
        let values = strings(&["red", "blue", "red", "red", "blue", "blue"]);
        let def = infer_attdef("color", &values, 6, Default::default());
        assert_eq!(def.ty, AttType::Enumeration(strings(&["blue", "red"])));
        assert!(def.accepts("red"));
        assert!(!def.accepts("green"));
    }

    #[test]
    fn id_like_detection() {
        let values = strings(&["n1", "n2", "n3", "n4"]);
        let def = infer_attdef("id", &values, 4, Default::default());
        assert_eq!(def.ty, AttType::Id);
    }

    #[test]
    fn nmtoken_fallback_for_wide_value_sets() {
        let values: Vec<String> = (0..40).map(|i| format!("v{}", i % 20)).collect();
        let def = infer_attdef("v", &values, 41, Default::default());
        assert_eq!(def.ty, AttType::NmToken);
        assert_eq!(def.default, AttDefault::Implied);
    }

    #[test]
    fn cdata_for_free_text() {
        let values = strings(&["hello world", "two words"]);
        let def = infer_attdef("title", &values, 2, Default::default());
        assert_eq!(def.ty, AttType::CData);
        assert!(def.accepts("anything at all"));
    }

    #[test]
    fn display_forms() {
        assert_eq!(AttType::CData.to_string(), "CDATA");
        assert_eq!(
            AttType::Enumeration(strings(&["a", "b"])).to_string(),
            "(a | b)"
        );
        assert_eq!(AttDefault::Required.to_string(), "#REQUIRED");
    }

    #[test]
    fn empty_observations() {
        let def = infer_attdef("x", &[], 5, Default::default());
        assert_eq!(def.default, AttDefault::Implied);
        assert_eq!(def.ty, AttType::CData);
        let bag = SampleBag::default();
        assert_eq!(infer_attdef_from_bag("x", &bag, 5, Default::default()), def);
    }

    #[test]
    fn bag_path_matches_slice_path_when_not_overflowed() {
        let cases: Vec<(Vec<String>, u64)> = vec![
            (strings(&["red", "blue", "red", "red", "blue", "blue"]), 6),
            (strings(&["n1", "n2", "n3", "n4"]), 4),
            (strings(&["a"]), 2),
            (strings(&["hello world", "two words"]), 2),
            ((0..40).map(|i| format!("v{}", i % 20)).collect(), 41),
            (strings(&["x", "x", "x"]), 3),
        ];
        for (values, occurrences) in cases {
            let mut bag = SampleBag::default();
            for v in &values {
                bag.insert(v);
            }
            assert!(!bag.overflowed());
            assert_eq!(
                infer_attdef_from_bag("a", &bag, occurrences, Default::default()),
                infer_attdef("a", &values, occurrences, Default::default()),
                "{values:?}"
            );
        }
    }

    #[test]
    fn overflowed_bag_never_enumerates() {
        // More distinct NMTOKEN values than the cap: enumeration is
        // impossible (distinct > cap ≥ max_enumeration), NMTOKEN stands.
        let mut bag = SampleBag::default();
        for i in 0..(bag.cap() * 4) {
            bag.insert(&format!("v{i}"));
            bag.insert(&format!("v{i}")); // duplicate: defeats the ID heuristic
        }
        assert!(bag.overflowed());
        let def = infer_attdef_from_bag("v", &bag, bag.total(), Default::default());
        assert_eq!(def.ty, AttType::NmToken);
    }
}
