//! A streaming XML pull parser.
//!
//! Hand-written, dependency-free, and scoped to what schema inference needs:
//! well-formed element structure, attributes, character data (with
//! predefined and numeric entity decoding), CDATA sections, comments,
//! processing instructions, and DOCTYPE declarations (skipped, including
//! internal subsets). It checks tag balance — mismatched or dangling tags
//! are errors — but does not validate against any schema; that is the job
//! of [`crate::dtd`].

use std::fmt;

/// A parse event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// `<name attr="v" …>`; `self_closing` for `<name … />`.
    StartElement {
        /// Element name.
        name: String,
        /// Attributes in document order.
        attributes: Vec<(String, String)>,
        /// Whether the tag closed itself (`<a/>`); an `EndElement` is still
        /// emitted.
        self_closing: bool,
    },
    /// `</name>` (also emitted after a self-closing tag).
    EndElement {
        /// Element name.
        name: String,
    },
    /// Character data (entity-decoded) or CDATA content.
    Text(String),
    /// `<!-- … -->` content.
    Comment(String),
    /// `<?target data?>`.
    ProcessingInstruction(String),
    /// A `<!DOCTYPE …>` declaration was skipped.
    Doctype(String),
}

/// Parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// 1-based line of the error.
    pub line: usize,
    /// 1-based column (in bytes) of the error.
    pub column: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML error at line {}, column {}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for XmlError {}

/// Pull parser over a full document held in memory.
pub struct XmlPullParser<'a> {
    input: &'a [u8],
    pos: usize,
    /// Open-element stack for well-formedness checking.
    stack: Vec<String>,
    /// Pending synthetic end event after a self-closing tag.
    pending_end: Option<String>,
    finished: bool,
}

impl<'a> XmlPullParser<'a> {
    /// Creates a parser over `input`.
    pub fn new(input: &'a str) -> Self {
        Self {
            input: input.as_bytes(),
            pos: 0,
            stack: Vec::new(),
            pending_end: None,
            finished: false,
        }
    }

    fn err<T>(&self, message: &str) -> Result<T, XmlError> {
        let before = &self.input[..self.pos.min(self.input.len())];
        let line = before.iter().filter(|&&b| b == b'\n').count() + 1;
        let column = before
            .iter()
            .rposition(|&b| b == b'\n')
            .map(|i| self.pos - i)
            .unwrap_or(self.pos + 1);
        Err(XmlError {
            offset: self.pos,
            line,
            column,
            message: message.to_owned(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn take_until(&mut self, delim: &str) -> Result<String, XmlError> {
        let hay = &self.input[self.pos..];
        match find_subslice(hay, delim.as_bytes()) {
            Some(i) => {
                let content = String::from_utf8_lossy(&hay[..i]).into_owned();
                self.pos += i + delim.len();
                Ok(content)
            }
            None => self.err(&format!("unterminated construct (expected {delim:?})")),
        }
    }

    fn read_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if is_name_char(c)) {
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected a name");
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    /// Pulls the next event; `Ok(None)` at end of input (only legal once all
    /// elements are closed).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<XmlEvent>, XmlError> {
        if let Some(name) = self.pending_end.take() {
            return Ok(Some(XmlEvent::EndElement { name }));
        }
        if self.finished {
            return Ok(None);
        }
        loop {
            if self.pos >= self.input.len() {
                if let Some(open) = self.stack.last() {
                    return self.err(&format!("unexpected end of input: <{open}> not closed"));
                }
                self.finished = true;
                return Ok(None);
            }
            if self.peek() == Some(b'<') {
                return self.parse_markup().map(Some);
            }
            // Character data up to the next '<'.
            let start = self.pos;
            while self.pos < self.input.len() && self.peek() != Some(b'<') {
                self.pos += 1;
            }
            let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
            if self.stack.is_empty() {
                if raw.trim().is_empty() {
                    continue; // whitespace between prolog and root
                }
                return self.err("character data outside the root element");
            }
            return Ok(Some(XmlEvent::Text(decode_entities(&raw))));
        }
    }

    fn parse_markup(&mut self) -> Result<XmlEvent, XmlError> {
        debug_assert_eq!(self.peek(), Some(b'<'));
        if self.starts_with("<!--") {
            self.pos += 4;
            let content = self.take_until("-->")?;
            return Ok(XmlEvent::Comment(content));
        }
        if self.starts_with("<![CDATA[") {
            self.pos += 9;
            let content = self.take_until("]]>")?;
            if self.stack.is_empty() {
                return self.err("CDATA outside the root element");
            }
            return Ok(XmlEvent::Text(content));
        }
        if self.starts_with("<?") {
            self.pos += 2;
            let content = self.take_until("?>")?;
            return Ok(XmlEvent::ProcessingInstruction(content));
        }
        if self.starts_with("<!DOCTYPE") {
            return self.parse_doctype();
        }
        if self.starts_with("</") {
            self.pos += 2;
            let name = self.read_name()?;
            self.skip_ws();
            if self.peek() != Some(b'>') {
                return self.err("expected '>' in end tag");
            }
            self.pos += 1;
            match self.stack.pop() {
                Some(open) if open == name => Ok(XmlEvent::EndElement { name }),
                Some(open) => self.err(&format!("mismatched end tag </{name}>, open <{open}>")),
                None => self.err(&format!("end tag </{name}> without open element")),
            }
        } else {
            self.pos += 1; // consume '<'
            let name = self.read_name()?;
            let mut attributes = Vec::new();
            loop {
                self.skip_ws();
                match self.peek() {
                    Some(b'>') => {
                        self.pos += 1;
                        self.stack.push(name.clone());
                        return Ok(XmlEvent::StartElement {
                            name,
                            attributes,
                            self_closing: false,
                        });
                    }
                    Some(b'/') => {
                        self.pos += 1;
                        if self.peek() != Some(b'>') {
                            return self.err("expected '>' after '/'");
                        }
                        self.pos += 1;
                        self.pending_end = Some(name.clone());
                        return Ok(XmlEvent::StartElement {
                            name,
                            attributes,
                            self_closing: true,
                        });
                    }
                    Some(c) if is_name_char(c) => {
                        let attr = self.read_name()?;
                        self.skip_ws();
                        if self.peek() != Some(b'=') {
                            return self.err("expected '=' after attribute name");
                        }
                        self.pos += 1;
                        self.skip_ws();
                        let quote = match self.peek() {
                            Some(q @ (b'"' | b'\'')) => q,
                            _ => return self.err("expected quoted attribute value"),
                        };
                        self.pos += 1;
                        let value =
                            self.take_until(std::str::from_utf8(&[quote]).expect("ascii"))?;
                        attributes.push((attr, decode_entities(&value)));
                    }
                    _ => return self.err("malformed start tag"),
                }
            }
        }
    }

    fn parse_doctype(&mut self) -> Result<XmlEvent, XmlError> {
        let start = self.pos;
        self.pos += "<!DOCTYPE".len();
        // Scan to the matching '>', skipping an internal subset in [...]
        // and quoted strings.
        let mut depth = 0usize;
        while let Some(c) = self.peek() {
            match c {
                b'[' => depth += 1,
                b']' => depth = depth.saturating_sub(1),
                b'"' | b'\'' => {
                    let quote = c;
                    self.pos += 1;
                    while let Some(c2) = self.peek() {
                        if c2 == quote {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                b'>' if depth == 0 => {
                    self.pos += 1;
                    let content =
                        String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                    return Ok(XmlEvent::Doctype(content));
                }
                _ => {}
            }
            self.pos += 1;
        }
        self.err("unterminated DOCTYPE")
    }

    /// Drains the parser into an event vector.
    pub fn collect_events(mut self) -> Result<Vec<XmlEvent>, XmlError> {
        let mut out = Vec::new();
        while let Some(ev) = self.next()? {
            out.push(ev);
        }
        Ok(out)
    }
}

fn is_name_char(c: u8) -> bool {
    // Non-ASCII bytes are accepted as name characters: XML names may use
    // the full Unicode letter range, and passing UTF-8 continuation bytes
    // through keeps multi-byte names intact without a full table.
    c.is_ascii_alphanumeric() || matches!(c, b'_' | b'.' | b':' | b'-') || c >= 0x80
}

fn find_subslice(hay: &[u8], needle: &[u8]) -> Option<usize> {
    hay.windows(needle.len()).position(|w| w == needle)
}

/// Escapes the five predefined XML entities so `s` can be embedded in
/// character data or a double-quoted attribute value.
pub fn encode_entities(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

/// Decodes the predefined XML entities and numeric character references.
/// Unknown entities are passed through verbatim (lenient, like the noisy
/// real-world data of §9 requires).
pub fn decode_entities(s: &str) -> String {
    if !s.contains('&') {
        return s.to_owned();
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        match rest.find(';') {
            Some(semi) if semi <= 12 => {
                let entity = &rest[1..semi];
                let decoded = match entity {
                    "lt" => Some('<'),
                    "gt" => Some('>'),
                    "amp" => Some('&'),
                    "apos" => Some('\''),
                    "quot" => Some('"'),
                    _ => entity
                        .strip_prefix("#x")
                        .or_else(|| entity.strip_prefix("#X"))
                        .and_then(|h| u32::from_str_radix(h, 16).ok())
                        .or_else(|| entity.strip_prefix('#').and_then(|d| d.parse::<u32>().ok()))
                        .and_then(char::from_u32),
                };
                match decoded {
                    Some(c) => {
                        out.push(c);
                        rest = &rest[semi + 1..];
                    }
                    None => {
                        out.push('&');
                        rest = &rest[1..];
                    }
                }
            }
            _ => {
                out.push('&');
                rest = &rest[1..];
            }
        }
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(doc: &str) -> Vec<XmlEvent> {
        XmlPullParser::new(doc).collect_events().expect("parse")
    }

    fn names(doc: &str) -> Vec<String> {
        events(doc)
            .into_iter()
            .filter_map(|e| match e {
                XmlEvent::StartElement { name, .. } => Some(name),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn simple_document() {
        let evs = events("<a><b>hi</b><c/></a>");
        assert_eq!(evs.len(), 7);
        assert!(matches!(&evs[0], XmlEvent::StartElement { name, .. } if name == "a"));
        assert!(matches!(&evs[2], XmlEvent::Text(t) if t == "hi"));
        assert!(matches!(
            &evs[4],
            XmlEvent::StartElement {
                self_closing: true,
                ..
            }
        ));
        assert!(matches!(&evs[5], XmlEvent::EndElement { name } if name == "c"));
    }

    #[test]
    fn attributes_parsed() {
        let evs = events(r#"<a x="1" y='two &amp; three'/>"#);
        match &evs[0] {
            XmlEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes[0], ("x".to_owned(), "1".to_owned()));
                assert_eq!(attributes[1].1, "two & three");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn prolog_comment_pi_doctype() {
        let doc = r#"<?xml version="1.0"?>
<!-- a comment -->
<!DOCTYPE root [ <!ELEMENT root (#PCDATA)> ]>
<root>x</root>"#;
        let evs = events(doc);
        assert!(matches!(&evs[0], XmlEvent::ProcessingInstruction(p) if p.starts_with("xml")));
        assert!(matches!(&evs[1], XmlEvent::Comment(c) if c.contains("a comment")));
        assert!(matches!(&evs[2], XmlEvent::Doctype(d) if d.contains("#PCDATA")));
        assert_eq!(names(doc), vec!["root"]);
    }

    #[test]
    fn cdata_is_text() {
        let evs = events("<a><![CDATA[<not-a-tag> & raw]]></a>");
        assert!(matches!(&evs[1], XmlEvent::Text(t) if t == "<not-a-tag> & raw"));
    }

    #[test]
    fn encode_decode_round_trip() {
        for text in ["a < b & c > d", "\"quoted\" & 'apos'", "plain", "ü ≤ €"] {
            assert_eq!(decode_entities(&encode_entities(text)), text);
        }
    }

    #[test]
    fn entity_decoding() {
        assert_eq!(
            decode_entities("a &lt; b &gt; c &amp; &quot;d&quot;"),
            "a < b > c & \"d\""
        );
        assert_eq!(decode_entities("&#65;&#x42;"), "AB");
        assert_eq!(decode_entities("&unknown; & bare"), "&unknown; & bare");
    }

    #[test]
    fn mismatched_tags_rejected() {
        assert!(XmlPullParser::new("<a><b></a></b>")
            .collect_events()
            .is_err());
        assert!(XmlPullParser::new("<a>").collect_events().is_err());
        assert!(XmlPullParser::new("</a>").collect_events().is_err());
    }

    #[test]
    fn text_outside_root_rejected() {
        assert!(XmlPullParser::new("hello <a/>").collect_events().is_err());
        // but whitespace is fine
        assert!(XmlPullParser::new("  \n<a/>\n  ").collect_events().is_ok());
    }

    #[test]
    fn nested_structure_names() {
        assert_eq!(names("<a><b><c/></b><b/></a>"), vec!["a", "b", "c", "b"]);
    }

    #[test]
    fn doctype_with_internal_subset_and_quotes() {
        let doc = r#"<!DOCTYPE r [ <!ENTITY e "<>"> ]><r/>"#;
        let evs = events(doc);
        assert!(matches!(&evs[0], XmlEvent::Doctype(_)));
        assert_eq!(names(doc), vec!["r"]);
    }

    #[test]
    fn malformed_attribute_rejected() {
        assert!(XmlPullParser::new("<a x=1/>").collect_events().is_err());
        assert!(XmlPullParser::new("<a x></a>").collect_events().is_err());
    }

    #[test]
    fn unterminated_comment_rejected() {
        assert!(XmlPullParser::new("<a><!-- oops</a>")
            .collect_events()
            .is_err());
    }

    #[test]
    fn errors_carry_line_and_column() {
        let err = XmlPullParser::new("<a>\n  <b>\n</a>")
            .collect_events()
            .unwrap_err();
        assert_eq!(err.line, 3, "{err}");
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn namespaced_names() {
        assert_eq!(names("<ns:a><ns:b/></ns:a>"), vec!["ns:a", "ns:b"]);
    }

    #[test]
    fn unicode_element_names() {
        assert_eq!(
            names("<livre><tête/><café>ü</café></livre>"),
            vec!["livre", "tête", "café"]
        );
    }
}
