//! A streaming, zero-copy XML pull parser.
//!
//! Hand-written, dependency-free, and scoped to what schema inference
//! needs: well-formed element structure, attributes, character data (with
//! predefined and numeric entity decoding), CDATA sections, comments,
//! processing instructions, and DOCTYPE declarations (skipped, including
//! internal subsets). It checks tag balance — mismatched or dangling tags
//! are errors — but does not validate against any schema; that is the job
//! of [`crate::dtd`].
//!
//! Events *borrow* from the input buffer: names are `&'a str` slices,
//! text and attribute values are [`Cow`]s that only allocate when entity
//! decoding actually rewrites bytes, and skipped constructs (comments,
//! processing instructions, DOCTYPE) are raw slices that never
//! materialize. The paper's premise (§9) is that the generating XML can be
//! discarded as data trickles in; the parser's job is to touch it exactly
//! once on the way through.

use crate::scan;
use std::borrow::Cow;
use std::fmt;

/// A parse event, borrowing from the document buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent<'a> {
    /// `<name attr="v" …>`; `self_closing` for `<name … />`.
    StartElement {
        /// Element name (a slice of the input).
        name: &'a str,
        /// Attributes in document order; values are borrowed unless entity
        /// decoding forced an allocation.
        attributes: Vec<(&'a str, Cow<'a, str>)>,
        /// Whether the tag closed itself (`<a/>`); an `EndElement` is still
        /// emitted.
        self_closing: bool,
    },
    /// `</name>` (also emitted after a self-closing tag).
    EndElement {
        /// Element name.
        name: &'a str,
    },
    /// Character data (entity-decoded) or CDATA content.
    Text(Cow<'a, str>),
    /// `<!-- … -->` content, as a raw slice (never allocated).
    Comment(&'a str),
    /// `<?target data?>`, as a raw slice (never allocated).
    ProcessingInstruction(&'a str),
    /// A `<!DOCTYPE …>` declaration was skipped; the raw slice.
    Doctype(&'a str),
}

impl XmlEvent<'_> {
    /// Copies the event into an owned form. This is the reference shim for
    /// consumers (and tests) that need events to outlive the buffer; the
    /// hot paths never call it.
    pub fn to_owned_event(&self) -> OwnedXmlEvent {
        match self {
            XmlEvent::StartElement {
                name,
                attributes,
                self_closing,
            } => OwnedXmlEvent::StartElement {
                name: (*name).to_owned(),
                attributes: attributes
                    .iter()
                    .map(|(a, v)| ((*a).to_owned(), v.clone().into_owned()))
                    .collect(),
                self_closing: *self_closing,
            },
            XmlEvent::EndElement { name } => OwnedXmlEvent::EndElement {
                name: (*name).to_owned(),
            },
            XmlEvent::Text(t) => OwnedXmlEvent::Text(t.clone().into_owned()),
            XmlEvent::Comment(c) => OwnedXmlEvent::Comment((*c).to_owned()),
            XmlEvent::ProcessingInstruction(p) => {
                OwnedXmlEvent::ProcessingInstruction((*p).to_owned())
            }
            XmlEvent::Doctype(d) => OwnedXmlEvent::Doctype((*d).to_owned()),
        }
    }
}

/// An owned copy of an [`XmlEvent`] — the pre-zero-copy event shape, kept
/// as a reference implementation so equivalence tests can compare the
/// borrowed parser against an owned replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OwnedXmlEvent {
    /// `<name attr="v" …>`.
    StartElement {
        /// Element name.
        name: String,
        /// Attributes in document order.
        attributes: Vec<(String, String)>,
        /// Whether the tag closed itself.
        self_closing: bool,
    },
    /// `</name>`.
    EndElement {
        /// Element name.
        name: String,
    },
    /// Character data or CDATA content.
    Text(String),
    /// Comment content.
    Comment(String),
    /// Processing instruction.
    ProcessingInstruction(String),
    /// Skipped DOCTYPE declaration.
    Doctype(String),
}

/// Parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// 1-based line of the error.
    pub line: usize,
    /// 1-based column (in bytes) of the error.
    pub column: usize,
    /// Description.
    pub message: String,
    /// The originating document (file path or another caller-supplied
    /// label), when known. Attached by [`XmlError::with_source`]; `None`
    /// straight out of the parser.
    pub source: Option<String>,
}

impl XmlError {
    /// Attaches the originating document name (usually a file path) if one
    /// is not already recorded.
    pub fn with_source(mut self, source: &str) -> XmlError {
        if self.source.is_none() {
            self.source = Some(source.to_owned());
        }
        self
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(source) = &self.source {
            write!(f, "{source}: ")?;
        }
        write!(
            f,
            "XML error at line {}, column {}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for XmlError {}

/// Pull parser over a full document held in memory.
pub struct XmlPullParser<'a> {
    input: &'a str,
    pos: usize,
    /// Open-element stack for well-formedness checking (slices of the
    /// input — the stack never copies names).
    stack: Vec<&'a str>,
    /// Pending synthetic end event after a self-closing tag.
    pending_end: Option<&'a str>,
    finished: bool,
    /// Reject malformed entity references instead of passing them through.
    strict_entities: bool,
}

impl<'a> XmlPullParser<'a> {
    /// Creates a parser over `input`. Entity handling is lenient (unknown
    /// and malformed references pass through verbatim, as §9's noisy
    /// real-world data requires); see [`XmlPullParser::new_strict`].
    pub fn new(input: &'a str) -> Self {
        Self {
            input,
            pos: 0,
            stack: Vec::new(),
            pending_end: None,
            finished: false,
            strict_entities: false,
        }
    }

    /// Like [`XmlPullParser::new`], but malformed entity references
    /// (`&#xZZ;`, unterminated `&amp`, surrogate code points, unknown
    /// names) are hard errors with exact line/column positions.
    pub fn new_strict(input: &'a str) -> Self {
        Self {
            strict_entities: true,
            ..Self::new(input)
        }
    }

    fn bytes(&self) -> &'a [u8] {
        self.input.as_bytes()
    }

    fn err<T>(&self, message: &str) -> Result<T, XmlError> {
        self.err_at(self.pos, message)
    }

    fn err_at<T>(&self, offset: usize, message: &str) -> Result<T, XmlError> {
        let offset = offset.min(self.input.len());
        let before = &self.bytes()[..offset];
        let line = before.iter().filter(|&&b| b == b'\n').count() + 1;
        let column = before
            .iter()
            .rposition(|&b| b == b'\n')
            .map(|i| offset - i)
            .unwrap_or(offset + 1);
        Err(XmlError {
            offset,
            line,
            column,
            message: message.to_owned(),
            source: None,
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes().get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes()[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    /// Returns the slice up to (excluding) `delim` and skips past it. All
    /// delimiters are ASCII, so the slice boundaries are char boundaries.
    fn take_until(&mut self, delim: &str) -> Result<&'a str, XmlError> {
        match scan::next_subslice(self.bytes(), self.pos, delim.as_bytes()) {
            Some(i) => {
                let content = &self.input[self.pos..i];
                self.pos = i + delim.len();
                Ok(content)
            }
            None => self.err(&format!("unterminated construct (expected {delim:?})")),
        }
    }

    /// [`XmlPullParser::take_until`] for a single-byte delimiter (the
    /// attribute-value quote). One fused SWAR scan finds the delimiter and
    /// reports whether the content holds an '&' — entity-free values (the
    /// common case) then skip the decoder's rescan entirely.
    fn take_until_byte(&mut self, delim: u8) -> Result<(&'a str, bool), XmlError> {
        let bytes = self.bytes();
        let (end, has_amp) = match scan::next_byte2(bytes, self.pos, delim, b'&') {
            Some(i) if bytes[i] == delim => (Some(i), false),
            Some(amp) => (scan::next_byte(bytes, amp + 1, delim), true),
            None => (None, false),
        };
        match end {
            Some(i) => {
                let content = &self.input[self.pos..i];
                self.pos = i + 1;
                Ok((content, has_amp))
            }
            None => self.err(&format!(
                "unterminated construct (expected {:?})",
                char::from(delim)
            )),
        }
    }

    fn read_name(&mut self) -> Result<&'a str, XmlError> {
        let start = self.pos;
        let tail = &self.bytes()[start..];
        let len = tail
            .iter()
            .position(|&c| !is_name_char(c))
            .unwrap_or(tail.len());
        if len == 0 {
            return self.err("expected a name");
        }
        self.pos = start + len;
        // Name scanning stops at an ASCII delimiter and non-ASCII bytes
        // are all name characters, so both ends are char boundaries.
        Ok(&self.input[start..self.pos])
    }

    /// Entity-decodes a raw slice that started at absolute byte `offset`,
    /// borrowing when no decoding is needed. In strict mode a malformed
    /// reference is an error positioned at its `&`.
    fn decode(&self, raw: &'a str, offset: usize) -> Result<Cow<'a, str>, XmlError> {
        if self.strict_entities {
            match decode_entities_strict(raw) {
                Ok(decoded) => Ok(decoded),
                Err(e) => self.err_at(offset + e.offset, &e.message),
            }
        } else {
            Ok(decode_entities_cow(raw))
        }
    }

    /// Pulls the next event; `Ok(None)` at end of input (only legal once all
    /// elements are closed).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<XmlEvent<'a>>, XmlError> {
        if let Some(name) = self.pending_end.take() {
            return Ok(Some(XmlEvent::EndElement { name }));
        }
        if self.finished {
            return Ok(None);
        }
        loop {
            if self.pos >= self.input.len() {
                if let Some(open) = self.stack.last() {
                    return self.err(&format!("unexpected end of input: <{open}> not closed"));
                }
                self.finished = true;
                return Ok(None);
            }
            if self.peek() == Some(b'<') {
                return self.parse_markup().map(Some);
            }
            // Character data up to the next '<'. One fused SWAR run finds
            // the end of the run and learns on the way whether it contains
            // an '&' — entity-free text (the common case) is then borrowed
            // without the decoder rescanning it.
            let start = self.pos;
            let bytes = self.bytes();
            let (end, has_amp) = match scan::next_byte2(bytes, start, b'<', b'&') {
                Some(i) if bytes[i] == b'<' => (i, false),
                Some(amp) => (
                    scan::next_byte(bytes, amp + 1, b'<').unwrap_or(bytes.len()),
                    true,
                ),
                None => (bytes.len(), false),
            };
            self.pos = end;
            let raw = &self.input[start..end];
            if self.stack.is_empty() {
                if raw.trim().is_empty() {
                    continue; // whitespace between prolog and root
                }
                return self.err("character data outside the root element");
            }
            return Ok(Some(XmlEvent::Text(if has_amp {
                self.decode(raw, start)?
            } else {
                Cow::Borrowed(raw)
            })));
        }
    }

    fn parse_markup(&mut self) -> Result<XmlEvent<'a>, XmlError> {
        debug_assert_eq!(self.peek(), Some(b'<'));
        // Dispatch on the byte after '<'. Start and end tags are the
        // overwhelming majority of markup, so they must not pay a chain
        // of literal-prefix comparisons against every rare construct.
        match self.bytes().get(self.pos + 1) {
            Some(b'!') | Some(b'?') => self.parse_declaration(),
            Some(b'/') => {
                self.pos += 2;
                // Fast path: a well-formed end tag names the innermost
                // open element with no stray whitespace, so one slice
                // compare against the stack top replaces the name scan.
                if let Some(&open) = self.stack.last() {
                    let end = self.pos + open.len();
                    if self.bytes().get(end) == Some(&b'>')
                        && self.bytes()[self.pos..end] == *open.as_bytes()
                    {
                        self.pos = end + 1;
                        self.stack.pop();
                        return Ok(XmlEvent::EndElement { name: open });
                    }
                }
                let name = self.read_name()?;
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return self.err("expected '>' in end tag");
                }
                self.pos += 1;
                match self.stack.pop() {
                    Some(open) if open == name => Ok(XmlEvent::EndElement { name }),
                    Some(open) => self.err(&format!("mismatched end tag </{name}>, open <{open}>")),
                    None => self.err(&format!("end tag </{name}> without open element")),
                }
            }
            _ => self.parse_start_tag(),
        }
    }

    /// The rare markup constructs behind `<!` and `<?`: comments, CDATA,
    /// DOCTYPE, and processing instructions. Off the tag hot path, so the
    /// literal-prefix chain is fine here.
    fn parse_declaration(&mut self) -> Result<XmlEvent<'a>, XmlError> {
        if self.starts_with("<!--") {
            self.pos += 4;
            let content = self.take_until("-->")?;
            return Ok(XmlEvent::Comment(content));
        }
        if self.starts_with("<![CDATA[") {
            self.pos += 9;
            let content = self.take_until("]]>")?;
            if self.stack.is_empty() {
                return self.err("CDATA outside the root element");
            }
            return Ok(XmlEvent::Text(Cow::Borrowed(content)));
        }
        if self.starts_with("<?") {
            self.pos += 2;
            let content = self.take_until("?>")?;
            return Ok(XmlEvent::ProcessingInstruction(content));
        }
        if self.starts_with("<!DOCTYPE") {
            return self.parse_doctype();
        }
        // `<!` followed by anything else falls through to the start-tag
        // parser, which rejects `!` with the pre-dispatch error message.
        self.parse_start_tag()
    }

    fn parse_start_tag(&mut self) -> Result<XmlEvent<'a>, XmlError> {
        self.pos += 1; // consume '<'
        let name = self.read_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    self.stack.push(name);
                    return Ok(XmlEvent::StartElement {
                        name,
                        attributes,
                        self_closing: false,
                    });
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return self.err("expected '>' after '/'");
                    }
                    self.pos += 1;
                    self.pending_end = Some(name);
                    return Ok(XmlEvent::StartElement {
                        name,
                        attributes,
                        self_closing: true,
                    });
                }
                Some(c) if is_name_char(c) => {
                    let attr = self.read_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return self.err("expected '=' after attribute name");
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return self.err("expected quoted attribute value"),
                    };
                    self.pos += 1;
                    let value_start = self.pos;
                    let (value, has_amp) = self.take_until_byte(quote)?;
                    attributes.push((
                        attr,
                        if has_amp {
                            self.decode(value, value_start)?
                        } else {
                            Cow::Borrowed(value)
                        },
                    ));
                }
                _ => return self.err("malformed start tag"),
            }
        }
    }

    fn parse_doctype(&mut self) -> Result<XmlEvent<'a>, XmlError> {
        let start = self.pos;
        self.pos += "<!DOCTYPE".len();
        // Scan to the matching '>', skipping an internal subset in [...]
        // and quoted strings.
        let mut depth = 0usize;
        while let Some(c) = self.peek() {
            match c {
                b'[' => depth += 1,
                b']' => depth = depth.saturating_sub(1),
                b'"' | b'\'' => {
                    let quote = c;
                    self.pos += 1;
                    while let Some(c2) = self.peek() {
                        if c2 == quote {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                b'>' if depth == 0 => {
                    self.pos += 1;
                    return Ok(XmlEvent::Doctype(&self.input[start..self.pos]));
                }
                _ => {}
            }
            self.pos += 1;
        }
        self.err("unterminated DOCTYPE")
    }

    /// Drains the parser into an event vector.
    pub fn collect_events(mut self) -> Result<Vec<XmlEvent<'a>>, XmlError> {
        let mut out = Vec::new();
        while let Some(ev) = self.next()? {
            out.push(ev);
        }
        Ok(out)
    }
}

/// Name-character set as a flat table: `read_name` runs once per tag and
/// attribute, so its per-byte test must be one load, not a chain of range
/// compares. Non-ASCII bytes are accepted as name characters: XML names
/// may use the full Unicode letter range, and passing UTF-8 continuation
/// bytes through keeps multi-byte names intact without a full table.
static NAME_CHAR: [bool; 256] = {
    let mut t = [false; 256];
    let mut c = 0usize;
    while c < 256 {
        let b = c as u8;
        t[c] = b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b':' | b'-') || b >= 0x80;
        c += 1;
    }
    t
};

#[inline(always)]
fn is_name_char(c: u8) -> bool {
    NAME_CHAR[c as usize]
}

/// Escapes the five predefined XML entities so `s` can be embedded in
/// character data or a double-quoted attribute value.
pub fn encode_entities(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

/// Resolves one entity body (the text between `&` and `;`), or `None` when
/// it is not a recognized reference.
fn resolve_entity(entity: &str) -> Option<char> {
    match entity {
        "lt" => Some('<'),
        "gt" => Some('>'),
        "amp" => Some('&'),
        "apos" => Some('\''),
        "quot" => Some('"'),
        _ => entity
            .strip_prefix("#x")
            .or_else(|| entity.strip_prefix("#X"))
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .or_else(|| entity.strip_prefix('#').and_then(|d| d.parse::<u32>().ok()))
            .and_then(char::from_u32),
    }
}

/// Decodes the predefined XML entities and numeric character references.
/// Unknown entities are passed through verbatim (lenient, like the noisy
/// real-world data of §9 requires).
pub fn decode_entities(s: &str) -> String {
    decode_entities_cow(s).into_owned()
}

/// Position of the next `;` within the 12 bytes following an `&` — the
/// longest reference this decoder resolves — so scanning for a terminator
/// never walks the full remainder of an entity-free text run.
fn nearby_semicolon(rest: &str) -> Option<usize> {
    let win = &rest.as_bytes()[..rest.len().min(13)];
    win.iter().position(|&b| b == b';')
}

/// [`decode_entities`] without the copy: borrows `s` when it contains no
/// ampersand (the common case on real data), allocating only when a
/// reference actually has to be rewritten. The gate and the reference
/// loop both skip between ampersands with the SWAR scanner.
pub fn decode_entities_cow(s: &str) -> Cow<'_, str> {
    if scan::next_byte(s.as_bytes(), 0, b'&').is_none() {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = scan::next_byte(rest.as_bytes(), 0, b'&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        match nearby_semicolon(rest) {
            Some(semi) => match resolve_entity(&rest[1..semi]) {
                Some(c) => {
                    out.push(c);
                    rest = &rest[semi + 1..];
                }
                None => {
                    out.push('&');
                    rest = &rest[1..];
                }
            },
            None => {
                out.push('&');
                rest = &rest[1..];
            }
        }
    }
    out.push_str(rest);
    Cow::Owned(out)
}

/// A malformed entity reference found by [`decode_entities_strict`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntityError {
    /// Byte offset of the offending `&` within the decoded slice.
    pub offset: usize,
    /// Description.
    pub message: String,
}

/// Strict variant of [`decode_entities_cow`]: every `&` must begin a
/// well-formed reference — terminated by `;`, naming a predefined entity
/// or a numeric character reference that decodes to a scalar value (no
/// surrogates, nothing past U+10FFFF).
pub fn decode_entities_strict(s: &str) -> Result<Cow<'_, str>, EntityError> {
    if scan::next_byte(s.as_bytes(), 0, b'&').is_none() {
        return Ok(Cow::Borrowed(s));
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    let mut consumed = 0usize;
    while let Some(amp) = scan::next_byte(rest.as_bytes(), 0, b'&') {
        out.push_str(&rest[..amp]);
        let at = consumed + amp;
        rest = &rest[amp..];
        let semi = match nearby_semicolon(rest) {
            Some(semi) => semi,
            None => {
                return Err(EntityError {
                    offset: at,
                    message: format!(
                        "unterminated entity reference {:?}",
                        &rest[..rest.len().min(8)]
                    ),
                });
            }
        };
        let entity = &rest[1..semi];
        match resolve_entity(entity) {
            Some(c) => out.push(c),
            None => {
                let what = if entity.starts_with('#') {
                    "invalid character reference"
                } else {
                    "unknown entity"
                };
                return Err(EntityError {
                    offset: at,
                    message: format!("{what} &{entity};"),
                });
            }
        }
        consumed = at + semi + 1;
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(Cow::Owned(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(doc: &str) -> Vec<XmlEvent<'_>> {
        XmlPullParser::new(doc).collect_events().expect("parse")
    }

    fn names(doc: &str) -> Vec<String> {
        events(doc)
            .into_iter()
            .filter_map(|e| match e {
                XmlEvent::StartElement { name, .. } => Some(name.to_owned()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn simple_document() {
        let evs = events("<a><b>hi</b><c/></a>");
        assert_eq!(evs.len(), 7);
        assert!(matches!(&evs[0], XmlEvent::StartElement { name, .. } if *name == "a"));
        assert!(matches!(&evs[2], XmlEvent::Text(t) if t == "hi"));
        assert!(matches!(
            &evs[4],
            XmlEvent::StartElement {
                self_closing: true,
                ..
            }
        ));
        assert!(matches!(&evs[5], XmlEvent::EndElement { name } if *name == "c"));
    }

    #[test]
    fn attributes_parsed() {
        let evs = events(r#"<a x="1" y='two &amp; three'/>"#);
        match &evs[0] {
            XmlEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes[0].0, "x");
                assert_eq!(attributes[0].1, "1");
                assert_eq!(attributes[1].1, "two & three");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn borrowed_events_do_not_allocate_for_plain_content() {
        let doc = r#"<a x="plain">text</a>"#;
        for ev in events(doc) {
            match ev {
                XmlEvent::Text(t) => assert!(matches!(t, Cow::Borrowed(_)), "{t:?}"),
                XmlEvent::StartElement { attributes, .. } => {
                    for (_, v) in &attributes {
                        assert!(matches!(v, Cow::Borrowed(_)), "{v:?}");
                    }
                }
                _ => {}
            }
        }
        // Entity decoding is the one thing that forces an allocation.
        let evs = events("<a>x &amp; y</a>");
        assert!(matches!(&evs[1], XmlEvent::Text(Cow::Owned(_))));
    }

    #[test]
    fn prolog_comment_pi_doctype() {
        let doc = r#"<?xml version="1.0"?>
<!-- a comment -->
<!DOCTYPE root [ <!ELEMENT root (#PCDATA)> ]>
<root>x</root>"#;
        let evs = events(doc);
        assert!(matches!(&evs[0], XmlEvent::ProcessingInstruction(p) if p.starts_with("xml")));
        assert!(matches!(&evs[1], XmlEvent::Comment(c) if c.contains("a comment")));
        assert!(matches!(&evs[2], XmlEvent::Doctype(d) if d.contains("#PCDATA")));
        assert_eq!(names(doc), vec!["root"]);
    }

    #[test]
    fn cdata_is_text() {
        let evs = events("<a><![CDATA[<not-a-tag> & raw]]></a>");
        assert!(matches!(&evs[1], XmlEvent::Text(t) if t == "<not-a-tag> & raw"));
        // CDATA content is never decoded, hence never copied.
        assert!(matches!(&evs[1], XmlEvent::Text(Cow::Borrowed(_))));
    }

    #[test]
    fn encode_decode_round_trip() {
        for text in ["a < b & c > d", "\"quoted\" & 'apos'", "plain", "ü ≤ €"] {
            assert_eq!(decode_entities(&encode_entities(text)), text);
        }
    }

    #[test]
    fn entity_decoding() {
        assert_eq!(
            decode_entities("a &lt; b &gt; c &amp; &quot;d&quot;"),
            "a < b > c & \"d\""
        );
        assert_eq!(decode_entities("&#65;&#x42;"), "AB");
        assert_eq!(decode_entities("&unknown; & bare"), "&unknown; & bare");
    }

    #[test]
    fn cow_decoding_borrows_when_clean() {
        assert!(matches!(
            decode_entities_cow("no entities"),
            Cow::Borrowed(_)
        ));
        assert!(matches!(decode_entities_cow("a &amp; b"), Cow::Owned(_)));
    }

    #[test]
    fn strict_decoding_rejects_malformed_references() {
        assert_eq!(decode_entities_strict("a &lt; b").unwrap(), "a < b");
        for (input, needle) in [
            ("&#xZZ;", "invalid character reference"),
            ("bad &amp tail", "unterminated entity reference"),
            ("&#xD800;", "invalid character reference"),
            ("&#1114112;", "invalid character reference"),
            ("&nbsp;", "unknown entity"),
        ] {
            let err = decode_entities_strict(input).unwrap_err();
            assert!(err.message.contains(needle), "{input:?} → {err:?}");
        }
        // The error points at the ampersand.
        assert_eq!(decode_entities_strict("ab&#xZZ;").unwrap_err().offset, 2);
    }

    #[test]
    fn strict_parser_positions_malformed_entities() {
        let err = XmlPullParser::new_strict("<a>\n  bad &#xZZ; ref</a>")
            .collect_events()
            .unwrap_err();
        assert_eq!((err.line, err.column), (2, 7), "{err}");
        // The lenient default passes the same reference through.
        let evs = events("<a>\n  bad &#xZZ; ref</a>");
        assert!(matches!(&evs[1], XmlEvent::Text(t) if t.contains("&#xZZ;")));
    }

    #[test]
    fn mismatched_tags_rejected() {
        assert!(XmlPullParser::new("<a><b></a></b>")
            .collect_events()
            .is_err());
        assert!(XmlPullParser::new("<a>").collect_events().is_err());
        assert!(XmlPullParser::new("</a>").collect_events().is_err());
    }

    #[test]
    fn text_outside_root_rejected() {
        assert!(XmlPullParser::new("hello <a/>").collect_events().is_err());
        // but whitespace is fine
        assert!(XmlPullParser::new("  \n<a/>\n  ").collect_events().is_ok());
    }

    #[test]
    fn nested_structure_names() {
        assert_eq!(names("<a><b><c/></b><b/></a>"), vec!["a", "b", "c", "b"]);
    }

    #[test]
    fn doctype_with_internal_subset_and_quotes() {
        let doc = r#"<!DOCTYPE r [ <!ENTITY e "<>"> ]><r/>"#;
        let evs = events(doc);
        assert!(matches!(&evs[0], XmlEvent::Doctype(_)));
        assert_eq!(names(doc), vec!["r"]);
    }

    #[test]
    fn malformed_attribute_rejected() {
        assert!(XmlPullParser::new("<a x=1/>").collect_events().is_err());
        assert!(XmlPullParser::new("<a x></a>").collect_events().is_err());
    }

    #[test]
    fn unterminated_comment_rejected() {
        assert!(XmlPullParser::new("<a><!-- oops</a>")
            .collect_events()
            .is_err());
    }

    #[test]
    fn errors_carry_line_and_column() {
        let err = XmlPullParser::new("<a>\n  <b>\n</a>")
            .collect_events()
            .unwrap_err();
        assert_eq!(err.line, 3, "{err}");
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn error_source_attribution() {
        let err = XmlPullParser::new("<a>").collect_events().unwrap_err();
        assert_eq!(err.source, None);
        let named = err.with_source("corpus/doc01.xml");
        assert!(
            named.to_string().starts_with("corpus/doc01.xml: XML error"),
            "{named}"
        );
        // An already-attributed error keeps its first source.
        assert_eq!(
            named.with_source("other.xml").source.as_deref(),
            Some("corpus/doc01.xml")
        );
    }

    #[test]
    fn namespaced_names() {
        assert_eq!(names("<ns:a><ns:b/></ns:a>"), vec!["ns:a", "ns:b"]);
    }

    #[test]
    fn unicode_element_names() {
        assert_eq!(
            names("<livre><tête/><café>ü</café></livre>"),
            vec!["livre", "tête", "café"]
        );
    }

    #[test]
    fn owned_shim_mirrors_borrowed_events() {
        let doc = r#"<a x="1 &amp; 2"><!--c--><b>t</b><?pi d?></a>"#;
        let owned: Vec<OwnedXmlEvent> = events(doc).iter().map(XmlEvent::to_owned_event).collect();
        assert_eq!(
            owned[0],
            OwnedXmlEvent::StartElement {
                name: "a".to_owned(),
                attributes: vec![("x".to_owned(), "1 & 2".to_owned())],
                self_closing: false,
            }
        );
        assert!(matches!(&owned[1], OwnedXmlEvent::Comment(c) if c == "c"));
        assert!(matches!(&owned[3], OwnedXmlEvent::Text(t) if t == "t"));
    }
}
