//! End-to-end DTD inference: corpus → per-element learner → DTD.
//!
//! For every element name the corpus supplies the multiset of child-name
//! sequences; the chosen engine (CRX for sparse data, iDTD for rich data —
//! §1.2's two scenarios) learns one expression per element, and text/child
//! mixtures are mapped onto the DTD content-spec forms.

use crate::attlist::{infer_attdef_from_bag, AttInferenceOptions};
use crate::dtd::{ContentSpec, Dtd};
use crate::extract::Corpus;
use dtdinfer_automata::soa::Soa;
use dtdinfer_core::crx::crx_counted;
use dtdinfer_core::idtd::{idtd_traced, Event, IdtdConfig};
use dtdinfer_core::kore::{pick_auto, KoreState};
use dtdinfer_core::model::InferredModel;
use dtdinfer_core::noise::SupportSoa;
use dtdinfer_regex::alphabet::Sym;
use std::collections::BTreeSet;
use std::time::Instant;

/// Which learning algorithm drives the per-element inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InferenceEngine {
    /// CRX (§7): CHAREs, strong generalization, best for small samples.
    Crx,
    /// iDTD (§6): SOREs, more specific, best for abundant data.
    Idtd,
    /// iDTD with the §9 noise treatment: edges below the support threshold
    /// are dropped when rewriting gets stuck.
    IdtdNoise {
        /// Minimum support an edge needs to survive.
        threshold: u64,
    },
    /// k-ORE (the successor paper): k-occurrence automata over a marked
    /// alphabet, for content models where a symbol repeats (`a b a`).
    Kore,
    /// MDL model chooser: picks SORE vs k-ORE vs CHARE per element by
    /// two-part description length.
    Auto,
}

/// Example:
///
/// ```
/// use dtdinfer_xml::extract::Corpus;
/// use dtdinfer_xml::infer::{infer_dtd, InferenceEngine};
///
/// let mut corpus = Corpus::new();
/// corpus
///     .add_document("<order><item/><item/><note>rush</note></order>")
///     .unwrap();
/// corpus.add_document("<order><item/></order>").unwrap();
/// let dtd = infer_dtd(&corpus, InferenceEngine::Crx);
/// assert!(dtd.serialize().contains("<!ELEMENT order (item+, note?)>"));
/// ```
/// Infers a complete DTD for the corpus.
pub fn infer_dtd(corpus: &Corpus, engine: InferenceEngine) -> Dtd {
    infer_dtd_with_stats(corpus, engine).0
}

/// Per-element derivation telemetry: which engine ran, how much data it
/// saw, what the derivation did, and what it cost. Powers the
/// `dtdinfer stats` report.
#[derive(Debug, Clone)]
pub struct ElementReport {
    /// Element name.
    pub name: String,
    /// What produced the content model: `crx`, `idtd`, `idtd-noise`,
    /// `kore`, an `auto-*` chooser verdict (`auto-sore`, `auto-kore`,
    /// `auto-chare`), or one of the degenerate content kinds (`mixed`,
    /// `pcdata`, `empty`).
    pub engine: &'static str,
    /// Total occurrences of the element across the corpus.
    pub occurrences: u64,
    /// Sample size: number of child-name sequences the learner consumed.
    pub words: usize,
    /// Rewrite-rule applications in the iDTD derivation (0 for CRX).
    pub rewrite_steps: usize,
    /// Repair-rule invocations in the iDTD derivation (0 for CRX).
    pub repairs: usize,
    /// Merge-everything fallback firings (0 unless iDTD got stuck).
    pub fallbacks: usize,
    /// Size of the resulting content model, in regex tokens.
    pub expr_size: usize,
    /// Wall-clock inference time for this element.
    pub duration_ns: u64,
}

/// Like [`infer_dtd`], additionally returning one [`ElementReport`] per
/// element (sorted by element name, matching corpus iteration order).
pub fn infer_dtd_with_stats(corpus: &Corpus, engine: InferenceEngine) -> (Dtd, Vec<ElementReport>) {
    let _span = dtdinfer_obs::span("xml.infer_dtd");
    // Canonicalize so document arrival order cannot leak into the output:
    // every learner breaks ties in symbol order, which equals name order
    // after this remap. The returned DTD's alphabet is the canonical one.
    let corpus = &corpus.canonicalized();
    let mut dtd = Dtd {
        alphabet: corpus.alphabet.clone(),
        root: corpus.root(),
        elements: Default::default(),
        attlists: Default::default(),
    };
    let mut reports = Vec::with_capacity(corpus.elements.len());
    for (&sym, facts) in &corpus.elements {
        let (spec, report) = infer_element(corpus, sym, engine);
        if dtdinfer_obs::is_enabled() {
            dtdinfer_obs::count_labeled("xml.engine", report.engine, 1);
            dtdinfer_obs::observe("xml.element.expr_size", report.expr_size as u64);
            dtdinfer_obs::event(
                "xml.element",
                &[
                    ("name", report.name.clone()),
                    ("engine", report.engine.to_owned()),
                    ("words", report.words.to_string()),
                    ("repairs", report.repairs.to_string()),
                ],
            );
        }
        dtd.elements.insert(sym, spec);
        reports.push(report);
        let defs: Vec<_> = facts
            .attributes
            .iter()
            .map(|(attr, values)| {
                infer_attdef_from_bag(
                    attr,
                    values,
                    facts.occurrences,
                    AttInferenceOptions::default(),
                )
            })
            .collect();
        if !defs.is_empty() {
            dtd.attlists.insert(sym, defs);
        }
    }
    (dtd, reports)
}

/// Content-model size in tokens, for the stats report.
pub fn spec_size(spec: &ContentSpec) -> usize {
    match spec {
        ContentSpec::Empty | ContentSpec::Any | ContentSpec::PcData => 1,
        ContentSpec::Mixed(syms) => syms.len() + 1,
        ContentSpec::Children(r) => r.token_count(),
    }
}

fn infer_element(
    corpus: &Corpus,
    sym: Sym,
    engine: InferenceEngine,
) -> (ContentSpec, ElementReport) {
    let started = Instant::now();
    let facts = &corpus.elements[&sym];
    let mut engine_used = match engine {
        InferenceEngine::Crx => "crx",
        InferenceEngine::Idtd => "idtd",
        InferenceEngine::IdtdNoise { .. } => "idtd-noise",
        InferenceEngine::Kore => "kore",
        InferenceEngine::Auto => "auto",
    };
    let (mut rewrite_steps, mut repairs, mut fallbacks) = (0usize, 0usize, 0usize);
    let has_text = facts.has_text();
    let has_children = facts.has_element_children();
    let spec = match (has_text, has_children) {
        // Never any content observed: EMPTY is the tight choice (the
        // specialization-over-generalization default of §1.2's rich-data
        // scenario; a later document with text would flip this to PCDATA).
        (false, false) => {
            engine_used = "empty";
            ContentSpec::Empty
        }
        (true, false) => {
            engine_used = "pcdata";
            ContentSpec::PcData
        }
        (true, true) => {
            // Mixed content: DTDs only allow (#PCDATA | a | b)*. This is
            // exactly the §9 XHTML-paragraph shape, so the noise engine's
            // support threshold applies here too: child names occurring
            // fewer than `threshold` times are treated as intruders.
            let mut support: std::collections::BTreeMap<Sym, u64> = Default::default();
            for (w, n) in facts.child_sequences.iter() {
                for &s in w {
                    *support.entry(s).or_insert(0) += u64::from(n);
                }
            }
            let threshold = match engine {
                InferenceEngine::IdtdNoise { threshold } => threshold,
                _ => 0,
            };
            let syms: BTreeSet<Sym> = support
                .into_iter()
                .filter(|&(_, count)| count >= threshold.max(1))
                .map(|(s, _)| s)
                .collect();
            engine_used = "mixed";
            ContentSpec::Mixed(syms.into_iter().collect())
        }
        (false, true) => {
            // Every learner consumes each distinct word once: the SOA is a
            // set union (count-invariant), CRX and the support counters
            // take the multiplicity as a weight.
            let model = match engine {
                InferenceEngine::Crx => crx_counted(facts.child_sequences.iter()),
                InferenceEngine::Idtd => {
                    let soa = Soa::learn(facts.child_sequences.words());
                    let (model, trace) = idtd_traced(&soa, IdtdConfig::default());
                    for e in &trace {
                        match e {
                            Event::Rewrite(_) => rewrite_steps += 1,
                            Event::Repair { .. } => repairs += 1,
                            Event::Fallback => fallbacks += 1,
                        }
                    }
                    model
                }
                InferenceEngine::IdtdNoise { threshold } => {
                    SupportSoa::learn_counted(facts.child_sequences.iter())
                        .infer_denoised(threshold)
                }
                InferenceEngine::Kore => {
                    let outcome = KoreState::learn_counted(&facts.child_sequences).derive();
                    for e in &outcome.events {
                        match e {
                            Event::Rewrite(_) => rewrite_steps += 1,
                            Event::Repair { .. } => repairs += 1,
                            Event::Fallback => fallbacks += 1,
                        }
                    }
                    outcome.model
                }
                InferenceEngine::Auto => {
                    let soa = Soa::learn(facts.child_sequences.words());
                    let sore = idtd_traced(&soa, IdtdConfig::default());
                    let kore = KoreState::learn_counted(&facts.child_sequences).derive();
                    let chare = crx_counted(facts.child_sequences.iter());
                    let pick = pick_auto(
                        sore,
                        kore,
                        chare,
                        corpus.alphabet.len(),
                        &facts.child_sequences,
                    );
                    engine_used = pick.engine;
                    for e in &pick.events {
                        match e {
                            Event::Rewrite(_) => rewrite_steps += 1,
                            Event::Repair { .. } => repairs += 1,
                            Event::Fallback => fallbacks += 1,
                        }
                    }
                    pick.model
                }
            };
            match model {
                InferredModel::Regex(r) => ContentSpec::Children(r),
                InferredModel::EpsilonOnly | InferredModel::Empty => ContentSpec::Empty,
            }
        }
    };
    let report = ElementReport {
        name: corpus.alphabet.name(sym).to_owned(),
        engine: engine_used,
        occurrences: facts.occurrences,
        words: facts.child_sequences.total() as usize,
        rewrite_steps,
        repairs,
        fallbacks,
        expr_size: spec_size(&spec),
        duration_ns: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
    };
    (spec, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(docs: &[&str]) -> Corpus {
        let mut c = Corpus::new();
        for d in docs {
            c.add_document(d).unwrap();
        }
        c
    }

    #[test]
    fn end_to_end_simple_dtd() {
        let c = corpus(&[
            "<book><title>T1</title><author>A</author><author>B</author></book>",
            "<book><title>T2</title><author>C</author></book>",
        ]);
        let dtd = infer_dtd(&c, InferenceEngine::Crx);
        let text = dtd.serialize();
        assert!(text.contains("<!ELEMENT book (title, author+)>"), "{text}");
        assert!(text.contains("<!ELEMENT title (#PCDATA)>"));
        assert!(text.contains("<!ELEMENT author (#PCDATA)>"));
        // The inferred DTD validates its own training data.
        for doc in [
            "<book><title>T1</title><author>A</author><author>B</author></book>",
            "<book><title>T2</title><author>C</author></book>",
        ] {
            assert_eq!(dtd.validate(doc).unwrap(), Vec::<String>::new());
        }
    }

    #[test]
    fn idtd_engine_gives_sore() {
        let c = corpus(&[
            "<r><a/><b/><a/><b/><c/></r>",
            "<r><a/><a/><c/></r>",
            "<r><b/><b/><c/></r>",
            "<r><b/><a/><c/></r>",
            "<r><c/></r>",
        ]);
        let dtd = infer_dtd(&c, InferenceEngine::Idtd);
        let canon = c.canonicalized();
        let r = dtd.alphabet.get("r").unwrap();
        match &dtd.elements[&r] {
            ContentSpec::Children(regex) => {
                assert!(dtdinfer_regex::classify::is_sore(regex));
                // Training sequences all match (over the canonical corpus,
                // whose symbols the DTD's expressions are written in).
                for w in canon.sequences_of("r").unwrap().words() {
                    assert!(dtdinfer_automata::nfa::regex_matches(regex, w));
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mixed_content_detected() {
        let c = corpus(&["<p>text <em>x</em> more <strong>y</strong></p>"]);
        let dtd = infer_dtd(&c, InferenceEngine::Crx);
        let p = dtd.alphabet.get("p").unwrap();
        match &dtd.elements[&p] {
            ContentSpec::Mixed(syms) => assert_eq!(syms.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_elements_declared_empty() {
        let c = corpus(&["<r><hr/><hr/></r>"]);
        let dtd = infer_dtd(&c, InferenceEngine::Crx);
        let hr = dtd.alphabet.get("hr").unwrap();
        assert_eq!(dtd.elements[&hr], ContentSpec::Empty);
    }

    #[test]
    fn root_is_set() {
        let c = corpus(&["<top><a/></top>"]);
        let dtd = infer_dtd(&c, InferenceEngine::Crx);
        assert_eq!(dtd.root, dtd.alphabet.get("top"));
        assert!(dtd.serialize().starts_with("<!ELEMENT top"));
    }

    #[test]
    fn kore_engine_learns_repeated_symbol() {
        // `a b a?` has no SORE; the k-ORE engine recovers it exactly.
        let c = corpus(&["<r><a/><b/><a/></r>", "<r><a/><b/></r>"]);
        let dtd = infer_dtd(&c, InferenceEngine::Kore);
        let text = dtd.serialize();
        assert!(text.contains("<!ELEMENT r (a, b, a?)>"), "{text}");
        for doc in ["<r><a/><b/><a/></r>", "<r><a/><b/></r>"] {
            assert_eq!(dtd.validate(doc).unwrap(), Vec::<String>::new());
        }
    }

    #[test]
    fn auto_engine_validates_sample_and_reports_choice() {
        let c = corpus(&[
            "<r><a/><b/><a/></r>",
            "<r><a/><b/><a/></r>",
            "<r><a/><b/></r>",
        ]);
        let (dtd, reports) = infer_dtd_with_stats(&c, InferenceEngine::Auto);
        let r = reports.iter().find(|rep| rep.name == "r").unwrap();
        assert!(
            r.engine.starts_with("auto-"),
            "chooser should stamp its verdict, got {}",
            r.engine
        );
        for doc in ["<r><a/><b/><a/></r>", "<r><a/><b/></r>"] {
            assert_eq!(dtd.validate(doc).unwrap(), Vec::<String>::new());
        }
    }

    #[test]
    fn noise_engine_cleans_mixed_content() {
        // The §9 XHTML scenario shape: paragraphs mixing text with em/strong,
        // plus a rare disallowed h1 intruder.
        let mut docs: Vec<String> = Vec::new();
        for i in 0..40 {
            docs.push(format!(
                "<p>text {i} <em>x</em> more <strong>y</strong></p>"
            ));
        }
        docs.push("<p>bad <h1>shout</h1></p>".to_owned());
        let mut c = Corpus::new();
        for d in &docs {
            c.add_document(d).unwrap();
        }
        let noisy = infer_dtd(&c, InferenceEngine::Idtd);
        let clean = infer_dtd(&c, InferenceEngine::IdtdNoise { threshold: 5 });
        let p_sym = noisy.alphabet.get("p").unwrap();
        let h1 = noisy.alphabet.get("h1").unwrap();
        match (&noisy.elements[&p_sym], &clean.elements[&p_sym]) {
            (ContentSpec::Mixed(with), ContentSpec::Mixed(without)) => {
                assert!(with.contains(&h1));
                assert!(!without.contains(&h1));
                assert_eq!(without.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn noise_engine_drops_rare_intruders() {
        let mut docs: Vec<String> = Vec::new();
        for _ in 0..30 {
            docs.push("<r><a/><b/></r>".to_owned());
            docs.push("<r><b/><a/></r>".to_owned());
            docs.push("<r><a/></r>".to_owned());
            docs.push("<r><b/></r>".to_owned());
            docs.push("<r><a/><a/></r>".to_owned());
            docs.push("<r><b/><b/></r>".to_owned());
            docs.push("<r></r>".to_owned());
        }
        docs.push("<r><z/></r>".to_owned());
        let mut c = Corpus::new();
        for d in &docs {
            c.add_document(d).unwrap();
        }
        let dtd = infer_dtd(&c, InferenceEngine::IdtdNoise { threshold: 5 });
        let r = dtd.alphabet.get("r").unwrap();
        let z = dtd.alphabet.get("z").unwrap();
        match &dtd.elements[&r] {
            ContentSpec::Children(regex) => {
                assert!(!regex.symbols().contains(&z), "{}", dtd.serialize());
            }
            other => panic!("{other:?}"),
        }
    }
}
