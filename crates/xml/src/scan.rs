//! SWAR byte scanners for the parser's hot loops.
//!
//! The pull parser spends nearly all of its time answering one question:
//! *where is the next interesting byte?* — the next `<` while streaming
//! text, the next `&` while deciding whether a slice needs entity
//! decoding, the closing quote of an attribute value. This module answers
//! it eight bytes at a time with SWAR (SIMD Within A Register) on plain
//! `u64` loads: broadcast the needle across a word, XOR, and detect zero
//! bytes with the classic `(x - 0x01…01) & !x & 0x80…80` mask. No
//! dependencies, no `unsafe`, no platform intrinsics — `u64::from_le_bytes`
//! on `chunks_exact(8)` compiles to a single unaligned load on every
//! target we care about.
//!
//! The zero-byte mask is exact for the *first* match in a word: borrow
//! propagation in the subtraction can set high bits only at positions
//! *above* a true zero byte, so `trailing_zeros` (little-endian: low byte
//! = low position) always lands on a genuine match. All entry points here
//! are find-first-from scans, so the shortcut is sound; the differential
//! tests below pin that against a naive scalar loop byte for byte.

/// `0x01` in every byte lane.
const LO: u64 = 0x0101_0101_0101_0101;
/// `0x80` in every byte lane.
const HI: u64 = 0x8080_8080_8080_8080;

/// Broadcasts `b` into every byte lane of a word.
#[inline(always)]
fn broadcast(b: u8) -> u64 {
    u64::from(b) * LO
}

/// A mask with the high bit set in (at least) every zero byte of `x`; the
/// lowest set bit is always at the first zero byte.
#[inline(always)]
fn zero_bytes(x: u64) -> u64 {
    x.wrapping_sub(LO) & !x & HI
}

/// Byte offset (0..8) of the lowest set high-bit in a nonzero mask.
#[inline(always)]
fn mask_offset(mask: u64) -> usize {
    (mask.trailing_zeros() as usize) >> 3
}

/// Position of the first `needle` at or after `from`, or `None`.
#[inline]
pub fn next_byte(hay: &[u8], from: usize, needle: u8) -> Option<usize> {
    let start = from.min(hay.len());
    let t = broadcast(needle);
    let mut i = start;
    let mut chunks = hay[start..].chunks_exact(8);
    for chunk in &mut chunks {
        let w = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        let m = zero_bytes(w ^ t);
        if m != 0 {
            return Some(i + mask_offset(m));
        }
        i += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == needle)
        .map(|p| i + p)
}

/// Position of the first `a` *or* `b` at or after `from`, or `None`.
#[inline]
pub fn next_byte2(hay: &[u8], from: usize, a: u8, b: u8) -> Option<usize> {
    let start = from.min(hay.len());
    let (ta, tb) = (broadcast(a), broadcast(b));
    let mut i = start;
    let mut chunks = hay[start..].chunks_exact(8);
    for chunk in &mut chunks {
        let w = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        let m = zero_bytes(w ^ ta) | zero_bytes(w ^ tb);
        if m != 0 {
            return Some(i + mask_offset(m));
        }
        i += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&c| c == a || c == b)
        .map(|p| i + p)
}

/// Position of the first `a`, `b`, *or* `c` at or after `from`, or `None`.
#[inline]
pub fn next_byte3(hay: &[u8], from: usize, a: u8, b: u8, c: u8) -> Option<usize> {
    let start = from.min(hay.len());
    let (ta, tb, tc) = (broadcast(a), broadcast(b), broadcast(c));
    let mut i = start;
    let mut chunks = hay[start..].chunks_exact(8);
    for chunk in &mut chunks {
        let w = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        let m = zero_bytes(w ^ ta) | zero_bytes(w ^ tb) | zero_bytes(w ^ tc);
        if m != 0 {
            return Some(i + mask_offset(m));
        }
        i += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&x| x == a || x == b || x == c)
        .map(|p| i + p)
}

/// Position of the first occurrence of `needle` (a short literal like
/// `-->` or `]]>`) at or after `from`. Skips between candidates with the
/// SWAR single-byte scan on the needle's first byte, then verifies the
/// remainder — the multi-byte delimiters the parser looks for are rare,
/// so nearly all bytes are covered at word speed.
#[inline]
pub fn next_subslice(hay: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    let Some((&first, rest)) = needle.split_first() else {
        return Some(from.min(hay.len()));
    };
    let mut i = from;
    while let Some(p) = next_byte(hay, i, first) {
        let after = p + 1;
        if hay.len() - after < rest.len() {
            return None;
        }
        if &hay[after..after + rest.len()] == rest {
            return Some(p);
        }
        i = after;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::{prop, proptest, ProptestConfig};

    /// The naive scalar loop the SWAR scanners must agree with.
    fn naive(hay: &[u8], from: usize, set: &[u8]) -> Option<usize> {
        (from.min(hay.len())..hay.len()).find(|&i| set.contains(&hay[i]))
    }

    fn naive_subslice(hay: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
        let from = from.min(hay.len());
        if needle.is_empty() {
            return Some(from);
        }
        if hay.len() < needle.len() {
            return None;
        }
        (from..=hay.len() - needle.len()).find(|&i| &hay[i..i + needle.len()] == needle)
    }

    #[test]
    fn finds_first_match_in_each_lane() {
        // One haystack per lane position, so every `trailing_zeros`
        // offset 0..8 is exercised, plus a second match that must lose.
        for lane in 0..8 {
            let mut hay = vec![b'x'; 20];
            hay[lane] = b'<';
            hay[12] = b'<';
            assert_eq!(next_byte(&hay, 0, b'<'), Some(lane), "lane {lane}");
        }
    }

    #[test]
    fn empty_and_missing() {
        assert_eq!(next_byte(b"", 0, b'<'), None);
        assert_eq!(next_byte(b"abcdefghij", 0, b'<'), None);
        assert_eq!(next_byte(b"abc", 99, b'a'), None);
        assert_eq!(next_byte2(b"", 0, b'<', b'&'), None);
        assert_eq!(next_byte3(b"abc", 3, b'a', b'b', b'c'), None);
    }

    #[test]
    fn sub_word_tails() {
        // Inputs shorter than one word never enter the SWAR loop; the
        // scalar tail must carry them.
        for len in 0..8 {
            let hay: Vec<u8> = (0..len)
                .map(|i| if i == len / 2 { b'&' } else { b'.' })
                .collect();
            let expect = if len == 0 { None } else { Some(len / 2) };
            assert_eq!(next_byte(&hay, 0, b'&'), expect, "len {len}");
        }
    }

    #[test]
    fn high_bytes_are_not_false_positives() {
        // 0x80.. bytes are where a sloppy zero-byte mask goes wrong.
        let hay: Vec<u8> = vec![0x80, 0xff, 0xfe, 0x81, 0xc3, 0xa9, 0x00, b'<'];
        assert_eq!(next_byte(&hay, 0, b'<'), Some(7));
        assert_eq!(next_byte(&hay, 0, 0x00), Some(6));
        assert_eq!(next_byte(&hay, 0, 0xff), Some(1));
        assert_eq!(next_byte2(&hay, 0, b'<', 0xc3), Some(4));
    }

    #[test]
    fn subslice_matches_scalar_search() {
        let hay = b"a--b-->c-->";
        assert_eq!(next_subslice(hay, 0, b"-->"), Some(4));
        assert_eq!(next_subslice(hay, 5, b"-->"), Some(8));
        assert_eq!(next_subslice(hay, 9, b"-->"), None);
        assert_eq!(next_subslice(b"ab", 0, b"abc"), None);
        assert_eq!(next_subslice(b"abc", 1, b""), Some(1));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// Differential check: on arbitrary bytes (the full 0x00–0xFF
        /// range, so 0x80–0xFF lanes are dense), from every start offset
        /// 0..=len (covering all 8 word alignments and sub-word tails),
        /// the SWAR scanners report exactly the positions of a naive
        /// scalar loop.
        #[test]
        fn swar_equals_scalar(
            hay in prop::collection::vec(0u8..=255, 0..80),
            a in 0u8..=255,
            b in 0u8..=255,
            c in 0u8..=255,
        ) {
            for from in 0..=hay.len() + 1 {
                assert_eq!(next_byte(&hay, from, a), naive(&hay, from, &[a]));
                assert_eq!(next_byte2(&hay, from, a, b), naive(&hay, from, &[a, b]));
                assert_eq!(
                    next_byte3(&hay, from, a, b, c),
                    naive(&hay, from, &[a, b, c])
                );
            }
        }

        /// Same differential check for the literal search, with needles
        /// drawn from the hay so matches actually occur.
        #[test]
        fn subslice_equals_scalar(
            hay in prop::collection::vec(0u8..=255, 0..60),
            start in 0usize..=60,
            nlen in 1usize..=4,
        ) {
            let needle: Vec<u8> = if hay.is_empty() {
                vec![0x2d; nlen]
            } else {
                (0..nlen).map(|i| hay[(start + i) % hay.len()]).collect()
            };
            for from in 0..=hay.len() + 1 {
                assert_eq!(
                    next_subslice(&hay, from, &needle),
                    naive_subslice(&hay, from, &needle),
                    "hay {hay:?} from {from} needle {needle:?}"
                );
            }
        }
    }
}
